"""Feature scaling."""

from __future__ import annotations

import numpy as np


class StandardScaler:
    """Zero-mean unit-variance scaling per feature.

    Constant features are left centred but unscaled (divisor 1), which
    matters here: dead pseudospectrum bins appear whenever a tag is
    never read.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        """Learn feature means and scales; returns ``self``."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or len(x) == 0:
            raise ValueError("expected non-empty (n, d) features")
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        self.scale_ = np.where(std > 1e-12, std, 1.0)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Standardise ``x`` with the fitted statistics."""
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler not fitted")
        return (np.asarray(x, dtype=np.float64) - self.mean_) / self.scale_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Fit and transform in one call."""
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        """Undo the standardisation."""
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler not fitted")
        return np.asarray(x) * self.scale_ + self.mean_
