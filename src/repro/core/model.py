"""The M2AI deep network (Fig. 6) and its ablation variants.

Per spectrum frame, a CNN encoder compresses each input channel
(pseudospectrum ``n_tags x 180``, periodogram ``n_tags x N``); a
fully-connected layer merges the branches into one per-frame feature;
two stacked LSTM layers of 32 cells track the frame sequence; a softmax
head predicts the activity at every frame.

Ablation variants (Fig. 17):

* ``"cnn"`` — same encoders, temporal mean pooling instead of LSTMs;
* ``"lstm"`` — a linear per-frame projection instead of the CNN.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import M2AIConfig
from repro.nn.conv import Conv1d, MaxPool1d
from repro.nn.layers import Dense, Dropout, Flatten, ReLU
from repro.nn.module import Module, Sequential
from repro.nn.recurrent import LSTM
from repro.obs.tracing import span

MODEL_MODES = ("cnn_lstm", "cnn", "lstm")


def _conv_out_length(length: int, kernel: int, stride: int, padding: int) -> int:
    return (length + 2 * padding - kernel) // stride + 1


class ConvBranch(Module):
    """CNN encoder for one wide channel: ``(B', n_tags, D) -> (B', out)``.

    Realises the paper's CONV-E stack: two strided convolutions over the
    angle axis with the tags as input channels, max-pooled, flattened
    and projected.
    """

    def __init__(
        self, n_tags: int, width: int, cfg: M2AIConfig, rng: np.random.Generator, name: str
    ) -> None:
        c1, c2 = cfg.conv_channels
        k1, k2 = cfg.conv_kernels
        length = width
        layers: list[Module] = []
        # Resolution matters: pseudospectrum peaks move by a handful of
        # 1-degree bins per activity, so the stack keeps stride 1 on the
        # first stage and downsamples only once.  Aggressive pooling
        # (a 16x reduction) measurably destroys the class signal.
        layers.append(
            Conv1d(n_tags, c1, k1, rng, stride=1, padding=k1 // 2, name=f"{name}.conv1")
        )
        length = _conv_out_length(length, k1, 1, k1 // 2)
        layers.append(ReLU())
        layers.append(
            Conv1d(c1, c2, k2, rng, stride=2, padding=k2 // 2, name=f"{name}.conv2")
        )
        length = _conv_out_length(length, k2, 2, k2 // 2)
        layers.append(ReLU())
        if length > 128:
            layers.append(MaxPool1d(2))
            length //= 2
        layers.append(Flatten())
        layers.append(Dense(c2 * length, cfg.branch_dim, rng, relu_init=True, name=f"{name}.fc"))
        layers.append(ReLU())
        self.net = Sequential(*layers)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Forward pass (caches what :meth:`backward` needs)."""
        return self.net.forward(x, training=training)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backprop through the cached forward pass; returns the input gradient."""
        return self.net.backward(grad)


class DenseBranch(Module):
    """Dense encoder for a narrow channel: ``(B', n_tags, D) -> (B', out)``."""

    def __init__(
        self, n_tags: int, width: int, cfg: M2AIConfig, rng: np.random.Generator, name: str
    ) -> None:
        self.net = Sequential(
            Flatten(),
            Dense(n_tags * width, cfg.branch_dim, rng, relu_init=True, name=f"{name}.fc"),
            ReLU(),
        )

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Forward pass (caches what :meth:`backward` needs)."""
        return self.net.forward(x, training=training)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backprop through the cached forward pass; returns the input gradient."""
        return self.net.backward(grad)


class LinearBranch(Module):
    """Plain linear projection (the "LSTM only" ablation's front end)."""

    def __init__(
        self, n_tags: int, width: int, cfg: M2AIConfig, rng: np.random.Generator, name: str
    ) -> None:
        self.net = Sequential(
            Flatten(),
            Dense(n_tags * width, cfg.branch_dim, rng, name=f"{name}.proj"),
        )

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Forward pass (caches what :meth:`backward` needs)."""
        return self.net.forward(x, training=training)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backprop through the cached forward pass; returns the input gradient."""
        return self.net.backward(grad)


_CONV_MIN_WIDTH = 32
"""Channels at least this wide get the CNN encoder."""


class M2AINet(Module):
    """The full Fig. 6 network over named input channels.

    Args:
        channel_shapes: mapping channel name -> ``(n_tags, width)``.
        n_classes: activity class count.
        cfg: hyper-parameters.
        mode: ``"cnn_lstm"`` (paper), ``"cnn"``, or ``"lstm"``.
        rng: weight-init randomness; derived from ``cfg.seed`` if None.

    Forward input is a dict ``{name: (B, T, n_tags, width)}``; output is
    per-frame logits ``(B, T_out, n_classes)`` where ``T_out == T``
    except in ``"cnn"`` mode (temporal mean pooling, ``T_out == 1``).
    """

    def __init__(
        self,
        channel_shapes: dict[str, tuple[int, int]],
        n_classes: int,
        cfg: M2AIConfig | None = None,
        mode: str = "cnn_lstm",
        rng: np.random.Generator | None = None,
    ) -> None:
        if mode not in MODEL_MODES:
            raise ValueError(f"mode must be one of {MODEL_MODES}")
        if not channel_shapes:
            raise ValueError("need at least one input channel")
        cfg = cfg or M2AIConfig()
        rng = rng or np.random.default_rng(cfg.seed)
        self.cfg = cfg
        self.mode = mode
        self.channel_names = sorted(channel_shapes)
        self.channel_shapes = dict(channel_shapes)
        self.n_classes = n_classes

        self.branches: list[Module] = []
        for name in self.channel_names:
            n_tags, width = channel_shapes[name]
            if mode == "lstm":
                branch: Module = LinearBranch(n_tags, width, cfg, rng, name)
            elif width >= _CONV_MIN_WIDTH:
                branch = ConvBranch(n_tags, width, cfg, rng, name)
            else:
                branch = DenseBranch(n_tags, width, cfg, rng, name)
            self.branches.append(branch)

        merged_in = cfg.branch_dim * len(self.channel_names)
        self.merge = Sequential(
            Dense(merged_in, cfg.merge_dim, rng, relu_init=True, name="merge.fc"),
            ReLU(),
            Dropout(cfg.dropout, rng),
        )

        if mode in ("cnn_lstm", "lstm"):
            self.lstms: list[Module] = []
            in_dim = cfg.merge_dim
            for i in range(cfg.lstm_layers):
                self.lstms.append(LSTM(in_dim, cfg.lstm_hidden, rng, name=f"lstm{i}"))
                in_dim = cfg.lstm_hidden
            head_in = cfg.lstm_hidden
        else:
            self.lstms = []
            head_in = cfg.merge_dim
        self.head = Dense(head_in, n_classes, rng, name="head")
        self._batch_frames: tuple[int, int] | None = None

    # ------------------------------------------------------------------

    def forward(
        self, inputs: dict[str, np.ndarray], training: bool = False
    ) -> np.ndarray:
        """Per-frame logits for a batch of frame sequences."""
        missing = [n for n in self.channel_names if n not in inputs]
        if missing:
            raise ValueError(f"missing input channels: {missing}")
        first = inputs[self.channel_names[0]]
        batch, frames = first.shape[0], first.shape[1]
        with span("nn.forward", batch=batch, frames=frames):
            feats = []
            for name, branch in zip(self.channel_names, self.branches):
                x = inputs[name]
                if x.shape[:2] != (batch, frames):
                    raise ValueError("channels disagree on (batch, frames)")
                flat = x.reshape(batch * frames, *x.shape[2:])
                feats.append(branch.forward(flat, training=training))
            merged = self.merge.forward(np.concatenate(feats, axis=1), training=training)
            seq = merged.reshape(batch, frames, -1)
            self._batch_frames = (batch, frames)

            if self.mode == "cnn":
                pooled = seq.mean(axis=1)
                logits = self.head.forward(pooled, training=training)
                return logits[:, None, :]
            hidden = seq
            for lstm in self.lstms:
                hidden = lstm.forward(hidden, training=training)
            return self.head.forward(hidden, training=training)

    def backward(self, grad: np.ndarray) -> dict[str, np.ndarray]:
        """Backprop; returns per-channel input gradients."""
        if self._batch_frames is None:
            raise RuntimeError("backward before forward")
        batch, frames = self._batch_frames
        with span("nn.backward", batch=batch, frames=frames):
            if self.mode == "cnn":
                dpooled = self.head.backward(grad[:, 0, :])
                dseq = np.broadcast_to(
                    dpooled[:, None, :] / frames, (batch, frames, dpooled.shape[-1])
                ).copy()
            else:
                dseq = self.head.backward(grad)
                for lstm in reversed(self.lstms):
                    dseq = lstm.backward(dseq)
            dmerged = self.merge.backward(dseq.reshape(batch * frames, -1))
            out: dict[str, np.ndarray] = {}
            offset = 0
            for name, branch in zip(self.channel_names, self.branches):
                width = self.cfg.branch_dim
                dbranch = branch.backward(dmerged[:, offset : offset + width])
                offset += width
                n_tags, dim = self.channel_shapes[name]
                out[name] = dbranch.reshape(batch, frames, n_tags, dim)
            return out

    def predict_logits(self, inputs: dict[str, np.ndarray]) -> np.ndarray:
        """Sample-level logits: mean of the per-frame logits, ``(B, C)``.

        Recurrent modes skip the configured warm-up frames, where the
        LSTM state carries no history yet.
        """
        logits = self.forward(inputs, training=False)
        start = 0
        if self.mode != "cnn":
            start = min(self.cfg.warmup_frames, logits.shape[1] - 1)
        return logits[:, start:, :].mean(axis=1)
