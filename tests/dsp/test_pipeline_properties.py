"""End-to-end DSP invariants across random tag placements."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp import PhaseCalibrator, build_spectrum_frames
from repro.dsp.snapshots import build_snapshots
from repro.dsp.correlation import spatial_covariance
from repro.dsp.music import music_pseudospectrum
from repro.geometry import Vec2, make_open_space
from repro.hardware import Reader, ReaderConfig, UniformLinearArray, make_tag, stationary_scene

angles = st.floats(min_value=35.0, max_value=145.0)
distances = st.floats(min_value=2.0, max_value=5.0)


def single_tag_session(angle_deg: float, distance: float, seed: int):
    room = make_open_space()
    array = UniformLinearArray(center=Vec2(0.0, 0.0))
    reader = Reader(ReaderConfig(array=array), room, seed=seed)
    rng = np.random.default_rng(seed)
    rad = math.radians(angle_deg)
    pos = (distance * math.cos(rad), distance * math.sin(rad))
    scene = stationary_scene([(make_tag("prop", rng), pos)])
    calibrator = PhaseCalibrator.fit(reader.inventory(scene, 20.0))
    log = reader.inventory(scene, 1.2)
    return log, calibrator.calibrate(log)


class TestAoAProperty:
    @given(angles, distances)
    @settings(max_examples=8, deadline=None)
    def test_dominant_peak_tracks_geometry(self, angle_deg, distance):
        """In free space, the MUSIC peak must stay within a few degrees
        of the true bearing for any placement in the field of view."""
        log, psi = single_tag_session(angle_deg, distance, seed=13)
        snaps = build_snapshots(log, psi, 0)
        errors = []
        for f in range(snaps.n_frames):
            if not snaps.frame_valid(f):
                continue
            cov = spatial_covariance(snaps.z[f], snaps.valid[f])
            result = music_pseudospectrum(
                cov,
                spacing_m=log.meta.spacing_m,
                wavelength_m=float(snaps.wavelength_m[f]),
            )
            errors.append(abs(result.peaks(1)[0][0] - angle_deg))
        assert np.median(errors) < 12.0


class TestFrameProperty:
    @given(angles)
    @settings(max_examples=5, deadline=None)
    def test_frames_always_well_formed(self, angle_deg):
        log, psi = single_tag_session(angle_deg, 3.5, seed=29)
        frames = build_spectrum_frames(log, psi)
        pseudo = frames.channels["pseudo"]
        assert np.isfinite(pseudo).all()
        assert pseudo.min() >= 0.0 and pseudo.max() <= 1.0 + 1e-9
        # The peak bin of each frame should broadly agree with geometry.
        peak_angles = pseudo[:, 0, :].argmax(axis=1) + 0.5
        assert np.median(np.abs(peak_angles - angle_deg)) < 20.0
