"""Graceful degradation of the DSP stack under dead ports and gaps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsp.angles import fold_double
from repro.dsp.calibration import PhaseCalibrator
from repro.dsp.correlation import spatial_covariance
from repro.dsp.frames import build_spectrum_frames
from repro.dsp.music import (
    PHASE_MULTIPLIER,
    masked_pseudospectrum,
    music_pseudospectrum,
)
from repro.dsp.periodogram import spatial_periodogram
from repro.faults import FaultSpec, apply_faults
from repro.hardware import ReadLog, ReaderMeta

SPACING = 0.04
WAVELENGTH = 8.0 * SPACING  # the paper's D = lambda/8 design point


def source_snapshots(theta_deg: float, n_ant: int = 4, k: int = 32, seed: int = 0):
    """Snapshots of one far-field source at ``theta_deg`` plus tiny noise."""
    rng = np.random.default_rng(seed)
    per_element = (
        PHASE_MULTIPLIER
        * 2.0
        * np.pi
        * SPACING
        * np.cos(np.deg2rad(theta_deg))
        / WAVELENGTH
    )
    steering = np.exp(1j * np.arange(n_ant) * per_element)
    amplitudes = np.exp(1j * rng.uniform(0.0, 2.0 * np.pi, k))
    z = amplitudes[:, None] * steering[None, :]
    z = z + 0.01 * (rng.normal(size=(k, n_ant)) + 1j * rng.normal(size=(k, n_ant)))
    return z, np.ones((k, n_ant), dtype=bool)


class TestMaskedPseudospectrum:
    def test_all_live_matches_full_array_path(self):
        z, valid = source_snapshots(60.0)
        full = music_pseudospectrum(
            spatial_covariance(z, valid), SPACING, WAVELENGTH
        )
        masked = masked_pseudospectrum(
            z, valid, np.ones(4, dtype=bool), SPACING, WAVELENGTH
        )
        assert np.array_equal(masked.spectrum, full.spectrum)
        assert masked.n_sources == full.n_sources

    def test_ragged_subarray_peak_near_truth(self):
        theta = 75.0
        z, valid = source_snapshots(theta)
        live = np.array([True, True, False, True])
        result = masked_pseudospectrum(
            z, valid, live, SPACING, WAVELENGTH, n_sources=1
        )
        peak = float(result.angles_deg[np.argmax(result.spectrum)])
        assert abs(peak - theta) <= 10.0

    def test_uniform_subarray_recovers_truth_among_peaks(self):
        # Survivors 0 and 2 form a uniform array at double spacing: the
        # wider aperture aliases (grating lobes), but the true angle
        # must still sit on one of the strongest peaks.
        theta = 60.0
        z, valid = source_snapshots(theta)
        live = np.array([True, False, True, False])
        result = masked_pseudospectrum(
            z, valid, live, SPACING, WAVELENGTH, n_sources=1
        )
        peak_angles = [angle for angle, _power in result.peaks(max_peaks=3)]
        assert any(abs(angle - theta) <= 10.0 for angle in peak_angles)

    def test_fewer_than_two_live_ports_rejected(self):
        z, valid = source_snapshots(50.0)
        with pytest.raises(ValueError):
            masked_pseudospectrum(
                z, valid, np.array([False, False, True, False]), SPACING, WAVELENGTH
            )


class TestDegradedPeriodogram:
    def test_dead_ports_zeroed_and_renormalised(self):
        x = np.ones((3, 4), dtype=complex)
        live = np.array([True, True, False, False])
        out = spatial_periodogram(x, liveness=live)
        # Rows become [1, 1, 0, 0]; |FFT|^2/N = [1, .5, 0, .5]; x N/live = x2.
        assert np.allclose(out, [2.0, 1.0, 0.0, 1.0])

    def test_all_live_mask_is_exact_noop(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(5, 4)) + 1j * rng.normal(size=(5, 4))
        plain = spatial_periodogram(x)
        masked = spatial_periodogram(x, liveness=np.ones(4, dtype=bool))
        assert np.array_equal(plain, masked)

    def test_completeness_check_ignores_dead_columns(self):
        x = np.ones((2, 4), dtype=complex)
        valid = np.array(
            [[True, True, False, False], [True, False, False, False]]
        )
        live = np.array([True, True, False, False])
        # Row 0 is complete over the live ports; row 1 is not and drops.
        out = spatial_periodogram(x, valid=valid, liveness=live)
        assert np.allclose(out, [2.0, 1.0, 0.0, 1.0])

    def test_no_live_ports_rejected(self):
        with pytest.raises(ValueError):
            spatial_periodogram(
                np.ones((2, 4), dtype=complex), liveness=np.zeros(4, dtype=bool)
            )


def tdm_log(dead_ports: tuple[int, ...] = ()) -> ReadLog:
    """A perfectly scheduled 2-dwell TDM log, minus ``dead_ports``."""
    meta = ReaderMeta(
        n_antennas=4,
        slot_s=0.025,
        dwell_s=0.4,
        spacing_m=SPACING,
        frequencies_hz=np.linspace(902.75e6, 927.25e6, 50),
        reference_channel=15,
    )
    rng = np.random.default_rng(3)
    times, ants, chans = [], [], []
    for rnd in range(8):  # 4 rounds per dwell, 2 dwells
        for ant in range(4):
            if ant in dead_ports:
                continue
            times.append(rnd * 0.1 + ant * 0.025 + 0.0125)
            ants.append(ant)
            chans.append(rnd // 4)
    n = len(times)
    chans = np.asarray(chans)
    return ReadLog(
        epcs=("T",),
        tag_index=np.zeros(n, dtype=int),
        antenna=np.asarray(ants),
        channel=chans,
        frequency_hz=meta.frequencies_hz[chans],
        timestamp_s=np.asarray(times),
        phase_rad=rng.uniform(0.0, 2.0 * np.pi, n),
        rssi_dbm=np.full(n, -60.0),
        meta=meta,
    )


class TestDegradedFrames:
    def test_dead_port_log_keeps_feature_shapes(self):
        log = tdm_log(dead_ports=(2,))
        frames = build_spectrum_frames(log, log.phase_rad, n_frames=2)
        assert frames.channels["pseudo"].shape == (2, 1, 180)
        assert frames.channels["period"].shape == (2, 1, 4)
        for arr in frames.channels.values():
            assert np.isfinite(arr).all()
        assert np.array_equal(
            frames.meta["antenna_liveness"], [True, True, False, True]
        )

    def test_healthy_log_reports_all_ports_live(self):
        log = tdm_log()
        frames = build_spectrum_frames(log, log.phase_rad, n_frames=2)
        assert frames.meta["antenna_liveness"].all()


class TestCalibrationFallback:
    def make_sparse_calibration(self) -> PhaseCalibrator:
        """Bootstrap observing only channels 0 and 4 of a 5-channel plan."""
        meta = ReaderMeta(
            n_antennas=1,
            slot_s=0.025,
            dwell_s=0.4,
            spacing_m=SPACING,
            frequencies_hz=np.linspace(902e6, 906e6, 5),
            reference_channel=2,
        )
        channel = np.array([0] * 6 + [4] * 6)
        phase = np.array([0.3] * 6 + [1.0] * 6)
        log = ReadLog(
            epcs=("T",),
            tag_index=np.zeros(12, dtype=int),
            antenna=np.zeros(12, dtype=int),
            channel=channel,
            frequency_hz=meta.frequencies_hz[channel],
            timestamp_s=np.linspace(0.0, 1.0, 12),
            phase_rad=phase,
            rssi_dbm=np.full(12, -60.0),
            meta=meta,
        )
        return PhaseCalibrator.fit(log)

    def test_nearest_channel_fallback_without_fit(self):
        cal = self.make_sparse_calibration()
        table = cal._tables[(0, 0)]
        assert not table.has_fit  # 2 observed channels < fit threshold
        freqs = cal.frequencies_hz
        # Channel 1 is nearest to observed channel 0; channel 3 to 4.
        assert table.offset_for(1, freqs) == pytest.approx(fold_double(0.3))
        assert table.offset_for(3, freqs) == pytest.approx(fold_double(1.0))
        # Directly observed channels are served as-is.
        assert table.offset_for(0, freqs) == pytest.approx(fold_double(0.3))

    def test_interpolated_channels_reported(self):
        cal = self.make_sparse_calibration()
        gaps = cal.interpolated_channels(0, 0)
        assert set(gaps) == {1, 2, 3}
        assert cal.coverage(0, 0) == pytest.approx(2.0 / 5.0)

    def test_report_flags_reference_channel_after_gap_fault(self):
        meta = ReaderMeta(
            n_antennas=2,
            slot_s=0.025,
            dwell_s=0.4,
            spacing_m=SPACING,
            frequencies_hz=np.linspace(902.75e6, 927.25e6, 50),
            reference_channel=15,
        )
        rng = np.random.default_rng(7)
        n = 4000
        channel = rng.integers(0, 50, n)
        log = ReadLog(
            epcs=("T",),
            tag_index=np.zeros(n, dtype=int),
            antenna=rng.integers(0, 2, n),
            channel=channel,
            frequency_hz=meta.frequencies_hz[channel],
            timestamp_s=np.sort(rng.uniform(0.0, 20.0, n)),
            phase_rad=rng.uniform(0.0, 2.0 * np.pi, n),
            rssi_dbm=np.full(n, -60.0),
            meta=meta,
        )
        gapped = apply_faults(log, [FaultSpec("calibration_gap", 0.4)], seed=0)
        report = PhaseCalibrator.fit(gapped).interpolation_report()
        assert report  # one entry per (tag, port)
        for gaps in report.values():
            assert meta.reference_channel in gaps
