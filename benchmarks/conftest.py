"""Benchmark harness plumbing.

Every benchmark regenerates one paper table/figure through the
experiment drivers in :mod:`repro.eval` and prints the paper-vs-
measured comparison.  Corpora are cached on disk (``.repro_cache/``),
so a prior ``python scripts/run_experiments.py`` run makes the suite
much faster; the model training inside each benchmark always runs for
real and is what the timing measures.

Each result is also recorded into the experiment state file (without
overwriting entries from a dedicated ``run_experiments.py`` run, which
uses a larger training budget), so ``EXPERIMENTS.md`` can be rebuilt
from whatever has been measured most recently.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

# Benchmarks measure end-to-end regeneration; a trimmed training budget
# keeps the full suite in minutes.  EXPERIMENTS.md prefers results from
# the untrimmed scripts/run_experiments.py runs where available.
os.environ.setdefault("REPRO_BENCH_EPOCHS", "15")

_REPO = Path(__file__).resolve().parents[1]
_STATE = _REPO / ".repro_cache" / "experiment_state.json"


def _record(result) -> None:
    try:
        state = json.loads(_STATE.read_text()) if _STATE.exists() else {}
    except (OSError, json.JSONDecodeError):
        state = {}
    if result.experiment_id in state:
        return  # keep the dedicated run's (higher-budget) record
    block = result.render() + (
        "\n\n(recorded by the benchmark suite, trimmed training budget "
        f"REPRO_BENCH_EPOCHS={os.environ.get('REPRO_BENCH_EPOCHS')})\n"
    )
    state[result.experiment_id] = block
    _STATE.parent.mkdir(exist_ok=True)
    _STATE.write_text(json.dumps(state))


@pytest.fixture
def run_experiment(benchmark, capsys):
    """Run an experiment driver once under pytest-benchmark and print it."""

    def runner(fn, **kwargs):
        result = benchmark.pedantic(
            lambda: fn(**kwargs), rounds=1, iterations=1, warmup_rounds=0
        )
        with capsys.disabled():
            print()
            print(result.render())
        _record(result)
        return result

    return runner
