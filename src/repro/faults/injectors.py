"""Composable, seeded fault injectors over :class:`ReadLog`.

Real UHF-RFID deployments never deliver the clean logs the simulator
produces: tag collisions and body blockage cause read dropout and
bursty outages, antenna ports die (cables, multiplexer faults), the
R420's phase report occasionally lands on the wrong side of its pi
ambiguity, RSSI sags with occlusion, host timestamps jitter, EPC
decoding errors produce ghost reads, and a calibration bootstrap can
miss channels entirely — including the reference channel.

Every injector is a pure function ``(log, spec, rng) -> log`` driven
by a :class:`FaultSpec` with a single ``severity`` knob in ``[0, 1]``.
Severity zero is the identity: the input log is returned unchanged,
which is what makes clean-path regression checks exact.  Scenarios are
reproducible: the same spec sequence and seed always produce the same
corrupted log.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.llrp import ReadLog

FAULT_KINDS = (
    "dropout",
    "burst_outage",
    "dead_port",
    "phase_flip",
    "phase_noise",
    "rssi_attenuation",
    "time_jitter",
    "ghost_reads",
    "calibration_gap",
)
"""Every supported fault kind, in documentation order."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject, with a severity knob.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        severity: fault intensity in ``[0, 1]``; zero is a no-op.
        magnitude: the kind's effect size at full severity, overriding
            its default.  Units are kind-specific: drop probability
            (``dropout``, ``phase_flip``, ``ghost_reads``), fraction of
            the log duration (``burst_outage``), fraction of ports
            (``dead_port``), radians (``phase_noise``), dB
            (``rssi_attenuation``), seconds (``time_jitter``), fraction
            of channels (``calibration_gap``).
    """

    kind: str
    severity: float
    magnitude: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if not 0.0 <= self.severity <= 1.0:
            raise ValueError("severity must be in [0, 1]")

    def scaled(self, default_magnitude: float) -> float:
        """Effect size at this severity."""
        full = default_magnitude if self.magnitude is None else self.magnitude
        return self.severity * full


def apply_faults(
    log: ReadLog, specs: list[FaultSpec] | tuple[FaultSpec, ...], seed: int = 0
) -> ReadLog:
    """Apply a fault scenario to a log, deterministically.

    Specs are applied in order, sharing one seeded generator, so the
    same ``(specs, seed)`` pair always yields an identical corrupted
    log.  Zero-severity specs are skipped outright (identity).

    Args:
        log: the clean read log.
        specs: fault scenario, applied left to right.
        seed: scenario randomness seed.

    Returns:
        The corrupted :class:`ReadLog` (the input object itself when
        every spec has zero severity).
    """
    rng = np.random.default_rng(seed)
    out = log
    for spec in specs:
        if spec.severity == 0.0:
            continue
        out = INJECTORS[spec.kind](out, spec, rng)
    return out


def _keep(log: ReadLog, keep: np.ndarray) -> ReadLog:
    return log.select(np.asarray(keep, dtype=bool))


def inject_dropout(log: ReadLog, spec: FaultSpec, rng: np.random.Generator) -> ReadLog:
    """Collision/blockage read loss: drop reads i.i.d. across the log."""
    p = min(spec.scaled(0.9), 1.0)
    return _keep(log, rng.random(log.n_reads) >= p)


def inject_burst_outage(
    log: ReadLog, spec: FaultSpec, rng: np.random.Generator
) -> ReadLog:
    """Per-tag contiguous outage windows (body blockage, tag detuning)."""
    if log.n_reads == 0:
        return log
    t_min = float(log.timestamp_s.min())
    span = max(float(log.timestamp_s.max()) - t_min, 1e-9)
    outage = spec.scaled(0.8) * span
    keep = np.ones(log.n_reads, dtype=bool)
    for tag in range(log.n_tags):
        start = t_min + rng.uniform(0.0, max(span - outage, 0.0))
        in_outage = (
            (log.tag_index == tag)
            & (log.timestamp_s >= start)
            & (log.timestamp_s < start + outage)
        )
        keep &= ~in_outage
    return _keep(log, keep)


def inject_dead_port(
    log: ReadLog, spec: FaultSpec, rng: np.random.Generator
) -> ReadLog:
    """Antenna-port failure: all reads of the dead ports vanish.

    At full severity (default magnitude) all but one port die; the
    number of dead ports rounds up so any nonzero severity kills at
    least one.
    """
    n_ant = log.meta.n_antennas
    frac = min(spec.scaled(1.0), 1.0)
    n_dead = min(int(np.ceil(frac * (n_ant - 1))), n_ant - 1)
    if n_dead == 0:
        return log
    dead = rng.choice(n_ant, size=n_dead, replace=False)
    return _keep(log, ~np.isin(log.antenna, dead))


def inject_phase_flip(
    log: ReadLog, spec: FaultSpec, rng: np.random.Generator
) -> ReadLog:
    """Pi-ambiguity glitches: a fraction of reads report ``phase + pi``."""
    p = min(spec.scaled(0.5), 1.0)
    flip = rng.random(log.n_reads) < p
    phase = log.phase_rad.copy()
    phase[flip] = np.mod(phase[flip] + np.pi, 2.0 * np.pi)
    return _replace_arrays(log, phase_rad=phase)


def inject_phase_noise(
    log: ReadLog, spec: FaultSpec, rng: np.random.Generator
) -> ReadLog:
    """Additive Gaussian phase noise (oscillator drift, low SNR)."""
    sigma = spec.scaled(0.8)
    noise = rng.normal(0.0, sigma, log.n_reads)
    return _replace_arrays(
        log, phase_rad=np.mod(log.phase_rad + noise, 2.0 * np.pi)
    )


def inject_rssi_attenuation(
    log: ReadLog, spec: FaultSpec, rng: np.random.Generator
) -> ReadLog:
    """Occlusion fades: subtract up to ``magnitude`` dB, jittered per read."""
    atten = spec.scaled(20.0)
    per_read = atten * (0.5 + 0.5 * rng.random(log.n_reads))
    return _replace_arrays(log, rssi_dbm=log.rssi_dbm - per_read)


def inject_time_jitter(
    log: ReadLog, spec: FaultSpec, rng: np.random.Generator
) -> ReadLog:
    """Host-side timestamping jitter, uniform in ``+-magnitude`` seconds."""
    jitter = spec.scaled(log.meta.slot_s / 2.0)
    offsets = rng.uniform(-jitter, jitter, log.n_reads)
    return _replace_arrays(log, timestamp_s=log.timestamp_s + offsets)


def inject_ghost_reads(
    log: ReadLog, spec: FaultSpec, rng: np.random.Generator
) -> ReadLog:
    """Duplicate/ghost reads: re-emit a fraction of reads, perturbed."""
    if log.n_reads == 0:
        return log
    p = min(spec.scaled(0.5), 1.0)
    ghosts = np.flatnonzero(rng.random(log.n_reads) < p)
    if ghosts.size == 0:
        return log
    dup = log.select(np.isin(np.arange(log.n_reads), ghosts))
    phase = np.mod(
        dup.phase_rad + rng.normal(0.0, 0.3, dup.n_reads), 2.0 * np.pi
    )
    ts = dup.timestamp_s + rng.uniform(0.0, log.meta.slot_s, dup.n_reads)
    timestamps = np.concatenate([log.timestamp_s, ts])
    order = np.argsort(timestamps, kind="stable")
    return ReadLog(
        epcs=log.epcs,
        tag_index=np.concatenate([log.tag_index, dup.tag_index])[order],
        antenna=np.concatenate([log.antenna, dup.antenna])[order],
        channel=np.concatenate([log.channel, dup.channel])[order],
        frequency_hz=np.concatenate([log.frequency_hz, dup.frequency_hz])[order],
        timestamp_s=timestamps[order],
        phase_rad=np.concatenate([log.phase_rad, phase])[order],
        rssi_dbm=np.concatenate([log.rssi_dbm, dup.rssi_dbm])[order],
        meta=log.meta,
    )


def inject_calibration_gap(
    log: ReadLog, spec: FaultSpec, rng: np.random.Generator
) -> ReadLog:
    """Unvisited calibration channels, always including the reference.

    Meant for the *calibration* log: removes every read on a severity-
    scaled fraction of channels so the calibrator must interpolate —
    the reference channel is always in the gap, exercising its
    fallback.
    """
    n_channels = int(np.asarray(log.meta.frequencies_hz).size)
    frac = min(spec.scaled(0.5), 1.0)
    n_gap = min(max(1, int(np.ceil(frac * n_channels))), n_channels - 1)
    others = np.delete(np.arange(n_channels), log.meta.reference_channel)
    extra = rng.choice(others, size=n_gap - 1, replace=False) if n_gap > 1 else []
    gap = np.concatenate([[log.meta.reference_channel], np.asarray(extra, dtype=int)])
    return _keep(log, ~np.isin(log.channel, gap))


def _replace_arrays(log: ReadLog, **arrays: np.ndarray) -> ReadLog:
    fields = dict(
        epcs=log.epcs,
        tag_index=log.tag_index,
        antenna=log.antenna,
        channel=log.channel,
        frequency_hz=log.frequency_hz,
        timestamp_s=log.timestamp_s,
        phase_rad=log.phase_rad,
        rssi_dbm=log.rssi_dbm,
        meta=log.meta,
    )
    fields.update(arrays)
    return ReadLog(**fields)


INJECTORS = {
    "dropout": inject_dropout,
    "burst_outage": inject_burst_outage,
    "dead_port": inject_dead_port,
    "phase_flip": inject_phase_flip,
    "phase_noise": inject_phase_noise,
    "rssi_attenuation": inject_rssi_attenuation,
    "time_jitter": inject_time_jitter,
    "ghost_reads": inject_ghost_reads,
    "calibration_gap": inject_calibration_gap,
}
"""Injector function per fault kind."""
