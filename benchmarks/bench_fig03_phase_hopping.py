"""Fig. 3: per-channel phase offsets of a stationary tag are linear in
the carrier frequency — the structure Eq. 1 calibration exploits."""

from repro.eval import run_fig03


def test_fig03_phase_hopping(run_experiment):
    result = run_experiment(run_fig03)
    measured = result.measured_by_name()
    assert measured["phase-frequency linearity R^2"] > 0.9
