"""RPR012 dtype-flow: narrow-float origins, inference-mode sanction,
escapes, and interprocedural call edges.
"""

from __future__ import annotations

from repro.analysis.lint import lint_source


def rpr012(src: str) -> list[int]:
    findings = lint_source(src, path="mod.py", select=["RPR012"])
    assert all(f.code == "RPR012" for f in findings)
    return [f.line for f in findings]


def test_dtype_kwarg_origin_flagged():
    assert rpr012(
        "import numpy as np\n"
        "def f(n):\n"
        "    return np.zeros(n, dtype=np.float32)\n"
    ) == [3]


def test_astype_origin_flagged():
    assert rpr012(
        "def f(x):\n"
        "    return x.astype('float32')\n"
    ) == [2]


def test_ctor_and_dtype_string_origins_flagged():
    lines = rpr012(
        "import numpy as np\n"
        "def f(v):\n"
        "    a = np.float32(v)\n"
        "    d = np.dtype('complex64')\n"
        "    return a, d\n"
    )
    assert lines == [3, 4]


def test_wide_dtypes_are_clean():
    assert rpr012(
        "import numpy as np\n"
        "from repro.nn.module import DEFAULT_DTYPE\n"
        "def f(n):\n"
        "    a = np.zeros(n, dtype=np.float64)\n"
        "    b = np.zeros(n, dtype=DEFAULT_DTYPE)\n"
        "    return a.astype(float), b\n"
    ) == []


def test_bare_attribute_in_ban_table_is_not_an_origin():
    # A ban/mapping table may *name* np.float32 without creating a
    # narrow value in the numeric pipeline.
    assert rpr012(
        "import numpy as np\n"
        "BANNED = {np.float32: 'use float64', np.complex64: 'use complex128'}\n"
    ) == []


def test_inference_mode_sanctions_origin():
    assert rpr012(
        "import numpy as np\n"
        "from repro.nn.module import inference_mode\n"
        "def serve(x):\n"
        "    with inference_mode():\n"
        "        return x.astype(np.float32)\n"
    ) == []


def test_sanctioned_value_escaping_scope_is_flagged():
    lines = rpr012(
        "import numpy as np\n"
        "from repro.nn.module import inference_mode\n"
        "def serve(x):\n"
        "    with inference_mode():\n"
        "        y = x.astype(np.float32)\n"
        "    return y\n"
    )
    assert lines == [6]


def test_cleansed_value_may_leave_scope():
    assert rpr012(
        "import numpy as np\n"
        "from repro.nn.module import inference_mode\n"
        "def serve(x):\n"
        "    with inference_mode():\n"
        "        y = x.astype(np.float32)\n"
        "        y = y.astype(np.float64)\n"
        "    return y\n"
    ) == []


def test_branch_join_keeps_the_tainted_path():
    # One branch sanctions, the other does not: the join must keep the
    # worse (unsanctioned) fact and the later read stays legal only if
    # every path was sanctioned.
    lines = rpr012(
        "import numpy as np\n"
        "from repro.nn.module import inference_mode\n"
        "def f(x, fast):\n"
        "    if fast:\n"
        "        y = x.astype(np.float32)\n"
        "    else:\n"
        "        with inference_mode():\n"
        "            y = x.astype(np.float32)\n"
        "    return y\n"
    )
    assert lines == [5]


def test_call_to_narrow_returning_function_needs_sanction():
    src = (
        "import numpy as np\n"
        "from repro.nn.module import inference_mode\n"
        "def make_half(x):\n"
        "    with inference_mode():\n"
        "        return x.astype(np.float32)\n"
        "def good(x):\n"
        "    with inference_mode():\n"
        "        return make_half(x)\n"
        "def bad(x):\n"
        "    return make_half(x)\n"
    )
    assert rpr012(src) == [10]


def test_line_suppression_with_justification():
    assert rpr012(
        "import numpy as np\n"
        "HALF = np.dtype(np.float32)  # reprolint: disable=RPR012 -- interop table\n"
    ) == []
