"""Cross-process reproducibility guarantees.

Simulations must be byte-identical across interpreter runs: every
stochastic element is seeded via numpy generators or the CRC32-based
stable hash (PYTHONHASHSEED randomisation must not leak in).
"""

from __future__ import annotations

import subprocess
import sys

import numpy as np

from repro.hardware.tag import stable_seed

_SCRIPT = """
import numpy as np
from repro.data import GenerationConfig, SyntheticDatasetGenerator
cfg = GenerationConfig(scenario_labels=("A01",), samples_per_class=1,
                       duration_s=1.6, calibration_s=20.0, seed=313)
raw = SyntheticDatasetGenerator(cfg).generate_raw()[0]
print(repr(float(raw.log.phase_rad.sum())))
print(repr(float(raw.log.rssi_dbm.sum())))
print(raw.log.n_reads)
"""


def _run_subprocess() -> list[str]:
    result = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        capture_output=True,
        text=True,
        check=True,
    )
    return result.stdout.strip().splitlines()


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("a", 1) == stable_seed("a", 1)

    def test_distinct_inputs_distinct_seeds(self):
        seeds = {stable_seed("tag", i) for i in range(50)}
        assert len(seeds) == 50

    def test_32_bit_range(self):
        for value in ("x", 123, ("a", "b")):
            assert 0 <= stable_seed(value) < 2**32


class TestCrossProcessDeterminism:
    def test_two_fresh_interpreters_agree(self):
        """Each subprocess gets a different PYTHONHASHSEED; the
        simulated log must not notice."""
        first = _run_subprocess()
        second = _run_subprocess()
        assert first == second

    def test_subprocess_matches_in_process(self):
        from repro.data import GenerationConfig, SyntheticDatasetGenerator

        cfg = GenerationConfig(
            scenario_labels=("A01",),
            samples_per_class=1,
            duration_s=1.6,
            calibration_s=20.0,
            seed=313,
        )
        raw = SyntheticDatasetGenerator(cfg).generate_raw()[0]
        lines = _run_subprocess()
        assert float(lines[0]) == float(np.sum(raw.log.phase_rad))
        assert int(lines[2]) == raw.log.n_reads
