"""Antenna hubs (Section VII extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsp import PhaseCalibrator, build_spectrum_frames
from repro.geometry import Rectangle, Room, Vec2, make_laboratory
from repro.hardware import UniformLinearArray, make_tag, stationary_scene
from repro.hardware.hub import AntennaHub, merge_hub_features


@pytest.fixture(scope="module")
def hub():
    room = make_laboratory()
    return AntennaHub(
        room=room,
        arrays=(
            UniformLinearArray(center=Vec2(4.0, 0.3)),
            UniformLinearArray(center=Vec2(10.0, 0.3)),
        ),
        seed=3,
    )


@pytest.fixture(scope="module")
def hub_scene():
    rng = np.random.default_rng(0)
    return stationary_scene(
        [(make_tag(f"hub-{i}", rng), (6.0 + i, 4.0)) for i in range(2)]
    )


class TestAntennaHub:
    def test_needs_an_array(self):
        with pytest.raises(ValueError):
            AntennaHub(room=make_laboratory(), arrays=())

    def test_one_log_per_array(self, hub, hub_scene):
        logs = hub.inventory(hub_scene, duration_s=1.2)
        assert len(logs) == 2
        for log in logs:
            assert log.n_reads > 50

    def test_member_sessions_independent(self, hub, hub_scene):
        logs = hub.inventory(hub_scene, duration_s=1.2)
        # Different array positions -> different geometry -> phases differ.
        n = min(logs[0].n_reads, logs[1].n_reads)
        assert not np.allclose(logs[0].phase_rad[:n], logs[1].phase_rad[:n])

    def test_coverage_monotone_in_arrays(self):
        room = Room(bounds=Rectangle(0, 0, 50, 30), name="big")
        rng = np.random.default_rng(1)
        points = np.stack([rng.uniform(0, 50, 500), rng.uniform(0, 30, 500)], axis=1)
        one = AntennaHub(room=room, arrays=(UniformLinearArray(center=Vec2(25, 1)),))
        two = AntennaHub(
            room=room,
            arrays=(
                UniformLinearArray(center=Vec2(12, 1)),
                UniformLinearArray(center=Vec2(38, 1)),
            ),
        )
        assert two.coverage_mask(points).mean() >= one.coverage_mask(points).mean()

    def test_calibration_inventory(self, hub, hub_scene):
        logs = hub.calibration_inventory(hub_scene, duration_s=20.0)
        for log in logs:
            calibrator = PhaseCalibrator.fit(log)
            # Narrowband fades can blank some channels for a given tag
            # position (which is exactly why the calibrator carries a
            # linear-fit fallback); a healthy majority must be covered
            # and calibration must apply cleanly.
            assert calibrator.coverage(0, 0) > 0.3
            psi = calibrator.calibrate(log)
            assert np.isfinite(psi).all()


class TestMergeHubFeatures:
    def test_merged_channels_suffixed(self, hub, hub_scene):
        cal_logs = hub.calibration_inventory(hub_scene, duration_s=20.0)
        logs = hub.inventory(hub_scene, duration_s=1.2)
        feats = []
        for cal, log in zip(cal_logs, logs):
            psi = PhaseCalibrator.fit(cal).calibrate(log)
            feats.append(build_spectrum_frames(log, psi, n_frames=3, label="X"))
        merged = merge_hub_features(feats)
        assert set(merged.channels) == {"pseudo@0", "period@0", "pseudo@1", "period@1"}
        assert merged.label == "X"
        assert merged.n_frames == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_hub_features([])


def synthetic_frames(value: float = 1.0, n_frames: int = 3) -> "FeatureFrames":
    from repro.dsp.frames import FeatureFrames

    return FeatureFrames(
        channels={
            "pseudo": np.full((n_frames, 2, 5), value),
            "period": np.full((n_frames, 2, 4), value),
        },
        label="X",
    )


class TestMergeDegradation:
    def test_dead_member_zero_filled(self):
        merged = merge_hub_features([synthetic_frames(), None])
        assert set(merged.channels) == {
            "pseudo@0", "period@0", "pseudo@1", "period@1",
        }
        assert (merged.channels["pseudo@0"] == 1.0).all()
        assert (merged.channels["pseudo@1"] == 0.0).all()
        assert merged.channels["pseudo@1"].shape == (3, 2, 5)
        assert merged.label == "X"

    def test_all_members_dead_rejected(self):
        with pytest.raises(ValueError, match="surviving"):
            merge_hub_features([None, None])

    def test_shape_mismatch_treated_as_dead(self):
        truncated = synthetic_frames(value=2.0, n_frames=1)
        merged = merge_hub_features([synthetic_frames(), truncated])
        # The truncated session cannot be stacked; its view zero-fills.
        assert (merged.channels["pseudo@1"] == 0.0).all()
        assert merged.channels["pseudo@1"].shape == (3, 2, 5)

    def test_with_liveness_channels(self):
        merged = merge_hub_features(
            [synthetic_frames(), None], with_liveness=True
        )
        assert (merged.channels["alive@0"] == 1.0).all()
        assert (merged.channels["alive@1"] == 0.0).all()
        assert merged.channels["alive@0"].shape == (3, 2, 1)

    def test_liveness_off_by_default_preserves_channel_set(self):
        merged = merge_hub_features([synthetic_frames()])
        assert set(merged.channels) == {"pseudo@0", "period@0"}
