"""Optimisers and gradient clipping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import SGD, Adam, Parameter, clip_grad_norm


def quadratic_params(start=5.0):
    """One parameter minimising f(w) = w^2 (gradient 2w)."""
    return [Parameter(np.array([start]))]


def step_quadratic(opt, params, n=100):
    for _ in range(n):
        for p in params:
            p.zero_grad()
            p.grad += 2.0 * p.value
        opt.step()
    return float(params[0].value[0])


class TestSGD:
    def test_converges_on_quadratic(self):
        params = quadratic_params()
        final = step_quadratic(SGD(params, lr=0.1), params)
        assert abs(final) < 1e-4

    def test_momentum_accelerates(self):
        plain_params = quadratic_params()
        step_quadratic(SGD(plain_params, lr=0.01), plain_params, n=20)
        momentum_params = quadratic_params()
        step_quadratic(SGD(momentum_params, lr=0.01, momentum=0.9), momentum_params, n=20)
        assert abs(momentum_params[0].value[0]) < abs(plain_params[0].value[0])

    def test_weight_decay_shrinks(self):
        p = [Parameter(np.array([1.0]))]
        opt = SGD(p, lr=0.1, weight_decay=0.5)
        opt.step()  # zero gradient, only decay
        assert p[0].value[0] < 1.0

    def test_lr_validation(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        params = quadratic_params()
        final = step_quadratic(Adam(params, lr=0.3), params, n=200)
        assert abs(final) < 1e-3

    def test_bias_correction_first_step(self):
        p = [Parameter(np.array([0.0]))]
        opt = Adam(p, lr=0.1)
        p[0].grad += 1.0
        opt.step()
        # With bias correction the first step is ~lr in magnitude.
        assert p[0].value[0] == pytest.approx(-0.1, rel=1e-6)

    def test_lr_validation(self):
        with pytest.raises(ValueError):
            Adam([], lr=-1.0)


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = [Parameter(np.zeros(3))]
        p[0].grad += np.array([0.1, 0.2, 0.2])
        norm = clip_grad_norm(p, max_norm=10.0)
        assert norm == pytest.approx(0.3)
        np.testing.assert_allclose(p[0].grad, [0.1, 0.2, 0.2])

    def test_clips_to_max(self):
        p = [Parameter(np.zeros(2))]
        p[0].grad += np.array([3.0, 4.0])
        clip_grad_norm(p, max_norm=1.0)
        assert np.linalg.norm(p[0].grad) == pytest.approx(1.0)

    def test_global_norm_across_params(self):
        a, b = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        a.grad += 3.0
        b.grad += 4.0
        norm = clip_grad_norm([a, b], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        total = np.sqrt(a.grad[0] ** 2 + b.grad[0] ** 2)
        assert total == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], max_norm=0.0)
