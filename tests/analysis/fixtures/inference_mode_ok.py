"""RPR012 true-negative fixture: the sanctioned cast-once serve recipe.

Every narrow-float operation happens inside ``with inference_mode():``
and the value is widened back to float64 before leaving the scope —
the linter must report nothing here.
"""

import numpy as np

from repro.nn import inference_mode


def serve(model, feats):
    """Cast-once float32 inference, widened before the scope exits."""
    with inference_mode():
        x = feats.astype(np.float32)
        y = model(x)
        out = y.astype(np.float64)
    return out


def narrow_helper(feats):
    """A sanctioned narrow producer; callers must stay in scope."""
    with inference_mode():
        return np.asarray(feats, dtype=np.float32)


def chained(model, feats):
    """Calling the narrow producer inside a scope is fine too."""
    with inference_mode():
        x = narrow_helper(feats)
        return float(model(x).sum())
