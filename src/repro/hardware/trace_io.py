"""Read-log import/export: the bridge to real hardware.

A deployment that owns an Impinj reader can log per-read records
(EPC, antenna port, channel, timestamp, phase, RSSI) with Octane/LLRP
and feed them straight into this library: the CSV schema here is the
flat rendering of :class:`~repro.hardware.llrp.ReadLog`, and the
loader reconstructs a log the preprocessing stack consumes unchanged.
Simulated logs export through the same path, so golden traces can be
versioned, diffed and replayed.

Schema (one header line, then one row per read)::

    epc,antenna,channel,frequency_hz,timestamp_s,phase_rad,rssi_dbm

Session metadata travels in ``#``-prefixed header comments.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.hardware.llrp import ReaderMeta, ReadLog
from repro.obs.tracing import span

_COLUMNS = ("epc", "antenna", "channel", "frequency_hz", "timestamp_s", "phase_rad", "rssi_dbm")


def dump_csv(log: ReadLog, path: str | Path | io.TextIOBase) -> None:
    """Write a read log (with session metadata) as CSV.

    Args:
        log: the log to export.
        path: file path or open text handle.
    """
    own = isinstance(path, (str, Path))
    handle: io.TextIOBase = open(path, "w") if own else path  # type: ignore[assignment]
    try:
        meta = log.meta
        handle.write(f"# n_antennas={meta.n_antennas}\n")
        handle.write(f"# slot_s={meta.slot_s!r}\n")
        handle.write(f"# dwell_s={meta.dwell_s!r}\n")
        handle.write(f"# spacing_m={meta.spacing_m!r}\n")
        handle.write(f"# reference_channel={meta.reference_channel}\n")
        freqs = ",".join(repr(float(f)) for f in meta.frequencies_hz)
        handle.write(f"# frequencies_hz={freqs}\n")
        handle.write(",".join(_COLUMNS) + "\n")
        for i in range(log.n_reads):
            handle.write(
                f"{log.epcs[log.tag_index[i]]},{int(log.antenna[i])},"
                f"{int(log.channel[i])},{float(log.frequency_hz[i])!r},"
                f"{float(log.timestamp_s[i])!r},{float(log.phase_rad[i])!r},"
                f"{float(log.rssi_dbm[i])!r}\n"
            )
    finally:
        if own:
            handle.close()


def load_csv(path: str | Path | io.TextIOBase) -> ReadLog:
    """Load a read log written by :func:`dump_csv` (or a real reader).

    Unknown EPCs are assigned tag indices in first-appearance order.

    Raises:
        ValueError: on a malformed header or row.
    """
    own = isinstance(path, (str, Path))
    handle: io.TextIOBase = open(path, "r") if own else path  # type: ignore[assignment]
    try:
        with span("ingest.load_csv"):
            return _parse_csv(handle)
    finally:
        if own:
            handle.close()


def _parse_csv(handle: io.TextIOBase) -> ReadLog:
    """Parse an open CSV handle into a :class:`ReadLog`.

    Split out of :func:`load_csv` so the ``ingest.load_csv`` span covers
    exactly the parse work, not handle management.
    """
    meta_fields: dict[str, str] = {}
    header: list[str] | None = None
    rows: list[tuple] = []
    epcs: list[str] = []
    index_of: dict[str, int] = {}
    for raw_line in handle:
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("#"):
            key, _, value = line[1:].strip().partition("=")
            meta_fields[key.strip()] = value
            continue
        if header is None:
            header = [c.strip() for c in line.split(",")]
            if tuple(header) != _COLUMNS:
                raise ValueError(f"unexpected CSV columns: {header}")
            continue
        parts = line.split(",")
        if len(parts) != len(_COLUMNS):
            raise ValueError(f"malformed row: {line!r}")
        epc = parts[0]
        if epc not in index_of:
            index_of[epc] = len(epcs)
            epcs.append(epc)
        rows.append(
            (
                index_of[epc],
                int(parts[1]),
                int(parts[2]),
                float(parts[3]),
                float(parts[4]),
                float(parts[5]),
                float(parts[6]),
            )
        )
    if header is None:
        raise ValueError("no header line found")
    required = {
        "n_antennas",
        "slot_s",
        "dwell_s",
        "spacing_m",
        "reference_channel",
        "frequencies_hz",
    }
    missing = required - set(meta_fields)
    if missing:
        raise ValueError(f"missing metadata comments: {sorted(missing)}")
    meta = ReaderMeta(
        n_antennas=int(meta_fields["n_antennas"]),
        slot_s=float(meta_fields["slot_s"]),
        dwell_s=float(meta_fields["dwell_s"]),
        spacing_m=float(meta_fields["spacing_m"]),
        frequencies_hz=np.array(
            [float(v) for v in meta_fields["frequencies_hz"].split(",")]
        ),
        reference_channel=int(meta_fields["reference_channel"]),
    )
    arr = np.array(rows, dtype=np.float64) if rows else np.zeros((0, 7))
    return ReadLog(
        epcs=tuple(epcs),
        tag_index=arr[:, 0].astype(np.int64),
        antenna=arr[:, 1].astype(np.int64),
        channel=arr[:, 2].astype(np.int64),
        frequency_hz=arr[:, 3],
        timestamp_s=arr[:, 4],
        phase_rad=arr[:, 5],
        rssi_dbm=arr[:, 6],
        meta=meta,
    )
