"""Dense/ReLU/Dropout/Flatten layers: shapes and exact gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Dense, Dropout, Flatten, ReLU, Tanh, check_module_gradients

RNG = np.random.default_rng(0)


class TestDense:
    def test_output_shape(self):
        layer = Dense(5, 3, RNG)
        assert layer(RNG.normal(size=(7, 5))).shape == (7, 3)

    def test_leading_axes_preserved(self):
        layer = Dense(5, 3, RNG)
        assert layer(RNG.normal(size=(2, 4, 5))).shape == (2, 4, 3)

    def test_gradients(self):
        layer = Dense(4, 3, RNG)
        errors = check_module_gradients(layer, RNG.normal(size=(5, 4)), RNG)
        assert max(errors.values()) < 1e-7

    def test_gradients_3d_input(self):
        layer = Dense(4, 3, RNG)
        errors = check_module_gradients(layer, RNG.normal(size=(2, 5, 4)), RNG)
        assert max(errors.values()) < 1e-7

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            Dense(4, 3, RNG).backward(np.zeros((5, 3)))

    def test_grad_accumulates(self):
        layer = Dense(4, 3, RNG)
        x = RNG.normal(size=(5, 4))
        layer(x)
        layer.backward(np.ones((5, 3)))
        first = layer.weight.grad.copy()
        layer(x)
        layer.backward(np.ones((5, 3)))
        np.testing.assert_allclose(layer.weight.grad, 2 * first)


class TestActivations:
    def test_relu_forward(self):
        out = ReLU()(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(out, [0.0, 0.0, 2.0])

    def test_relu_gradients(self):
        errors = check_module_gradients(ReLU(), RNG.normal(size=(4, 6)) + 0.1, RNG)
        assert errors["input"] < 1e-7

    def test_tanh_gradients(self):
        errors = check_module_gradients(Tanh(), RNG.normal(size=(4, 6)), RNG)
        assert errors["input"] < 1e-7


class TestDropout:
    def test_identity_at_inference(self):
        layer = Dropout(0.5, RNG)
        x = RNG.normal(size=(10, 10))
        np.testing.assert_allclose(layer.forward(x, training=False), x)

    def test_scales_at_training(self):
        layer = Dropout(0.5, np.random.default_rng(0))
        x = np.ones((200, 200))
        out = layer.forward(x, training=True)
        kept = out[out != 0]
        assert kept[0] == pytest.approx(2.0)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.0, RNG)

    def test_backward_masks(self):
        layer = Dropout(0.5, np.random.default_rng(1))
        x = np.ones((8, 8))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_allclose((grad != 0), (out != 0))


class TestFlatten:
    def test_roundtrip(self):
        layer = Flatten()
        x = RNG.normal(size=(3, 4, 5))
        out = layer(x)
        assert out.shape == (3, 20)
        np.testing.assert_allclose(layer.backward(out), x)
