"""Principal component analysis (used to feed compact features to the
HMM baseline and available for general use)."""

from __future__ import annotations

import numpy as np


class PCA:
    """SVD-based PCA.

    Args:
        n_components: dimensions to keep (capped at ``min(n, d)``).
    """

    def __init__(self, n_components: int) -> None:
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.n_components = n_components
        self.mean_: np.ndarray | None = None
        self.components_: np.ndarray | None = None
        self.explained_variance_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "PCA":
        """Fit the principal components; returns ``self``."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or len(x) == 0:
            raise ValueError("expected non-empty (n, d) features")
        self.mean_ = x.mean(axis=0)
        centred = x - self.mean_
        n, d = centred.shape
        k = min(self.n_components, n, d)
        if d <= max(n, 512):
            _u, s, vt = np.linalg.svd(centred, full_matrices=False)
            components = vt[:k]
            singular = s[:k]
        else:
            # Wide data (d >> n): the economy SVD is O(n^2 d) through the
            # Gram matrix, not O(d^2 n) — essential for spectrum frames
            # where d runs into the tens of thousands.
            gram = centred @ centred.T
            eigvals, eigvecs = np.linalg.eigh(gram)
            order = np.argsort(eigvals)[::-1][:k]
            eigvals = np.maximum(eigvals[order], 1e-30)
            singular = np.sqrt(eigvals)
            components = (centred.T @ eigvecs[:, order] / singular).T
        self.components_ = components
        self.explained_variance_ = (singular**2) / max(n - 1, 1)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Project ``x`` onto the fitted components."""
        if self.mean_ is None or self.components_ is None:
            raise RuntimeError("PCA not fitted")
        return (np.asarray(x, dtype=np.float64) - self.mean_) @ self.components_.T

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Fit and transform in one call."""
        return self.fit(x).transform(x)

    def inverse_transform(self, z: np.ndarray) -> np.ndarray:
        """Map projections back to the original space."""
        if self.mean_ is None or self.components_ is None:
            raise RuntimeError("PCA not fitted")
        return np.asarray(z) @ self.components_ + self.mean_
