"""Tag phase response model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware import FrequencyHopper, Tag, make_tag


class TestPhaseOffsets:
    def test_deterministic_in_epc(self):
        freqs = FrequencyHopper().frequencies_hz
        a = Tag(epc="E1").phase_offsets(freqs)
        b = Tag(epc="E1").phase_offsets(freqs)
        np.testing.assert_allclose(a, b)

    def test_different_tags_differ(self):
        freqs = FrequencyHopper().frequencies_hz
        a = Tag(epc="E1").phase_offsets(freqs)
        b = Tag(epc="E2").phase_offsets(freqs)
        assert not np.allclose(a, b)

    def test_mostly_linear_in_frequency(self):
        freqs = FrequencyHopper().frequencies_hz
        tag = Tag(epc="linear", phase_slope_rad_per_mhz=0.2, channel_jitter_rad=0.0)
        offsets = tag.phase_offsets(freqs)
        slope = np.polyfit(freqs / 1e6, offsets, 1)[0]
        assert slope == pytest.approx(0.2, rel=1e-6)

    def test_jitter_bounded(self):
        freqs = FrequencyHopper().frequencies_hz
        tag = Tag(epc="jittery", phase_slope_rad_per_mhz=0.0, channel_jitter_rad=0.05)
        offsets = tag.phase_offsets(freqs) - tag.phase_intercept_rad
        assert np.abs(offsets).max() < 0.5


class TestFactory:
    def test_make_tag_randomises_but_reproducibly(self):
        a = make_tag("X", np.random.default_rng(0))
        b = make_tag("X", np.random.default_rng(0))
        assert a == b
        c = make_tag("X", np.random.default_rng(1))
        assert a.phase_slope_rad_per_mhz != c.phase_slope_rad_per_mhz

    def test_slope_in_documented_range(self):
        rng = np.random.default_rng(0)
        for i in range(20):
            tag = make_tag(f"T{i}", rng)
            assert 0.05 <= tag.phase_slope_rad_per_mhz <= 0.25
