"""The repo scripts' plumbing (no heavy experiments)."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]


def load_script(name: str):
    spec = importlib.util.spec_from_file_location(
        name, REPO / "scripts" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def load_runner():
    return load_script("run_experiments")


class TestRunnerScript:
    def test_write_orders_by_registry(self, tmp_path):
        runner = load_runner()
        out = tmp_path / "EXPERIMENTS.md"
        runner._write(
            out,
            {
                "fig09": "== fig09 block ==\n",
                "fig02": "== fig02 block ==\n",
            },
        )
        text = out.read_text()
        assert text.index("fig02 block") < text.index("fig09 block")
        assert "paper vs measured" in text

    def test_write_skips_missing(self, tmp_path):
        runner = load_runner()
        out = tmp_path / "EXPERIMENTS.md"
        runner._write(out, {"fig03": "== fig03 block ==\n"})
        text = out.read_text()
        assert "fig03 block" in text
        assert "fig09" not in text.replace("fig09/", "")

    def test_header_mentions_regeneration(self, tmp_path):
        runner = load_runner()
        out = tmp_path / "EXPERIMENTS.md"
        runner._write(out, {})
        assert "run_experiments.py" in out.read_text()


class TestApiDocsGenerator:
    def test_committed_api_md_is_current(self, capsys):
        """The same invariant CI's `gen_api_docs.py --check` enforces."""
        gen = load_script("gen_api_docs")
        assert gen.main(["--check"]) == 0, "docs/API.md is stale"

    def test_every_public_module_is_documented(self):
        gen = load_script("gen_api_docs")
        text = (REPO / "docs" / "API.md").read_text()
        modules = gen.iter_public_modules()
        assert "repro.obs" in modules
        for name in modules:
            assert f"## `{name}`" in text

    def test_generator_is_deterministic(self):
        gen = load_script("gen_api_docs")
        assert gen.generate() == gen.generate()

    def test_check_flags_stale_output(self, tmp_path, monkeypatch, capsys):
        gen = load_script("gen_api_docs")
        stale = tmp_path / "API.md"
        stale.write_text("# out of date\n")
        monkeypatch.setattr(gen, "OUT_PATH", stale)
        assert gen.main(["--check"]) == 1
        assert "stale" in capsys.readouterr().err
