"""Link-budget conversions between complex gains and reader reports.

The reader's LLRP stream reports phase (radians) and RSSI (dBm); the
simulator produces complex round-trip gains.  This module holds the
mapping, including the tag power-harvesting gate: a passive tag only
replies when the forward field at the tag is strong enough.
"""

from __future__ import annotations

import numpy as np

from repro.channel.params import ChannelParams


def gain_to_rssi_dbm(gain: np.ndarray, params: ChannelParams) -> np.ndarray:
    """Map complex round-trip gain to RSSI in dBm.

    The reference point: a round-trip gain whose magnitude equals
    ``reference_amplitude ** 2`` reports ``rssi_ref_dbm``.

    Args:
        gain: complex round-trip gains, any shape.
        params: channel constants.

    Returns:
        RSSI values in dBm, same shape.
    """
    mag = np.maximum(np.abs(gain), 1e-12)
    ref = params.reference_amplitude**2
    return params.rssi_ref_dbm + 20.0 * np.log10(mag / ref)


def rssi_dbm_to_amplitude(rssi_dbm: np.ndarray, params: ChannelParams) -> np.ndarray:
    """Inverse of :func:`gain_to_rssi_dbm` (magnitude only)."""
    ref = params.reference_amplitude**2
    return ref * 10.0 ** ((np.asarray(rssi_dbm) - params.rssi_ref_dbm) / 20.0)


def harvest_mask(one_way_gain: np.ndarray, params: ChannelParams) -> np.ndarray:
    """True where the tag harvests enough power to respond.

    Passive UHF tags rectify the forward field; when its amplitude at
    the tag falls below the activation threshold the tag stays silent
    and the read is simply missing from the log (the paper observes
    this beyond ~6 m).

    Args:
        one_way_gain: complex forward gains.
        params: channel constants.

    Returns:
        Boolean mask, True = tag responds.
    """
    return np.abs(one_way_gain) >= params.harvest_amplitude_threshold


def above_noise_floor(rssi_dbm: np.ndarray, params: ChannelParams) -> np.ndarray:
    """True where the backscattered reply is decodable at the reader."""
    return np.asarray(rssi_dbm) >= params.noise_floor_dbm
