"""The findings ratchet: fingerprints, baseline files, pragmas, the
parallel runner, and the CI gate semantics end to end.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.baseline import (
    BASELINE_FILENAME,
    Baseline,
    discover_baseline,
    fingerprint,
    split_findings,
)
from repro.analysis.lint import lint_paths, lint_source
from repro.analysis.rules import Finding

CLEAN_MODULE = (
    '"""A module with nothing to report."""\n'
    "\n"
    "__all__ = [\"double\"]\n"
    "\n"
    "\n"
    "def double(x):\n"
    '    """Double a value."""\n'
    "    return 2 * x\n"
)

# One deliberate RPR010 (wall-clock timing) the baseline will accept.
DIRTY_MODULE = (
    '"""A module with one accepted finding."""\n'
    "\n"
    "import time\n"
    "\n"
    "__all__ = [\"stamp\"]\n"
    "\n"
    "\n"
    "def stamp():\n"
    '    """Return a timestamp."""\n'
    "    return time.time()\n"
)

# A second, *new* violation (different file → different fingerprint)
# for the ratchet demo.
WORSE_MODULE = DIRTY_MODULE.replace('"stamp"', '"stamp2"').replace(
    "def stamp", "def stamp2"
)


def make_tree(tmp_path: Path, dirty: bool = True) -> Path:
    pkg = tmp_path / "proj"
    pkg.mkdir()
    (pkg / "clean.py").write_text(CLEAN_MODULE)
    if dirty:
        (pkg / "dirty.py").write_text(DIRTY_MODULE)
    return pkg


# ---------------------------------------------------------------------------
# Fingerprints.


def mk(path: str, line: int = 10, message: str = "m") -> Finding:
    return Finding(path=path, line=line, col=0, code="RPR010", message=message, hint="h")


def test_fingerprint_is_relative_to_baseline_root(tmp_path):
    # Absolute and repo-relative spellings of the same file fingerprint
    # identically, so `lint src` and `lint /abs/src` share a baseline.
    rel = mk(str(Path("proj") / "dirty.py"))
    absolute = mk(str(tmp_path / "proj" / "dirty.py"))
    assert fingerprint(absolute, tmp_path) == fingerprint(
        mk(str(tmp_path / "proj" / "dirty.py"), line=99), tmp_path
    )
    # Line churn must NOT invalidate the baseline...
    assert fingerprint(rel, Path(".")) == fingerprint(
        mk(str(Path("proj") / "dirty.py"), line=99), Path(".")
    )
    # ...but path and message changes do.
    assert fingerprint(rel, Path(".")) != fingerprint(
        mk(str(Path("proj") / "other.py")), Path(".")
    )
    assert fingerprint(rel, Path(".")) != fingerprint(
        mk(str(Path("proj") / "dirty.py"), message="other"), Path(".")
    )


def test_baseline_roundtrip_preserves_justifications(tmp_path):
    f = mk("proj/dirty.py")
    path = tmp_path / BASELINE_FILENAME
    first = Baseline.from_findings([f], path)
    entry = next(iter(first.entries.values()))
    object.__setattr__(entry, "justification", "measured interval is wall-clock on purpose")
    first.save()

    reloaded = Baseline.load(path)
    updated = Baseline.from_findings([f], path, previous=reloaded)
    assert [e.justification for e in updated.entries.values()] == [
        "measured interval is wall-clock on purpose"
    ]


def test_discover_baseline_walks_up(tmp_path):
    (tmp_path / BASELINE_FILENAME).write_text('{"version": 1, "entries": []}')
    nested = tmp_path / "a" / "b"
    nested.mkdir(parents=True)
    assert discover_baseline(nested) == tmp_path / BASELINE_FILENAME
    assert discover_baseline(tmp_path / "a") == tmp_path / BASELINE_FILENAME


def test_split_findings_partitions(tmp_path):
    path = tmp_path / BASELINE_FILENAME
    accepted = mk("proj/dirty.py")
    baseline = Baseline.from_findings([accepted], path)
    fresh = mk("proj/clean.py", line=3, message="new one")
    new, old, stale = split_findings([fresh, accepted], baseline)
    assert [f.message for f in new] == ["new one"]
    assert [f.message for f in old] == ["m"]
    assert stale == []
    new2, old2, stale2 = split_findings([], baseline)
    assert (new2, old2) == ([], [])
    assert len(stale2) == 1  # informational, never a failure


# ---------------------------------------------------------------------------
# The ratchet, end to end through lint_paths.


def test_ratchet_accepts_baselined_and_blocks_new(tmp_path):
    """The acceptance-criterion demo: a committed baseline lets the
    accepted finding through, then a newly introduced violation fails
    the run while the old one stays baselined."""
    pkg = make_tree(tmp_path)

    # No baseline: the deliberate finding fails the run.
    report = lint_paths([str(pkg)], baseline=None)
    assert not report.ok
    assert [f.code for f in report.findings] == ["RPR010"]

    # Freeze it into a baseline: the run goes green.
    baseline_path = tmp_path / BASELINE_FILENAME
    report = lint_paths(
        [str(pkg)], baseline=str(baseline_path), update_baseline=True
    )
    assert report.ok
    report = lint_paths([str(pkg)], baseline=str(baseline_path))
    assert report.ok
    assert len(report.baselined) == 1

    # Introduce a second violation: only IT is reported, and the run
    # fails while the accepted finding stays baselined.
    (pkg / "worse.py").write_text(WORSE_MODULE)
    report = lint_paths([str(pkg)], baseline=str(baseline_path))
    assert not report.ok
    assert len(report.findings) == 1
    assert report.findings[0].code == "RPR010"
    assert report.findings[0].path.endswith("worse.py")
    assert len(report.baselined) == 1


def test_ratchet_auto_discovers_committed_baseline(tmp_path):
    pkg = make_tree(tmp_path)
    report = lint_paths(
        [str(pkg)],
        baseline=str(tmp_path / BASELINE_FILENAME),
        update_baseline=True,
    )
    assert report.ok
    # "auto" walks up from the linted tree and finds the committed file.
    report = lint_paths([str(pkg)], baseline="auto")
    assert report.ok and len(report.baselined) == 1
    assert report.baseline_path == str(tmp_path / BASELINE_FILENAME)


def test_update_baseline_preserves_surviving_justifications(tmp_path):
    pkg = make_tree(tmp_path)
    baseline_path = tmp_path / BASELINE_FILENAME
    lint_paths([str(pkg)], baseline=str(baseline_path), update_baseline=True)

    data = json.loads(baseline_path.read_text())
    data["entries"][0]["justification"] = "timestamping for humans, not intervals"
    baseline_path.write_text(json.dumps(data))

    lint_paths([str(pkg)], baseline=str(baseline_path), update_baseline=True)
    data = json.loads(baseline_path.read_text())
    assert data["entries"][0]["justification"] == "timestamping for humans, not intervals"


# ---------------------------------------------------------------------------
# Pragmas.


def test_file_pragma_requires_justification():
    pragma = "# reprolint: disable-file=RPR010 -- startup stamp is wall-clock by design\n"
    src = pragma + DIRTY_MODULE
    assert lint_source(src, path="mod.py") == []

    unjustified = "# reprolint: disable-file=RPR010\n" + DIRTY_MODULE
    findings = lint_source(unjustified, path="mod.py")
    codes = [f.code for f in findings]
    assert "RPR099" in codes  # the pragma itself is the finding
    assert "RPR010" in codes  # and the suppression did not take effect


def test_justified_suppressions_surface_in_report(tmp_path):
    pkg = tmp_path / "proj"
    pkg.mkdir()
    (pkg / "mod.py").write_text(
        "# reprolint: disable-file=RPR010 -- boot stamp must be wall-clock\n"
        + DIRTY_MODULE
    )
    report = lint_paths([str(pkg)], baseline=None)
    assert report.ok
    recs = report.as_dict()["suppressions"]
    assert len(recs) == 1
    assert recs[0]["code"] == "RPR010"
    assert "wall-clock" in recs[0]["justification"]


# ---------------------------------------------------------------------------
# Parallel runner + profiles.


def test_jobs_output_is_deterministic(tmp_path):
    pkg = make_tree(tmp_path)
    for i in range(6):
        (pkg / f"extra{i}.py").write_text(DIRTY_MODULE)
    serial = lint_paths([str(pkg)], baseline=None, jobs=1)
    parallel = lint_paths([str(pkg)], baseline=None, jobs=4)
    key = lambda f: (f.path, f.line, f.col, f.code, f.message)  # noqa: E731
    assert [key(f) for f in serial.findings] == [key(f) for f in parallel.findings]
    assert serial.wall_time_s >= 0 and parallel.wall_time_s >= 0


def test_drivers_profile_relaxes_print_and_docstrings(tmp_path):
    # A dir outside the path-exempt scripts/examples/benchmarks set, so
    # only the profile (not RPR007's own path carve-out) is in play.
    pkg = tmp_path / "tools"
    pkg.mkdir()
    (pkg / "driver.py").write_text(
        '"""A driver."""\n\ndef main():\n    print("progress")\n'
    )
    strict = lint_paths([str(pkg)], baseline=None)
    relaxed = lint_paths([str(pkg)], baseline=None, profile="drivers")
    assert any(f.code == "RPR007" for f in strict.findings)
    assert any(f.code == "RPR009" for f in strict.findings)  # no docstring on main
    assert relaxed.ok
