"""Thread-safety of the steering-matrix LRU cache.

The fleet's inline mode serves many streams in one process, so
``cached_steering_matrix`` gets hammered from concurrent ticks.  The
cache must never corrupt its LRU bookkeeping, exceed its bound, or
hand different callers different matrices for the same key.
"""

import threading

import numpy as np
import pytest

from repro.dsp.music import (
    STEERING_CACHE_MAXSIZE,
    cached_steering_matrix,
    clear_steering_cache,
    steering_cache_info,
    steering_matrix,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_steering_cache()
    yield
    clear_steering_cache()


def _key_args(i: int) -> tuple:
    grid = np.linspace(-60.0, 60.0, 31) + (i % 7)
    return (grid, 4, 0.16, 0.32 + 1e-4 * (i % 5))


def test_concurrent_hammer_no_corruption():
    n_threads = 8
    iters = 200
    errors: list[BaseException] = []
    barrier = threading.Barrier(n_threads)

    def worker(seed: int) -> None:
        rng = np.random.default_rng(seed)
        try:
            barrier.wait()
            for _ in range(iters):
                i = int(rng.integers(0, 40))
                a = cached_steering_matrix(*_key_args(i))
                assert a.shape == (4, 31)
                assert not a.flags.writeable
                # Every caller of the same key must observe the same
                # values, whichever thread built the entry.
                np.testing.assert_allclose(a, steering_matrix(*_key_args(i)))
        except BaseException as exc:  # noqa: BLE001 - collect for main thread
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(seed,)) for seed in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    info = steering_cache_info()
    assert 0 < info["size"] <= STEERING_CACHE_MAXSIZE


def test_concurrent_eviction_respects_bound():
    n_threads = 6
    errors: list[BaseException] = []
    barrier = threading.Barrier(n_threads)

    def worker(offset: int) -> None:
        try:
            barrier.wait()
            # Each thread walks a distinct key range so the union far
            # exceeds the cache bound and eviction races with inserts.
            for i in range(STEERING_CACHE_MAXSIZE):
                grid = np.array([float(offset * 1000 + i)])
                cached_steering_matrix(grid, 4, 0.16, 0.32)
        except BaseException as exc:  # noqa: BLE001 - collect for main thread
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(off,)) for off in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    assert steering_cache_info()["size"] <= STEERING_CACHE_MAXSIZE


def test_racing_same_miss_returns_single_winner():
    n_threads = 8
    results: list[np.ndarray] = []
    lock = threading.Lock()
    barrier = threading.Barrier(n_threads)

    def worker() -> None:
        barrier.wait()
        a = cached_steering_matrix(np.linspace(-90, 90, 181), 8, 0.16, 0.32)
        with lock:
            results.append(a)

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(results) == n_threads
    # setdefault picks one winner; later callers must all alias it.
    winner = results[0]
    assert all(a is winner for a in results)
