"""Fig. 9: M2AI against the ten conventional classifiers.

The paper's headline: the CNN+LSTM engine on calibrated
pseudospectrum+periodogram frames beats every classical baseline
(by 27 points over the linear-SVM runner-up at hardware scale)."""

from repro.eval import run_fig09


def test_fig09_classifier_comparison(run_experiment):
    result = run_experiment(run_fig09)
    measured = result.measured_by_name()
    m2ai = measured.pop("M2AI")
    # Shape check: M2AI leads the ladder (a small tolerance absorbs the
    # benchmark suite's trimmed training budget; the EXPERIMENTS.md run
    # at the full budget shows a clear lead).
    assert m2ai >= max(measured.values()) - 0.05
    # And everything clears 12-class chance.
    assert m2ai > 2.0 / 12.0
