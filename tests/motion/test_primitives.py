"""Motion primitive vocabulary."""

from __future__ import annotations

import numpy as np
import pytest

from repro.motion import PRIMITIVES, get_primitive

T = np.linspace(0.0, 6.0, 240)
SIGNAL_KEYS = {"dx", "dy", "orientation", "hand_extend", "hand_lateral", "arm_extend"}


class TestRegistry:
    def test_twelve_primitives(self):
        assert len(PRIMITIVES) == 12

    def test_lookup(self):
        assert get_primitive("wave_hand").name == "wave_hand"

    def test_unknown_name_helpful_error(self):
        with pytest.raises(KeyError, match="valid"):
            get_primitive("moonwalk")


class TestSignals:
    @pytest.mark.parametrize("name", sorted(PRIMITIVES))
    def test_complete_and_finite(self, name):
        signals = PRIMITIVES[name].sample(T, np.random.default_rng(0))
        assert set(signals) == SIGNAL_KEYS
        for key, value in signals.items():
            assert value.shape == T.shape, key
            assert np.isfinite(value).all(), key

    @pytest.mark.parametrize("name", sorted(PRIMITIVES))
    def test_randomised_between_executions(self, name):
        a = PRIMITIVES[name].sample(T, np.random.default_rng(1))
        b = PRIMITIVES[name].sample(T, np.random.default_rng(2))
        different = any(not np.allclose(a[k], b[k]) for k in SIGNAL_KEYS)
        assert different

    @pytest.mark.parametrize("name", sorted(PRIMITIVES))
    def test_deterministic_given_rng(self, name):
        a = PRIMITIVES[name].sample(T, np.random.default_rng(3))
        b = PRIMITIVES[name].sample(T, np.random.default_rng(3))
        for key in SIGNAL_KEYS:
            np.testing.assert_allclose(a[key], b[key])

    def test_stand_still_is_nearly_still(self):
        signals = PRIMITIVES["stand_still"].sample(T, np.random.default_rng(0))
        assert np.abs(signals["dx"]).max() < 0.05
        assert np.abs(signals["dy"]).max() < 0.05

    def test_walk_line_moves_metres(self):
        signals = PRIMITIVES["walk_line"].sample(T, np.random.default_rng(0))
        span = np.hypot(signals["dx"], signals["dy"]).max()
        assert span > 0.3

    def test_wave_hand_moves_hand_not_body(self):
        signals = PRIMITIVES["wave_hand"].sample(T, np.random.default_rng(0))
        assert np.abs(signals["hand_lateral"]).max() > 0.2
        assert np.abs(signals["dx"]).max() < 0.05

    def test_turn_around_rotates(self):
        signals = PRIMITIVES["turn_around"].sample(T, np.random.default_rng(0))
        assert np.ptp(signals["orientation"]) > np.pi

    def test_clap_faster_than_wave(self):
        def dominant_rate(signal: np.ndarray) -> float:
            spectrum = np.abs(np.fft.rfft(signal - signal.mean()))
            freqs = np.fft.rfftfreq(len(signal), d=T[1] - T[0])
            return float(freqs[spectrum.argmax()])

        clap = PRIMITIVES["clap_hands"].sample(T, np.random.default_rng(0))
        wave = PRIMITIVES["wave_hand"].sample(T, np.random.default_rng(0))
        assert dominant_rate(clap["hand_lateral"]) > dominant_rate(wave["hand_lateral"])

    def test_sit_down_is_one_way(self):
        signals = PRIMITIVES["sit_down"].sample(T, np.random.default_rng(0))
        # Ends displaced (sat down), rather than oscillating back.
        assert signals["dx"][-1] < -0.2
