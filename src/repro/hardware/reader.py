"""Simulated Impinj Speedway R420-class RFID reader.

The reader ties the whole substrate together: it walks the TDM
inventory schedule (one antenna port active per 25 ms slot), follows
the FCC hop plan, renders every tag through the multipath channel, and
emits an LLRP-style :class:`~repro.hardware.llrp.ReadLog` with all the
measurement artifacts the paper's preprocessing has to undo:

* per-channel oscillator phase offsets, linear in frequency (Fig. 3);
* per-port cable/RF-chain phase offsets;
* per-tag antenna phase response (linear in frequency);
* the R420's pi phase ambiguity — the reported phase is the true
  phase or the true phase plus pi, stable per (tag, port, channel)
  within a session;
* phase/RSSI quantisation and Gaussian measurement noise;
* missed reads: tags that harvest too little power stay silent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.link import above_noise_floor, gain_to_rssi_dbm, harvest_mask
from repro.channel.model import MultipathChannel
from repro.channel.params import ChannelParams
from repro.geometry.room import Room
from repro.hardware.antenna import UniformLinearArray
from repro.hardware.hopping import FrequencyHopper
from repro.hardware.llrp import ReaderMeta, ReadLog
from repro.hardware.scene import Scene
from repro.obs.tracing import span
from repro.runtime.retry import RetryPolicy, call_with_retry

TWO_PI = 2.0 * np.pi


@dataclass(frozen=True)
class ReaderConfig:
    """Behavioural knobs of the simulated reader.

    Attributes:
        array: the physical antenna array.
        slot_s: TDM inventory slot per antenna port (25 ms).
        phase_noise_std_rad: Gaussian phase measurement noise.
        rssi_noise_std_db: Gaussian RSSI measurement noise.
        phase_lsb_rad: phase quantisation step (the R420 reports
            12-bit phase, 2*pi/4096).
        rssi_lsb_db: RSSI quantisation step.
        random_miss_prob: probability a well-powered read is still
            lost (collisions, CRC failures).
        enable_hopping_offsets: include oscillator + tag + cable phase
            offsets (disable for idealised unit tests).
        enable_pi_ambiguity: include the R420 pi ambiguity.
        oscillator_slope_range: per-session oscillator phase slope is
            drawn uniformly from this range (rad/MHz).
        cable_phase_std_rad: per-port cable/RF-chain phase mismatch.
            AoA arrays are built with phase-matched coax (standard
            practice in ArrayTrack/RF-IDraw-style systems), so the
            residual mismatch is small; Eq. 1 calibration cannot remove
            a per-port offset because it maps every channel onto the
            reference channel *of the same port*.
    """

    array: UniformLinearArray
    slot_s: float = 0.025
    phase_noise_std_rad: float = 0.06
    rssi_noise_std_db: float = 0.8
    phase_lsb_rad: float = TWO_PI / 4096.0
    rssi_lsb_db: float = 0.5
    random_miss_prob: float = 0.02
    enable_hopping_offsets: bool = True
    enable_pi_ambiguity: bool = True
    oscillator_slope_range: tuple[float, float] = (0.2, 0.5)
    cable_phase_std_rad: float = 0.15


class Reader:
    """One reader session.

    Offsets and ambiguity flips are drawn once at construction and then
    frozen — like powering on a real reader — so a calibration
    inventory taken through the same ``Reader`` instance observes the
    same offsets as later activity inventories.

    Args:
        config: reader knobs.
        room: environment the reader operates in.
        channel_params: propagation constants.
        hopper: hop schedule; a default FCC 50-channel plan when None.
        seed: session seed (fixes offsets, noise, and hop order).
        retry_policy: when set, transient transport failures during
            :meth:`inventory` are retried under this policy (seeded
            full-jitter backoff; see :mod:`repro.runtime.retry`).
    """

    def __init__(
        self,
        config: ReaderConfig,
        room: Room,
        channel_params: ChannelParams | None = None,
        hopper: FrequencyHopper | None = None,
        seed: int = 0,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self.config = config
        self.room = room
        self.params = channel_params or ChannelParams()
        self.retry_policy = retry_policy
        self._rng = np.random.default_rng(seed)
        self._seed = seed
        self.hopper = hopper or FrequencyHopper(
            rng=np.random.default_rng(self._rng.integers(2**31))
        )
        self.channel = MultipathChannel(
            room=room,
            params=self.params,
            rng=np.random.default_rng(self._rng.integers(2**31)),
        )
        n_channels = self.hopper.n_channels
        freqs_mhz = self.hopper.frequencies_hz / 1e6
        if config.enable_hopping_offsets:
            slope = self._rng.uniform(*config.oscillator_slope_range)
            jitter = self._rng.normal(0.0, 0.08, n_channels)
            self._oscillator_offsets = (
                slope * (freqs_mhz - freqs_mhz.min()) + jitter
            )
            self._cable_offsets = self._rng.normal(
                0.0, config.cable_phase_std_rad, config.array.n_elements
            )
        else:
            self._oscillator_offsets = np.zeros(n_channels)
            self._cable_offsets = np.zeros(config.array.n_elements)
        self._antenna_positions = config.array.positions()

    @property
    def meta(self) -> ReaderMeta:
        """Session metadata attached to every emitted log."""
        return ReaderMeta(
            n_antennas=self.config.array.n_elements,
            slot_s=self.config.slot_s,
            dwell_s=self.hopper.dwell_s,
            spacing_m=self.config.array.spacing,
            frequencies_hz=self.hopper.frequencies_hz,
            reference_channel=self.hopper.reference_channel,
        )

    @property
    def oscillator_offsets(self) -> np.ndarray:
        """Per-channel oscillator phase offsets (exposed for tests)."""
        return self._oscillator_offsets.copy()

    def inventory(self, scene: Scene, duration_s: float, t0: float = 0.0) -> ReadLog:
        """Run the TDM inventory over ``scene`` for ``duration_s`` seconds.

        Every tag is read once per slot through the currently active
        antenna port (an idealisation of EPC Gen2 rounds that yields
        ~40 reads/s/tag, matching real deployments).

        With a ``retry_policy`` configured, transient transport
        failures (``ConnectionError``/``TimeoutError``/``OSError``
        flavoured, per the policy's ``retry_on``) are retried with
        seeded full-jitter backoff before giving up.

        Args:
            scene: tags and bodies; trajectories must be sampled at the
                slot rate or be stationary.
            duration_s: inventory length.
            t0: timestamp of the first slot.

        Returns:
            The read log, filtered down to reads that physically
            succeed (harvest + SNR + random losses).

        Raises:
            RetryExhaustedError: when a retry policy is configured and
                every attempt failed (from
                :mod:`repro.runtime.retry`).
        """
        if self.retry_policy is None:
            return self._inventory_once(scene, duration_s, t0)
        return call_with_retry(
            self._inventory_once,
            scene,
            duration_s,
            t0,
            policy=self.retry_policy,
            stage="ingest.inventory",
        )

    def _inventory_once(
        self, scene: Scene, duration_s: float, t0: float = 0.0
    ) -> ReadLog:
        """One inventory attempt (the retry-free transport call)."""
        n_slots = int(round(duration_s / self.config.slot_s))
        if n_slots <= 0:
            raise ValueError("duration too short for a single slot")
        scene_slots = scene.n_slots
        if scene_slots not in (1, n_slots):
            raise ValueError(
                f"scene has {scene_slots} slots but inventory needs {n_slots}"
            )

        antenna_idx = np.arange(n_slots) % self.config.array.n_elements
        channels = self.hopper.channels_for_slots(n_slots, self.config.slot_s)
        wavelengths = self.hopper.wavelength(channels)
        ant_traj = self._antenna_positions[antenna_idx]
        timestamps = t0 + (np.arange(n_slots) + 0.5) * self.config.slot_s
        frequencies = self.hopper.frequencies_hz[channels]

        records: list[dict[str, np.ndarray]] = []
        with span("ingest.inventory", slots=n_slots, tags=len(scene.tag_tracks)):
            self._render_tracks(scene, records, antenna_idx, channels, wavelengths,
                                ant_traj, timestamps, frequencies, n_slots)

        def cat(name: str) -> np.ndarray:
            return np.concatenate([r[name] for r in records])

        order = np.argsort(cat("timestamp_s"), kind="stable")
        return ReadLog(
            epcs=scene.epcs,
            tag_index=cat("tag_index")[order],
            antenna=cat("antenna")[order],
            channel=cat("channel")[order],
            frequency_hz=cat("frequency_hz")[order],
            timestamp_s=cat("timestamp_s")[order],
            phase_rad=cat("phase_rad")[order],
            rssi_dbm=cat("rssi_dbm")[order],
            meta=self.meta,
        )

    def _render_tracks(
        self,
        scene: Scene,
        records: list[dict[str, np.ndarray]],
        antenna_idx: np.ndarray,
        channels: np.ndarray,
        wavelengths: np.ndarray,
        ant_traj: np.ndarray,
        timestamps: np.ndarray,
        frequencies: np.ndarray,
        n_slots: int,
    ) -> None:
        """Render every tag track through the channel into ``records``.

        Split out of :meth:`inventory` so the ``ingest.inventory`` span
        covers exactly the per-tag channel rendering.
        """
        for k, track in enumerate(scene.tag_tracks):
            g = self.channel.one_way_gain(
                ant_traj,
                track.positions,
                wavelengths,
                bodies=scene.bodies,
                carrier=track.carrier,
            )
            h = g * g
            phase = np.angle(h)
            if self.config.enable_hopping_offsets:
                phase = (
                    phase
                    + self._oscillator_offsets[channels]
                    + self._cable_offsets[antenna_idx]
                    + track.tag.phase_offsets(self.hopper.frequencies_hz)[channels]
                )
            if self.config.enable_pi_ambiguity:
                flips = self._flip_table(track.tag.epc)
                phase = phase + np.pi * flips[antenna_idx, channels]
            if self.config.phase_noise_std_rad > 0:
                phase = phase + self._rng.normal(
                    0.0, self.config.phase_noise_std_rad, n_slots
                )
            phase = np.mod(phase, TWO_PI)
            if self.config.phase_lsb_rad > 0:
                phase = np.round(phase / self.config.phase_lsb_rad) * self.config.phase_lsb_rad
                phase = np.mod(phase, TWO_PI)

            rssi = gain_to_rssi_dbm(h, self.params)
            if self.config.rssi_noise_std_db > 0:
                rssi = rssi + self._rng.normal(0.0, self.config.rssi_noise_std_db, n_slots)
            if self.config.rssi_lsb_db > 0:
                rssi = np.round(rssi / self.config.rssi_lsb_db) * self.config.rssi_lsb_db

            keep = harvest_mask(g, self.params) & above_noise_floor(rssi, self.params)
            if self.config.random_miss_prob > 0:
                keep &= self._rng.random(n_slots) >= self.config.random_miss_prob

            records.append(
                {
                    "tag_index": np.full(int(keep.sum()), k, dtype=np.int64),
                    "antenna": antenna_idx[keep],
                    "channel": channels[keep],
                    "frequency_hz": frequencies[keep],
                    "timestamp_s": timestamps[keep],
                    "phase_rad": phase[keep],
                    "rssi_dbm": rssi[keep],
                }
            )

    def _flip_table(self, epc: str) -> np.ndarray:
        """Stable pi-ambiguity flips for one tag, ``(N, n_channels)``.

        Deterministic in (session seed, epc): within a session the
        ambiguity does not flip read-to-read, which is what makes
        median-based calibration possible on real hardware.
        """
        from repro.hardware.tag import stable_seed

        rng = np.random.default_rng(stable_seed("pi-flip", self._seed, epc))
        return rng.integers(
            0, 2, size=(self.config.array.n_elements, self.hopper.n_channels)
        )
