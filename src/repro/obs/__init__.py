"""Observability: tracing, metrics, and profiling for the M²AI path.

Three layers, all stdlib-only and off by default:

* :mod:`repro.obs.tracing` — ``span("stage")`` context managers
  producing nested wall/CPU span trees in a thread-safe collector;
* :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket
  histograms, exportable as JSON and Prometheus text;
* :mod:`repro.obs.profile` — ``python -m repro.obs.profile`` runs a
  streaming workload and writes ``BENCH_obs_realtime.json`` with
  per-stage p50/p95/p99 latencies.

The profiling driver (:mod:`repro.obs.profile`) is deliberately *not*
imported here: it is the ``python -m`` entry point and pulls in the
data-generation stack, which instrumented library modules must never
do.  The facade functions below (:func:`counter`, :func:`gauge`,
:func:`histogram`) are what instrumented call sites use — they return
a shared :class:`~repro.obs.metrics.NullMetric` while instrumentation
is disabled, so the disabled path costs a flag check (<2% overhead on
``StreamingIdentifier.identify``; enforced by ``tests/obs``).

Quickstart::

    import repro.obs as obs

    obs.enable()
    decisions = identifier.identify(log)        # instrumented library code
    print(obs.render_span_tree(obs.get_collector().drain()))
    print(obs.get_registry().to_prometheus())
"""

from repro.obs.instrument import nn_layer_spans
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetric,
    counter,
    gauge,
    get_registry,
    histogram,
    reset_registry,
)
from repro.obs.tracing import (
    Span,
    SpanCollector,
    disable,
    enable,
    get_collector,
    is_enabled,
    render_span_tree,
    span,
    walk_spans,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetric",
    "Span",
    "SpanCollector",
    "counter",
    "disable",
    "enable",
    "gauge",
    "get_collector",
    "get_registry",
    "histogram",
    "is_enabled",
    "nn_layer_spans",
    "render_span_tree",
    "reset",
    "reset_registry",
    "span",
    "walk_spans",
]


def reset() -> None:
    """Clear collected spans and registered metrics (fresh run)."""
    get_collector().drain()
    reset_registry()
