"""Static analyzer CLI: ``python -m repro.analysis.lint <paths>``.

Runs every registered single-file rule (:data:`repro.analysis.rules.RULES`)
and every whole-project rule (:data:`repro.analysis.rules.PROJECT_RULES`
— the RPR012+ dataflow packs) over the given files or trees, prints
findings as text or JSON, and exits non-zero when anything *new* is
found — the CI contract.

Suppressions are comment-driven:

* a trailing ``# reprolint: disable=RPR001`` suppresses those codes on
  that line only (an optional `` -- reason`` is surfaced in JSON);
* ``# reprolint: disable-file=RPR012 -- <justification>`` anywhere in
  the file suppresses the code file-wide; the justification is
  **required** and surfaced in JSON output — an unjustified file
  pragma is itself a finding (RPR099);
* a legacy standalone ``# reprolint: disable=RPR001,RPR006`` comment
  line still suppresses file-wide (back-compat, justification
  optional).

Findings ratchet: with a committed ``.reprolint-baseline.json``
(auto-discovered by walking up from the linted paths, or given via
``--baseline``), previously accepted findings are subtracted and only
NEW findings fail the run.  ``--update-baseline`` re-records the
current findings, preserving surviving justifications.

``--jobs N`` parses and checks files in parallel processes; output
ordering stays deterministic and the wall time is reported either way.
"""

from __future__ import annotations

import argparse
import ast
import concurrent.futures
import io
import json
import re
import sys
import time
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

import repro.analysis.packs  # noqa: F401  (imports register the project rules)
from repro.analysis.baseline import (
    BASELINE_FILENAME,
    Baseline,
    BaselineEntry,
    discover_baseline,
    split_findings,
)
from repro.analysis.dataflow.project import Project
from repro.analysis.rules import (
    DEFAULT_DISABLED,
    PROJECT_RULES,
    RULES,
    Finding,
    ProjectContext,
)

__all__ = [
    "LintReport",
    "PROFILES",
    "lint_paths",
    "lint_source",
    "main",
]

PARSE_ERROR_CODE = "RPR000"
"""Pseudo-code attached to files that fail to parse."""

PRAGMA_ERROR_CODE = "RPR099"
"""Pseudo-code attached to malformed suppression pragmas."""

PROFILES: dict[str, frozenset[str]] = {
    "default": frozenset(),
    # Driver/benchmark scripts legitimately print to stdout and carry
    # lighter docstring duties than library code.
    "drivers": frozenset({"RPR007", "RPR009"}),
}
"""Named profiles: extra codes disabled on top of DEFAULT_DISABLED."""

_SUPPRESS_PATTERN = re.compile(
    r"#\s*reprolint:\s*disable=(?P<codes>RPR\d{3}(?:\s*,\s*RPR\d{3})*)"
    r"(?:\s*--\s*(?P<reason>.*))?"
)
_FILE_PRAGMA_PATTERN = re.compile(
    r"#\s*reprolint:\s*disable-file=(?P<codes>RPR\d{3}(?:\s*,\s*RPR\d{3})*)"
    r"(?:\s*--\s*(?P<reason>.*))?"
)


@dataclass(frozen=True)
class _Suppressions:
    """Parsed suppression comments of one file."""

    file_wide: dict[str, str]
    by_line: dict[int, frozenset[str]]
    records: list[dict[str, object]]
    pragma_errors: list[Finding]

    def allows(self, finding: Finding) -> bool:
        if finding.code in self.file_wide:
            return False
        return finding.code not in self.by_line.get(finding.line, frozenset())


def _parse_suppressions(source: str, path: str = "<string>") -> _Suppressions:
    file_wide: dict[str, str] = {}
    by_line: dict[int, frozenset[str]] = {}
    records: list[dict[str, object]] = []
    errors: list[Finding] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return _Suppressions({}, {}, [], [])
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        row, col = tok.start
        match = _FILE_PRAGMA_PATTERN.search(tok.string)
        if match:
            codes = [c.strip() for c in match.group("codes").split(",")]
            reason = (match.group("reason") or "").strip()
            if not reason:
                errors.append(
                    Finding(
                        path=path,
                        line=row,
                        col=col,
                        code=PRAGMA_ERROR_CODE,
                        message=(
                            "disable-file pragma without a justification "
                            f"(codes: {', '.join(codes)})"
                        ),
                        hint=(
                            "write `# reprolint: disable-file=RPR0NN -- <why "
                            "this file is exempt>`; the reason is surfaced "
                            "in lint reports"
                        ),
                    )
                )
                continue
            for code in codes:
                file_wide[code] = reason
                records.append(
                    {
                        "path": path,
                        "line": row,
                        "scope": "file",
                        "code": code,
                        "justification": reason,
                    }
                )
            continue
        match = _SUPPRESS_PATTERN.search(tok.string)
        if not match:
            continue
        codes = [c.strip() for c in match.group("codes").split(",")]
        reason = (match.group("reason") or "").strip()
        standalone = tok.line[:col].strip() == ""
        if standalone:
            # Legacy file-wide form; justification optional.
            for code in codes:
                file_wide.setdefault(code, reason)
        else:
            by_line[row] = by_line.get(row, frozenset()) | frozenset(codes)
        if reason:
            records.append(
                {
                    "path": path,
                    "line": row,
                    "scope": "file" if standalone else "line",
                    "code": ",".join(codes),
                    "justification": reason,
                }
            )
    return _Suppressions(file_wide, by_line, records, errors)


def _effective_codes(
    select: Sequence[str] | None, profile: str
) -> frozenset[str]:
    """Rule codes to run, across both registries.

    An explicit ``select`` wins outright (even over DEFAULT_DISABLED —
    that is how the superseded RPR006 stays reachable); otherwise the
    default set minus the profile's disabled codes.
    """
    known = set(RULES) | set(PROJECT_RULES)
    if select is not None:
        unknown = sorted(set(select) - known)
        if unknown:
            raise KeyError(f"unknown rule code(s): {', '.join(unknown)}")
        return frozenset(select)
    if profile not in PROFILES:
        raise KeyError(f"unknown profile {profile!r} (have: {sorted(PROFILES)})")
    return frozenset(known) - DEFAULT_DISABLED - PROFILES[profile]


def lint_source(
    source: str,
    path: str = "<string>",
    select: Sequence[str] | None = None,
    profile: str = "default",
    run_project_rules: bool = True,
) -> list[Finding]:
    """Lint one source string.

    Args:
        source: Python source text.
        path: path to report in findings.
        select: rule codes to run (default: all registered minus
            :data:`~repro.analysis.rules.DEFAULT_DISABLED`).
        profile: named profile relaxing some codes (``drivers``).
        run_project_rules: also run the whole-project rules with this
            file as a single-module project.  :func:`lint_paths` turns
            this off per file and runs one project-wide pass instead.

    Returns:
        Surviving (non-suppressed) findings, ordered by position.
    """
    codes = _effective_codes(select, profile)
    suppressions = _parse_suppressions(source, path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                code=PARSE_ERROR_CODE,
                message=f"file does not parse: {exc.msg}",
                hint="fix the syntax error; nothing else was checked",
            )
        ]
    from repro.analysis.rules import FileContext

    ctx = FileContext(path=path, source=source, tree=tree)
    findings = list(suppressions.pragma_errors)
    for code in sorted(codes & set(RULES)):
        findings.extend(RULES[code].check(ctx))
    if run_project_rules and codes & set(PROJECT_RULES):
        project = Project.from_sources([(path, source, tree)])
        pctx = ProjectContext(project=project)
        for code in sorted(codes & set(PROJECT_RULES)):
            findings.extend(PROJECT_RULES[code].check_project(pctx))
    findings = [f for f in findings if suppressions.allows(f)]
    findings.sort(key=lambda f: (f.line, f.col, f.code))
    return findings


def _iter_files(paths: Iterable[str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            files.append(p)
    seen: set[Path] = set()
    unique = []
    for f in files:
        if f not in seen:
            seen.add(f)
            unique.append(f)
    return unique


def _lint_file_job(args: tuple[str, tuple[str, ...], str]) -> list[Finding]:
    """Worker: token-rule pass over one file (project rules excluded).

    Module-level so it pickles into :class:`ProcessPoolExecutor`
    workers; re-reads the file in the worker to keep the payload small.
    """
    path, select, profile = args
    source = Path(path).read_text(encoding="utf-8")
    return lint_source(
        source,
        path=path,
        select=list(select) if select else None,
        profile=profile,
        run_project_rules=False,
    )


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run.

    Attributes:
        findings: NEW findings — not matched by the baseline.  These
            are what fail the run.
        n_files: number of files checked.
        baselined: findings matched (and silenced) by the baseline.
        stale: baseline entries no current finding matched
            (informational: possibly fixed, possibly covered by a
            different lint invocation).
        suppressions: justified pragma records, surfaced for audit.
        baseline_path: the baseline file applied, if any.
        wall_time_s: end-to-end wall time of the run.
    """

    findings: list[Finding]
    n_files: int
    baselined: list[Finding] = field(default_factory=list)
    stale: list[BaselineEntry] = field(default_factory=list)
    suppressions: list[dict[str, object]] = field(default_factory=list)
    baseline_path: str | None = None
    wall_time_s: float = 0.0

    @property
    def ok(self) -> bool:
        """True when no new findings survived."""
        return not self.findings

    def as_dict(self) -> dict[str, object]:
        """JSON-ready representation."""
        return {
            "ok": self.ok,
            "n_files": self.n_files,
            "n_findings": len(self.findings),
            "findings": [f.as_dict() for f in self.findings],
            "n_baselined": len(self.baselined),
            "baselined": [f.as_dict() for f in self.baselined],
            "n_stale_baseline_entries": len(self.stale),
            "stale_baseline_entries": [e.as_dict() for e in self.stale],
            "suppressions": self.suppressions,
            "baseline": self.baseline_path,
            "wall_time_s": round(self.wall_time_s, 3),
        }


def _resolve_baseline(
    baseline: str | Path | None, files: Sequence[Path], allow_missing: bool = False
) -> Baseline | None:
    """Load the requested (or auto-discovered) baseline."""
    if baseline is None:
        return None
    if baseline == "auto":
        if not files:
            return None
        found = discover_baseline(files[0])
        return Baseline.load(found) if found is not None else None
    path = Path(baseline)
    if not path.is_file():
        if allow_missing:
            return None
        raise ValueError(f"baseline file not found: {path}")
    return Baseline.load(path)


def lint_paths(
    paths: Iterable[str],
    select: Sequence[str] | None = None,
    *,
    profile: str = "default",
    jobs: int = 1,
    baseline: str | Path | None = "auto",
    update_baseline: bool = False,
) -> LintReport:
    """Lint files and directory trees.

    Args:
        paths: files or directories (searched recursively for ``.py``).
        select: rule codes to run (default: all registered minus the
            default-disabled set).
        profile: named profile (``default`` or ``drivers``).
        jobs: worker processes for the per-file pass; 1 = in-process.
            The whole-project pass always runs in the parent.
        baseline: ``"auto"`` (walk up from the first linted path for
            ``.reprolint-baseline.json``), an explicit path, or None to
            disable the ratchet.
        update_baseline: re-record every current finding into the
            baseline file (justifications of surviving entries are
            preserved) instead of failing on them.

    Returns:
        A :class:`LintReport`; ``findings`` holds only NEW findings.
    """
    t0 = time.monotonic()
    codes = _effective_codes(select, profile)
    files = _iter_files(paths)

    # Per-file token pass (parallelizable).
    job_args = [(str(f), tuple(sorted(codes)), profile) for f in files]
    findings: list[Finding] = []
    if jobs > 1 and len(files) > 1:
        with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
            for result in pool.map(_lint_file_job, job_args):
                findings.extend(result)
    else:
        for args in job_args:
            findings.extend(_lint_file_job(args))

    # Whole-project pass (parent only): parse every file once, run the
    # dataflow packs, filter each finding through its file's pragmas.
    suppression_records: list[dict[str, object]] = []
    if codes & set(PROJECT_RULES):
        units = []
        suppressions: dict[str, _Suppressions] = {}
        for f in files:
            source = f.read_text(encoding="utf-8")
            sup = _parse_suppressions(source, str(f))
            suppressions[str(f)] = sup
            suppression_records.extend(sup.records)
            try:
                tree = ast.parse(source, filename=str(f))
            except SyntaxError:
                continue  # RPR000 already reported by the per-file pass
            units.append((str(f), source, tree))
        if units:
            pctx = ProjectContext(project=Project.from_sources(units))
            for code in sorted(codes & set(PROJECT_RULES)):
                for finding in PROJECT_RULES[code].check_project(pctx):
                    sup = suppressions.get(finding.path)
                    if sup is None or sup.allows(finding):
                        findings.append(finding)
    else:
        for f in files:
            sup = _parse_suppressions(f.read_text(encoding="utf-8"), str(f))
            suppression_records.extend(sup.records)

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))

    # Baseline ratchet.
    base = _resolve_baseline(baseline, files, allow_missing=update_baseline)
    if update_baseline:
        target = (
            base.path
            if base is not None and base.path is not None
            else (Path(baseline) if baseline not in (None, "auto") else None)
        )
        if target is None:
            anchor = files[0] if files else Path.cwd()
            root = anchor.parent if anchor.is_file() else anchor
            target = root / BASELINE_FILENAME
        updated = Baseline.from_findings(findings, target, previous=base)
        updated.save()
        return LintReport(
            findings=[],
            n_files=len(files),
            baselined=findings,
            stale=[],
            suppressions=suppression_records,
            baseline_path=str(target),
            wall_time_s=time.monotonic() - t0,
        )
    if base is not None:
        new, accepted, stale = split_findings(findings, base)
        return LintReport(
            findings=new,
            n_files=len(files),
            baselined=accepted,
            stale=stale,
            suppressions=suppression_records,
            baseline_path=str(base.path),
            wall_time_s=time.monotonic() - t0,
        )
    return LintReport(
        findings=findings,
        n_files=len(files),
        suppressions=suppression_records,
        wall_time_s=time.monotonic() - t0,
    )


def _format_text(report: LintReport, stream: io.TextIOBase) -> None:
    for f in report.findings:
        stream.write(f"{f.path}:{f.line}:{f.col}: {f.code} {f.message}\n")
        stream.write(f"    hint: {f.hint}\n")
    noun = "file" if report.n_files == 1 else "files"
    extras = []
    if report.baselined:
        extras.append(f"{len(report.baselined)} baselined")
    if report.stale:
        n = len(report.stale)
        extras.append(f"{n} stale baseline {'entry' if n == 1 else 'entries'}")
    extra = f" ({', '.join(extras)})" if extras else ""
    verdict = (
        "no new findings" if report.ok else f"{len(report.findings)} NEW finding(s)"
    )
    stream.write(
        f"reprolint: {report.n_files} {noun} checked, {verdict}{extra} "
        f"in {report.wall_time_s:.2f}s\n"
    )


def _write_diff_artifact(report: LintReport, path: Path) -> None:
    """CI artifact: the new-vs-baseline diff, machine-readable."""
    payload = {
        "new_findings": [f.as_dict() for f in report.findings],
        "n_new": len(report.findings),
        "n_baselined": len(report.baselined),
        "stale_baseline_entries": [e.as_dict() for e in report.stale],
        "baseline": report.baseline_path,
        "wall_time_s": round(report.wall_time_s, 3),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="repro-specific static analysis (RPR rules)",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--profile",
        choices=sorted(PROFILES),
        default="default",
        help="rule profile (drivers: scripts/benchmarks, allows prints)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the per-file pass (default: 1)",
    )
    parser.add_argument(
        "--baseline",
        default="auto",
        metavar="PATH",
        help=(
            "findings baseline file (default: walk up from the linted "
            "paths for .reprolint-baseline.json)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline: every finding fails the run",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="accept current findings into the baseline instead of failing",
    )
    parser.add_argument(
        "--baseline-diff-out",
        default=None,
        metavar="PATH",
        help="write the new-vs-baseline diff as JSON (CI artifact)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code in sorted(set(RULES) | set(PROJECT_RULES)):
            rule = RULES.get(code) or PROJECT_RULES[code]
            scope = "project" if code in PROJECT_RULES else "file"
            off = " [off by default]" if code in DEFAULT_DISABLED else ""
            sys.stdout.write(
                f"{code} [{scope}]{off} {rule.name}: {rule.description}\n"
            )
        return 0
    if not args.paths:
        parser.error("no paths given (try: python -m repro.analysis.lint src)")

    select = args.select.split(",") if args.select else None
    baseline: str | None = "auto" if not args.no_baseline else None
    if not args.no_baseline and args.baseline != "auto":
        baseline = args.baseline
    try:
        report = lint_paths(
            args.paths,
            select=select,
            profile=args.profile,
            jobs=max(1, args.jobs),
            baseline=baseline,
            update_baseline=args.update_baseline,
        )
    except (KeyError, ValueError) as exc:
        parser.error(str(exc))
    if args.baseline_diff_out:
        _write_diff_artifact(report, Path(args.baseline_diff_out))
    if args.format == "json":
        sys.stdout.write(json.dumps(report.as_dict(), indent=2) + "\n")
    else:
        _format_text(report, sys.stdout)
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
