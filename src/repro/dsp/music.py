"""MUSIC pseudospectrum estimation (Section III-C.1, Eq. 7-12).

MUltiple SIgnal Classification splits the spatial covariance into
signal and noise subspaces and scans a steering vector over candidate
angles; the pseudospectrum peaks where the steering vector falls inside
the signal subspace (Eq. 12).

One backscatter-specific twist: phases here live in the *doubled*
domain (round-trip propagation x2, pi-ambiguity folding x2), so the
per-element steering phase is ``4 * 2*pi*D*cos(theta)/lambda`` rather
than the textbook ``2*pi*D*cos(theta)/lambda``.  With the paper's
D = lambda/8 spacing this lands exactly on the unambiguous half-
wavelength design point.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.obs.tracing import span

PHASE_MULTIPLIER = 4.0
"""Round-trip (x2) times ambiguity folding (x2)."""

DEFAULT_ANGLES_DEG = np.arange(0.5, 180.5, 1.0)
"""The paper's 180-point angle grid."""

STEERING_CACHE_MAXSIZE = 256
"""Upper bound on cached steering matrices (LRU eviction beyond it).

A session touches one angle grid, one array geometry and one channel
table (~50 carriers), plus the occasional degraded-subarray layout, so
256 entries hold every matrix a real deployment ever asks for while
keeping worst-case memory at a few hundred 180xN complex matrices.
"""

_steering_cache: "OrderedDict[tuple, np.ndarray]" = OrderedDict()

_steering_cache_lock = threading.Lock()
"""Guards every hit/insert/evict mutation of the LRU bookkeeping —
fleet shards hammer the cache from concurrent threads, and an unlocked
``move_to_end`` racing a ``popitem`` corrupts the ordered dict."""


def steering_matrix(
    angles_deg: np.ndarray,
    n_antennas: int,
    spacing_m: float,
    wavelength_m: float,
    phase_multiplier: float = PHASE_MULTIPLIER,
    element_indices: np.ndarray | None = None,
) -> np.ndarray:
    """Array steering vectors (Eq. 8) for a grid of angles.

    Args:
        angles_deg: candidate arrival angles, degrees from the array
            axis.
        n_antennas: number of ULA elements.
        spacing_m: element spacing.
        wavelength_m: carrier wavelength.
        phase_multiplier: phase-per-metre multiplier of the measurement
            domain (4 for calibrated doubled backscatter phases).
        element_indices: positions (in units of ``spacing_m``) of the
            elements actually used — a *sparse* subarray when ports are
            dead.  Defaults to the full ULA ``0..n_antennas-1``; when
            given, its length must be ``n_antennas``.

    Returns:
        ``(N, A)`` complex matrix, one column per angle.
    """
    angles = np.deg2rad(np.asarray(angles_deg, dtype=np.float64))
    per_element = (
        phase_multiplier * 2.0 * np.pi * spacing_m * np.cos(angles) / wavelength_m
    )
    if element_indices is None:
        idx = np.arange(n_antennas)[:, None]
    else:
        idx = np.asarray(element_indices, dtype=np.float64)[:, None]
        if idx.shape[0] != n_antennas:
            raise ValueError("element_indices must match n_antennas")
    # Sign convention: element i sits at +i*D along the array axis, so a
    # source at angle theta (measured from that axis) is *closer* to
    # higher-index elements by i*D*cos(theta); the measured propagation
    # phase -k*d therefore *grows* with i.
    return np.exp(+1j * idx * per_element[None, :])


def _steering_key(
    angles_deg: np.ndarray,
    n_antennas: int,
    spacing_m: float,
    wavelength_m: float,
    phase_multiplier: float,
    element_indices: np.ndarray | None,
) -> tuple:
    grid = np.ascontiguousarray(angles_deg, dtype=np.float64)
    elements = (
        None
        if element_indices is None
        else np.ascontiguousarray(element_indices, dtype=np.float64).tobytes()
    )
    return (
        grid.tobytes(),
        int(n_antennas),
        float(spacing_m),
        float(wavelength_m),
        float(phase_multiplier),
        elements,
    )


def cached_steering_matrix(
    angles_deg: np.ndarray,
    n_antennas: int,
    spacing_m: float,
    wavelength_m: float,
    phase_multiplier: float = PHASE_MULTIPLIER,
    element_indices: np.ndarray | None = None,
) -> np.ndarray:
    """Memoised :func:`steering_matrix` (bounded LRU, read-only result).

    The hot path evaluates the same ``(grid, geometry, carrier)``
    combination for every frame of every window — the matrix only
    depends on the dwell's carrier, not on the data — so the 180xN
    complex-exponential build is paid once per distinct key instead of
    once per frame.  The cache is bounded at
    :data:`STEERING_CACHE_MAXSIZE` entries with least-recently-used
    eviction, so adversarial inputs (randomised grids, sweeping
    carriers) cannot grow it without bound.

    Returns:
        The same ``(N, A)`` complex matrix :func:`steering_matrix`
        produces, marked read-only because it is shared across callers.
    """
    key = _steering_key(
        angles_deg, n_antennas, spacing_m, wavelength_m, phase_multiplier,
        element_indices,
    )
    with _steering_cache_lock:
        hit = _steering_cache.get(key)
        if hit is not None:
            _steering_cache.move_to_end(key)
            return hit
    # Build outside the lock: the matrix is pure in its key, so two
    # threads racing the same miss waste one build, never correctness.
    a = steering_matrix(
        angles_deg, n_antennas, spacing_m, wavelength_m, phase_multiplier,
        element_indices=element_indices,
    )
    a.setflags(write=False)
    with _steering_cache_lock:
        winner = _steering_cache.setdefault(key, a)
        _steering_cache.move_to_end(key)
        while len(_steering_cache) > STEERING_CACHE_MAXSIZE:
            _steering_cache.popitem(last=False)
    return winner


def steering_cache_info() -> dict[str, int]:
    """Current size and capacity of the steering-matrix cache."""
    with _steering_cache_lock:
        return {
            "size": len(_steering_cache),
            "maxsize": STEERING_CACHE_MAXSIZE,
        }


def clear_steering_cache() -> None:
    """Drop every cached steering matrix (tests and benchmarks)."""
    with _steering_cache_lock:
        _steering_cache.clear()


DEFAULT_GAP_RATIO = 0.08
"""Eigenvalue-gap threshold shared by the scalar and batched paths."""


def estimate_n_sources(
    eigenvalues: np.ndarray,
    max_sources: int | None = None,
    gap_ratio: float = DEFAULT_GAP_RATIO,
) -> int:
    """Signal-subspace dimension from the eigenvalue profile.

    Counts eigenvalues above ``gap_ratio`` of the largest — a simple,
    robust rule for small arrays (MDL/AIC need more snapshots than a
    4-element dwell provides).

    Returns:
        An integer in ``[1, N-1]``.
    """
    lam = np.sort(np.abs(np.asarray(eigenvalues)))[::-1]
    n = lam.size
    cap = max_sources if max_sources is not None else n - 1
    cap = max(1, min(cap, n - 1))
    count = int(np.sum(lam > gap_ratio * lam[0]))
    return max(1, min(count, cap))


@dataclass(frozen=True)
class MusicResult:
    """Pseudospectrum plus the subspace split that produced it.

    Attributes:
        angles_deg: the evaluation grid.
        spectrum: pseudospectrum values (Eq. 12), same length.
        n_sources: estimated signal-subspace dimension.
        eigenvalues: covariance eigenvalues, descending.
    """

    angles_deg: np.ndarray
    spectrum: np.ndarray
    n_sources: int
    eigenvalues: np.ndarray

    def peaks(self, max_peaks: int = 5) -> list[tuple[float, float]]:
        """Local maxima as ``(angle_deg, power)``, strongest first.

        A flat plateau (a run of equal values higher than both
        neighbouring values) counts as *one* peak, reported at the
        run's centroid index, and a maximum sitting on a grid endpoint
        is reported too — the naive ``s[i-1] <= s[i] >= s[i+1]`` scan
        would emit every plateau sample separately and could never see
        an endpoint.
        """
        s = np.asarray(self.spectrum, dtype=np.float64)
        n = s.size
        if n == 0:
            return []
        # Run-length encode equal-value runs, then keep runs strictly
        # above both neighbouring runs (a missing neighbour at a grid
        # endpoint never disqualifies).
        boundaries = np.flatnonzero(np.diff(s) != 0.0) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [n]))  # exclusive
        idx: list[int] = []
        for lo, hi in zip(starts, ends):
            value = s[lo]
            if lo > 0 and s[lo - 1] >= value:
                continue
            if hi < n and s[hi] >= value:
                continue
            idx.append(int((lo + hi - 1) // 2))
        idx.sort(key=lambda i: -s[i])
        return [(float(self.angles_deg[i]), float(s[i])) for i in idx[:max_peaks]]


def music_pseudospectrum(
    covariance: np.ndarray,
    spacing_m: float,
    wavelength_m: float,
    angles_deg: np.ndarray | None = None,
    n_sources: int | None = None,
    phase_multiplier: float = PHASE_MULTIPLIER,
    element_indices: np.ndarray | None = None,
) -> MusicResult:
    """Compute the MUSIC pseudospectrum of one covariance matrix.

    Args:
        covariance: ``(N, N)`` Hermitian spatial covariance.
        spacing_m: array element spacing.
        wavelength_m: carrier wavelength of the dwell.
        angles_deg: evaluation grid (paper default: 180 angles).
        n_sources: force the signal-subspace dimension; estimated from
            the eigenvalue gap when None.
        phase_multiplier: see :func:`steering_matrix`.
        element_indices: physical positions of the covariance's
            elements, for a covariance already shrunk to the *live*
            ports of a degraded array (see
            :func:`masked_pseudospectrum`).  None means the full
            contiguous ULA.

    Returns:
        A :class:`MusicResult` whose spectrum has shape: ``(A,)`` for
        ``A`` grid angles (paper default 180).

    Raises:
        ValueError: for a non-square covariance.
    """
    r = np.asarray(covariance, dtype=np.complex128)
    if r.ndim != 2 or r.shape[0] != r.shape[1]:
        raise ValueError("covariance must be square")
    grid = DEFAULT_ANGLES_DEG if angles_deg is None else np.asarray(angles_deg)

    with span("dsp.music", elements=int(r.shape[0])):
        eigvals, eigvecs = np.linalg.eigh(r)
        order = np.argsort(eigvals)[::-1]
        eigvals = eigvals[order].real
        eigvecs = eigvecs[:, order]

        m = n_sources if n_sources is not None else estimate_n_sources(eigvals)
        m = max(1, min(m, r.shape[0] - 1))
        noise = eigvecs[:, m:]

        a = cached_steering_matrix(
            grid, r.shape[0], spacing_m, wavelength_m, phase_multiplier,
            element_indices=element_indices,
        )
        proj = noise.conj().T @ a
        denom = np.maximum(np.sum(np.abs(proj) ** 2, axis=0), 1e-12)
        spectrum = 1.0 / denom
    return MusicResult(
        angles_deg=np.asarray(grid, dtype=np.float64),
        spectrum=spectrum,
        n_sources=m,
        eigenvalues=eigvals,
    )


def music_pseudospectrum_batch(
    covariances: np.ndarray,
    spacing_m: float,
    wavelength_m: float | np.ndarray,
    angles_deg: np.ndarray | None = None,
    n_sources: int | np.ndarray | None = None,
    phase_multiplier: float = PHASE_MULTIPLIER,
    element_indices: np.ndarray | None = None,
) -> list[MusicResult]:
    """MUSIC pseudospectra for a whole stack of covariances at once.

    Amortises the expensive per-frame work of
    :func:`music_pseudospectrum` across a dwell batch: one stacked
    ``np.linalg.eigh`` over the ``(W, N, N)`` covariances and one
    steering-matrix cache lookup per distinct carrier, instead of W
    separate LAPACK calls and W matrix rebuilds.  The per-window
    results are numerically identical to calling the scalar function in
    a loop (the same LAPACK kernel runs per matrix either way).

    Args:
        covariances: ``(W, N, N)`` stack of Hermitian covariances.
        spacing_m: array element spacing (shared by the batch).
        wavelength_m: carrier wavelength — a scalar, or ``(W,)`` per
            window (frequency hopping changes the carrier per dwell).
        angles_deg: evaluation grid shared by the batch.
        n_sources: forced signal-subspace dimension — None (estimate
            per window), a scalar, or ``(W,)`` per window.
        phase_multiplier: see :func:`steering_matrix`.
        element_indices: physical element positions (shared), for
            covariances already shrunk to a degraded subarray.

    Returns:
        A list of W :class:`MusicResult` objects; each spectrum has
        shape: ``(A,)`` for ``A`` grid angles.

    Raises:
        ValueError: for a non-``(W, N, N)`` stack or a wavelength /
            ``n_sources`` array that does not match W.
    """
    r = np.asarray(covariances, dtype=np.complex128)
    if r.ndim != 3 or r.shape[1] != r.shape[2]:
        raise ValueError("covariances must be a (W, N, N) stack")
    n_windows, n = r.shape[0], r.shape[1]
    grid = DEFAULT_ANGLES_DEG if angles_deg is None else np.asarray(angles_deg)
    wavelengths = np.broadcast_to(
        np.asarray(wavelength_m, dtype=np.float64), (n_windows,)
    )
    forced = (
        None
        if n_sources is None
        else np.broadcast_to(np.asarray(n_sources, dtype=np.int64), (n_windows,))
    )

    if n_windows == 0:
        return []
    spectra, n_src, eigvals = music_spectra_batch(
        r,
        spacing_m,
        wavelengths,
        angles_deg=grid,
        n_sources=forced,
        phase_multiplier=phase_multiplier,
        element_indices=element_indices,
    )
    grid_f64 = np.asarray(grid, dtype=np.float64)
    return [
        MusicResult(
            angles_deg=grid_f64,
            spectrum=spectra[w],
            n_sources=int(n_src[w]),
            eigenvalues=eigvals[w],
        )
        for w in range(n_windows)
    ]


def music_spectra_batch(
    covariances: np.ndarray,
    spacing_m: float,
    wavelength_m: float | np.ndarray,
    angles_deg: np.ndarray | None = None,
    n_sources: np.ndarray | None = None,
    phase_multiplier: float = PHASE_MULTIPLIER,
    element_indices: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stacked MUSIC spectra without per-entry result objects.

    The array-level core of :func:`music_pseudospectrum_batch`: one
    stacked eigendecomposition, then one noise-projection matmul per
    *distinct* ``(subspace dim, wavelength)`` pair rather than per
    entry.  Cross-stream serving pools every (tag, dwell) of every
    window of every stream into this call, so the entry count reaches
    the thousands while hop sequences revisit the same ~50 carriers —
    grouping turns thousands of 4x180 matmuls into dozens of stacked
    ones.

    Args:
        covariances: ``(W, N, N)`` Hermitian covariance stack.
        spacing_m: array element spacing (shared by the batch).
        wavelength_m: scalar or ``(W,)`` per-entry carrier wavelength.
        angles_deg: evaluation grid shared by the batch.
        n_sources: ``(W,)`` forced subspace dimensions, or None to
            estimate per entry from the eigenvalue gap.
        phase_multiplier: see :func:`steering_matrix`.
        element_indices: physical element positions (shared).

    Returns:
        ``(spectra, n_sources, eigenvalues)`` with shapes ``(W, A)``,
        ``(W,)`` and ``(W, N)`` — eigenvalues sorted descending,
        matching the scalar path.
    """
    r = np.asarray(covariances, dtype=np.complex128)
    if r.ndim != 3 or r.shape[1] != r.shape[2]:
        raise ValueError("covariances must be a (W, N, N) stack")
    n_windows, n = r.shape[0], r.shape[1]
    grid = DEFAULT_ANGLES_DEG if angles_deg is None else np.asarray(angles_deg)
    wavelengths = np.broadcast_to(
        np.asarray(wavelength_m, dtype=np.float64), (n_windows,)
    )
    if n_windows == 0:
        return np.empty((0, grid.size)), np.empty(0, dtype=int), np.empty((0, n))
    with span("dsp.music.batch", windows=n_windows, elements=n):
        eigvals, eigvecs = np.linalg.eigh(r)
        # eigh returns ascending order; the scalar path sorts descending.
        eigvals = eigvals[:, ::-1].real
        eigvecs = eigvecs[:, :, ::-1]
        if n_sources is None:
            # Vectorised estimate_n_sources: same sort-abs-threshold
            # rule, one pass over the whole stack.
            lam = np.sort(np.abs(eigvals), axis=1)[:, ::-1]
            counts = np.sum(lam > DEFAULT_GAP_RATIO * lam[:, :1], axis=1)
            dims = np.clip(counts, 1, max(1, n - 1))
        else:
            dims = np.clip(np.asarray(n_sources, dtype=np.int64), 1, max(1, n - 1))
        spectra = np.empty((n_windows, grid.size))
        groups: dict[tuple[int, float], list[int]] = {}
        for w in range(n_windows):
            groups.setdefault((int(dims[w]), float(wavelengths[w])), []).append(w)
        for (m, wl), members in groups.items():
            a = cached_steering_matrix(
                grid, n, spacing_m, wl, phase_multiplier,
                element_indices=element_indices,
            )
            noise = eigvecs[members][:, :, m:]  # (G, N, N-m)
            proj = np.matmul(noise.conj().transpose(0, 2, 1), a)  # (G, N-m, A)
            denom = np.maximum(np.sum(np.abs(proj) ** 2, axis=1), 1e-12)
            spectra[members] = 1.0 / denom
    return spectra, np.asarray(dims, dtype=int), eigvals


def masked_pseudospectrum(
    snapshots: np.ndarray,
    valid: np.ndarray,
    liveness: np.ndarray,
    spacing_m: float,
    wavelength_m: float,
    angles_deg: np.ndarray | None = None,
    n_sources: int | None = None,
    phase_multiplier: float = PHASE_MULTIPLIER,
) -> MusicResult:
    """MUSIC over the live subarray of a degraded antenna array.

    Instead of silently ingesting zero columns for dead ports (which
    biases the covariance and plants spurious nulls), the correlation
    matrix is shrunk to the surviving elements and the steering vectors
    are evaluated at their true, possibly non-contiguous positions.
    With every port live this is exactly the full-array pipeline.

    Args:
        snapshots: ``(K, N)`` complex snapshots over the *full* array.
        valid: ``(K, N)`` observation mask.
        liveness: ``(N,)`` port-liveness mask; at least two ports must
            be live for an angle spectrum to exist.
        spacing_m: full-array element spacing.
        wavelength_m: carrier wavelength.
        angles_deg: evaluation grid.
        n_sources: forced signal-subspace dimension.
        phase_multiplier: see :func:`steering_matrix`.

    Returns:
        A :class:`MusicResult` whose spectrum has shape: ``(A,)`` for
        ``A`` grid angles, regardless of how many ports survive.

    Raises:
        ValueError: when fewer than two ports are live.
    """
    from repro.dsp.correlation import spatial_covariance
    from repro.obs.metrics import counter

    live = np.asarray(liveness, dtype=bool)
    if int(live.sum()) < 2:
        raise ValueError("need at least two live ports for AoA")
    counter("dsp.music.masked_total").inc()
    if live.all():
        cov = spatial_covariance(snapshots, valid)
        return music_pseudospectrum(
            cov, spacing_m, wavelength_m, angles_deg, n_sources, phase_multiplier
        )
    indices = np.flatnonzero(live)
    # Forward-backward averaging requires a mirror-symmetric element
    # layout; a ragged surviving subarray (e.g. ports 0, 1, 3) is not,
    # so FB is only kept when the survivors stay uniformly spaced.
    gaps = np.diff(indices)
    uniform = bool(gaps.size == 0 or np.all(gaps == gaps[0]))
    cov = spatial_covariance(
        snapshots[:, indices], valid[:, indices], use_forward_backward=uniform
    )
    return music_pseudospectrum(
        cov,
        spacing_m,
        wavelength_m,
        angles_deg,
        n_sources,
        phase_multiplier,
        element_indices=indices,
    )
