"""Metrics registry: counters/gauges/histograms and both export formats."""

from __future__ import annotations

import json
import math

import pytest

from repro import obs
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Histogram,
    MetricsRegistry,
    NULL_METRIC,
    counter,
    gauge,
    histogram,
)


class TestCounter:
    def test_counts_up(self):
        reg = MetricsRegistry()
        c = reg.counter("hub.reads_merged_total")
        c.inc()
        c.inc(4)
        assert c.value == 5.0

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("x.total").inc(-1)

    def test_same_name_same_labels_is_same_instance(self):
        reg = MetricsRegistry()
        a = reg.counter("streaming.abstain_total", reason="dead_ports")
        b = reg.counter("streaming.abstain_total", reason="dead_ports")
        c = reg.counter("streaming.abstain_total", reason="low_margin")
        assert a is b
        assert a is not c

    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("dsp.music.latency_ms")
        with pytest.raises(ValueError):
            reg.histogram("dsp.music.latency_ms")

    def test_bad_names_rejected(self):
        reg = MetricsRegistry()
        for bad in ("UPPER", "1leading", "spa ce", ""):
            with pytest.raises(ValueError):
                reg.counter(bad)


class TestGauge:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("hub.queue_depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7.0


class TestHistogramBuckets:
    def test_value_on_edge_lands_in_that_bucket(self):
        h = Histogram("t.latency_ms", (), buckets=(1.0, 2.0, 5.0))
        h.observe(2.0)  # le semantics: v <= edge
        assert h.as_dict()["buckets"] == [
            {"le": 1.0, "count": 0},
            {"le": 2.0, "count": 1},
            {"le": 5.0, "count": 0},
            {"le": "+Inf", "count": 0},
        ]

    def test_above_last_edge_lands_in_inf(self):
        h = Histogram("t.latency_ms", (), buckets=(1.0, 2.0))
        h.observe(100.0)
        assert h.as_dict()["buckets"][-1] == {"le": "+Inf", "count": 1}

    def test_bucket_counts_are_cumulative(self):
        h = Histogram("t.latency_ms", (), buckets=(1.0, 2.0, 5.0))
        for v in (0.5, 1.5, 1.7, 4.0, 99.0):
            h.observe(v)
        assert h.bucket_counts() == [
            (1.0, 1),
            (2.0, 3),
            (5.0, 4),
            (math.inf, 5),
        ]
        assert h.count == 5
        assert h.sum == pytest.approx(0.5 + 1.5 + 1.7 + 4.0 + 99.0)

    def test_non_increasing_buckets_rejected(self):
        for bad in ((), (2.0, 1.0), (1.0, 1.0)):
            with pytest.raises(ValueError):
                Histogram("t.latency_ms", (), buckets=bad)

    def test_default_buckets_span_us_to_10s(self):
        assert DEFAULT_LATENCY_BUCKETS_MS[0] == 0.05
        assert DEFAULT_LATENCY_BUCKETS_MS[-1] == 10000.0
        assert list(DEFAULT_LATENCY_BUCKETS_MS) == sorted(
            DEFAULT_LATENCY_BUCKETS_MS
        )


class TestExports:
    def _loaded_registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("ingest.reads_total", source="concat").inc(5)
        reg.gauge("hub.live_views").set(3)
        h = reg.histogram("dsp.music.latency_ms", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(4.0)
        h.observe(40.0)
        return reg

    def test_json_export_golden(self):
        doc = json.loads(self._loaded_registry().to_json())
        by_name = {m["name"]: m for m in doc["metrics"]}
        assert by_name["ingest.reads_total"] == {
            "name": "ingest.reads_total",
            "kind": "counter",
            "labels": {"source": "concat"},
            "value": 5.0,
        }
        assert by_name["hub.live_views"]["kind"] == "gauge"
        assert by_name["hub.live_views"]["value"] == 3.0
        hist = by_name["dsp.music.latency_ms"]
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(44.5)
        assert hist["buckets"] == [
            {"le": 1.0, "count": 1},
            {"le": 10.0, "count": 1},
            {"le": "+Inf", "count": 1},
        ]

    def test_prometheus_export_golden(self):
        text = self._loaded_registry().to_prometheus()
        expected = (
            "# TYPE ingest_reads_total counter\n"
            'ingest_reads_total{source="concat"} 5\n'
            "# TYPE hub_live_views gauge\n"
            "hub_live_views 3\n"
            "# TYPE dsp_music_latency_ms histogram\n"
            'dsp_music_latency_ms_bucket{le="1"} 1\n'
            'dsp_music_latency_ms_bucket{le="10"} 2\n'
            'dsp_music_latency_ms_bucket{le="+Inf"} 3\n'
            "dsp_music_latency_ms_sum 44.5\n"
            "dsp_music_latency_ms_count 3\n"
        )
        assert text == expected

    def test_empty_registry_exports_empty(self):
        reg = MetricsRegistry()
        assert json.loads(reg.to_json()) == {"metrics": []}
        assert reg.to_prometheus() == ""

    def test_labels_sorted_deterministically(self):
        reg = MetricsRegistry()
        reg.counter("x.total", zeta="1", alpha="2").inc()
        line = reg.to_prometheus().splitlines()[-1]
        assert line == 'x_total{alpha="2",zeta="1"} 1'

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter(
            "streaming.abstain_total", reason='tag "A1\\B2"\nlost'
        ).inc()
        line = reg.to_prometheus().splitlines()[-1]
        assert line == (
            'streaming_abstain_total{reason="tag \\"A1\\\\B2\\"\\nlost"} 1'
        )

    def test_post_mapping_name_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("a.b").inc()
        reg.gauge("a_b").set(1)
        with pytest.raises(ValueError, match="collides"):
            reg.to_prometheus()

    def test_same_name_different_labels_is_not_a_collision(self):
        reg = MetricsRegistry()
        reg.counter("a.total", k="1").inc()
        reg.counter("a.total", k="2").inc()
        text = reg.to_prometheus()
        assert text.count("# TYPE a_total counter") == 1
        assert text.count("a_total{") == 2


class TestFacades:
    def test_disabled_facades_return_null_metric(self):
        assert not obs.is_enabled()
        assert counter("a.total") is NULL_METRIC
        assert gauge("a.depth") is NULL_METRIC
        assert histogram("a.latency_ms") is NULL_METRIC
        counter("a.total").inc(10)
        histogram("a.latency_ms").observe(1.0)
        assert obs.get_registry().collect() == []

    def test_enabled_facades_hit_default_registry(self):
        obs.enable()
        counter("streaming.windows_total").inc(2)
        (metric,) = obs.get_registry().collect()
        assert metric.name == "streaming.windows_total"
        assert metric.value == 2.0

    def test_null_metric_accepts_full_interface(self):
        NULL_METRIC.inc()
        NULL_METRIC.dec()
        NULL_METRIC.set(3)
        NULL_METRIC.observe(0.1)
