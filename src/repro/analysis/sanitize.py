"""Runtime numerical sanitizer ("anomaly mode") for the nn/DSP stack.

Silent NaN/Inf propagation is how phase-unwrap and MUSIC
eigen-decomposition bugs hide: a single non-finite phase poisons the
covariance, the pseudospectrum, the feature frames, and finally the
softmax — and the pipeline happily emits a confident wrong label.
:func:`anomaly_detection` arms instrumentation that fails *at the
first stage* the corruption appears, naming it.

While armed, every :class:`repro.nn.module.Module` subclass's
``forward``/``backward`` and the key DSP entry points (phase
calibration, MUSIC, periodogram, spectrum-frame assembly) are wrapped
to detect:

* non-finite values in inputs, outputs, and parameter gradients;
* dtype drift away from :data:`repro.nn.module.DEFAULT_DTYPE`
  (float64) or complex128 — in inputs, outputs, *and parameter
  values*, so a cast-once float32 serve model run outside
  :func:`repro.nn.module.inference_mode` trips at its first layer;
* exploding gradient norms;
* a ``backward`` input-gradient shape that no longer matches the
  shape ``forward`` consumed.

Only classes already imported when the context manager arms are
wrapped; import your model before entering.  The instrumentation is
process-global and restored on exit, so arm it in tests and debugging
sessions, not concurrently from multiple threads.
"""

from __future__ import annotations

import functools
import sys
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.analysis.dataflow.shapes import (
    ContractParseError,
    ShapeContract,
    extract_contracts,
)
from repro.nn.module import (
    DEFAULT_DTYPE,
    INFERENCE_DTYPE,
    Module,
    Parameter,
    in_inference_mode,
)

__all__ = [
    "AnomalyError",
    "DEFAULT_COMPLEX_DTYPE",
    "INFERENCE_COMPLEX_DTYPE",
    "anomaly_detection",
]

DEFAULT_COMPLEX_DTYPE = np.dtype(np.complex128)
"""Complex companion of :data:`repro.nn.module.DEFAULT_DTYPE`."""

INFERENCE_COMPLEX_DTYPE = np.dtype(np.complex64)  # reprolint: disable=RPR012 -- sanctioned complex companion of INFERENCE_DTYPE, named once here
"""Complex companion of :data:`repro.nn.module.INFERENCE_DTYPE`.

Accepted by the dtype checks only while :func:`repro.nn.module.inference_mode`
is active on the calling thread.
"""

_FORWARD_SHAPE_ATTR = "_sanitizer_forward_shape"


class AnomalyError(RuntimeError):
    """A numerical anomaly, pinned to the stage that produced it.

    Attributes:
        stage: dotted name of the wrapped function/method that tripped.
        kind: ``non_finite``, ``dtype_drift``, ``exploding_gradient``
            or ``shape_mismatch``.
        detail: human-readable specifics (counts, dtypes, shapes).
    """

    def __init__(self, stage: str, kind: str, detail: str) -> None:
        self.stage = stage
        self.kind = kind
        self.detail = detail
        super().__init__(f"[{kind}] {stage}: {detail}")


@dataclass(frozen=True)
class _Config:
    max_grad_norm: float
    check_dtypes: bool
    check_shapes: bool
    check_contracts: bool


def _check_array(arr: object, stage: str, where: str, cfg: _Config) -> None:
    """Raise on a non-finite or precision-drifted array; ignore the rest."""
    if not isinstance(arr, np.ndarray):
        return
    kind = arr.dtype.kind
    if kind not in "fc":
        return
    bad = int(np.size(arr) - np.count_nonzero(np.isfinite(arr)))
    if bad:
        raise AnomalyError(
            stage, "non_finite", f"{where} contains {bad} non-finite value(s)"
        )
    if not cfg.check_dtypes:
        return
    # Inside inference_mode() the sanctioned narrow pair is also legal —
    # the runtime twin of the RPR012 scope rule.
    if kind == "f" and arr.dtype != DEFAULT_DTYPE:
        if in_inference_mode() and arr.dtype == INFERENCE_DTYPE:
            return
        raise AnomalyError(
            stage, "dtype_drift", f"{where} is {arr.dtype}, expected {DEFAULT_DTYPE}"
        )
    if kind == "c" and arr.dtype != DEFAULT_COMPLEX_DTYPE:
        if in_inference_mode() and arr.dtype == INFERENCE_COMPLEX_DTYPE:
            return
        raise AnomalyError(
            stage,
            "dtype_drift",
            f"{where} is {arr.dtype}, expected {DEFAULT_COMPLEX_DTYPE}",
        )


def _check_norm(arr: np.ndarray, stage: str, where: str, cfg: _Config) -> None:
    norm = float(np.linalg.norm(np.asarray(arr).ravel()))
    if norm > cfg.max_grad_norm:
        raise AnomalyError(
            stage,
            "exploding_gradient",
            f"{where} norm {norm:.3e} exceeds limit {cfg.max_grad_norm:.3e}",
        )


def _walk_module_classes() -> list[type[Module]]:
    classes: list[type[Module]] = [Module]
    stack: list[type[Module]] = [Module]
    while stack:
        for sub in stack.pop().__subclasses__():
            if sub not in classes:
                classes.append(sub)
                stack.append(sub)
    return classes


def _wrap_forward(cls: type[Module], orig: Callable, cfg: _Config) -> Callable:
    stage = f"{cls.__module__}.{cls.__qualname__}.forward"

    @functools.wraps(orig)
    def forward(self: Module, *args: object, **kwargs: object) -> object:
        x = args[0] if args else kwargs.get("x")
        _check_array(x, stage, "input", cfg)
        if cfg.check_dtypes:
            # Own parameters only: each wrapped layer checks its own, so
            # a narrow serve model trips at the first layer that runs
            # without paying a full recursive walk per call.
            for attr_name, attr in vars(self).items():
                if isinstance(attr, Parameter):
                    _check_array(
                        attr.value, stage, f"value of {attr.name or attr_name}", cfg
                    )
        out = orig(self, *args, **kwargs)
        _check_array(out, stage, "output", cfg)
        if isinstance(x, np.ndarray):
            setattr(self, _FORWARD_SHAPE_ATTR, x.shape)
        return out

    return forward


def _wrap_backward(cls: type[Module], orig: Callable, cfg: _Config) -> Callable:
    stage = f"{cls.__module__}.{cls.__qualname__}.backward"

    @functools.wraps(orig)
    def backward(self: Module, *args: object, **kwargs: object) -> object:
        grad = args[0] if args else kwargs.get("grad")
        _check_array(grad, stage, "upstream gradient", cfg)
        out = orig(self, *args, **kwargs)
        _check_array(out, stage, "input gradient", cfg)
        if isinstance(out, np.ndarray):
            _check_norm(out, stage, "input gradient", cfg)
            fwd_shape = getattr(self, _FORWARD_SHAPE_ATTR, None)
            if cfg.check_shapes and fwd_shape is not None and out.shape != fwd_shape:
                raise AnomalyError(
                    stage,
                    "shape_mismatch",
                    f"input gradient shape {out.shape} does not match the "
                    f"forward input shape {fwd_shape}",
                )
        for p in self.parameters():
            pname = p.name or "parameter"
            _check_array(p.grad, stage, f"grad of {pname}", cfg)
            _check_norm(p.grad, stage, f"grad of {pname}", cfg)
        return out

    return backward


def _return_contracts(orig: Callable) -> tuple[ShapeContract, ...]:
    """Parse the wrapped function's documented return contracts.

    Malformed tags are ignored here — the static checker (RPR015)
    reports those; the runtime check only asserts tags that parse.
    """
    try:
        return extract_contracts(getattr(orig, "__doc__", None)).returns
    except ContractParseError:
        return ()


def _check_contract(
    out: object, stage: str, contracts: tuple[ShapeContract, ...]
) -> None:
    """Assert the output shape against the docstring contracts.

    A function may document several return channels; the output passes
    when *any* contract admits its shape.
    """
    arr = out if isinstance(out, np.ndarray) else getattr(out, "spectrum", None)
    if not isinstance(arr, np.ndarray) or not contracts:
        return
    details = []
    for contract in contracts:
        detail = contract.matches(arr.shape)
        if detail is None:
            return
        details.append(detail)
    raise AnomalyError(stage, "contract_violation", details[0])


def _wrap_function(
    orig: Callable, stage: str, result_check: Callable, cfg: _Config
) -> Callable:
    contracts = _return_contracts(orig) if cfg.check_contracts else ()

    @functools.wraps(orig)
    def wrapper(*args: object, **kwargs: object) -> object:
        for i, arg in enumerate(args):
            _check_array(arg, stage, f"input[{i}]", cfg)
        for key, value in kwargs.items():
            _check_array(value, stage, f"input {key!r}", cfg)
        out = orig(*args, **kwargs)
        result_check(out, stage, cfg)
        if contracts:
            _check_contract(out, stage, contracts)
        return out

    return wrapper


def _check_ndarray_result(out: object, stage: str, cfg: _Config) -> None:
    _check_array(out, stage, "output", cfg)


def _check_music_result(out: object, stage: str, cfg: _Config) -> None:
    _check_array(getattr(out, "spectrum", None), stage, "pseudospectrum", cfg)
    _check_array(getattr(out, "eigenvalues", None), stage, "eigenvalues", cfg)


def _check_frames_result(out: object, stage: str, cfg: _Config) -> None:
    for name, channel in getattr(out, "channels", {}).items():
        _check_array(channel, stage, f"channel {name!r}", cfg)


def _patch_everywhere(
    orig: Callable, wrapped: Callable, undo: list[Callable[[], None]]
) -> None:
    """Replace every reference to ``orig`` across loaded repro modules.

    Functions like ``music_pseudospectrum`` are imported by name into
    sibling modules (``repro.dsp.frames``, the ``repro.dsp`` package
    namespace); patching only the defining module would leave those
    call sites unwrapped.
    """
    for module in list(sys.modules.values()):
        if module is None or not getattr(module, "__name__", "").startswith("repro"):
            continue
        for attr, value in list(vars(module).items()):
            if value is orig:
                setattr(module, attr, wrapped)
                undo.append(
                    lambda m=module, a=attr, o=orig: setattr(m, a, o)
                )


def _arm_modules(cfg: _Config, undo: list[Callable[[], None]]) -> None:
    for cls in _walk_module_classes():
        if "forward" in cls.__dict__:
            orig = cls.__dict__["forward"]
            setattr(cls, "forward", _wrap_forward(cls, orig, cfg))
            undo.append(lambda c=cls, o=orig: setattr(c, "forward", o))
        if "backward" in cls.__dict__:
            orig = cls.__dict__["backward"]
            setattr(cls, "backward", _wrap_backward(cls, orig, cfg))
            undo.append(lambda c=cls, o=orig: setattr(c, "backward", o))


def _arm_dsp(cfg: _Config, undo: list[Callable[[], None]]) -> None:
    from repro.dsp import calibration, frames, music, periodogram

    targets: list[tuple[Callable, str, Callable]] = [
        (music.music_pseudospectrum, "repro.dsp.music.music_pseudospectrum", _check_music_result),
        (
            music.masked_pseudospectrum,
            "repro.dsp.music.masked_pseudospectrum",
            _check_music_result,
        ),
        (
            periodogram.periodogram_psd,
            "repro.dsp.periodogram.periodogram_psd",
            _check_ndarray_result,
        ),
        (
            periodogram.spatial_periodogram,
            "repro.dsp.periodogram.spatial_periodogram",
            _check_ndarray_result,
        ),
        (
            frames.build_spectrum_frames,
            "repro.dsp.frames.build_spectrum_frames",
            _check_frames_result,
        ),
        (calibration.uncalibrated, "repro.dsp.calibration.uncalibrated", _check_ndarray_result),
    ]
    for orig, stage, checker in targets:
        _patch_everywhere(orig, _wrap_function(orig, stage, checker, cfg), undo)

    orig_calibrate = calibration.PhaseCalibrator.calibrate
    wrapped = _wrap_function(
        orig_calibrate,
        "repro.dsp.calibration.PhaseCalibrator.calibrate",
        _check_ndarray_result,
        cfg,
    )
    setattr(calibration.PhaseCalibrator, "calibrate", wrapped)
    undo.append(
        lambda: setattr(calibration.PhaseCalibrator, "calibrate", orig_calibrate)
    )


_armed = False


@contextmanager
def anomaly_detection(
    max_grad_norm: float = 1e6,
    check_dtypes: bool = True,
    check_shapes: bool = True,
    check_contracts: bool = False,
    wrap_nn: bool = True,
    wrap_dsp: bool = True,
) -> Iterator[None]:
    """Arm the runtime sanitizer for the enclosed block.

    Args:
        max_grad_norm: gradient-norm ceiling before an
            ``exploding_gradient`` anomaly is raised.
        check_dtypes: flag drift from float64/complex128.  Inside an
            active :func:`repro.nn.module.inference_mode` scope the
            sanctioned narrow pair (float32/complex64) is also
            accepted.
        check_shapes: flag forward/backward shape disagreements.
        check_contracts: additionally assert wrapped DSP outputs
            against the ``shape: (...)`` contracts parsed from their
            own docstrings (the runtime twin of lint rule RPR015).
            Opt-in because it re-parses docstrings at arm time.
        wrap_nn: instrument ``Module.forward``/``backward`` of every
            imported subclass.
        wrap_dsp: instrument calibration, MUSIC, periodogram, and
            spectrum-frame entry points.

    Raises:
        AnomalyError: (from the wrapped code) at the first stage a
            numerical anomaly appears.  Contract violations use
            ``kind="contract_violation"``.

    Nested activations are no-ops: the outermost context owns the
    instrumentation.
    """
    global _armed
    if _armed:
        yield
        return
    cfg = _Config(
        max_grad_norm=max_grad_norm,
        check_dtypes=check_dtypes,
        check_shapes=check_shapes,
        check_contracts=check_contracts,
    )
    undo: list[Callable[[], None]] = []
    _armed = True
    try:
        if wrap_nn:
            _arm_modules(cfg, undo)
        if wrap_dsp:
            _arm_dsp(cfg, undo)
        yield
    finally:
        for restore in reversed(undo):
            restore()
        _armed = False
