"""The 12 activity scenarios and scene building."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import Vec2, make_hall, make_laboratory
from repro.hardware import UniformLinearArray
from repro.motion import SCENARIO_LABELS, SCENARIOS, build_instance, place_people
from repro.motion.primitives import PRIMITIVES

ROOM = make_laboratory()
ARRAY = UniformLinearArray(center=Vec2(ROOM.bounds.width / 2.0, 0.3))


class TestRegistry:
    def test_twelve_scenarios(self):
        assert len(SCENARIOS) == 12
        assert SCENARIO_LABELS == tuple(f"A{i:02d}" for i in range(1, 13))

    def test_primitives_exist(self):
        for scenario in SCENARIOS.values():
            for name in scenario.primitives:
                assert name in PRIMITIVES

    def test_two_person_default(self):
        for scenario in SCENARIOS.values():
            assert len(scenario.primitives) == 2


class TestPlacement:
    def test_inside_room_and_separated(self):
        rng = np.random.default_rng(0)
        anchors = place_people(3, ARRAY, ROOM, rng)
        assert len(anchors) == 3
        for a in anchors:
            assert ROOM.contains(a, margin=0.4)
        for i in range(3):
            for j in range(i + 1, 3):
                assert anchors[i].distance_to(anchors[j]) > 0.5

    def test_fixed_distance(self):
        rng = np.random.default_rng(0)
        anchors = place_people(2, ARRAY, ROOM, rng, distance_m=3.0)
        for a in anchors:
            assert a.distance_to(ARRAY.center) == pytest.approx(3.0, abs=0.6)

    def test_close_distance_possible(self):
        rng = np.random.default_rng(0)
        anchors = place_people(2, ARRAY, ROOM, rng, distance_m=1.0)
        assert len(anchors) == 2

    def test_nominal_spots_repeatable(self):
        # Executions jitter around per-person floor spots.
        first = [place_people(2, ARRAY, ROOM, np.random.default_rng(s))[0] for s in range(8)]
        xs = np.array([a.x for a in first])
        ys = np.array([a.y for a in first])
        assert xs.std() < 0.6 and ys.std() < 0.6

    def test_hall_placement(self):
        hall = make_hall()
        array = UniformLinearArray(center=Vec2(hall.bounds.width / 2.0, 0.3))
        anchors = place_people(2, array, hall, np.random.default_rng(1))
        for a in anchors:
            assert hall.contains(a, margin=0.4)


class TestBuildInstance:
    def test_default_two_people_three_tags(self):
        instance = build_instance(
            SCENARIOS["A01"], ARRAY, ROOM, duration_s=2.0, slot_s=0.025,
            rng=np.random.default_rng(0),
        )
        assert len(instance.scene.bodies) == 2
        assert len(instance.scene.tag_tracks) == 6
        assert instance.scene.n_slots == 80
        assert instance.label == "A01"

    @pytest.mark.parametrize("n_persons", [1, 2, 3])
    def test_person_count(self, n_persons):
        instance = build_instance(
            SCENARIOS["A05"], ARRAY, ROOM, 2.0, 0.025,
            np.random.default_rng(0), n_persons=n_persons,
        )
        assert len(instance.scene.bodies) == n_persons
        assert len(instance.scene.tag_tracks) == 3 * n_persons

    @pytest.mark.parametrize("tags", [1, 2, 3])
    def test_tags_per_person(self, tags):
        instance = build_instance(
            SCENARIOS["A05"], ARRAY, ROOM, 2.0, 0.025,
            np.random.default_rng(0), tags_per_person=tags,
        )
        assert len(instance.scene.tag_tracks) == 2 * tags

    def test_tags_carried_by_their_person(self):
        instance = build_instance(
            SCENARIOS["A01"], ARRAY, ROOM, 2.0, 0.025, np.random.default_rng(0)
        )
        carriers = [t.carrier for t in instance.scene.tag_tracks]
        assert carriers == [0, 0, 0, 1, 1, 1]

    def test_epcs_unique(self):
        instance = build_instance(
            SCENARIOS["A01"], ARRAY, ROOM, 2.0, 0.025, np.random.default_rng(0)
        )
        epcs = instance.scene.epcs
        assert len(set(epcs)) == len(epcs)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            build_instance(
                SCENARIOS["A01"], ARRAY, ROOM, 2.0, 0.025,
                np.random.default_rng(0), tags_per_person=0,
            )
        with pytest.raises(ValueError):
            build_instance(
                SCENARIOS["A01"], ARRAY, ROOM, 2.0, 0.025,
                np.random.default_rng(0), n_persons=0,
            )

    def test_executions_differ(self):
        a = build_instance(SCENARIOS["A01"], ARRAY, ROOM, 2.0, 0.025, np.random.default_rng(1))
        b = build_instance(SCENARIOS["A01"], ARRAY, ROOM, 2.0, 0.025, np.random.default_rng(2))
        assert not np.allclose(a.scene.tag_tracks[0].positions, b.scene.tag_tracks[0].positions)
