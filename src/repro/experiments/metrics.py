"""Aggregation over sweep records: seed-averaged rows and tables.

The drivers report one measured value per row; a sweep runs the same
cell across seeds.  :func:`aggregate_records` collapses the seed axis
into mean/std/min/max per ``(exp_id, mode, row name)`` so benches and
EXPERIMENTS.md summaries report trend statistics instead of a single
seed's roll of the dice.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.experiments.spec import ResultRecord

__all__ = [
    "AggregateRow",
    "aggregate_records",
    "render_aggregate_table",
]


@dataclass(frozen=True)
class AggregateRow:
    """Seed-collapsed statistics for one reported quantity.

    Attributes:
        exp_id: experiment the row came from.
        mode: ``"quick"`` or ``"full"``.
        name: the row's label in the driver output.
        unit: the row's display unit.
        mean: mean of the measured value across seeds.
        std: population standard deviation across seeds.
        low: minimum across seeds.
        high: maximum across seeds.
        seeds: the seeds aggregated, sorted.
    """

    exp_id: str
    mode: str
    name: str
    unit: str
    mean: float
    std: float
    low: float
    high: float
    seeds: tuple[int, ...]

    @property
    def n(self) -> int:
        """Number of seeds aggregated."""
        return len(self.seeds)


def aggregate_records(records: list[ResultRecord]) -> list[AggregateRow]:
    """Collapse the seed axis of a record set.

    Records are grouped by ``(exp_id, mode, gen/train overrides, row
    name, unit)`` — two cells that differ only in seed aggregate
    together; anything else stays separate.  Output order follows
    first appearance in ``records``.
    """
    groups: dict[tuple, list[tuple[int, float]]] = {}
    order: list[tuple] = []
    for record in records:
        spec = record.spec
        for row in record.rows:
            group = (
                spec.exp_id,
                spec.mode,
                spec.gen_overrides,
                spec.train_overrides,
                row["name"],
                row.get("unit", "acc"),
            )
            if group not in groups:
                groups[group] = []
                order.append(group)
            groups[group].append((spec.seed, float(row["measured"])))
    out = []
    for group in order:
        exp_id, mode, _gen, _train, name, unit = group
        pairs = sorted(groups[group])
        values = [v for _seed, v in pairs]
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        out.append(
            AggregateRow(
                exp_id=exp_id,
                mode=mode,
                name=name,
                unit=unit,
                mean=mean,
                std=math.sqrt(var),
                low=min(values),
                high=max(values),
                seeds=tuple(seed for seed, _v in pairs),
            )
        )
    return out


def render_aggregate_table(rows: list[AggregateRow]) -> str:
    """Plain-text seed-statistics table for a set of aggregate rows."""
    if not rows:
        return "(no data)"
    name_w = max([len(r.name) for r in rows] + [8])
    header = (
        f"{'setting':<{name_w}}  {'mean':>8}  {'std':>7}  "
        f"{'min':>7}  {'max':>7}  seeds"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.name:<{name_w}}  {row.mean:8.3f}  {row.std:7.3f}  "
            f"{row.low:7.3f}  {row.high:7.3f}  n={row.n} {row.unit}"
        )
    return "\n".join(lines)
