"""Tunable constants of the propagation and link-budget model."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ChannelParams:
    """Physical parameters of the backscatter channel simulation.

    Attributes:
        reference_amplitude: one-way field amplitude at 1 m from the
            transmit antenna (arbitrary linear units; the link budget
            maps it to dBm via :data:`rssi_ref_dbm`).
        body_reflectivity: amplitude reflection coefficient of a human
            torso acting as a scatterer.
        body_blockage: multiplicative amplitude loss applied to a path
            leg per human body it crosses (~-11 dB, consistent with
            measured UHF through-body attenuation).
        furniture_blockage: amplitude loss per furniture disc crossed.
        diffuse_level: standard deviation of the zero-mean complex
            Gaussian diffuse clutter added to every one-way channel
            gain, relative to ``reference_amplitude``; models the many
            unresolved weak paths of an indoor room.
        rssi_ref_dbm: RSSI reported when the round-trip gain equals
            ``reference_amplitude ** 2`` (sets the dBm scale).
        harvest_amplitude_threshold: minimum one-way forward amplitude
            for the tag to harvest enough power to reply; below it the
            read is dropped (the paper notes tags stop responding
            beyond ~6 m).
        noise_floor_dbm: reads whose RSSI falls below this are dropped.
    """

    reference_amplitude: float = 1.0
    body_reflectivity: float = 0.30
    body_blockage: float = 0.28
    furniture_blockage: float = 0.50
    diffuse_level: float = 0.012
    rssi_ref_dbm: float = -48.0
    harvest_amplitude_threshold: float = 0.02
    noise_floor_dbm: float = -92.0

    def __post_init__(self) -> None:
        for name in ("body_reflectivity", "body_blockage", "furniture_blockage"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.reference_amplitude <= 0.0:
            raise ValueError("reference_amplitude must be positive")
        if self.diffuse_level < 0.0:
            raise ValueError("diffuse_level must be non-negative")


SPEED_OF_LIGHT = 299_792_458.0
"""Speed of light in vacuum, m/s."""
