"""Bearing estimation and hub triangulation."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.dsp import PhaseCalibrator
from repro.dsp.localization import (
    BearingEstimate,
    bearing_ray,
    estimate_bearing,
    localize_tag,
    triangulate,
)
from repro.geometry import Vec2, make_open_space
from repro.hardware import Reader, ReaderConfig, UniformLinearArray, make_tag, stationary_scene
from repro.hardware.hub import AntennaHub


class TestBearingRay:
    def test_broadside(self):
        array = UniformLinearArray(center=Vec2(0, 0))
        origin, direction = bearing_ray(array, 90.0)
        np.testing.assert_allclose(origin, [0, 0])
        np.testing.assert_allclose(direction, [0, 1], atol=1e-12)

    def test_along_axis(self):
        array = UniformLinearArray(center=Vec2(0, 0))
        _origin, direction = bearing_ray(array, 0.0)
        np.testing.assert_allclose(direction, [1, 0], atol=1e-12)


class TestTriangulate:
    def test_exact_crossing(self):
        a1 = UniformLinearArray(center=Vec2(0.0, 0.0))
        a2 = UniformLinearArray(center=Vec2(10.0, 0.0))
        target = np.array([4.0, 5.0])
        b1 = math.degrees(math.atan2(5.0, 4.0))
        b2 = math.degrees(math.atan2(5.0, -6.0))
        position = triangulate([a1, a2], [b1, b2])
        np.testing.assert_allclose(position, target, atol=1e-9)

    def test_three_rays_least_squares(self):
        arrays = [
            UniformLinearArray(center=Vec2(0.0, 0.0)),
            UniformLinearArray(center=Vec2(10.0, 0.0)),
            UniformLinearArray(center=Vec2(5.0, 10.0)),
        ]
        target = np.array([5.0, 4.0])
        bearings = []
        for array in arrays:
            rel = target - np.asarray(array.center.as_tuple())
            bearings.append(math.degrees(math.atan2(rel[1], rel[0])) % 360)
        # Angles are measured from the +x array axis, within [0, 180].
        bearings = [b if b <= 180 else 360 - b for b in bearings]
        position = triangulate(arrays, bearings)
        np.testing.assert_allclose(position, target, atol=1e-6)

    def test_parallel_rays_rejected(self):
        a1 = UniformLinearArray(center=Vec2(0.0, 0.0))
        a2 = UniformLinearArray(center=Vec2(10.0, 0.0))
        with pytest.raises(ValueError):
            triangulate([a1, a2], [90.0, 90.0])

    def test_needs_two(self):
        with pytest.raises(ValueError):
            triangulate([UniformLinearArray(center=Vec2(0, 0))], [45.0])


class TestEndToEndLocalization:
    def test_open_space_position_recovered(self):
        """Two arrays + calibrated phases must localise a tag to ~dm."""
        room = make_open_space()
        hub = AntennaHub(
            room=room,
            arrays=(
                UniformLinearArray(center=Vec2(0.0, 0.0)),
                UniformLinearArray(center=Vec2(6.0, 0.0)),
            ),
            seed=5,
        )
        rng = np.random.default_rng(1)
        true_pos = (2.5, 4.0)
        scene = stationary_scene([(make_tag("loc", rng), true_pos)])
        cal_logs = hub.calibration_inventory(scene, 20.0)
        logs = hub.inventory(scene, 4.0)
        psis = [
            PhaseCalibrator.fit(cal).calibrate(log)
            for cal, log in zip(cal_logs, logs)
        ]
        position, bearings = localize_tag(logs, psis, list(hub.arrays), tag=0)
        assert all(isinstance(b, BearingEstimate) for b in bearings)
        error = np.linalg.norm(position - np.asarray(true_pos))
        assert error < 0.8, f"position error {error:.2f} m"

    def test_bearing_close_to_truth(self, open_space_reader):
        rng = np.random.default_rng(2)
        angle = 65.0
        distance = 4.0
        pos = (
            distance * math.cos(math.radians(angle)),
            distance * math.sin(math.radians(angle)),
        )
        scene = stationary_scene([(make_tag("bear", rng), pos)])
        calibrator = PhaseCalibrator.fit(open_space_reader.inventory(scene, 20.0))
        log = open_space_reader.inventory(scene, 2.0)
        psi = calibrator.calibrate(log)
        bearing = estimate_bearing(log, psi, 0)
        assert bearing.angle_deg == pytest.approx(angle, abs=8.0)
        assert bearing.n_frames >= 3
