"""Human motion: primitives, body kinematics, activity scenarios."""

from repro.motion.body import ATTACHMENTS, PersonMotion, PersonProfile, perform
from repro.motion.primitives import PRIMITIVES, Primitive, Signals, get_primitive
from repro.motion.scenarios import (
    SCENARIO_LABELS,
    SCENARIOS,
    ActivityScenario,
    ScenarioInstance,
    build_instance,
    place_people,
)

__all__ = [
    "ATTACHMENTS",
    "PRIMITIVES",
    "SCENARIOS",
    "SCENARIO_LABELS",
    "ActivityScenario",
    "PersonMotion",
    "PersonProfile",
    "Primitive",
    "ScenarioInstance",
    "Signals",
    "build_instance",
    "get_primitive",
    "perform",
    "place_people",
]
