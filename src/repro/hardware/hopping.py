"""FCC frequency hopping of a commercial UHF reader.

FCC part 15 requires readers in the 902-928 MHz band to hop across at
least 50 channels.  The Impinj Speedway R420 used by the paper hops
between 902.75 and 927.25 MHz in 500 kHz steps with a 400 ms dwell per
channel (Section V); the paper's common reference channel is
910.25 MHz.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.params import SPEED_OF_LIGHT

DEFAULT_BASE_MHZ = 902.75
DEFAULT_STEP_MHZ = 0.5
DEFAULT_N_CHANNELS = 50
DEFAULT_DWELL_S = 0.4
REFERENCE_FREQ_MHZ = 910.25


@dataclass
class FrequencyHopper:
    """Pseudo-random channel hop schedule.

    Each *dwell* (400 ms by default) the reader jumps to the next
    channel of a random permutation; a fresh permutation is drawn every
    cycle through the 50 channels, as real readers do.

    Attributes:
        dwell_s: seconds spent on each channel.
        base_mhz: lowest channel centre frequency.
        step_mhz: channel spacing.
        n_channels: number of channels.
        rng: generator that fixes the hop order.
    """

    dwell_s: float = DEFAULT_DWELL_S
    base_mhz: float = DEFAULT_BASE_MHZ
    step_mhz: float = DEFAULT_STEP_MHZ
    n_channels: int = DEFAULT_N_CHANNELS
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))

    def __post_init__(self) -> None:
        if self.n_channels < 1:
            raise ValueError("need at least one channel")
        if self.dwell_s <= 0:
            raise ValueError("dwell_s must be positive")

    @property
    def frequencies_hz(self) -> np.ndarray:
        """Centre frequency of every channel, Hz, ``(n_channels,)``."""
        idx = np.arange(self.n_channels)
        return (self.base_mhz + idx * self.step_mhz) * 1e6

    @property
    def reference_channel(self) -> int:
        """Index of the channel closest to 910.25 MHz (paper default)."""
        return int(np.argmin(np.abs(self.frequencies_hz - REFERENCE_FREQ_MHZ * 1e6)))

    def wavelength(self, channel: int | np.ndarray) -> np.ndarray:
        """Carrier wavelength(s) in metres for channel index(es)."""
        freq = self.frequencies_hz[np.asarray(channel)]
        return SPEED_OF_LIGHT / freq

    def hop_sequence(self, n_dwells: int) -> np.ndarray:
        """Channel index for each of ``n_dwells`` consecutive dwells.

        Concatenates fresh random permutations until the requested
        length is reached, so every channel is visited once per cycle.
        """
        if n_dwells < 0:
            raise ValueError("n_dwells must be non-negative")
        chunks: list[np.ndarray] = []
        total = 0
        while total < n_dwells:
            perm = self.rng.permutation(self.n_channels)
            chunks.append(perm)
            total += perm.size
        return np.concatenate(chunks)[:n_dwells] if chunks else np.zeros(0, dtype=int)

    def channels_for_slots(self, n_slots: int, slot_s: float) -> np.ndarray:
        """Channel index per TDM slot, ``(n_slots,)``.

        Args:
            n_slots: number of inventory slots.
            slot_s: slot duration in seconds (25 ms on the R420).
        """
        slots_per_dwell = max(1, int(round(self.dwell_s / slot_s)))
        n_dwells = (n_slots + slots_per_dwell - 1) // slots_per_dwell
        seq = self.hop_sequence(n_dwells)
        return np.repeat(seq, slots_per_dwell)[:n_slots]
