"""Doppler estimation from intra-dwell phase rotation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsp.doppler import DopplerFeaturizer, doppler_from_phases, dwell_doppler
from repro.dsp.music import PHASE_MULTIPLIER
from repro.dsp import uncalibrated
from repro.dsp.snapshots import build_snapshots


class TestDopplerFromPhases:
    def test_stationary_zero(self):
        times = np.arange(4) * 0.1
        psi = np.full(4, 1.2)
        assert doppler_from_phases(psi, times) == pytest.approx(0.0)

    def test_known_rotation_rate(self):
        # One-way Doppler f means doubled-phase rotation of
        # pi * multiplier * f rad/s.
        f_true = 1.0  # inside the +/-1.25 Hz alias limit
        times = np.arange(4) * 0.1
        psi = np.mod(np.pi * PHASE_MULTIPLIER * f_true * times, 2 * np.pi)
        assert doppler_from_phases(psi, times) == pytest.approx(f_true, rel=1e-6)

    def test_negative_doppler(self):
        f_true = -0.8
        times = np.arange(4) * 0.1
        psi = np.mod(np.pi * PHASE_MULTIPLIER * f_true * times, 2 * np.pi)
        assert doppler_from_phases(psi, times) == pytest.approx(f_true, rel=1e-6)

    def test_wrap_handling(self):
        # Rotation fast enough to wrap within the window but slow
        # enough per step.
        f_true = 0.9
        times = np.arange(8) * 0.1
        psi = np.mod(np.pi * PHASE_MULTIPLIER * f_true * times + 5.0, 2 * np.pi)
        assert doppler_from_phases(psi, times) == pytest.approx(f_true, rel=1e-6)

    def test_single_sample_zero(self):
        assert doppler_from_phases(np.array([1.0]), np.array([0.0])) == 0.0

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            doppler_from_phases(np.zeros(3), np.zeros(4))


class TestDwellDoppler:
    def test_moving_vs_still(self, lab_reader):
        """A walking tag shows larger Doppler magnitudes than a
        stationary one."""
        import numpy as np

        from repro.hardware.scene import Scene, TagTrack
        from repro.hardware.tag import make_tag

        rng = np.random.default_rng(0)
        duration, slot = 3.2, lab_reader.config.slot_s
        n_slots = int(round(duration / slot))
        t = (np.arange(n_slots) + 0.5) * slot
        still = np.broadcast_to(np.array([6.0, 4.0]), (n_slots, 2)).copy()
        moving = np.stack([6.0 + 0.5 * np.sin(2 * np.pi * 1.0 * t), np.full(n_slots, 4.0)], axis=1)
        scene = Scene(
            tag_tracks=(
                TagTrack(tag=make_tag("still", rng), positions=still),
                TagTrack(tag=make_tag("move", rng), positions=moving),
            )
        )
        log = lab_reader.inventory(scene, duration)
        psi = uncalibrated(log)
        round_s = log.meta.slot_s * log.meta.n_antennas
        d_still = dwell_doppler(build_snapshots(log, psi, 0), round_s)
        d_move = dwell_doppler(build_snapshots(log, psi, 1), round_s)
        assert np.abs(d_move).mean() > np.abs(d_still).mean()


class TestDopplerFeaturizer:
    def test_shapes(self, small_log):
        psi = uncalibrated(small_log)
        frames = DopplerFeaturizer().transform(small_log, psi, label="A01")
        arr = frames.channels["doppler"]
        assert arr.shape[1] == small_log.n_tags
        assert arr.shape[2] == small_log.meta.n_antennas
        assert np.isfinite(arr).all()
        assert frames.label == "A01"
