"""Gaussian HMM and the HMM activity classifier."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import GaussianHMM, HMMActivityClassifier


def two_state_sequences(n=40, steps=20, seed=0):
    """Sequences that alternate between two well-separated regimes."""
    rng = np.random.default_rng(seed)
    seqs = []
    for _ in range(n):
        state = 0
        values = []
        for _t in range(steps):
            if rng.random() < 0.2:
                state = 1 - state
            centre = -3.0 if state == 0 else 3.0
            values.append(centre + rng.normal(0, 0.5, 2))
        seqs.append(np.array(values))
    return seqs


class TestGaussianHMM:
    def test_fits_and_scores(self):
        hmm = GaussianHMM(n_states=2, n_iter=10, rng=np.random.default_rng(0))
        seqs = two_state_sequences()
        hmm.fit(seqs)
        score = hmm.score(seqs[0])
        assert np.isfinite(score)

    def test_learns_emission_centres(self):
        hmm = GaussianHMM(n_states=2, n_iter=15, rng=np.random.default_rng(0))
        hmm.fit(two_state_sequences())
        centres = sorted(hmm.means[:, 0].tolist())
        assert centres[0] == pytest.approx(-3.0, abs=0.6)
        assert centres[1] == pytest.approx(3.0, abs=0.6)

    def test_likelihood_prefers_matching_data(self):
        hmm = GaussianHMM(n_states=2, n_iter=10, rng=np.random.default_rng(0))
        seqs = two_state_sequences()
        hmm.fit(seqs)
        matching = hmm.score(seqs[1])
        alien = hmm.score(np.full((20, 2), 40.0))
        assert matching > alien

    def test_viterbi_tracks_regimes(self):
        hmm = GaussianHMM(n_states=2, n_iter=15, rng=np.random.default_rng(0))
        seqs = two_state_sequences()
        hmm.fit(seqs)
        seq = np.array([[-3.0, -3.0]] * 5 + [[3.0, 3.0]] * 5)
        path = hmm.viterbi(seq)
        assert len(set(path[:5].tolist())) == 1
        assert len(set(path[5:].tolist())) == 1
        assert path[0] != path[-1]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            GaussianHMM().fit([])

    def test_unfitted_score_raises(self):
        with pytest.raises(RuntimeError):
            GaussianHMM().score(np.zeros((3, 2)))


class TestHMMActivityClassifier:
    def make_dataset(self, seed=0):
        rng = np.random.default_rng(seed)
        steps, d, per_class = 10, 6, 25
        seqs, labels = [], []
        for cls, rate in (("slow", 0.5), ("fast", 2.0)):
            for _ in range(per_class):
                phase = rng.uniform(0, 2 * np.pi)
                t = np.linspace(0, 2 * np.pi, steps)
                base = np.sin(rate * t + phase)
                seqs.append(base[:, None] + rng.normal(0, 0.2, (steps, d)))
                labels.append(cls)
        return np.stack(seqs), np.array(labels)

    def test_classifies_sequences(self):
        x, y = self.make_dataset()
        model = HMMActivityClassifier(
            n_states=3, n_components=3, n_iter=8, rng=np.random.default_rng(0)
        )
        model.fit(x[:40], y[:40])
        assert model.score(x[40:], y[40:]) > 0.7

    def test_flat_input_with_n_frames(self):
        x, y = self.make_dataset()
        flat = x.reshape(len(x), -1)
        model = HMMActivityClassifier(
            n_states=2, n_components=3, n_frames=10, n_iter=5,
            rng=np.random.default_rng(0),
        )
        model.fit(flat[:40], y[:40])
        predictions = model.predict(flat[40:])
        assert predictions.shape == (len(flat) - 40,)

    def test_flat_without_n_frames_rejected(self):
        x, y = self.make_dataset()
        model = HMMActivityClassifier()
        with pytest.raises(ValueError):
            model.fit(x.reshape(len(x), -1), y)

    def test_indivisible_flat_rejected(self):
        model = HMMActivityClassifier(n_frames=7)
        with pytest.raises(ValueError):
            model.fit(np.zeros((4, 10)), np.array(["a", "a", "b", "b"]))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            HMMActivityClassifier().predict(np.zeros((2, 5, 3)))
