"""Fused LSTM vs scalar reference: forward/backward parity.

The fused forward computes every timestep's input-gate GEMM at once
and keeps only the recurrence in the Python loop; the pre-fusion
per-timestep path survives as ``forward_reference`` /
``backward_reference``.  These tests pin the two paths together across
hypothesis-drawn shapes — the same parity contract the profile harness
asserts per run, but exhaustive over shape space.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import LSTM

RTOL = 1e-9
ATOL = 1e-12

shapes = st.tuples(
    st.integers(min_value=1, max_value=5),  # batch
    st.integers(min_value=1, max_value=9),  # steps
    st.integers(min_value=1, max_value=6),  # in_dim
    st.integers(min_value=1, max_value=7),  # hidden
)


def _grads(lstm: LSTM) -> dict[str, np.ndarray]:
    return {
        "w_x": lstm.w_x.grad.copy(),
        "w_h": lstm.w_h.grad.copy(),
        "bias": lstm.bias.grad.copy(),
    }


class TestFusedForwardParity:
    @given(shapes, st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_forward_matches_reference(self, shape, seed):
        batch, steps, in_dim, hidden = shape
        rng = np.random.default_rng(seed)
        lstm = LSTM(in_dim, hidden, rng)
        x = rng.normal(size=(batch, steps, in_dim))
        np.testing.assert_allclose(
            lstm.forward(x), lstm.forward_reference(x), rtol=RTOL, atol=ATOL
        )

    def test_forward_matches_reference_large_activations(self):
        """Saturating inputs: the tanh-based in-place sigmoid must agree
        with the branchy reference sigmoid even for large |a|."""
        rng = np.random.default_rng(3)
        lstm = LSTM(4, 6, rng)
        x = rng.normal(size=(2, 10, 4)) * 50.0
        np.testing.assert_allclose(
            lstm.forward(x), lstm.forward_reference(x), rtol=RTOL, atol=ATOL
        )


class TestFusedBackwardParity:
    @given(shapes, st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_backward_matches_reference(self, shape, seed):
        batch, steps, in_dim, hidden = shape
        rng = np.random.default_rng(seed)
        lstm = LSTM(in_dim, hidden, rng)
        x = rng.normal(size=(batch, steps, in_dim))
        grad = rng.normal(size=(batch, steps, hidden))

        lstm.forward(x)
        lstm.zero_grad()
        dx_fused = lstm.backward(grad)
        grads_fused = _grads(lstm)

        lstm.forward_reference(x)
        lstm.zero_grad()
        dx_ref = lstm.backward_reference(grad)
        grads_ref = _grads(lstm)

        np.testing.assert_allclose(dx_fused, dx_ref, rtol=RTOL, atol=ATOL)
        for name in grads_fused:
            np.testing.assert_allclose(
                grads_fused[name], grads_ref[name], rtol=RTOL, atol=ATOL
            )

    def test_backward_accumulates_like_reference(self):
        """Both paths += into Parameter.grad; two passes double it."""
        rng = np.random.default_rng(7)
        lstm = LSTM(3, 4, rng)
        x = rng.normal(size=(2, 5, 3))
        grad = rng.normal(size=(2, 5, 4))
        lstm.forward(x)
        lstm.zero_grad()
        lstm.backward(grad)
        once = lstm.w_x.grad.copy()
        lstm.forward(x)
        lstm.backward(grad)
        np.testing.assert_allclose(lstm.w_x.grad, 2.0 * once, rtol=RTOL)

    def test_backward_before_forward_raises(self):
        lstm = LSTM(3, 4, np.random.default_rng(0))
        with pytest.raises(RuntimeError, match="backward before forward"):
            lstm.backward(np.zeros((1, 2, 4)))
        with pytest.raises(RuntimeError, match="backward_reference"):
            lstm.backward_reference(np.zeros((1, 2, 4)))


class TestFusedDtypePolymorphism:
    def test_float32_input_yields_float32_activations(self):
        """With float32 weights and input the fused path stays narrow."""
        rng = np.random.default_rng(1)
        lstm = LSTM(3, 4, rng)
        for p in lstm.parameters():
            p.value = p.value.astype(np.float32)
        x = rng.normal(size=(2, 5, 3)).astype(np.float32)
        out = lstm.forward(x)
        assert out.dtype == np.float32

    def test_mixed_dtype_follows_result_type(self):
        """float64 weights promote a float32 input back to float64."""
        rng = np.random.default_rng(1)
        lstm = LSTM(3, 4, rng)
        x = rng.normal(size=(2, 5, 3)).astype(np.float32)
        assert lstm.forward(x).dtype == np.float64
