"""CSV trace round-trips."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.dsp import PhaseCalibrator
from repro.hardware.trace_io import dump_csv, load_csv


class TestRoundTrip:
    def test_all_fields_preserved(self, small_log, tmp_path):
        path = tmp_path / "trace.csv"
        dump_csv(small_log, path)
        restored = load_csv(path)
        assert restored.epcs == small_log.epcs
        np.testing.assert_array_equal(restored.tag_index, small_log.tag_index)
        np.testing.assert_array_equal(restored.antenna, small_log.antenna)
        np.testing.assert_array_equal(restored.channel, small_log.channel)
        np.testing.assert_allclose(restored.phase_rad, small_log.phase_rad)
        np.testing.assert_allclose(restored.rssi_dbm, small_log.rssi_dbm)
        np.testing.assert_allclose(restored.timestamp_s, small_log.timestamp_s)

    def test_metadata_preserved(self, small_log, tmp_path):
        path = tmp_path / "trace.csv"
        dump_csv(small_log, path)
        restored = load_csv(path)
        assert restored.meta.n_antennas == small_log.meta.n_antennas
        assert restored.meta.slot_s == small_log.meta.slot_s
        assert restored.meta.dwell_s == small_log.meta.dwell_s
        assert restored.meta.reference_channel == small_log.meta.reference_channel
        np.testing.assert_allclose(
            restored.meta.frequencies_hz, small_log.meta.frequencies_hz
        )

    def test_text_handles(self, small_log):
        buffer = io.StringIO()
        dump_csv(small_log, buffer)
        buffer.seek(0)
        restored = load_csv(buffer)
        assert restored.n_reads == small_log.n_reads

    def test_replayed_log_flows_through_dsp(self, small_log, tmp_path):
        """A loaded trace must be consumable by the calibration stack."""
        path = tmp_path / "trace.csv"
        dump_csv(small_log, path)
        restored = load_csv(path)
        calibrator = PhaseCalibrator.fit(restored)
        psi = calibrator.calibrate(restored)
        assert psi.shape == (restored.n_reads,)
        assert np.isfinite(psi).all()


class TestMalformedInput:
    def test_missing_metadata(self):
        text = "epc,antenna,channel,frequency_hz,timestamp_s,phase_rad,rssi_dbm\n"
        with pytest.raises(ValueError, match="missing metadata"):
            load_csv(io.StringIO(text))

    def test_wrong_columns(self):
        text = "# n_antennas=4\nfoo,bar\n"
        with pytest.raises(ValueError, match="columns"):
            load_csv(io.StringIO(text))

    def test_malformed_row(self, small_log):
        buffer = io.StringIO()
        dump_csv(small_log, buffer)
        text = buffer.getvalue() + "oops,1\n"
        with pytest.raises(ValueError, match="malformed"):
            load_csv(io.StringIO(text))

    def test_empty_file(self):
        with pytest.raises(ValueError, match="header"):
            load_csv(io.StringIO(""))
