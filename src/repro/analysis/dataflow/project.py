"""Project model: parsed modules, import tables, and a function index.

The flow-aware rule packs are *interprocedural*: a float32 produced by
``serve_f32()`` must be traced into every caller, and a spectrum
produced in :mod:`repro.dsp.music` must match the contract of the
consumer it is handed to in :mod:`repro.dsp.frames`.  That requires a
whole-project view, not the single-file :class:`~repro.analysis.rules.FileContext`.

:class:`Project` holds every linted module parsed once, a per-module
symbol table mapping local names to fully dotted targets (following
``import``/``from ... import`` aliases, including relative imports),
and an index of every function/method definition by qualified name.
Resolution is deliberately best-effort: a call the table cannot
resolve is treated as outside the project and assumed clean — the
packs only ever *add* findings for edges they can prove.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["FunctionInfo", "ModuleInfo", "Project", "dotted_name", "module_name_for_path"]


def dotted_name(node: ast.AST) -> str | None:
    """Dotted name of a Name/Attribute chain (``np.random.seed``), or None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_name_for_path(path: str) -> str:
    """Best-effort dotted module name for a source path.

    ``src/repro/dsp/music.py`` → ``repro.dsp.music``; paths outside a
    recognisable package root fall back to the file stem, which keeps
    single-file fixtures addressable.
    """
    norm = re.split(r"[\\/]", path)
    stem = norm[-1][:-3] if norm[-1].endswith(".py") else norm[-1]
    parts = norm[:-1]
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    else:
        # keep trailing package-ish dirs only when an anchor like
        # `repro`/`tests` is present; otherwise the stem alone.
        for anchor in ("repro", "tests"):
            if anchor in parts:
                parts = parts[parts.index(anchor) :]
                break
        else:
            parts = []
    if stem == "__init__":
        return ".".join(parts) if parts else "__init__"
    return ".".join(parts + [stem]) if parts else stem


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition in the project.

    Attributes:
        qualname: fully qualified name
            (``repro.dsp.music.steering_matrix`` or
            ``repro.serving.fleet.FleetServer.tick``).
        module: dotted name of the defining module.
        class_name: owning class for methods, else None.
        node: the definition's AST node.
    """

    qualname: str
    module: str
    class_name: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef


@dataclass
class ModuleInfo:
    """One parsed module plus its symbol table.

    Attributes:
        name: dotted module name.
        path: source path (as given to the linter).
        source: raw source text.
        tree: the parsed AST.
        imports: local name → fully dotted imported target.
        functions: local qualname (``f`` / ``Cls.m``) → info.
    """

    name: str
    path: str
    source: str
    tree: ast.Module
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)

    def resolve(self, expr: ast.AST) -> str | None:
        """Resolve a call-target expression to a fully dotted name.

        Follows the module's import aliases and local definitions;
        returns None when the head name is unknown (builtins, call
        results, subscripts …).
        """
        dotted = dotted_name(expr)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in self.imports:
            base = self.imports[head]
            return f"{base}.{rest}" if rest else base
        if dotted in self.functions:
            return f"{self.name}.{dotted}"
        return None


def _import_table(tree: ast.Module, module_name: str) -> dict[str, str]:
    package = module_name.rsplit(".", 1)[0] if "." in module_name else ""
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                table[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            if node.level:
                base_parts = module_name.split(".")
                # one level strips the module itself, further levels
                # strip enclosing packages.
                base_parts = base_parts[: len(base_parts) - node.level]
                prefix = ".".join(base_parts)
                mod = f"{prefix}.{node.module}" if node.module else prefix
            else:
                mod = node.module or package
            for alias in node.names:
                if alias.name == "*":
                    continue
                table[alias.asname or alias.name] = f"{mod}.{alias.name}"
    return table


def _function_index(info: ModuleInfo) -> None:
    for node in info.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{info.name}.{node.name}"
            info.functions[node.name] = FunctionInfo(
                qualname=qual, module=info.name, class_name=None, node=node
            )
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    local = f"{node.name}.{item.name}"
                    info.functions[local] = FunctionInfo(
                        qualname=f"{info.name}.{local}",
                        module=info.name,
                        class_name=node.name,
                        node=item,
                    )


class Project:
    """Every linted module, indexed for interprocedural analysis.

    Attributes:
        modules: dotted module name → :class:`ModuleInfo`.
        functions: fully qualified name → :class:`FunctionInfo`.
    """

    def __init__(self, modules: dict[str, ModuleInfo]) -> None:
        self.modules = modules
        self.functions: dict[str, FunctionInfo] = {}
        for info in modules.values():
            for fn in info.functions.values():
                self.functions[fn.qualname] = fn

    @classmethod
    def from_sources(cls, units: Iterable[tuple[str, str, ast.Module]]) -> "Project":
        """Build a project from already-parsed ``(path, source, tree)`` units."""
        modules: dict[str, ModuleInfo] = {}
        for path, source, tree in units:
            name = module_name_for_path(path)
            if name in modules:
                # Same dotted name twice (e.g. two fixture files named
                # alike): suffix to keep both addressable.
                name = f"{name}@{len(modules)}"
            info = ModuleInfo(name=name, path=path, source=source, tree=tree)
            info.imports = _import_table(tree, name)
            _function_index(info)
            modules[name] = info
        return cls(modules)

    def resolve_function(
        self, module: ModuleInfo, expr: ast.AST
    ) -> FunctionInfo | None:
        """Resolve a call target to a project function, if it is one.

        Handles plain functions (``f()``, ``music.f()`` through an
        import alias) and unqualified method references inside the
        defining module.  Method calls through instances are out of
        scope — resolution stays a provable-edges-only approximation.
        """
        target = module.resolve(expr)
        if target is None:
            return None
        return self.functions.get(target)
