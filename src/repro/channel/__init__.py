"""Indoor multipath backscatter channel simulation."""

from repro.channel.link import (
    above_noise_floor,
    gain_to_rssi_dbm,
    harvest_mask,
    rssi_dbm_to_amplitude,
)
from repro.channel.model import BodyTrack, MultipathChannel, PathComponent
from repro.channel.params import SPEED_OF_LIGHT, ChannelParams
from repro.channel.vectorized import (
    as_traj,
    crossing_mask,
    pairwise_distance,
    segment_point_distance,
)

__all__ = [
    "SPEED_OF_LIGHT",
    "BodyTrack",
    "ChannelParams",
    "MultipathChannel",
    "PathComponent",
    "above_noise_floor",
    "as_traj",
    "crossing_mask",
    "gain_to_rssi_dbm",
    "harvest_mask",
    "pairwise_distance",
    "rssi_dbm_to_amplitude",
    "segment_point_distance",
]
