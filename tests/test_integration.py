"""End-to-end integration: simulate -> calibrate -> decouple -> learn.

The full stack on a small two-class problem must beat chance by a wide
margin — this is the system-level smoke test a deployment would run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import M2AIConfig, M2AIPipeline, baseline_arrays
from repro.data import GenerationConfig, SyntheticDatasetGenerator
from repro.ml import GaussianNB


@pytest.fixture(scope="module")
def two_class_dataset():
    config = GenerationConfig(
        scenario_labels=("A01", "A03"),  # wave vs walk
        samples_per_class=8,
        duration_s=4.8,
        calibration_s=20.0,
        seed=42,
    )
    return SyntheticDatasetGenerator(config).generate()


class TestEndToEnd:
    def test_m2ai_beats_chance(self, two_class_dataset):
        train, test = two_class_dataset.split(0.25, np.random.default_rng(0))
        cfg = M2AIConfig(epochs=20, batch_size=8, warmup_frames=2, seed=0)
        pipeline = M2AIPipeline(cfg).fit(train, val=test)
        result = pipeline.evaluate(test)
        assert result.accuracy >= 0.75  # chance = 0.5

    def test_features_carry_class_signal(self, two_class_dataset):
        """Walking (A03) moves the tags metres; waving (A01) centimetres.

        That physical difference must survive the whole measurement
        chain as higher temporal variance of the walking samples'
        spectrum frames.
        """
        channels, labels = two_class_dataset.to_arrays()
        pseudo = channels["pseudo"]  # (B, T, n, 180)
        temporal_std = pseudo.std(axis=1).mean(axis=(1, 2))  # per sample
        wave = temporal_std[labels == "A01"].mean()
        walk = temporal_std[labels == "A03"].mean()
        assert walk > wave

    def test_baselines_run_on_real_features(self, two_class_dataset):
        train, test = two_class_dataset.split(0.25, np.random.default_rng(0))
        x_train, y_train, x_test, y_test = baseline_arrays(train, test)
        model = GaussianNB().fit(x_train, y_train)
        assert 0.0 <= model.score(x_test, y_test) <= 1.0

    def test_confusion_matrix_complete(self, two_class_dataset):
        train, test = two_class_dataset.split(0.25, np.random.default_rng(0))
        cfg = M2AIConfig(epochs=8, batch_size=8, warmup_frames=2, seed=0)
        pipeline = M2AIPipeline(cfg).fit(train)
        result = pipeline.evaluate(test)
        assert result.confusion.counts.sum() == len(test)
        assert sorted(result.confusion.labels.tolist()) == ["A01", "A03"]
