"""Table I: the per-class confusion matrix of the trained M2AI."""

from repro.eval import run_table1


def test_table1_confusion_matrix(run_experiment):
    result = run_experiment(run_table1)
    measured = result.measured_by_name()
    # Paper: >= 93% per class at hardware scale.  On the simulated
    # substrate we require every class to be far above 12-way chance
    # on average.
    assert measured["mean per-class accuracy"] > 0.25
