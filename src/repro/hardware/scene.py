"""Scene description handed from the motion layer to the reader.

A scene is everything RF-relevant about one observation window: where
every tag is at every TDM slot, and where every human torso is.  The
motion package builds scenes from activity scripts; the reader renders
them into LLRP read logs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.model import BodyTrack
from repro.hardware.tag import Tag


@dataclass(frozen=True)
class TagTrack:
    """One tag's trajectory over the scene window.

    Attributes:
        tag: the physical tag.
        positions: ``(T, 2)`` positions per TDM slot, or ``(2,)`` for a
            stationary tag.
        carrier: index into the scene's ``bodies`` of the person
            wearing this tag, or ``None`` for a tag pinned to the
            environment.
    """

    tag: Tag
    positions: np.ndarray
    carrier: int | None = None

    def __post_init__(self) -> None:
        arr = np.asarray(self.positions, dtype=np.float64)
        if arr.shape != (2,) and (arr.ndim != 2 or arr.shape[1] != 2):
            raise ValueError("positions must be (2,) or (T, 2)")
        object.__setattr__(self, "positions", arr)


@dataclass(frozen=True)
class Scene:
    """Tags plus bodies over a common time axis.

    Attributes:
        tag_tracks: every tag in the field of view.
        bodies: every human torso (tagged or not).
        n_slots: length of the time axis; stationary entries broadcast.
    """

    tag_tracks: tuple[TagTrack, ...]
    bodies: tuple[BodyTrack, ...] = ()

    def __post_init__(self) -> None:
        if not self.tag_tracks:
            raise ValueError("a scene needs at least one tag")
        steps = {
            t.positions.shape[0]
            for t in self.tag_tracks
            if t.positions.ndim == 2
        } | {b.steps for b in self.bodies}
        if len(steps) > 1:
            raise ValueError(f"inconsistent time axes in scene: {sorted(steps)}")
        for track in self.tag_tracks:
            if track.carrier is not None and not (
                0 <= track.carrier < len(self.bodies)
            ):
                raise ValueError(f"carrier index {track.carrier} out of range")

    @property
    def n_slots(self) -> int:
        """Trajectory length in slots (1 when everything is stationary)."""
        for track in self.tag_tracks:
            if track.positions.ndim == 2:
                return int(track.positions.shape[0])
        if self.bodies:
            return self.bodies[0].steps
        return 1

    @property
    def epcs(self) -> tuple[str, ...]:
        """EPC strings in tag-index order."""
        return tuple(t.tag.epc for t in self.tag_tracks)


def stationary_scene(tags_and_positions: list[tuple[Tag, tuple[float, float]]]) -> Scene:
    """A scene of motionless tags and no bodies (used for calibration)."""
    tracks = tuple(
        TagTrack(tag=tag, positions=np.asarray(pos, dtype=np.float64))
        for tag, pos in tags_and_positions
    )
    return Scene(tag_tracks=tracks, bodies=())
