"""FCC hop plan."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware import FrequencyHopper, REFERENCE_FREQ_MHZ


class TestChannelTable:
    def test_fifty_channels_in_band(self):
        hopper = FrequencyHopper()
        freqs = hopper.frequencies_hz
        assert len(freqs) == 50
        assert freqs.min() == pytest.approx(902.75e6)
        assert freqs.max() == pytest.approx(927.25e6)
        assert np.allclose(np.diff(freqs), 0.5e6)

    def test_reference_channel_is_910_25(self):
        hopper = FrequencyHopper()
        ref = hopper.reference_channel
        assert hopper.frequencies_hz[ref] == pytest.approx(REFERENCE_FREQ_MHZ * 1e6)

    def test_wavelength_near_32cm(self):
        hopper = FrequencyHopper()
        lam = hopper.wavelength(hopper.reference_channel)
        assert 0.31 < float(lam) < 0.34


class TestHopSequence:
    def test_every_channel_visited_once_per_cycle(self):
        hopper = FrequencyHopper(rng=np.random.default_rng(0))
        seq = hopper.hop_sequence(50)
        assert sorted(seq.tolist()) == list(range(50))

    def test_cycles_reshuffled(self):
        hopper = FrequencyHopper(rng=np.random.default_rng(0))
        seq = hopper.hop_sequence(100)
        assert not np.array_equal(seq[:50], seq[50:])
        assert sorted(seq[50:].tolist()) == list(range(50))

    def test_requested_length(self):
        hopper = FrequencyHopper(rng=np.random.default_rng(0))
        assert len(hopper.hop_sequence(7)) == 7
        assert len(hopper.hop_sequence(0)) == 0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            FrequencyHopper().hop_sequence(-1)


class TestSlotMapping:
    def test_dwell_spans_sixteen_slots(self):
        # 400 ms dwell / 25 ms slot = 16 slots on one channel.
        hopper = FrequencyHopper(rng=np.random.default_rng(1))
        channels = hopper.channels_for_slots(64, slot_s=0.025)
        for dwell in range(4):
            chunk = channels[dwell * 16 : (dwell + 1) * 16]
            assert len(set(chunk.tolist())) == 1

    def test_dwell_time_respected(self):
        hopper = FrequencyHopper(dwell_s=0.1, rng=np.random.default_rng(1))
        channels = hopper.channels_for_slots(8, slot_s=0.025)
        assert len(set(channels[:4].tolist())) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            FrequencyHopper(dwell_s=0.0)
        with pytest.raises(ValueError):
            FrequencyHopper(n_channels=0)
