"""Spec content-hashing and record serialisation."""

from __future__ import annotations

import json

import pytest

from repro.experiments import ExperimentSpec, ResultRecord, make_spec
from tests.experiments.toyreg import run_toy


class TestSpecKeys:
    def test_key_is_stable(self):
        a = make_spec("fig09", "quick", 3, gen_overrides={"x": 1, "y": "z"})
        b = make_spec("fig09", "quick", 3, gen_overrides={"y": "z", "x": 1})
        assert a == b
        assert a.key == b.key

    def test_key_separates_every_axis(self):
        base = make_spec("fig09", "quick", 0)
        variants = [
            make_spec("fig10", "quick", 0),
            make_spec("fig09", "full", 0),
            make_spec("fig09", "quick", 1),
            make_spec("fig09", "quick", 0, gen_overrides={"k": 1}),
            make_spec("fig09", "quick", 0, train_overrides={"k": 1}),
        ]
        keys = {base.key} | {v.key for v in variants}
        assert len(keys) == len(variants) + 1

    def test_key_names_the_triple(self):
        spec = make_spec("fig09", "full", 7)
        assert spec.key.startswith("fig09--full--s7--")

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            make_spec("fig09", "fast", 0)

    def test_non_scalar_override_rejected(self):
        with pytest.raises(TypeError, match="JSON scalar"):
            make_spec("fig09", gen_overrides={"bad": [1, 2]})

    def test_override_collision_rejected(self):
        spec = make_spec(
            "fig09", gen_overrides={"k": 1}, train_overrides={"k": 2}
        )
        with pytest.raises(ValueError, match="both"):
            spec.overrides_dict()

    def test_payload_roundtrip(self):
        spec = make_spec("toy", "full", 5, gen_overrides={"scale": 2.0})
        clone = ExperimentSpec.from_payload(
            json.loads(json.dumps(spec.payload()))
        )
        assert clone == spec
        assert clone.key == spec.key


class TestResultRecord:
    def make_record(self, elapsed=1.5):
        spec = make_spec("toy", "quick", 2)
        return ResultRecord.from_result(spec, run_toy(seed=2), elapsed)

    def test_json_roundtrip(self):
        record = self.make_record()
        clone = ResultRecord.from_json(record.to_json())
        assert clone.to_payload() == record.to_payload()

    def test_content_digest_ignores_timing(self):
        assert (
            self.make_record(1.0).content_digest()
            == self.make_record(99.0).content_digest()
        )

    def test_content_digest_sees_rows(self):
        spec = make_spec("toy", "quick", 2)
        a = ResultRecord.from_result(spec, run_toy(seed=2), 1.0)
        b = ResultRecord.from_result(spec, run_toy(seed=3), 1.0)
        assert a.content_digest() != b.content_digest()

    def test_from_json_rejects_key_mismatch(self):
        record = self.make_record()
        payload = record.to_payload()
        payload["key"] = "tampered"
        with pytest.raises(ValueError, match="content key"):
            ResultRecord.from_json(json.dumps(payload))

    def test_from_json_rejects_non_record(self):
        with pytest.raises(ValueError):
            ResultRecord.from_json('["not", "a", "record"]')

    def test_measured_by_name(self):
        assert self.make_record().measured_by_name() == {"value": 21.0}
