"""Public-API hygiene: every exported name exists and is documented."""

from __future__ import annotations

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.geometry",
    "repro.channel",
    "repro.hardware",
    "repro.motion",
    "repro.dsp",
    "repro.faults",
    "repro.analysis",
    "repro.nn",
    "repro.ml",
    "repro.core",
    "repro.data",
    "repro.eval",
]


@pytest.mark.parametrize("name", PACKAGES)
class TestPackageSurface:
    def test_all_names_resolve(self, name):
        module = importlib.import_module(name)
        for exported in getattr(module, "__all__", []):
            assert hasattr(module, exported), f"{name}.{exported} missing"

    def test_package_docstring(self, name):
        module = importlib.import_module(name)
        assert module.__doc__ and module.__doc__.strip(), f"{name} lacks a docstring"

    def test_exported_callables_documented(self, name):
        module = importlib.import_module(name)
        undocumented = []
        for exported in getattr(module, "__all__", []):
            obj = getattr(module, exported)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(exported)
        assert not undocumented, f"{name}: undocumented exports {undocumented}"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_no_circular_import_order_sensitivity():
    """Importing leaf modules directly must not require package order."""
    for leaf in (
        "repro.dsp.localization",
        "repro.core.streaming",
        "repro.hardware.trace_io",
        "repro.core.ensemble",
        "repro.faults.injectors",
        "repro.eval.robustness",
    ):
        importlib.import_module(leaf)
