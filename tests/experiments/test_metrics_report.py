"""Seed aggregation and EXPERIMENTS.md rendering."""

from __future__ import annotations

import math
import threading

import pytest

from repro.experiments import (
    ResultRecord,
    ResultsStore,
    aggregate_records,
    make_spec,
    render_aggregate_table,
    render_block,
    render_experiments_md,
    write_experiments_md,
)
from tests.experiments.toyreg import ToyResult, ToyRow, run_toy


def record_for(exp_id, mode="quick", seed=0, value=0.5, name="acc row"):
    spec = make_spec(exp_id, mode, seed)
    result = ToyResult(
        experiment_id=exp_id,
        title=f"{exp_id} title",
        rows=[ToyRow(name, None, value)],
    )
    return ResultRecord.from_result(spec, result, elapsed_s=1.0)


class TestAggregation:
    def test_mean_std_across_seeds(self):
        records = [
            record_for("toy", seed=0, value=0.4),
            record_for("toy", seed=1, value=0.6),
        ]
        (row,) = aggregate_records(records)
        assert row.mean == pytest.approx(0.5)
        assert row.std == pytest.approx(0.1)
        assert (row.low, row.high) == (0.4, 0.6)
        assert row.seeds == (0, 1)
        assert row.n == 2

    def test_modes_do_not_mix(self):
        records = [
            record_for("toy", "quick", 0, 0.1),
            record_for("toy", "full", 0, 0.9),
        ]
        rows = aggregate_records(records)
        assert len(rows) == 2
        assert {r.mode for r in rows} == {"quick", "full"}

    def test_overrides_do_not_mix(self):
        a = make_spec("toy", gen_overrides={"source": "laboratory"})
        b = make_spec("toy", gen_overrides={"source": "hall"})
        records = [
            ResultRecord.from_result(a, run_toy(), 1.0),
            ResultRecord.from_result(b, run_toy(), 1.0),
        ]
        assert len(aggregate_records(records)) == 2

    def test_units_do_not_mix(self):
        spec = make_spec("toy")
        result = ToyResult(
            "toy", "t", rows=[ToyRow("x", None, 1.0), ToyRow("x", None, 2.0, unit="s")]
        )
        records = [ResultRecord.from_result(spec, result, 1.0)]
        assert len(aggregate_records(records)) == 2

    def test_table_renders(self):
        rows = aggregate_records([record_for("toy", seed=s) for s in range(3)])
        table = render_aggregate_table(rows)
        assert "acc row" in table and "n=3" in table
        assert render_aggregate_table([]) == "(no data)"
        assert not math.isnan(rows[0].std)


class TestExperimentsMd:
    def test_blocks_labelled_with_mode_and_seed(self):
        text = render_block(record_for("fig09", "full", 7))
        assert "mode: full, seed: 7" in text
        assert text.startswith("```text\n")

    def test_registry_order_then_mode_then_seed(self):
        records = [
            record_for("fig09", "quick", 0),
            record_for("not-registered", "quick", 0),
            record_for("fig02", "quick", 0),
            record_for("fig09", "quick", 2),
            record_for("fig09", "full", 0),
        ]
        text = render_experiments_md(records)
        fig02 = text.index("fig02 title")
        fig09_full = text.index("mode: full, seed: 0")
        fig09_q0 = text.index("mode: quick, seed: 0", text.index("fig09 title"))
        fig09_q2 = text.index("mode: quick, seed: 2")
        unknown = text.index("not-registered title")
        assert fig02 < fig09_full < fig09_q0 < fig09_q2 < unknown

    def test_quick_and_full_coexist(self):
        """The old exp_id-keyed cache silently dropped one of these."""
        records = [
            record_for("fig09", "quick", 0, 0.1),
            record_for("fig09", "full", 0, 0.9),
            record_for("fig09", "quick", 5, 0.2),
        ]
        text = render_experiments_md(records)
        assert text.count("fig09 title") == 3

    def test_deterministic_output(self):
        records = [record_for("fig09"), record_for("fig02")]
        assert render_experiments_md(records) == render_experiments_md(
            list(reversed(records))
        )

    def test_write_from_store_is_atomic(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        store.put(record_for("fig09"))
        out = tmp_path / "EXPERIMENTS.md"
        write_experiments_md(out, store)
        text = out.read_text()
        assert "paper vs measured" in text
        assert "fig09 title" in text
        assert not list(tmp_path.glob("EXPERIMENTS.md.*.tmp"))

    def test_concurrent_writers_never_tear(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        for seed in range(4):
            store.put(record_for("fig09", seed=seed))
        out = tmp_path / "EXPERIMENTS.md"
        expected = render_experiments_md(store.records())

        def hammer():
            for _ in range(10):
                write_experiments_md(out, store)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert out.read_text() == expected
