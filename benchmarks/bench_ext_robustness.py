"""Extension: graceful degradation under injected deployment faults."""

import numpy as np

from repro.eval import run_ext_robustness
from repro.eval.robustness import DEFAULT_FAULT_KINDS, DEFAULT_SEVERITIES


def test_ext_robustness_degradation(run_experiment):
    result = run_experiment(run_ext_robustness)
    measured = result.measured_by_name()

    # The sweep must cover the full kind x severity grid (>= 4 kinds).
    assert len(DEFAULT_FAULT_KINDS) >= 4
    for kind in DEFAULT_FAULT_KINDS:
        for severity in DEFAULT_SEVERITIES:
            assert f"{kind} s={severity:.1f}" in measured
            assert f"{kind} s={severity:.1f} abstain" in measured

    # Severity zero is the clean baseline: injectors are exact no-ops,
    # so every fault kind reports the identical clean accuracy.
    clean = {measured[f"{kind} s=0.0"] for kind in DEFAULT_FAULT_KINDS}
    assert len(clean) == 1
    clean_acc = clean.pop()
    assert clean_acc > 0.5  # the pipeline must be competent on clean data
    assert all(
        measured[f"{kind} s=0.0 abstain"] == 0.0 for kind in DEFAULT_FAULT_KINDS
    )

    # Faults must not crash the serving path: every cell reports a
    # finite abstain rate in [0, 1].
    rates = [
        measured[f"{kind} s={s:.1f} abstain"]
        for kind in DEFAULT_FAULT_KINDS
        for s in DEFAULT_SEVERITIES
    ]
    assert np.isfinite(rates).all()
    assert all(0.0 <= r <= 1.0 for r in rates)
