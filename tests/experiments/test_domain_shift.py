"""Domain-shift workload: k-shot selection and bench assembly.

The full cell (two dataset generations + a training run) is exercised
by the CI bench step; here the cheap invariants are pinned: the k-shot
budget, input validation, and the bench document's shape — assembled
from fake records so no network trains in the unit suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dataset import ActivityDataset
from repro.dsp.frames import FeatureFrames
from repro.experiments import ResultRecord, make_spec
from repro.experiments import domain_shift as ds
from tests.experiments.toyreg import ToyResult, ToyRow


def toy_dataset(per_class=5, classes=("A", "B", "C"), seed=0):
    rng = np.random.default_rng(seed)
    samples = []
    for cls in classes:
        for _ in range(per_class):
            samples.append(
                FeatureFrames(
                    channels={"pseudo": rng.normal(size=(4, 2, 8))},
                    label=cls,
                )
            )
    return ActivityDataset(samples=samples)


class TestKShotSubset:
    def test_takes_k_per_class(self):
        subset = ds.k_shot_subset(toy_dataset(per_class=5), k=2, seed=0)
        counts = {c: subset.labels.count(c) for c in subset.classes}
        assert counts == {"A": 2, "B": 2, "C": 2}

    def test_caps_at_class_size(self):
        subset = ds.k_shot_subset(toy_dataset(per_class=3), k=10, seed=0)
        assert len(subset) == 9

    def test_seeded_and_deterministic(self):
        data = toy_dataset(per_class=5)
        a = ds.k_shot_subset(data, k=2, seed=7)
        b = ds.k_shot_subset(data, k=2, seed=7)
        c = ds.k_shot_subset(data, k=2, seed=8)
        key = lambda d: [id(s) for s in d.samples]  # noqa: E731
        assert key(a) == key(b)
        assert key(a) != key(c)

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError, match="k must be"):
            ds.k_shot_subset(toy_dataset(), k=0, seed=0)


class TestRunDomainShiftValidation:
    def test_same_environment_rejected(self):
        with pytest.raises(ValueError, match="different environments"):
            ds.run_domain_shift(source="hall", target="hall")

    def test_registered_in_default_registry(self):
        from repro.experiments import default_registry

        assert ds.EXPERIMENT_ID in default_registry()


def fake_cell(source, target, seed, same, cross, adapted, mode="quick"):
    spec = make_spec(
        ds.EXPERIMENT_ID,
        mode,
        seed,
        gen_overrides={"source": source, "target": target},
    )
    result = ToyResult(
        experiment_id=ds.EXPERIMENT_ID,
        title=f"Domain shift: train {source}, test {target}",
        rows=[
            ToyRow(ds.ROW_SAME, None, same),
            ToyRow(ds.ROW_CROSS, None, cross),
            ToyRow(ds.ROW_ADAPTED, None, adapted),
            ToyRow("k (windows/class)", None, 2.0, unit="n"),
        ],
    )
    return ResultRecord.from_result(spec, result, elapsed_s=1.0)


class TestBenchAssembly:
    def fake_records(self):
        cells = []
        for source, target in ds.DIRECTIONS:
            for seed, (same, cross, adapted) in enumerate(
                [(0.9, 0.5, 0.7), (0.8, 0.4, 0.6)]
            ):
                cells.append(fake_cell(source, target, seed, same, cross, adapted))
        return cells

    def test_document_shape(self, monkeypatch):
        records = self.fake_records()
        monkeypatch.setattr(ds, "run_batch", lambda *a, **kw: records)
        doc = ds.run_domain_shift_bench(
            quick=True, seeds=(0, 1), workers=2, store=object.__new__(ds.ResultsStore)
        )
        assert doc["bench"] == "ext_domain_shift"
        assert set(doc["directions"]) == {
            "laboratory->hall",
            "hall->laboratory",
        }
        for stats in doc["directions"].values():
            assert stats["same_env"]["mean"] == pytest.approx(0.85)
            assert stats["cross_env"]["mean"] == pytest.approx(0.45)
            assert stats["k_shot_adapted"]["mean"] == pytest.approx(0.65)
            assert stats["transfer_gap"] == pytest.approx(0.4)
            assert stats["gap_recovered_frac"] == pytest.approx(0.5)
            assert stats["same_env"]["seeds"] == [0, 1]
        assert len(doc["cells"]) == 4

    def test_missing_arm_raises(self):
        record = self.fake_records()[0]
        record.rows = [r for r in record.rows if r["name"] != ds.ROW_CROSS]
        from repro.experiments.metrics import aggregate_records

        with pytest.raises(ValueError, match="cross-env"):
            ds._direction_summary(
                aggregate_records([record]), "laboratory", "hall"
            )

    def test_specs_cover_both_directions_and_seeds(self, monkeypatch):
        seen = {}

        def spy(specs, store, **kwargs):
            seen["specs"] = specs
            return self.fake_records()

        monkeypatch.setattr(ds, "run_batch", spy)
        ds.run_domain_shift_bench(
            quick=True, seeds=(0, 1), store=object.__new__(ds.ResultsStore)
        )
        combos = {
            (dict(s.gen_overrides)["source"], s.seed) for s in seen["specs"]
        }
        assert combos == {
            ("laboratory", 0),
            ("laboratory", 1),
            ("hall", 0),
            ("hall", 1),
        }
