"""RPR012 true-positive fixture: narrow floats with no inference scope.

Every construct here violates the float64 discipline and must be
flagged: a dtype= origin, an .astype cast, an escape of a sanctioned
value past its scope, and a call edge importing narrowness.
"""

import numpy as np

from repro.nn import inference_mode


def bad_origin():
    """dtype= narrow origin outside any scope (line 15)."""
    return np.zeros(8, dtype=np.float32)


def bad_cast(x):
    """.astype narrow origin outside any scope (line 20)."""
    return x.astype("float32")


def bad_escape(feats):
    """Sanctioned value read after its scope exits (line 27)."""
    with inference_mode():
        x = feats.astype(np.float32)
    return x


def bad_call_edge():
    """Narrow-returning call outside a scope (line 36)."""

    def _unused():
        return None

    y = sanctioned_producer()
    return y


def sanctioned_producer():
    """Returns narrow data from inside a scope — legal here, the
    obligation moves to the call sites."""
    with inference_mode():
        return np.ones(4, dtype=np.float32)
