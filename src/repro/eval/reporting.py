"""Experiment result containers and plain-text rendering.

Every benchmark regenerates one paper table/figure and reports its
rows side-by-side with the paper's numbers.  Paper values read off a
bar chart (the paper prints few exact numbers) are flagged as
approximate.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ExperimentRow:
    """One reported quantity.

    Attributes:
        name: what the row measures (classifier, setting, ...).
        paper: the paper's value (None when the paper is qualitative).
        measured: our value.
        unit: display unit (default: accuracy fraction).
        approx: paper value was read off a figure, not stated in text.
    """

    name: str
    paper: float | None
    measured: float
    unit: str = "acc"
    approx: bool = False


@dataclass
class ExperimentResult:
    """A regenerated table/figure.

    Attributes:
        experiment_id: ``"fig09"``, ``"table1"``, ...
        title: human title.
        rows: the series.
        notes: free-text commentary (trend checks, caveats).
        extras: named text blocks (e.g. a rendered confusion matrix).
    """

    experiment_id: str
    title: str
    rows: list[ExperimentRow]
    notes: str = ""
    extras: dict[str, str] = field(default_factory=dict)

    def render(self) -> str:
        """The paper-vs-measured table as text."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        name_w = max([len(r.name) for r in self.rows] + [8])
        header = f"{'setting':<{name_w}}  {'paper':>9}  {'measured':>9}"
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            if row.paper is None:
                paper = "   --  "
            else:
                mark = "~" if row.approx else " "
                paper = f"{mark}{row.paper:7.3f}"
            lines.append(
                f"{row.name:<{name_w}}  {paper:>9}  {row.measured:9.3f}  {row.unit}"
            )
        if self.notes:
            lines.append("")
            lines.append(self.notes)
        for name, block in self.extras.items():
            lines.append("")
            lines.append(f"-- {name} --")
            lines.append(block)
        return "\n".join(lines)

    def measured_by_name(self) -> dict[str, float]:
        """Lookup table of measured values."""
        return {r.name: r.measured for r in self.rows}


def bar_chart(values: dict[str, float], width: int = 40, vmax: float = 1.0) -> str:
    """A quick ASCII bar chart (used by the examples).

    An empty mapping renders as ``"(no data)"`` instead of dying in
    ``max()``.

    Raises:
        ValueError: ``vmax`` is not positive (it is the divisor every
            bar is scaled by).
    """
    if vmax <= 0:
        raise ValueError(f"vmax must be positive, got {vmax}")
    if not values:
        return "(no data)"
    name_w = max(len(k) for k in values)
    lines = []
    for name, value in values.items():
        filled = int(round(width * min(max(value / vmax, 0.0), 1.0)))
        lines.append(f"{name:<{name_w}} |{'#' * filled}{' ' * (width - filled)}| {value:.3f}")
    return "\n".join(lines)
