"""Gaussian naive Bayes (Fig. 9's "Bayesian Net" entry)."""

from __future__ import annotations

import numpy as np

from repro.ml.base import Classifier, LabelEncoder, validate_xy


class GaussianNB(Classifier):
    """Naive Bayes with per-class diagonal Gaussians.

    Args:
        var_smoothing: fraction of the largest feature variance added
            to every variance for numerical stability.
    """

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        if var_smoothing < 0:
            raise ValueError("var_smoothing must be non-negative")
        self.var_smoothing = var_smoothing
        self._encoder = LabelEncoder()
        self._means: np.ndarray | None = None
        self._vars: np.ndarray | None = None
        self._log_priors: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianNB":
        """Fit the classifier; returns ``self``."""
        x, y = validate_xy(x, y)
        ids = self._encoder.fit_transform(y)
        k = self._encoder.n_classes
        d = x.shape[1]
        self._means = np.zeros((k, d))
        self._vars = np.zeros((k, d))
        self._log_priors = np.zeros(k)
        epsilon = self.var_smoothing * float(x.var(axis=0).max() or 1.0)
        for cls in range(k):
            members = x[ids == cls]
            self._means[cls] = members.mean(axis=0)
            self._vars[cls] = members.var(axis=0) + max(epsilon, 1e-12)
            self._log_priors[cls] = np.log(len(members) / len(x))
        return self

    def log_likelihood(self, x: np.ndarray) -> np.ndarray:
        """Joint log p(x, class), ``(n, k)``."""
        if self._means is None or self._vars is None or self._log_priors is None:
            raise RuntimeError("classifier not fitted")
        x = np.asarray(x, dtype=np.float64)
        out = np.empty((len(x), len(self._log_priors)))
        for cls in range(len(self._log_priors)):
            diff = x - self._means[cls]
            out[:, cls] = self._log_priors[cls] - 0.5 * np.sum(
                np.log(2.0 * np.pi * self._vars[cls]) + diff**2 / self._vars[cls],
                axis=1,
            )
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted class ids for ``x``, shape ``(B,)``."""
        return self._encoder.inverse(self.log_likelihood(x).argmax(axis=1))
