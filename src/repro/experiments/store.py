"""Crash-safe durable results store: one JSON file per spec key.

Every record is published atomically (temp file in the same directory,
then ``os.replace`` — the pattern :mod:`repro.core.serialization` uses
for checkpoints), so a reader can never observe a half-written record
and a crash mid-write never corrupts an existing one.  Unreadable
records — a partial file from a hard power cut, a hand-edited file, a
schema mismatch — are **quarantined** (renamed to ``<key>.corrupt``)
with a warning instead of crashing the run; the cell simply reruns.

This replaces the old ``experiment_state.json`` monolith, which was
rewritten wholesale with ``Path.write_text`` after every experiment: a
crash mid-write lost *every* completed cell and the next run died in
``json.loads``.
"""

from __future__ import annotations

import os
import tempfile
import warnings
from pathlib import Path

from repro.experiments.spec import ResultRecord

__all__ = [
    "ResultsStore",
    "atomic_write_text",
    "default_store_root",
]


def default_store_root() -> Path:
    """Default store directory: ``<repo>/.repro_cache/experiments``.

    Override with the ``REPRO_RESULTS_DIR`` environment variable (the
    corpus cache's ``REPRO_CACHE_DIR`` is deliberately separate: the
    store holds *results*, not regenerable intermediates).
    """
    value = os.environ.get("REPRO_RESULTS_DIR")
    if value:
        return Path(value)
    return Path(__file__).resolve().parents[3] / ".repro_cache" / "experiments"


def atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via temp file + ``os.replace``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


class ResultsStore:
    """Directory of durable :class:`~repro.experiments.spec.ResultRecord`s.

    Records are keyed by :attr:`ExperimentSpec.key` — the content hash
    of (exp_id, mode, seed, overrides) — so a rerun with a different
    mode or seed can never be served a stale record, and a resumed
    sweep skips exactly the cells whose keys are already on disk.
    """

    def __init__(self, root: "str | Path | None" = None) -> None:
        self.root = Path(root) if root is not None else default_store_root()
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        """The record file a key lives at."""
        return self.root / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def put(self, record: ResultRecord) -> Path:
        """Atomically publish one record; returns its path."""
        path = self.path_for(record.spec.key)
        atomic_write_text(path, record.to_json())
        return path

    def get(self, key: str) -> "ResultRecord | None":
        """The record for a key, or None when absent or unreadable.

        An unreadable record is quarantined to ``<key>.corrupt`` with a
        :class:`RuntimeWarning` so the caller regenerates the cell
        instead of crashing on someone else's torn write.
        """
        path = self.path_for(key)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        try:
            record = ResultRecord.from_json(text)
            if record.spec.key != key:
                raise ValueError(
                    f"record content belongs to key {record.spec.key!r}"
                )
            return record
        except ValueError as exc:
            quarantine = path.with_suffix(".corrupt")
            os.replace(path, quarantine)
            warnings.warn(
                f"unreadable experiment record {path.name} "
                f"({exc}); moved to {quarantine.name}, the cell will rerun",
                RuntimeWarning,
                stacklevel=2,
            )
            return None

    def keys(self) -> list[str]:
        """Sorted keys of every readable-looking record file."""
        return sorted(p.stem for p in self.root.glob("*.json"))

    def records(self) -> list[ResultRecord]:
        """Every readable record, sorted by key (corrupt ones skipped)."""
        out = []
        for key in self.keys():
            record = self.get(key)
            if record is not None:
                out.append(record)
        return out

    def delete(self, key: str) -> bool:
        """Remove one record; True when a file was deleted."""
        try:
            self.path_for(key).unlink()
        except FileNotFoundError:
            return False
        return True
