"""Body kinematics and tag attachment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import Vec2
from repro.motion import ATTACHMENTS, PersonProfile, get_primitive, perform

T = np.linspace(0.0, 4.0, 160)


def standing_person(seed=0, anchor=Vec2(3.0, 4.0)):
    return perform(
        get_primitive("stand_still"), anchor, T, np.random.default_rng(seed), facing=0.0
    )


class TestPersonMotion:
    def test_center_near_anchor(self):
        motion = standing_person()
        assert np.abs(motion.center[:, 0] - 3.0).max() < 0.1
        assert np.abs(motion.center[:, 1] - 4.0).max() < 0.1

    def test_body_track_radius(self):
        motion = standing_person()
        track = motion.body_track()
        assert track.radius == motion.profile.torso_radius
        assert track.positions.shape == (len(T), 2)

    @pytest.mark.parametrize("attachment", ATTACHMENTS)
    def test_tag_positions_shape(self, attachment):
        motion = standing_person()
        pos = motion.tag_position(attachment)
        assert pos.shape == (len(T), 2)
        assert np.isfinite(pos).all()

    def test_unknown_attachment(self):
        with pytest.raises(ValueError):
            standing_person().tag_position("ankle")

    def test_attachments_are_distinct(self):
        motion = standing_person()
        hand = motion.tag_position("hand")
        shoulder = motion.tag_position("shoulder")
        assert np.linalg.norm(hand - shoulder, axis=1).min() > 0.05

    def test_hand_rides_the_wave(self):
        motion = perform(
            get_primitive("wave_hand"),
            Vec2(0, 0),
            T,
            np.random.default_rng(1),
            facing=0.0,
        )
        hand_travel = np.ptp(motion.tag_position("hand"), axis=0).max()
        shoulder_travel = np.ptp(motion.tag_position("shoulder"), axis=0).max()
        assert hand_travel > 3 * shoulder_travel

    def test_facing_rotates_attachments(self):
        east = perform(
            get_primitive("stand_still"), Vec2(0, 0), T, np.random.default_rng(2), facing=0.0
        )
        north = perform(
            get_primitive("stand_still"),
            Vec2(0, 0),
            T,
            np.random.default_rng(2),
            facing=np.pi / 2,
        )
        # The hand offset direction should rotate with the body.
        he = east.tag_position("hand")[0] - east.center[0]
        hn = north.tag_position("hand")[0] - north.center[0]
        assert abs(he[0]) > abs(he[1])
        assert abs(hn[1]) > abs(hn[0])


class TestProfile:
    def test_random_profiles_vary(self):
        rng = np.random.default_rng(0)
        profiles = [PersonProfile.random(rng) for _ in range(5)]
        assert len({p.torso_radius for p in profiles}) > 1

    def test_reach_scale_extends_arm(self):
        short = PersonProfile(reach_scale=0.8)
        tall = PersonProfile(reach_scale=1.2)
        m_short = perform(
            get_primitive("stand_still"), Vec2(0, 0), T, np.random.default_rng(3),
            profile=short, facing=0.0,
        )
        m_tall = perform(
            get_primitive("stand_still"), Vec2(0, 0), T, np.random.default_rng(3),
            profile=tall, facing=0.0,
        )
        d_short = np.linalg.norm(m_short.tag_position("hand")[0] - m_short.center[0])
        d_tall = np.linalg.norm(m_tall.tag_position("hand")[0] - m_tall.center[0])
        assert d_tall > d_short
