"""Periodogram estimation (Eq. 13-16) and Parseval's theorem."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dsp import periodogram_psd, spatial_periodogram, total_power

complex_seq = st.lists(
    st.tuples(
        st.floats(min_value=-10, max_value=10, allow_nan=False),
        st.floats(min_value=-10, max_value=10, allow_nan=False),
    ),
    min_size=1,
    max_size=64,
)


class TestPeriodogram:
    @given(complex_seq)
    def test_parseval(self, pairs):
        """Eq. 16's footnote: the transform is unitary (Parseval)."""
        y = np.array([re + 1j * im for re, im in pairs])
        psd = periodogram_psd(y)
        assert psd.sum() == pytest.approx(total_power(y), rel=1e-9, abs=1e-9)

    @given(complex_seq)
    def test_nonnegative(self, pairs):
        y = np.array([re + 1j * im for re, im in pairs])
        assert (periodogram_psd(y) >= 0).all()

    def test_pure_tone_concentrates(self):
        n = 32
        k = 5
        y = np.exp(2j * np.pi * k * np.arange(n) / n)
        psd = periodogram_psd(y)
        assert psd.argmax() == k
        assert psd[k] == pytest.approx(n, rel=1e-9)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            periodogram_psd(np.array([]))

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            periodogram_psd(np.zeros((3, 3)))


class TestSpatialPeriodogram:
    def test_shape_is_antenna_count(self):
        snapshots = np.ones((4, 4), dtype=complex)
        assert spatial_periodogram(snapshots).shape == (4,)

    def test_averages_over_snapshots(self):
        rng = np.random.default_rng(0)
        z = rng.normal(size=(8, 4)) + 1j * rng.normal(size=(8, 4))
        per = spatial_periodogram(z)
        manual = np.mean([periodogram_psd(z[k]) for k in range(8)], axis=0)
        np.testing.assert_allclose(per, manual)

    def test_valid_mask_drops_incomplete(self):
        z = np.ones((3, 4), dtype=complex)
        z[1] = 100.0  # corrupted snapshot...
        valid = np.ones((3, 4), dtype=bool)
        valid[1, 2] = False  # ...is marked incomplete
        per = spatial_periodogram(z, valid)
        np.testing.assert_allclose(per, spatial_periodogram(z[[0, 2]]))

    def test_all_invalid_rejected(self):
        with pytest.raises(ValueError):
            spatial_periodogram(np.ones((3, 4), dtype=complex), np.zeros((3, 4), bool))

    def test_zero_fill_fallback_when_all_partial(self):
        z = np.ones((2, 4), dtype=complex)
        valid = np.ones((2, 4), dtype=bool)
        valid[:, 0] = False
        # No complete snapshot: falls back to using what exists.
        per = spatial_periodogram(z, valid)
        assert per.shape == (4,)

    def test_zero_fill_fallback_ignores_invalid_garbage(self):
        """Degraded-dwell pin: unobserved slots hold measurement garbage
        and must not leak into the average (they used to)."""
        rng = np.random.default_rng(5)
        z = rng.normal(size=(3, 4)) + 1j * rng.normal(size=(3, 4))
        valid = np.ones((3, 4), dtype=bool)
        valid[:, 1] = False  # no complete snapshot anywhere
        garbage = z.copy()
        garbage[:, 1] = 1e9 * (1.0 + 1.0j)
        expected = spatial_periodogram(np.where(valid, z, 0.0))
        np.testing.assert_allclose(spatial_periodogram(garbage, valid), expected)
        np.testing.assert_allclose(spatial_periodogram(z, valid), expected)
