"""The static analyzer: every RPR rule fires on a crafted bad example,
stays quiet on the matching good example, and the repo's own src/ tree
is clean.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.lint import PARSE_ERROR_CODE, lint_paths, lint_source, main
from repro.analysis.rules import RULES, LintRule, register_rule

REPO_ROOT = Path(__file__).resolve().parents[2]


def codes(findings) -> list[str]:
    return [f.code for f in findings]


# ---------------------------------------------------------------------------
# One bad example per rule (the >= 8 crafted fixtures of the acceptance
# criteria), paired with a clean counterpart.

BAD_EXAMPLES: dict[str, tuple[str, str]] = {
    "RPR001": (
        "module.py",
        "import numpy as np\n"
        "def f():\n"
        "    np.random.seed(0)\n"
        "    return np.random.rand(3)\n",
    ),
    "RPR002": (
        "module.py",
        "from repro.nn.module import Module\n"
        "class HalfLayer(Module):\n"
        "    def forward(self, x, training=False):\n"
        "        return x\n",
    ),
    "RPR003": (
        "module.py",
        "def accumulate(item, bucket=[]):\n"
        "    bucket.append(item)\n"
        "    return bucket\n",
    ),
    "RPR004": (
        "module.py",
        "def risky():\n"
        "    try:\n"
        "        return 1 / 0\n"
        "    except:\n"
        "        return None\n",
    ),
    "RPR005": (
        "pkg/__init__.py",
        '"""Package."""\n'
        "from os.path import join\n"
        '__all__ = ["join", "missing_name"]\n',
    ),
    "RPR006": (
        "module.py",
        "import numpy as np\n"
        'x = np.zeros(3, dtype="float32")\n',
    ),
    "RPR007": (
        "src/repro/module.py",
        "def report(x):\n"
        '    print("value", x)\n',
    ),
    "RPR008": (
        "module.py",
        "def fancy_periodogram(y):\n"
        '    """Average the thing.  No shape documented."""\n'
        "    return y\n",
    ),
    "RPR009": (
        "src/repro/module.py",
        "class Widget:\n"
        "    def act(self):\n"
        "        return 1\n",
    ),
    "RPR010": (
        "module.py",
        "import time\n"
        "def elapsed(t0):\n"
        "    return time.time() - t0\n",
    ),
    "RPR011": (
        "src/repro/module.py",
        "import multiprocessing\n"
        "def fan_out(jobs):\n"
        "    with multiprocessing.Pool(4) as pool:\n"
        "        return pool.map(str, jobs)\n",
    ),
}

GOOD_EXAMPLES: dict[str, tuple[str, str]] = {
    "RPR001": (
        "module.py",
        "import numpy as np\n"
        "def f(rng: np.random.Generator):\n"
        "    rng2 = np.random.default_rng(42)\n"
        "    return rng.random(3) + rng2.random(3)\n",
    ),
    "RPR002": (
        "module.py",
        "from repro.nn.module import Module\n"
        "class FullLayer(Module):\n"
        "    def forward(self, x, training=False):\n"
        "        return x\n"
        "    def backward(self, grad):\n"
        "        return grad\n",
    ),
    "RPR003": (
        "module.py",
        "def accumulate(item, bucket=None):\n"
        "    bucket = [] if bucket is None else bucket\n"
        "    bucket.append(item)\n"
        "    return bucket\n",
    ),
    "RPR004": (
        "module.py",
        "def risky():\n"
        "    try:\n"
        "        return 1 / 0\n"
        "    except ZeroDivisionError as exc:\n"
        "        raise ValueError('bad denominator') from exc\n",
    ),
    "RPR005": (
        "pkg/__init__.py",
        '"""Package."""\n'
        "from os.path import join\n"
        '__all__ = ["join"]\n',
    ),
    "RPR006": (
        "module.py",
        "import numpy as np\n"
        "x = np.zeros(3, dtype=np.float64)\n",
    ),
    "RPR007": (
        "scripts/run.py",
        "def report(x):\n"
        '    print("value", x)\n',
    ),
    "RPR008": (
        "module.py",
        "def fancy_periodogram(y):\n"
        '    """Average the thing.\n\n'
        "    Returns:\n"
        "        Powers, shape: ``(N,)``.\n"
        '    """\n'
        "    return y\n",
    ),
    "RPR009": (
        "src/repro/module.py",
        "class Widget:\n"
        '    """A documented widget."""\n'
        "    def act(self):\n"
        '        """Do the thing."""\n'
        "        return 1\n"
        "    def _helper(self):\n"
        "        return 2\n",
    ),
    "RPR010": (
        "module.py",
        "import time\n"
        "def elapsed(t0):\n"
        "    return time.monotonic() - t0\n",
    ),
    "RPR011": (
        "src/repro/module.py",
        "from repro.serving.workers import ProcessShardWorker\n"
        "def fan_out(factory):\n"
        "    return ProcessShardWorker(0, factory)\n",
    ),
}


# Registered but demoted from the default selection (superseded by the
# flow-aware RPR012 pack); exercised via explicit --select.
LEGACY_CODES = {"RPR006"}


@pytest.mark.parametrize("code", sorted(BAD_EXAMPLES))
def test_bad_example_is_caught_with_its_code(code):
    path, source = BAD_EXAMPLES[code]
    select = [code] if code in LEGACY_CODES else None
    found = codes(lint_source(source, path=path, select=select))
    assert code in found, f"{code} not raised; got {found}"


@pytest.mark.parametrize("code", sorted(GOOD_EXAMPLES))
def test_good_example_is_clean(code):
    path, source = GOOD_EXAMPLES[code]
    select = [code] if code in LEGACY_CODES else None
    found = codes(lint_source(source, path=path, select=select))
    assert code not in found, f"{code} false positive: {found}"


def test_every_registered_rule_has_a_bad_example():
    assert set(BAD_EXAMPLES) == set(RULES)
    assert len(RULES) >= 8


# ---------------------------------------------------------------------------
# Rule specifics.


def test_unseeded_default_rng_flagged():
    src = "import numpy as np\nrng = np.random.default_rng()\n"
    assert codes(lint_source(src)) == ["RPR001"]


def test_default_rng_reference_without_call_flagged():
    src = (
        "import numpy as np\nfrom dataclasses import field\n"
        "factory = field(default_factory=np.random.default_rng)\n"
    )
    assert "RPR001" in codes(lint_source(src))


def test_seeded_default_rng_clean():
    src = "import numpy as np\nrng = np.random.default_rng(1234)\n"
    assert codes(lint_source(src)) == []


def test_backward_without_forward_flagged():
    src = (
        "from repro.nn.module import Module\n"
        "class Odd(Module):\n"
        '    """Half a layer."""\n'
        "    def backward(self, grad):\n"
        '        """Backward half only."""\n'
        "        return grad\n"
    )
    assert codes(lint_source(src)) == ["RPR002"]


def test_non_module_class_not_held_to_pairing():
    src = (
        "class Featurizer:\n"
        '    """Not a Module."""\n'
        "    def forward(self, x):\n"
        '        """Pass through."""\n'
        "        return x\n"
    )
    assert codes(lint_source(src)) == []


def test_swallowed_specific_exception_flagged():
    src = "try:\n    pass\nexcept ValueError:\n    pass\n"
    assert codes(lint_source(src)) == ["RPR004"]


def test_all_missing_public_name_flagged():
    src = '"""Pkg."""\nfrom os.path import join, split\n__all__ = ["join"]\n'
    findings = lint_source(src, path="pkg/__init__.py")
    assert codes(findings) == ["RPR005"]
    assert "split" in findings[0].message


def test_all_duplicate_entry_flagged():
    src = '"""Pkg."""\nfrom os.path import join\n__all__ = ["join", "join"]\n'
    assert "RPR005" in codes(lint_source(src, path="pkg/__init__.py"))


def test_non_init_file_exempt_from_all_rule():
    src = "from os.path import join, split\n"
    assert codes(lint_source(src, path="pkg/helpers.py")) == []


def test_print_allowed_in_scripts_examples_benchmarks():
    src = 'print("hello")\n'
    for prefix in ("scripts", "examples", "benchmarks"):
        assert codes(lint_source(src, path=f"{prefix}/tool.py")) == []
    assert codes(lint_source(src, path="src/repro/x.py")) == ["RPR007"]


def test_docstring_rule_exempts_nested_and_private():
    src = (
        "def outer():\n"
        '    """Documented."""\n'
        "    def inner():\n"  # nested: not public API
        "        return 1\n"
        "    return inner\n"
        "def _private():\n"
        "    return 2\n"
    )
    assert codes(lint_source(src, path="src/repro/x.py")) == []


def test_docstring_rule_exempts_property_setters():
    src = (
        "class Box:\n"
        '    """A box."""\n'
        "    @property\n"
        "    def value(self):\n"
        '        """The value."""\n'
        "        return self._v\n"
        "    @value.setter\n"
        "    def value(self, v):\n"
        "        self._v = v\n"
    )
    assert codes(lint_source(src, path="src/repro/x.py")) == []


def test_wall_clock_interval_flagged():
    src = "import time\nstart = time.time()\n"
    assert codes(lint_source(src)) == ["RPR010"]


def test_monotonic_and_perf_counter_clean():
    src = "import time\na = time.monotonic()\nb = time.perf_counter()\n"
    assert codes(lint_source(src)) == []


def test_epoch_stamp_suppression_allows_wall_clock():
    src = "import time\nstamp = time.time()  # reprolint: disable=RPR010\n"
    assert codes(lint_source(src)) == []


def test_pool_import_from_flagged():
    src = "from multiprocessing import Pool\n"
    assert codes(lint_source(src, path="src/repro/x.py")) == ["RPR011"]


def test_pool_via_dummy_and_alias_flagged():
    src = (
        "import multiprocessing as mp\n"
        "import multiprocessing.dummy\n"
        "a = mp.Pool(2)\n"
        "b = multiprocessing.dummy.Pool(2)\n"
    )
    assert codes(lint_source(src, path="src/repro/x.py")) == ["RPR011", "RPR011"]


def test_docstring_rule_skips_tests_and_scripts():
    src = "def test_something():\n    assert True\n"
    for prefix in ("tests", "scripts", "examples", "benchmarks"):
        assert codes(lint_source(src, path=f"{prefix}/t.py")) == []


def test_parse_error_reported_as_rpr000():
    findings = lint_source("def broken(:\n", path="bad.py")
    assert codes(findings) == [PARSE_ERROR_CODE]


# ---------------------------------------------------------------------------
# Suppressions.


def test_trailing_suppression_silences_that_line_only():
    src = (
        "import numpy as np\n"
        "a = np.random.default_rng()  # reprolint: disable=RPR001\n"
        "b = np.random.default_rng()\n"
    )
    findings = lint_source(src)
    assert codes(findings) == ["RPR001"]
    assert findings[0].line == 3


def test_standalone_suppression_is_file_wide():
    src = (
        "# reprolint: disable=RPR001\n"
        "import numpy as np\n"
        "a = np.random.default_rng()\n"
        "b = np.random.rand(2)\n"
    )
    assert codes(lint_source(src)) == []


def test_suppression_of_other_code_does_not_leak():
    src = (
        "# reprolint: disable=RPR007\n"
        "import numpy as np\n"
        "a = np.random.default_rng()\n"
    )
    assert codes(lint_source(src)) == ["RPR001"]


# ---------------------------------------------------------------------------
# Registry.


def test_registry_rejects_duplicate_and_malformed_codes():
    class Dupe(LintRule):
        code = "RPR001"
        name = "dupe"
        description = "dupe"
        hint = "dupe"

    with pytest.raises(ValueError):
        register_rule(Dupe)

    class Malformed(LintRule):
        code = "X999"
        name = "malformed"
        description = "malformed"
        hint = "malformed"

    with pytest.raises(ValueError):
        register_rule(Malformed)


def test_select_restricts_rules():
    src = (
        "import numpy as np\n"
        "def f(bucket=[]):\n"
        "    np.random.seed(0)\n"
    )
    assert codes(lint_source(src, select=["RPR003"])) == ["RPR003"]


# ---------------------------------------------------------------------------
# CLI + the repo invariant.


def test_repo_src_tree_is_clean():
    report = lint_paths([str(REPO_ROOT / "src")])
    assert report.n_files > 50
    assert report.ok, "\n".join(
        f"{f.path}:{f.line} {f.code} {f.message}" for f in report.findings
    )


def test_main_exit_codes(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\nnp.random.seed(1)\n")
    good = tmp_path / "good.py"
    good.write_text("x = 1\n")
    assert main([str(good)]) == 0
    assert main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "RPR001" in out and "hint:" in out


def test_main_json_format(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text('def f(x=[]):\n    """Doc."""\n    return x\n')
    assert main([str(bad), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["n_findings"] == 1
    assert payload["findings"][0]["code"] == "RPR003"


def test_main_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in RULES:
        assert code in out


def test_module_invocation_matches_ci_contract(tmp_path):
    """`python -m repro.analysis.lint` is what CI runs; pin its exit codes."""
    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\nnp.random.seed(1)\n")
    env_src = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis.lint", str(bad)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1
    assert "RPR001" in proc.stdout
    assert "RuntimeWarning" not in proc.stderr
