"""Paper-constant sanity: the encoded reference values stay faithful.

These tests pin the numbers the drivers claim the paper reports —
documentation-as-test, so a future edit cannot silently drift the
reference points the measured values are compared against.
"""

from __future__ import annotations

import inspect

from repro.eval import experiments


class TestHeadlineConstants:
    def test_fig09_m2ai_97(self):
        source = inspect.getsource(experiments.run_fig09)
        assert '"M2AI", 0.97' in source or '(0.97, False)' in source

    def test_fig10_calibration_contrast(self):
        source = inspect.getsource(experiments.run_fig10)
        assert "0.97" in source and "0.52" in source

    def test_fig11_three_person_80(self):
        source = inspect.getsource(experiments.run_fig11)
        assert "0.80" in source or "0.8" in source

    def test_fig17_gaps(self):
        # CNN-only -30 points, LSTM-only -25 points from 97%.
        source = inspect.getsource(experiments.run_fig17)
        assert "0.67" in source and "0.72" in source


class TestHardwareConstants:
    def test_r420_facts(self):
        from repro.hardware.hopping import (
            DEFAULT_BASE_MHZ,
            DEFAULT_DWELL_S,
            DEFAULT_N_CHANNELS,
            DEFAULT_STEP_MHZ,
            REFERENCE_FREQ_MHZ,
        )

        assert DEFAULT_N_CHANNELS == 50
        assert DEFAULT_BASE_MHZ == 902.75
        assert DEFAULT_STEP_MHZ == 0.5
        assert DEFAULT_DWELL_S == 0.4
        assert REFERENCE_FREQ_MHZ == 910.25

    def test_antenna_spacing_lambda_8(self):
        from repro.hardware.antenna import DEFAULT_SPACING_M, DEFAULT_WAVELENGTH_M

        assert abs(DEFAULT_SPACING_M - DEFAULT_WAVELENGTH_M / 8) < 1e-12

    def test_room_sizes(self):
        from repro.geometry import make_hall, make_laboratory

        lab, hall = make_laboratory(), make_hall()
        assert (lab.bounds.width, lab.bounds.height) == (13.75, 10.50)
        assert (hall.bounds.width, hall.bounds.height) == (8.75, 7.50)

    def test_network_constants(self):
        from repro.core import M2AIConfig

        cfg = M2AIConfig()
        assert cfg.lstm_hidden == 32
        assert cfg.lstm_layers == 2

    def test_twelve_scenarios_three_tags(self):
        from repro.data import GenerationConfig
        from repro.motion import ATTACHMENTS, SCENARIOS

        assert len(SCENARIOS) == 12
        assert GenerationConfig().tags_per_person == 3
        assert ATTACHMENTS == ("hand", "arm", "shoulder")
