"""Hidden Markov model baseline.

The paper's related work (FEMO [10]) models RFID activity streams with
HMMs; the introduction argues HMMs underperform because good features
and transition rules are hard to hand-pick in the multipath,
multi-object mixture.  This module provides a diagonal-Gaussian HMM
trained with Baum-Welch and a per-class likelihood classifier so the
claim can be tested quantitatively.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Classifier, LabelEncoder
from repro.ml.decomposition import PCA

_LOG_EPS = -1e30


def _logsumexp(a: np.ndarray, axis: int | None = None) -> np.ndarray:
    peak = np.max(a, axis=axis, keepdims=True)
    peak = np.where(np.isfinite(peak), peak, 0.0)
    out = np.log(np.sum(np.exp(a - peak), axis=axis, keepdims=True)) + peak
    return np.squeeze(out, axis=axis) if axis is not None else float(np.squeeze(out))


class GaussianHMM:
    """HMM with diagonal Gaussian emissions, trained by Baum-Welch.

    Args:
        n_states: hidden state count.
        n_iter: EM iterations.
        rng: initialisation randomness.
        reg: variance floor, as a fraction of the data variance.
    """

    def __init__(
        self,
        n_states: int = 4,
        n_iter: int = 15,
        rng: np.random.Generator | None = None,
        reg: float = 1e-2,
    ) -> None:
        if n_states < 1:
            raise ValueError("n_states must be >= 1")
        self.n_states = n_states
        self.n_iter = n_iter
        self.rng = rng or np.random.default_rng(0)
        self.reg = reg
        self.log_start: np.ndarray | None = None
        self.log_trans: np.ndarray | None = None
        self.means: np.ndarray | None = None
        self.vars: np.ndarray | None = None

    def fit(self, sequences: list[np.ndarray]) -> "GaussianHMM":
        """Train on a list of ``(T_i, D)`` observation sequences."""
        if not sequences:
            raise ValueError("need at least one sequence")
        stacked = np.concatenate(sequences, axis=0)
        d = stacked.shape[1]
        s = self.n_states
        floor = self.reg * float(stacked.var() or 1.0)

        # Initialise emissions from randomly assigned segments.
        assignment = self.rng.integers(0, s, size=len(stacked))
        self.means = np.stack(
            [
                stacked[assignment == k].mean(axis=0)
                if (assignment == k).any()
                else stacked[self.rng.integers(len(stacked))]
                for k in range(s)
            ]
        )
        self.vars = np.full((s, d), float(stacked.var(axis=0).mean()) + floor)
        self.log_start = np.log(np.full(s, 1.0 / s))
        trans = np.full((s, s), 0.1 / max(s - 1, 1)) + np.eye(s) * 0.9
        self.log_trans = np.log(trans / trans.sum(axis=1, keepdims=True))

        for _iteration in range(self.n_iter):
            start_acc = np.zeros(s)
            trans_acc = np.zeros((s, s))
            mean_acc = np.zeros((s, d))
            sq_acc = np.zeros((s, d))
            weight_acc = np.zeros(s)
            for seq in sequences:
                log_b = self._log_emission(seq)
                log_alpha = self._forward(log_b)
                log_beta = self._backward(log_b)
                log_gamma = log_alpha + log_beta
                log_gamma -= _logsumexp(log_gamma[-1])
                gamma = np.exp(log_gamma)
                start_acc += gamma[0]
                if len(seq) > 1:
                    for t in range(len(seq) - 1):
                        log_xi = (
                            log_alpha[t][:, None]
                            + self.log_trans
                            + log_b[t + 1][None, :]
                            + log_beta[t + 1][None, :]
                        )
                        log_xi -= _logsumexp(log_xi)
                        trans_acc += np.exp(log_xi)
                weight_acc += gamma.sum(axis=0)
                mean_acc += gamma.T @ seq
                sq_acc += gamma.T @ (seq**2)
            weights = np.maximum(weight_acc, 1e-12)[:, None]
            self.means = mean_acc / weights
            self.vars = np.maximum(sq_acc / weights - self.means**2, floor)
            self.log_start = np.log(
                np.maximum(start_acc / start_acc.sum(), 1e-12)
            )
            rows = np.maximum(trans_acc.sum(axis=1, keepdims=True), 1e-12)
            self.log_trans = np.log(np.maximum(trans_acc / rows, 1e-12))
        return self

    def score(self, seq: np.ndarray) -> float:
        """Log-likelihood of one ``(T, D)`` sequence."""
        if self.means is None:
            raise RuntimeError("HMM not fitted")
        log_b = self._log_emission(np.asarray(seq, dtype=np.float64))
        return float(_logsumexp(self._forward(log_b)[-1]))

    def viterbi(self, seq: np.ndarray) -> np.ndarray:
        """Most likely hidden-state path for one sequence."""
        if self.means is None or self.log_start is None or self.log_trans is None:
            raise RuntimeError("HMM not fitted")
        log_b = self._log_emission(np.asarray(seq, dtype=np.float64))
        steps, s = log_b.shape
        delta = self.log_start + log_b[0]
        back = np.zeros((steps, s), dtype=int)
        for t in range(1, steps):
            scores = delta[:, None] + self.log_trans
            back[t] = scores.argmax(axis=0)
            delta = scores.max(axis=0) + log_b[t]
        path = np.zeros(steps, dtype=int)
        path[-1] = int(delta.argmax())
        for t in range(steps - 2, -1, -1):
            path[t] = back[t + 1, path[t + 1]]
        return path

    def _log_emission(self, seq: np.ndarray) -> np.ndarray:
        assert self.means is not None and self.vars is not None
        diff = seq[:, None, :] - self.means[None, :, :]
        return -0.5 * np.sum(
            np.log(2.0 * np.pi * self.vars)[None] + diff**2 / self.vars[None],
            axis=2,
        )

    def _forward(self, log_b: np.ndarray) -> np.ndarray:
        assert self.log_start is not None and self.log_trans is not None
        steps, s = log_b.shape
        alpha = np.full((steps, s), _LOG_EPS)
        alpha[0] = self.log_start + log_b[0]
        for t in range(1, steps):
            alpha[t] = log_b[t] + _logsumexp(
                alpha[t - 1][:, None] + self.log_trans, axis=0
            )
        return alpha

    def _backward(self, log_b: np.ndarray) -> np.ndarray:
        assert self.log_trans is not None
        steps, s = log_b.shape
        beta = np.zeros((steps, s))
        for t in range(steps - 2, -1, -1):
            beta[t] = _logsumexp(
                self.log_trans + (log_b[t + 1] + beta[t + 1])[None, :], axis=1
            )
        return beta


class HMMActivityClassifier(Classifier):
    """Per-class HMMs over PCA-reduced frame sequences.

    The prior-work baseline: one :class:`GaussianHMM` per activity,
    classified by maximum sequence likelihood.  Accepts either flat
    features (reshaped using ``n_frames``) or ``(n, T, D)`` sequences.

    Args:
        n_states: hidden states per class model.
        n_components: PCA dimensions for the per-frame features.
        n_frames: frame count used to fold flat inputs back into
            sequences.
        n_iter: Baum-Welch iterations.
        rng: randomness.
    """

    def __init__(
        self,
        n_states: int = 4,
        n_components: int = 8,
        n_frames: int | None = None,
        n_iter: int = 10,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.n_states = n_states
        self.n_components = n_components
        self.n_frames = n_frames
        self.n_iter = n_iter
        self.rng = rng or np.random.default_rng(0)
        self._encoder = LabelEncoder()
        self._pca: PCA | None = None
        self._models: dict[int, GaussianHMM] = {}

    def _to_sequences(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 3:
            return x
        if x.ndim == 2:
            if self.n_frames is None:
                raise ValueError("flat input needs n_frames")
            n, total = x.shape
            if total % self.n_frames:
                raise ValueError(
                    f"flat dim {total} not divisible by n_frames={self.n_frames}"
                )
            return x.reshape(n, self.n_frames, total // self.n_frames)
        raise ValueError(f"expected 2-D or 3-D features, got {x.shape}")

    def fit(self, x: np.ndarray, y: np.ndarray) -> "HMMActivityClassifier":
        """Fit the classifier; returns ``self``."""
        sequences = self._to_sequences(x)
        y = np.asarray(y)
        ids = self._encoder.fit_transform(y)
        n, steps, d = sequences.shape
        self._pca = PCA(min(self.n_components, d, n * steps))
        reduced = self._pca.fit_transform(sequences.reshape(-1, d)).reshape(
            n, steps, -1
        )
        self._models = {}
        for cls in range(self._encoder.n_classes):
            member_seqs = [reduced[i] for i in np.flatnonzero(ids == cls)]
            model = GaussianHMM(
                n_states=self.n_states,
                n_iter=self.n_iter,
                rng=np.random.default_rng(self.rng.integers(2**31)),
            )
            model.fit(member_seqs)
            self._models[cls] = model
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted class ids for ``x``, shape ``(B,)``."""
        if self._pca is None or not self._models:
            raise RuntimeError("classifier not fitted")
        sequences = self._to_sequences(x)
        n, steps, d = sequences.shape
        reduced = self._pca.transform(sequences.reshape(-1, d)).reshape(n, steps, -1)
        scores = np.empty((n, len(self._models)))
        for cls, model in self._models.items():
            scores[:, cls] = [model.score(reduced[i]) for i in range(n)]
        return self._encoder.inverse(scores.argmax(axis=1))
