"""ResultsStore durability: atomic publish, quarantine, resume."""

from __future__ import annotations

import json

import pytest

from repro.experiments import ResultRecord, ResultsStore, make_spec
from repro.experiments.store import atomic_write_text
from tests.experiments.toyreg import run_toy


def make_record(seed=0, elapsed=1.0):
    spec = make_spec("toy", "quick", seed)
    return ResultRecord.from_result(spec, run_toy(seed=seed), elapsed)


@pytest.fixture()
def store(tmp_path):
    return ResultsStore(tmp_path / "results")


class TestRoundTrip:
    def test_put_get(self, store):
        record = make_record()
        store.put(record)
        assert record.spec.key in store
        back = store.get(record.spec.key)
        assert back.to_payload() == record.to_payload()

    def test_absent_key(self, store):
        assert store.get("missing--quick--s0--000000000000") is None
        assert "whatever" not in store

    def test_keys_and_records_sorted(self, store):
        for seed in (3, 1, 2):
            store.put(make_record(seed))
        keys = store.keys()
        assert keys == sorted(keys)
        assert [r.spec.seed for r in store.records()] == [
            int(k.split("--s")[1].split("--")[0]) for k in keys
        ]

    def test_delete(self, store):
        record = make_record()
        store.put(record)
        assert store.delete(record.spec.key) is True
        assert store.delete(record.spec.key) is False
        assert record.spec.key not in store


class TestAtomicity:
    def test_no_temp_droppings(self, store):
        store.put(make_record())
        leftovers = [p for p in store.root.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_overwrite_is_atomic(self, store):
        record = make_record()
        store.put(record)
        record.elapsed_s = 42.0
        store.put(record)
        assert store.get(record.spec.key).elapsed_s == 42.0
        assert len(list(store.root.glob("*.json"))) == 1

    def test_failed_write_leaves_old_record(self, store, monkeypatch):
        record = make_record()
        store.put(record)

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr("repro.experiments.store.os.replace", boom)
        broken = make_record(elapsed=99.0)
        with pytest.raises(OSError):
            store.put(broken)
        monkeypatch.undo()
        assert store.get(record.spec.key).elapsed_s == 1.0
        leftovers = [p for p in store.root.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []


class TestQuarantine:
    def test_torn_write_is_quarantined_with_warning(self, store):
        record = make_record()
        path = store.put(record)
        # Simulate a crash mid-write that somehow hit the final path.
        path.write_text(record.to_json()[: len(record.to_json()) // 2])
        with pytest.warns(RuntimeWarning, match="unreadable"):
            assert store.get(record.spec.key) is None
        assert not path.exists()
        assert path.with_suffix(".corrupt").exists()

    def test_garbage_json_is_quarantined(self, store):
        record = make_record()
        path = store.path_for(record.spec.key)
        atomic_write_text(path, "{not json at all")
        with pytest.warns(RuntimeWarning):
            assert store.get(record.spec.key) is None

    def test_misfiled_record_is_quarantined(self, store):
        """A record copied under the wrong key must not be served."""
        record = make_record(seed=0)
        other = make_spec("toy", "quick", 9)
        atomic_write_text(store.path_for(other.key), record.to_json())
        with pytest.warns(RuntimeWarning, match="belongs to"):
            assert store.get(other.key) is None

    def test_records_skips_corrupt(self, store):
        good = make_record(seed=0)
        store.put(good)
        bad = make_record(seed=1)
        store.path_for(bad.spec.key).write_text("garbage")
        with pytest.warns(RuntimeWarning):
            records = store.records()
        assert [r.spec.key for r in records] == [good.spec.key]

    def test_tampered_payload_key_is_quarantined(self, store):
        record = make_record()
        payload = record.to_payload()
        payload["rows"][0]["measured"] = 0.123  # tamper without re-keying
        payload["key"] = "forged--quick--s0--abcdefabcdef"
        atomic_write_text(
            store.path_for(record.spec.key),
            json.dumps(payload, sort_keys=True),
        )
        with pytest.warns(RuntimeWarning):
            assert store.get(record.spec.key) is None
