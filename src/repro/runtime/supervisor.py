"""The pipeline supervisor: a supervised serving loop for streaming.

:class:`~repro.core.streaming.StreamingIdentifier` is a pure function
from a window to a decision; it raises when a stage breaks.  The
supervisor wraps it in the process-level guarantees a deployment
needs:

* a **bounded backpressure queue** with a drop-oldest shed policy —
  when windows arrive faster than they are served, the freshest data
  wins and the shed count is observable;
* **per-stage circuit breakers** (DSP featurisation stages and the
  network forward) so a persistently failing stage degrades to the
  identifier's existing abstain path instead of raising on every
  window, and recovers through a timed half-open probe;
* a **per-window wall-clock deadline** checked at stage boundaries
  via a monotonic clock;
* a **dead-letter buffer** retaining the last K failed windows with
  their exceptions, so operators can inspect what was lost;
* a :meth:`~PipelineSupervisor.health` report with an explicit
  HEALTHY / DEGRADED / FAILED state machine.

Every window submitted yields exactly one decision — labelled,
abstained, or degraded — and no exception ever escapes the serving
loop.  ``repro.core`` symbols are imported lazily inside methods to
keep this module import-light (streaming imports the breaker
boundaries from this package).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.obs.metrics import counter, gauge
from repro.runtime.breaker import (
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceededError,
    GuardSet,
    StageFailureError,
    guard_scope,
)
from repro.obs.tracing import span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.streaming import StreamingIdentifier, WindowDecision
    from repro.hardware.llrp import ReadLog

HEALTH_HEALTHY = "healthy"
"""Health state: every breaker closed, nothing shed or dead-lettered."""

HEALTH_DEGRADED = "degraded"
"""Health state: serving continues but something is wrong (a breaker
not closed, shed windows, or dead letters)."""

HEALTH_FAILED = "failed"
"""Health state: no labelled decision can currently be produced (the
predict breaker — or every DSP breaker — is open)."""

GUARDED_STAGES = ("dsp.frames", "dsp.music", "dsp.periodogram", "predict")
"""Stages the supervisor places circuit breakers on."""

_DSP_STAGES = ("dsp.frames", "dsp.music", "dsp.periodogram")


@dataclass(frozen=True)
class DeadLetter:
    """One failed window retained for inspection.

    Attributes:
        t_start_s: window start in stream time.
        t_end_s: window end.
        stage: guarded stage the failure was attributed to (the
            catch-all ``"window"`` for unattributed failures).
        error: ``repr`` of the exception that killed the window.
        n_reads: reads the window held.
    """

    t_start_s: float
    t_end_s: float
    stage: str
    error: str
    n_reads: int


@dataclass(frozen=True)
class HealthReport:
    """Snapshot of the supervisor's serving health.

    Attributes:
        state: one of :data:`HEALTH_HEALTHY`, :data:`HEALTH_DEGRADED`,
            :data:`HEALTH_FAILED`.
        breaker_states: stage name → breaker state string.
        queue_depth: windows currently enqueued.
        queue_capacity: the bound on the queue.
        shed_windows: windows dropped (oldest-first) by backpressure.
        dead_letter_count: failed windows currently retained.
        windows_total: windows fully processed so far.
        windows_abstained: processed windows that abstained (for any
            reason, including degradations).
        windows_failed: processed windows that were dead-lettered.
    """

    state: str
    breaker_states: dict[str, str]
    queue_depth: int
    queue_capacity: int
    shed_windows: int
    dead_letter_count: int
    windows_total: int
    windows_abstained: int
    windows_failed: int

    def as_dict(self) -> dict[str, object]:
        """JSON-ready representation."""
        return {
            "state": self.state,
            "breaker_states": dict(self.breaker_states),
            "queue_depth": self.queue_depth,
            "queue_capacity": self.queue_capacity,
            "shed_windows": self.shed_windows,
            "dead_letter_count": self.dead_letter_count,
            "windows_total": self.windows_total,
            "windows_abstained": self.windows_abstained,
            "windows_failed": self.windows_failed,
        }


@dataclass(frozen=True)
class _QueuedWindow:
    t_start_s: float
    log: "ReadLog"


@dataclass
class PreparedWindow:
    """One dequeued window, part-way through split-phase serving.

    Produced by :meth:`PipelineSupervisor.begin_window` (admission
    checks + featurisation under guards) and consumed by
    :meth:`PipelineSupervisor.finish_window` (scoring + accounting).
    A fleet shard holds these between the two phases so inference can
    be batched across streams.

    Attributes:
        t_start_s: the window's nominal start in stream time.
        t_end_s: window end.
        n_reads: reads the window held (0 when the log is poisoned).
        deadline: absolute monotonic deadline, None when disabled.
        guards: the guard set the window was prepared under (reuse it
            for per-stream fallback inference).
        sample: featurised sample awaiting inference, None when
            ``decision`` already resolved the window.
        decision: the resolved decision (early abstain or degradation),
            None while inference is still pending.
    """

    t_start_s: float
    t_end_s: float
    n_reads: int
    deadline: float | None
    guards: GuardSet
    sample: object | None = None
    decision: "WindowDecision | None" = None
    _item: _QueuedWindow | None = None


class PipelineSupervisor:
    """Drives a :class:`StreamingIdentifier` with runtime supervision.

    Args:
        identifier: the fitted serving-path identifier.
        max_queue: backpressure bound; submitting to a full queue
            drops the *oldest* queued window (freshest data wins).
        dead_letter_capacity: how many failed windows to retain.
        window_deadline_s: per-window wall-clock budget (``None``
            disables the deadline).
        failure_threshold: consecutive failures that open a stage
            breaker.
        reset_timeout_s: open-breaker hold time before a half-open
            probe.
        clock: monotonic time source shared by deadlines and breakers
            (injectable for deterministic tests).
    """

    def __init__(
        self,
        identifier: "StreamingIdentifier",
        max_queue: int = 64,
        dead_letter_capacity: int = 16,
        window_deadline_s: float | None = None,
        failure_threshold: int = 3,
        reset_timeout_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if dead_letter_capacity < 1:
            raise ValueError("dead_letter_capacity must be >= 1")
        if window_deadline_s is not None and window_deadline_s <= 0:
            raise ValueError("window_deadline_s must be positive when set")
        self.identifier = identifier
        self.max_queue = int(max_queue)
        self.window_deadline_s = window_deadline_s
        self.clock = clock
        self.breakers = {
            stage: CircuitBreaker(
                stage,
                failure_threshold=failure_threshold,
                reset_timeout_s=reset_timeout_s,
                clock=clock,
            )
            for stage in GUARDED_STAGES
        }
        self._queue: deque[_QueuedWindow] = deque()
        self._dead_letters: deque[DeadLetter] = deque(maxlen=dead_letter_capacity)
        self._shed = 0
        self._windows_total = 0
        self._abstained = 0
        self._failed = 0

    @property
    def queue_depth(self) -> int:
        """Windows currently waiting in the backpressure queue."""
        return len(self._queue)

    def dead_letters(self) -> list[DeadLetter]:
        """The last K failed windows, oldest first."""
        return list(self._dead_letters)

    def submit(self, window_log: "ReadLog", t_start_s: float) -> int:
        """Enqueue one window; shed the oldest entry when full.

        Args:
            window_log: the reads of one observation window.
            t_start_s: the window's nominal start in stream time.

        Returns:
            Number of windows shed to make room (0 or 1).
        """
        shed = 0
        if len(self._queue) >= self.max_queue:
            self._queue.popleft()
            self._shed += 1
            shed = 1
            counter("runtime.queue.shed_total").inc()
        self._queue.append(_QueuedWindow(t_start_s=float(t_start_s), log=window_log))
        gauge("runtime.queue.depth").set(float(len(self._queue)))
        return shed

    def submit_stream(self, log: "ReadLog") -> int:
        """Cut a continuous log into windows and enqueue each.

        Returns:
            Number of complete windows enqueued.
        """
        from repro.core.streaming import split_windows

        windows = split_windows(
            log, self.identifier.window_s, self.identifier.hop_s
        )
        for t_start, window_log in windows:
            self.submit(window_log, t_start)
        return len(windows)

    def drain(self) -> list["WindowDecision"]:
        """Serve every queued window; one decision per window.

        Decisions are emitted in queue order.  A window whose
        processing fails at any stage degrades to an abstain decision
        (and a dead letter) — this method never raises for a window,
        and never loses one: even a failure in the supervision
        machinery itself (a poisoned log raising on attribute access)
        yields a dead-lettered abstain decision.

        Returns:
            One :class:`WindowDecision` per drained window.
        """
        decisions = []
        while self._queue:
            item = self.pop_window()
            if item is None:  # pragma: no cover - single-threaded guard
                break
            try:
                decisions.append(self._process_window(item))
            except Exception as exc:
                # The supervision machinery itself failed.  The window
                # was already dequeued, so dropping it here would lose
                # it silently: account for it explicitly.
                decisions.append(self._lost_window(item, exc))
        return decisions

    def pop_window(self) -> _QueuedWindow | None:
        """Dequeue the next window for external processing, if any.

        Split-phase API (fleet shards): pair every popped window with
        a :meth:`begin_window` / :meth:`finish_window` cycle so no
        dequeued window is ever lost.
        """
        if not self._queue:
            return None
        item = self._queue.popleft()
        gauge("runtime.queue.depth").set(float(len(self._queue)))
        return item

    def process(self, log: "ReadLog") -> list["WindowDecision"]:
        """Submit a continuous log and drain it: the one-call API.

        Returns:
            One decision per complete window of ``log`` (minus any
            windows shed by backpressure).
        """
        self.submit_stream(log)
        return self.drain()

    def health(self) -> HealthReport:
        """The HEALTHY / DEGRADED / FAILED health snapshot.

        FAILED when no labelled decision can currently be produced:
        the ``predict`` breaker is open, or every DSP featurisation
        breaker is open.  DEGRADED when serving continues but any
        breaker is not closed, windows were shed, or dead letters are
        retained.  HEALTHY otherwise.
        """
        states = {stage: b.state for stage, b in self.breakers.items()}
        from repro.runtime.breaker import STATE_CLOSED, STATE_OPEN

        if states["predict"] == STATE_OPEN or all(
            states[stage] == STATE_OPEN for stage in _DSP_STAGES
        ):
            state = HEALTH_FAILED
        elif (
            any(s != STATE_CLOSED for s in states.values())
            or self._shed > 0
            or len(self._dead_letters) > 0
        ):
            state = HEALTH_DEGRADED
        else:
            state = HEALTH_HEALTHY
        return HealthReport(
            state=state,
            breaker_states=states,
            queue_depth=len(self._queue),
            queue_capacity=self.max_queue,
            shed_windows=self._shed,
            dead_letter_count=len(self._dead_letters),
            windows_total=self._windows_total,
            windows_abstained=self._abstained,
            windows_failed=self._failed,
        )

    def _process_window(self, item: _QueuedWindow) -> "WindowDecision":
        """Serve one window under guards; always returns a decision."""
        with span("runtime.window", t_start_s=item.t_start_s):
            try:
                with guard_scope(
                    GuardSet(
                        self.breakers,
                        deadline=self._window_deadline(),
                        clock=self.clock,
                    )
                ) as guards:
                    decision = self.identifier.identify_window(
                        item.log, item.t_start_s
                    )
            except Exception as exc:
                decision = self._degrade(item, self._safe_n_reads(item), exc)
            else:
                decision = self._deadline_post_check(
                    item, item.log.n_reads, guards.deadline, decision
                )
        return self._finalize(decision)

    def drop_window(
        self,
        item: _QueuedWindow,
        stage: str = "shed",
        error: BaseException | None = None,
    ) -> None:
        """Dead-letter a dequeued window without serving it.

        The fleet's load-shedding path: a shed window is lost work,
        so it is counted with the backpressure sheds *and* retained as
        a stage-attributed dead letter — never dropped silently.
        """
        self._shed += 1
        counter("runtime.queue.shed_total").inc()
        self._dead_letter(
            item,
            item.t_start_s + self.identifier.window_s,
            stage,
            error or RuntimeError("window shed under overload"),
        )

    def begin_window(
        self,
        item: _QueuedWindow,
        precomputed: tuple | None = None,
    ) -> PreparedWindow:
        """Split-phase step 1: admission checks + featurisation.

        Runs :meth:`StreamingIdentifier.prepare_window` under this
        supervisor's guards (DSP breakers + window deadline).  Any
        failure degrades to a resolved abstain decision (and a dead
        letter) on the returned :class:`PreparedWindow`; a resolved
        window must still go through :meth:`finish_window` for
        accounting.  Never raises.

        Args:
            item: the dequeued window.
            precomputed: an already-prepared ``(decision, sample)``
                pair from :meth:`StreamingIdentifier.prepare_windows`
                — a fleet shard pools DSP featurisation across clean
                streams and hands each lane its slice here.  The
                window's deadline then starts at hand-off (prepare
                time is shared, so it is not billed to any one lane).
        """
        deadline = self._window_deadline()
        guards = GuardSet(self.breakers, deadline=deadline, clock=self.clock)
        prep = PreparedWindow(
            t_start_s=item.t_start_s,
            t_end_s=item.t_start_s + self.identifier.window_s,
            n_reads=0,
            deadline=deadline,
            guards=guards,
            _item=item,
        )
        try:
            prep.n_reads = int(item.log.n_reads)
            if precomputed is not None:
                decision, sample = precomputed
            else:
                with guard_scope(guards):
                    decision, sample = self.identifier.prepare_window(
                        item.log, item.t_start_s
                    )
        except Exception as exc:
            prep.decision = self._degrade(item, prep.n_reads, exc)
        else:
            prep.decision = decision
            prep.sample = sample
        return prep

    def finish_window(
        self,
        prep: PreparedWindow,
        proba: "np.ndarray | None" = None,
        error: BaseException | None = None,
    ) -> "WindowDecision":
        """Split-phase step 2: score, post-deadline check, accounting.

        Args:
            prep: the window from :meth:`begin_window`.
            proba: the window's row of the batched inference output
                (required when ``prep`` is still pending and ``error``
                is None).
            error: the exception that killed the window's inference,
                when batched/fallback predict failed.

        Returns:
            Exactly one decision per prepared window.  Never raises.
        """
        item = prep._item or _QueuedWindow(
            t_start_s=prep.t_start_s, log=None  # type: ignore[arg-type]
        )
        decision = prep.decision
        if decision is None:
            if error is not None:
                decision = self._degrade(item, prep.n_reads, error)
            else:
                try:
                    if proba is None:
                        raise ValueError(
                            "finish_window needs proba for a pending window"
                        )
                    decision = self.identifier.score_window(
                        prep.t_start_s, prep.n_reads, proba
                    )
                except Exception as exc:
                    decision = self._degrade(item, prep.n_reads, exc)
        from repro.core.streaming import (
            REASON_BREAKER_OPEN,
            REASON_DEADLINE,
            REASON_STAGE_FAILURE,
        )

        if decision.reason not in (
            REASON_BREAKER_OPEN,
            REASON_DEADLINE,
            REASON_STAGE_FAILURE,
        ):
            # Degraded windows were already dead-lettered; only cleanly
            # served decisions face the late-completion deadline check.
            decision = self._deadline_post_check(
                item, prep.n_reads, prep.deadline, decision
            )
        counter("streaming.windows_total").inc()
        return self._finalize(decision)

    def _window_deadline(self) -> float | None:
        """Absolute monotonic deadline for a window starting now."""
        if self.window_deadline_s is None:
            return None
        return self.clock() + self.window_deadline_s

    def _degrade(
        self, item: _QueuedWindow, n_reads: int, exc: BaseException
    ) -> "WindowDecision":
        """Map a failure to an abstain decision plus a dead letter."""
        from repro.core.streaming import (
            REASON_BREAKER_OPEN,
            REASON_DEADLINE,
            REASON_STAGE_FAILURE,
            abstain_decision,
        )

        t_end = item.t_start_s + self.identifier.window_s
        if isinstance(exc, CircuitOpenError):
            reason, stage, cause = REASON_BREAKER_OPEN, exc.stage, exc
        elif isinstance(exc, DeadlineExceededError):
            counter("runtime.deadline_exceeded_total").inc()
            reason, stage, cause = REASON_DEADLINE, exc.stage, exc
        elif isinstance(exc, StageFailureError):
            reason, stage = REASON_STAGE_FAILURE, exc.stage
            cause = exc.__cause__ or exc
        else:
            # Unattributed failure (calibration, windowing, ...):
            # still degrade to an abstain, never escape.
            reason, stage, cause = REASON_STAGE_FAILURE, "window", exc
        self._dead_letter(item, t_end, stage, cause, n_reads=n_reads)
        return abstain_decision(item.t_start_s, t_end, n_reads, reason)

    def _deadline_post_check(
        self,
        item: _QueuedWindow,
        n_reads: int,
        deadline: float | None,
        decision: "WindowDecision",
    ) -> "WindowDecision":
        """Discard a decision completed past its budget."""
        from repro.core.streaming import REASON_DEADLINE, abstain_decision

        if deadline is None or self.clock() <= deadline:
            return decision
        # Completed, but past budget: a late decision is useless to a
        # real-time consumer.
        counter("runtime.deadline_exceeded_total").inc()
        t_end = item.t_start_s + self.identifier.window_s
        self._dead_letter(
            item, t_end, "window", DeadlineExceededError("window"),
            n_reads=n_reads,
        )
        return abstain_decision(item.t_start_s, t_end, n_reads, REASON_DEADLINE)

    def _finalize(self, decision: "WindowDecision") -> "WindowDecision":
        """Per-window accounting shared by both serving paths."""
        self._windows_total += 1
        counter("runtime.windows_total").inc()
        if decision.abstained:
            self._abstained += 1
        return decision

    def _lost_window(
        self, item: _QueuedWindow, exc: BaseException
    ) -> "WindowDecision":
        """Account for a window the machinery itself failed on.

        A dequeued window must never vanish: it lands in the dead
        letters attributed to the ``supervisor`` stage and yields a
        stage-failure abstain, keeping queue + dead-letter + decision
        counts summing to submissions.
        """
        from repro.core.streaming import REASON_STAGE_FAILURE, abstain_decision

        t_end = item.t_start_s + self.identifier.window_s
        n_reads = self._safe_n_reads(item)
        self._dead_letter(item, t_end, "supervisor", exc, n_reads=n_reads)
        return self._finalize(
            abstain_decision(
                item.t_start_s, t_end, n_reads, REASON_STAGE_FAILURE
            )
        )

    @staticmethod
    def _safe_n_reads(item: _QueuedWindow) -> int:
        """Read count of a possibly poisoned log (0 when unreadable)."""
        try:
            return int(item.log.n_reads)
        except Exception:
            return 0

    def _dead_letter(
        self,
        item: _QueuedWindow,
        t_end: float,
        stage: str,
        exc: BaseException,
        n_reads: int | None = None,
    ) -> None:
        self._failed += 1
        counter("runtime.dead_letter_total", stage=stage).inc()
        self._dead_letters.append(
            DeadLetter(
                t_start_s=item.t_start_s,
                t_end_s=t_end,
                stage=stage,
                error=repr(exc),
                n_reads=(
                    self._safe_n_reads(item) if n_reads is None else n_reads
                ),
            )
        )
