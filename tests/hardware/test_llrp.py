"""ReadLog container semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware import ReadLog, ReaderMeta, concatenate_logs


def make_log(n: int = 10, epcs=("A", "B"), t0: float = 0.0) -> ReadLog:
    meta = ReaderMeta(
        n_antennas=4,
        slot_s=0.025,
        dwell_s=0.4,
        spacing_m=0.04,
        frequencies_hz=np.linspace(902.75e6, 927.25e6, 50),
        reference_channel=15,
    )
    rng = np.random.default_rng(0)
    return ReadLog(
        epcs=epcs,
        tag_index=rng.integers(0, len(epcs), n),
        antenna=rng.integers(0, 4, n),
        channel=rng.integers(0, 50, n),
        frequency_hz=np.full(n, 910e6),
        timestamp_s=t0 + np.sort(rng.uniform(0, 1, n)),
        phase_rad=rng.uniform(0, 2 * np.pi, n),
        rssi_dbm=rng.uniform(-80, -50, n),
        meta=meta,
    )


class TestReadLog:
    def test_length_validation(self):
        log = make_log(5)
        with pytest.raises(ValueError):
            ReadLog(
                epcs=log.epcs,
                tag_index=log.tag_index,
                antenna=log.antenna[:-1],
                channel=log.channel,
                frequency_hz=log.frequency_hz,
                timestamp_s=log.timestamp_s,
                phase_rad=log.phase_rad,
                rssi_dbm=log.rssi_dbm,
                meta=log.meta,
            )

    def test_counts(self):
        log = make_log(10)
        assert log.n_reads == 10
        assert log.n_tags == 2

    def test_for_tag_filters_and_caches(self):
        log = make_log(50)
        sub = log.for_tag(0)
        assert (sub.tag_index == 0).all()
        assert log.for_tag(0) is sub  # cached

    def test_select(self):
        log = make_log(20)
        sub = log.select(log.rssi_dbm > -65)
        assert (sub.rssi_dbm > -65).all()
        assert sub.meta is log.meta

    def test_duration(self):
        log = make_log(10)
        assert log.duration_s == pytest.approx(
            float(log.timestamp_s.max() - log.timestamp_s.min())
        )

    def test_read_rate_empty_tag(self):
        log = make_log(10, epcs=("A", "B", "C"))
        never_read = [t for t in range(3) if (log.tag_index != t).all()]
        for t in never_read:
            assert log.read_rate_hz(t) == 0.0

    def test_select_rejects_non_boolean_mask(self):
        log = make_log(10)
        with pytest.raises(ValueError):
            log.select(np.arange(10))

    def test_select_rejects_wrong_length_mask(self):
        log = make_log(10)
        with pytest.raises(ValueError):
            log.select(np.ones(9, dtype=bool))

    def test_antenna_liveness(self):
        log = make_log(50)
        silenced = log.select(np.isin(log.antenna, [0, 2]))
        assert np.array_equal(
            silenced.antenna_liveness(), [True, False, True, False]
        )
        assert make_log(200).antenna_liveness().all()


class TestConcatenate:
    def test_concatenation(self):
        a, b = make_log(5), make_log(7, t0=2.0)
        merged = concatenate_logs([a, b])
        assert merged.n_reads == 12

    def test_mismatched_tags_rejected(self):
        with pytest.raises(ValueError):
            concatenate_logs([make_log(5), make_log(5, epcs=("X",))])

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            concatenate_logs([])

    @staticmethod
    def _with_meta(log: ReadLog, **meta_overrides) -> ReadLog:
        from dataclasses import replace

        return ReadLog(
            epcs=log.epcs,
            tag_index=log.tag_index,
            antenna=log.antenna,
            channel=log.channel,
            frequency_hz=log.frequency_hz,
            timestamp_s=log.timestamp_s,
            phase_rad=log.phase_rad,
            rssi_dbm=log.rssi_dbm,
            meta=replace(log.meta, **meta_overrides),
        )

    @pytest.mark.parametrize("timing", [{"dwell_s": 0.3}, {"slot_s": 0.05}])
    def test_mismatched_timing_rejected(self, timing):
        a = make_log(5)
        b = self._with_meta(make_log(5, t0=2.0), **timing)
        with pytest.raises(ValueError, match="timing"):
            concatenate_logs([a, b])

    def test_mismatched_channel_table_rejected(self):
        a = make_log(5)
        b = make_log(5, t0=2.0)
        b = self._with_meta(b, frequencies_hz=b.meta.frequencies_hz + 0.5e6)
        with pytest.raises(ValueError, match="channel tables"):
            concatenate_logs([a, b])
