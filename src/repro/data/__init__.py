"""Synthetic dataset generation and workload presets."""

from repro.data.generator import (
    ENVIRONMENTS,
    GenerationConfig,
    RawSample,
    SyntheticDatasetGenerator,
    vary,
)
from repro.data.workloads import (
    full_generation,
    full_training,
    quick_generation,
    quick_training,
    tiny_generation,
)

__all__ = [
    "ENVIRONMENTS",
    "GenerationConfig",
    "RawSample",
    "SyntheticDatasetGenerator",
    "full_generation",
    "full_training",
    "quick_generation",
    "quick_training",
    "tiny_generation",
    "vary",
]
