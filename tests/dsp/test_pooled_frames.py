"""Cross-window pooled featurisation: equality with the scalar path.

The fleet-serving contract (DESIGN.md section 12): pooling many
windows' DSP through one binning pass and one stacked MUSIC /
periodogram batch must reproduce the per-window path *bit for bit* —
the throughput study asserts identical decisions, and these tests pin
the invariant at the feature level where a drift would originate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsp import (
    build_snapshots_all,
    build_snapshots_many,
    build_spectrum_frames,
    build_spectrum_frames_many,
    uncalibrated,
)
from repro.dsp.features import M2AIFeaturizer


def _time_windows(log, n_windows=3):
    """Cut a log into equal time slices (distinct spans and t0s)."""
    t = log.timestamp_s
    edges = np.linspace(t.min(), t.max() + 1e-9, n_windows + 1)
    return [
        log.select((t >= lo) & (t < hi))
        for lo, hi in zip(edges[:-1], edges[1:])
    ]


class TestBuildSnapshotsMany:
    def test_slices_match_per_window_builder(self, small_log):
        logs = _time_windows(small_log, 3)
        psis = [uncalibrated(log) for log in logs]
        z, valid, wavelength, frame_time = build_snapshots_many(logs, psis, 4)
        for w, (log, psi) in enumerate(zip(logs, psis)):
            sets = build_snapshots_all(log, psi, n_frames=4)
            for k, snaps in enumerate(sets):
                np.testing.assert_array_equal(z[w, k], snaps.z)
                np.testing.assert_array_equal(valid[w, k], snaps.valid)
                np.testing.assert_array_equal(
                    wavelength[w, k], snaps.wavelength_m
                )
                np.testing.assert_array_equal(
                    frame_time[w], snaps.frame_time_s
                )

    def test_duplicate_bins_keep_last_read(self, small_log):
        # Same log twice: duplicate resolution must stay per-window.
        psis = [uncalibrated(small_log)] * 2
        z, valid, _wl, _ft = build_snapshots_many(
            [small_log, small_log], psis, 4
        )
        np.testing.assert_array_equal(z[0], z[1])
        np.testing.assert_array_equal(valid[0], valid[1])

    def test_misaligned_psi_rejected(self, small_log):
        with pytest.raises(ValueError):
            build_snapshots_many(
                [small_log], [uncalibrated(small_log)[:-1]], 4
            )


class TestBuildSpectrumFramesMany:
    def test_matches_scalar_per_window(self, small_log):
        logs = _time_windows(small_log, 3)
        # Mixed frame counts force two geometry groups; None derives
        # the count from the window span.
        windows = [
            (logs[0], uncalibrated(logs[0]), 4),
            (logs[1], uncalibrated(logs[1]), 4),
            (logs[2], uncalibrated(logs[2]), 2),
            (logs[0], uncalibrated(logs[0]), None),
        ]
        many = build_spectrum_frames_many(windows)
        for (log, psi, n_frames), pooled in zip(windows, many):
            one = build_spectrum_frames(log, psi, n_frames=n_frames)
            assert sorted(pooled.channels) == sorted(one.channels)
            for name in one.channels:
                np.testing.assert_array_equal(
                    pooled.channels[name], one.channels[name]
                )
            np.testing.assert_array_equal(
                pooled.meta["antenna_liveness"],
                one.meta["antenna_liveness"],
            )

    def test_dead_port_window_takes_scalar_path(self, small_log):
        dead = small_log.select(small_log.antenna != 2)
        windows = [
            (small_log, uncalibrated(small_log), 4),
            (dead, uncalibrated(dead), 4),
        ]
        many = build_spectrum_frames_many(windows)
        assert not many[1].meta["antenna_liveness"][2]
        one = build_spectrum_frames(dead, uncalibrated(dead), n_frames=4)
        for name in one.channels:
            np.testing.assert_array_equal(
                many[1].channels[name], one.channels[name]
            )

    def test_featurizer_transform_many_matches_transform(self, small_log):
        feat = M2AIFeaturizer()
        logs = _time_windows(small_log, 2)
        windows = [(log, uncalibrated(log), 4) for log in logs]
        many = feat.transform_many(windows)
        for (log, psi, n_frames), pooled in zip(windows, many):
            one = feat.transform(log, psi, n_frames=n_frames)
            for name in one.channels:
                np.testing.assert_array_equal(
                    pooled.channels[name], one.channels[name]
                )

    def test_empty_input(self):
        assert build_spectrum_frames_many([]) == []
