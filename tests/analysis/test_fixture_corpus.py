"""Golden-findings corpus: each fixture must report exactly the
findings recorded in ``fixtures/golden_findings.json``.

Regenerate the goldens (after an intentional rule change) with::

    PYTHONPATH=src python - <<'EOF'
    import json, pathlib
    from repro.analysis.lint import lint_paths
    fixtures = pathlib.Path("tests/analysis/fixtures")
    golden = {
        f.name: [
            {"line": x.line, "code": x.code, "message": x.message}
            for x in lint_paths([str(f)], baseline=None).findings
        ]
        for f in sorted(fixtures.glob("*.py"))
    }
    (fixtures / "golden_findings.json").write_text(json.dumps(golden, indent=2) + "\n")
    EOF
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.lint import lint_paths

FIXTURES = Path(__file__).parent / "fixtures"
GOLDEN = json.loads((FIXTURES / "golden_findings.json").read_text())

# The corpus contract: which fixtures must be dirty and with what.
MUST_PASS = {"inference_mode_ok.py", "lockset_ok.py", "shape_contract_ok.py"}
MUST_FAIL = {
    "stray_float32_bad.py": {"RPR012"},
    "lockset_bad.py": {"RPR013", "RPR014"},
    "shape_mismatch_bad.py": {"RPR015"},
}


def test_corpus_is_complete():
    on_disk = {p.name for p in FIXTURES.glob("*.py")}
    assert on_disk == set(GOLDEN)
    assert MUST_PASS <= on_disk
    assert set(MUST_FAIL) <= on_disk


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_fixture_matches_golden(name):
    report = lint_paths([str(FIXTURES / name)], baseline=None)
    actual = [
        {"line": f.line, "code": f.code, "message": f.message}
        for f in report.findings
    ]
    assert actual == GOLDEN[name]


@pytest.mark.parametrize("name", sorted(MUST_PASS))
def test_clean_fixtures_are_clean(name):
    assert GOLDEN[name] == []


@pytest.mark.parametrize("name", sorted(MUST_FAIL))
def test_dirty_fixtures_trip_their_pack(name):
    codes = {e["code"] for e in GOLDEN[name]}
    assert codes == MUST_FAIL[name]
    assert GOLDEN[name], f"{name} must have findings"
