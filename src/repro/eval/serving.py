"""Fleet-serving benchmark: batched throughput scaling and isolation.

The fleet's two load-bearing claims, measured on a real fitted
pipeline and committed as evidence:

* **throughput** — cross-stream batched inference vs the naive
  one-``predict_proba``-per-window loop across a stream-count scaling
  curve; the artifact asserts the batched fleet serves at least
  :data:`BATCH_SPEEDUP_FLOOR` times the naive throughput at
  :data:`MAX_STREAMS` streams;
* **isolation** — NaN-poisoning 10% of the fleet's streams must leave
  the remaining 90% with zero uncaught exceptions, decisions
  identical to a fault-free run, and p95 per-window latency within
  :data:`LATENCY_P95_TOLERANCE` of the fault-free run's.

A third section exercises the fleet's control surface (admission
rejection, sustained-overload shedding, worker crash reassignment) so
the counters the operators would alert on are demonstrably live.

Run as a module to produce the benchmark artifact::

    PYTHONPATH=src python -m repro.eval.serving --quick

which writes ``BENCH_ext_serving.json``.  The driver raises instead
of writing an artifact whenever a contract is violated.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.core.streaming import REASON_ADMISSION, StreamingIdentifier
from repro.eval.reporting import ExperimentResult, ExperimentRow
from repro.eval.robustness import _clean_calibrator
from repro.serving import FleetServer

BATCH_SPEEDUP_FLOOR = 3.0
"""Required batched/naive throughput ratio at :data:`MAX_STREAMS`."""

MAX_STREAMS = 32
"""Largest fleet of the scaling curve (the acceptance point)."""

LATENCY_P95_TOLERANCE = 1.25
"""Faulted-run healthy p95 latency must stay within this factor."""

HEALTHY_UNCHANGED_FLOOR = 0.95
"""Minimum fraction of healthy streams with identical decisions."""

POISON_FRACTION = 0.1
"""Fraction of isolation-study streams that get NaN-poisoned."""

WINDOW_FRAMES = 4
"""Frames per serving window — short windows keep featurisation
cheap relative to per-call inference overhead, which is the regime a
dense multi-room deployment lives in (many rooms, short decision
windows) and the one where cross-stream batching pays."""


def _poison_log(log, fraction: float, seed: int):
    """NaN-poison a fraction of a log's phases (returns a copy)."""
    from dataclasses import replace

    rng = np.random.default_rng(seed)
    phase = np.array(log.phase_rad, dtype=np.float64, copy=True)
    k = max(1, int(round(fraction * len(phase))))
    phase[rng.choice(len(phase), size=k, replace=False)] = np.nan
    return replace(log, phase_rad=phase)


def _stream_workload(raws, n_streams: int, seed: int):
    """(stream_id, log, calibrator) per stream, cycling the recordings."""
    out = []
    for i in range(n_streams):
        raw = raws[i % len(raws)]
        out.append((f"stream-{i:03d}", raw.log, _clean_calibrator(raw)))
    return out


def _build_fleet(
    identifier_factory,
    workload,
    batch_inference: bool,
    n_shards: int = 1,
) -> FleetServer:
    fleet = FleetServer(
        identifier_factory,
        capacity=len(workload),
        n_shards=n_shards,
        mode="inline",
        batch_inference=batch_inference,
        windows_per_stream_per_tick=4,
        max_queued_windows=100_000,  # throughput runs never shed
    )
    for sid, _log, calibrator in workload:
        fleet.admit(sid, calibrator=calibrator)
    return fleet


def _serve_all(fleet: FleetServer, workload) -> tuple[dict, list[float], float]:
    """Submit every stream's log and drain; returns decisions + timings.

    Returns:
        ``(decisions, per_window_latency_s, elapsed_s)`` where the
        latency samples are per-tick elapsed divided by windows served
        that tick (the per-window cost a tenant actually observes).
    """
    for sid, log, _cal in workload:
        fleet.submit(sid, log)
    decisions: dict[str, list] = {}
    samples: list[float] = []
    t0 = time.perf_counter()
    while True:
        t_tick = time.perf_counter()
        out = fleet.tick()
        dt = time.perf_counter() - t_tick
        n = sum(len(ds) for ds in out.values())
        if n:
            samples.extend([dt / n] * n)
        for sid, ds in out.items():
            decisions.setdefault(sid, []).extend(ds)
        if fleet.total_queued() == 0:
            break
    return decisions, samples, time.perf_counter() - t0


def _decision_keys(decisions) -> dict[str, list[tuple]]:
    return {
        sid: [
            (round(d.t_start_s, 6), d.label, d.abstained, d.reason)
            for d in sorted(ds, key=lambda d: d.t_start_s)
        ]
        for sid, ds in decisions.items()
    }


def throughput_study(
    identifier_factory, raws, stream_counts, seed: int = 0
) -> dict:
    """Batched vs naive fleet throughput across stream counts.

    Each point serves the same workload through two inline fleets that
    differ only in ``batch_inference``; decisions must be identical,
    so the speedup buys nothing but wall-clock.

    Returns:
        The ``"throughput"`` section of the benchmark document.

    Raises:
        RuntimeError: when batched and naive decisions diverge.
    """
    points = []
    for n_streams in stream_counts:
        workload = _stream_workload(raws, n_streams, seed)
        modes = {}
        for batched in (True, False):
            # Best-of-N wall clock: each run serves ~100 windows in
            # well under a second, so a single pass is dominated by
            # cache warmup and scheduler noise.  Decisions must match
            # across every repetition.
            elapsed = np.inf
            keys = None
            for _rep in range(5):
                fleet = _build_fleet(identifier_factory, workload, batched)
                decisions, _samples, rep_elapsed = _serve_all(fleet, workload)
                fleet.stop()
                rep_keys = _decision_keys(decisions)
                if keys is not None and rep_keys != keys:
                    raise RuntimeError(
                        f"decisions changed between repetitions at "
                        f"{n_streams} streams (batched={batched})"
                    )
                keys = rep_keys
                elapsed = min(elapsed, rep_elapsed)
            n_windows = sum(len(ds) for ds in decisions.values())
            modes[batched] = {
                "elapsed_s": elapsed,
                "n_windows": n_windows,
                "throughput_w_per_s": n_windows / max(elapsed, 1e-9),
                "keys": keys,
            }
        if modes[True]["keys"] != modes[False]["keys"]:
            raise RuntimeError(
                f"batched and naive decisions diverged at {n_streams} streams"
            )
        points.append(
            {
                "n_streams": int(n_streams),
                "n_windows": modes[True]["n_windows"],
                "batched_throughput_w_per_s": modes[True][
                    "throughput_w_per_s"
                ],
                "naive_throughput_w_per_s": modes[False]["throughput_w_per_s"],
                "speedup": (
                    modes[True]["throughput_w_per_s"]
                    / max(modes[False]["throughput_w_per_s"], 1e-9)
                ),
                "decisions_identical": True,
            }
        )
    return {
        "stream_counts": [int(n) for n in stream_counts],
        "points": points,
        "speedup_floor": BATCH_SPEEDUP_FLOOR,
    }


def isolation_study(
    identifier_factory, raws, n_streams: int, seed: int = 0
) -> dict:
    """Poison 10% of the fleet; measure what the other 90% notice.

    Runs the same workload twice — fault-free, then with
    :data:`POISON_FRACTION` of the streams NaN-poisoned — through
    identical batched fleets, and compares the healthy streams'
    decisions and per-window latency distributions.

    Returns:
        The ``"isolation"`` section of the benchmark document.

    Raises:
        RuntimeError: on any uncaught exception, a changed healthy
            decision beyond :data:`HEALTHY_UNCHANGED_FLOOR`, or a
            healthy p95 latency regression beyond
            :data:`LATENCY_P95_TOLERANCE`.
    """
    workload = _stream_workload(raws, n_streams, seed)
    n_poisoned = max(1, int(round(POISON_FRACTION * n_streams)))
    poisoned_ids = {sid for sid, _l, _c in workload[:n_poisoned]}

    fleet = _build_fleet(identifier_factory, workload, True, n_shards=2)
    base_decisions, base_samples, _ = _serve_all(fleet, workload)
    fleet.stop()

    faulted_workload = [
        (
            sid,
            _poison_log(log, 0.5, seed + 7) if sid in poisoned_ids else log,
            cal,
        )
        for sid, log, cal in workload
    ]
    uncaught = 0
    fleet = _build_fleet(identifier_factory, faulted_workload, True, n_shards=2)
    try:
        fault_decisions, fault_samples, _ = _serve_all(fleet, faulted_workload)
    except Exception:  # the fleet contract says: never
        uncaught += 1
        fault_decisions, fault_samples = {}, []
    health = fleet.health()
    fleet.stop()

    base_keys = _decision_keys(base_decisions)
    fault_keys = _decision_keys(fault_decisions)
    healthy = [sid for sid, _l, _c in workload if sid not in poisoned_ids]
    unchanged = [
        sid for sid in healthy if fault_keys.get(sid) == base_keys.get(sid)
    ]
    unchanged_fraction = len(unchanged) / max(len(healthy), 1)

    base_p95 = float(np.percentile(base_samples, 95)) if base_samples else 0.0
    fault_p95 = (
        float(np.percentile(fault_samples, 95)) if fault_samples else 0.0
    )
    p95_ratio = fault_p95 / max(base_p95, 1e-9)

    poisoned_degraded = [
        sid
        for sid in poisoned_ids
        if health.stream_states().get(sid) == "degraded"
    ]

    if uncaught:
        raise RuntimeError(
            "isolation contract violated: the faulted fleet raised"
        )
    if unchanged_fraction < HEALTHY_UNCHANGED_FLOOR:
        raise RuntimeError(
            f"isolation contract violated: only {unchanged_fraction:.0%} of "
            f"healthy streams kept their decisions (floor "
            f"{HEALTHY_UNCHANGED_FLOOR:.0%})"
        )
    if p95_ratio > LATENCY_P95_TOLERANCE:
        raise RuntimeError(
            f"isolation contract violated: healthy p95 per-window latency "
            f"regressed {p95_ratio:.2f}x (tolerance "
            f"{LATENCY_P95_TOLERANCE:.2f}x)"
        )

    return {
        "n_streams": int(n_streams),
        "n_poisoned": n_poisoned,
        "poisoned_streams": sorted(poisoned_ids),
        "uncaught_exceptions": uncaught,
        "healthy_streams": len(healthy),
        "healthy_unchanged": len(unchanged),
        "healthy_unchanged_fraction": unchanged_fraction,
        "poisoned_streams_degraded": sorted(poisoned_degraded),
        "baseline_p95_window_s": base_p95,
        "faulted_p95_window_s": fault_p95,
        "p95_ratio": p95_ratio,
        "p95_tolerance": LATENCY_P95_TOLERANCE,
        "fleet_state_after": health.state,
    }


def controls_study(identifier_factory, raws, seed: int = 0) -> dict:
    """Exercise admission, shedding, and crash reassignment end to end.

    Returns:
        The ``"controls"`` section of the benchmark document.

    Raises:
        RuntimeError: when any control fails to engage (no rejection,
            no shed under sustained overload, or no reassignment after
            a worker death).
    """
    workload = _stream_workload(raws, 6, seed)

    # Admission: capacity 4, offer 6 -> exactly 2 explicit rejections,
    # and the rejected streams' windows come back REASON_ADMISSION.
    fleet = FleetServer(
        identifier_factory,
        capacity=4,
        n_shards=2,
        max_queued_windows=100_000,
    )
    admitted = rejected = 0
    for sid, _log, cal in workload:
        if fleet.admit(sid, calibrator=cal).admitted:
            admitted += 1
        else:
            rejected += 1
    rejected_receipt = fleet.submit(workload[-1][0], workload[-1][1])
    admission_reasons = {d.reason for d in rejected_receipt.decisions}
    fleet.stop()

    # Shedding: sustained overload drops lowest-priority windows first.
    shed_fleet = FleetServer(
        identifier_factory,
        capacity=2,
        n_shards=1,
        max_queued_windows=4,
        overload_grace_ticks=2,
        windows_per_stream_per_tick=1,
    )
    shed_fleet.admit("vip", priority=10, calibrator=workload[0][2])
    shed_fleet.admit("std", priority=0, calibrator=workload[1][2])
    for _ in range(3):
        shed_fleet.submit("vip", workload[0][1])
        shed_fleet.submit("std", workload[1][1])
    shed_fleet.tick()
    shed_fleet.tick()
    shed_health = shed_fleet.health()
    vip_depth = shed_fleet.workers[0].queue_depths()["vip"]
    std_depth = shed_fleet.workers[0].queue_depths()["std"]
    shed_fleet.stop()

    # Crash recovery: kill a worker, the next tick reassigns its
    # streams and serving resumes.
    crash_fleet = FleetServer(
        identifier_factory,
        capacity=4,
        n_shards=2,
        max_queued_windows=100_000,
    )
    for sid, _log, cal in workload[:4]:
        crash_fleet.admit(sid, calibrator=cal)
    victims = list(crash_fleet.workers[0].stream_ids())
    crash_fleet.workers[0].stop()
    crash_fleet.tick()
    crash_health = crash_fleet.health()
    for sid, log, _cal in workload[:4]:
        crash_fleet.submit(sid, log)
    post_crash = crash_fleet.drain()
    crash_fleet.stop()

    doc = {
        "admission": {
            "capacity": 4,
            "offered": len(workload),
            "admitted": admitted,
            "rejected": rejected,
            "rejected_submit_reasons": sorted(
                r for r in admission_reasons if r
            ),
        },
        "shedding": {
            "shed_windows_total": shed_health.shed_windows_total,
            "vip_depth_after": int(vip_depth),
            "std_depth_after": int(std_depth),
            "lowest_priority_shed_first": bool(vip_depth >= std_depth),
        },
        "crash_recovery": {
            "victim_streams": victims,
            "reassigned_total": crash_health.reassigned_total,
            "served_after_recovery": {
                sid: len(ds) for sid, ds in sorted(post_crash.items())
            },
        },
    }
    if rejected != 2 or admission_reasons != {REASON_ADMISSION}:
        raise RuntimeError("admission control did not engage as configured")
    if shed_health.shed_windows_total == 0 or vip_depth < std_depth:
        raise RuntimeError("load shedding did not engage under overload")
    if crash_health.reassigned_total != len(victims) or not all(
        post_crash.get(sid) for sid, _log, _cal in workload[:4]
    ):
        raise RuntimeError("crash recovery did not reassign and resume")
    return doc


def run_serving_bench(quick: bool = True, seed: int = 0) -> dict:
    """Build the workload, run all three studies, assemble the artifact.

    Trains the same compact 4-class pipeline as the other runtime
    benches, then serves it fleet-wide with short
    (:data:`WINDOW_FRAMES`-frame) windows.

    Raises:
        RuntimeError: when any contract is violated — the artifact is
            never written from a run that broke its own claims.
    """
    import os

    from repro import obs
    from repro.core.config import M2AIConfig
    from repro.core.pipeline import M2AIPipeline
    from repro.data.generator import GenerationConfig, SyntheticDatasetGenerator
    from repro.eval.harness import get_raw_samples

    cfg = GenerationConfig(
        scenario_labels=("A01", "A03", "A07", "A11"),
        samples_per_class=6 if quick else 12,
        duration_s=6.0,
        calibration_s=20.0,
        seed=seed,
    )
    raw = get_raw_samples(cfg)
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(raw))
    n_serve = max(4, int(0.25 * len(raw)))
    serve_idx, train_idx = order[:n_serve], order[n_serve:]
    generator = SyntheticDatasetGenerator(cfg)
    train_ds = generator.featurize([raw[i] for i in train_idx])

    epochs = 25 if quick else 45
    override = os.environ.get("REPRO_BENCH_EPOCHS")
    if override:
        epochs = min(epochs, int(override))
    t_setup = time.perf_counter()
    # A compact edge-serving config: the bench measures the *serving
    # infrastructure* (pooled DSP + shared inference vs the naive
    # loop), so it deploys the smallest member of the model family —
    # both modes serve the identical fitted model, and the throughput
    # contract also requires their decisions to match exactly.
    model_cfg = M2AIConfig(
        conv_channels=(8, 12),
        conv_kernels=(5, 3),
        branch_dim=24,
        merge_dim=24,
        lstm_hidden=16,
        lstm_layers=1,
        epochs=epochs,
        batch_size=8,
        seed=seed,
    )
    pipeline = M2AIPipeline(model_cfg)
    pipeline.fit(train_ds)
    setup_s = time.perf_counter() - t_setup

    serve_raws = [raw[i] for i in serve_idx]
    dwell = serve_raws[0].log.meta.dwell_s
    window_s = WINDOW_FRAMES * dwell

    def identifier_factory() -> StreamingIdentifier:
        return StreamingIdentifier(
            pipeline, window_s=window_s, min_reads=8
        )

    stream_counts = (2, 8, MAX_STREAMS) if quick else (1, 2, 4, 8, 16, MAX_STREAMS)
    isolation_streams = 10 if quick else 20

    obs.enable()
    obs.reset()
    try:
        throughput = throughput_study(
            identifier_factory, serve_raws, stream_counts, seed=seed
        )
        isolation = isolation_study(
            identifier_factory, serve_raws, isolation_streams, seed=seed
        )
        controls = controls_study(identifier_factory, serve_raws, seed=seed)
        metrics_doc = json.loads(obs.get_registry().to_json())
    finally:
        obs.disable()

    top = next(
        p for p in throughput["points"] if p["n_streams"] == MAX_STREAMS
    )
    if top["speedup"] < BATCH_SPEEDUP_FLOOR:
        raise RuntimeError(
            f"throughput contract violated: batched fleet is only "
            f"{top['speedup']:.2f}x the naive loop at {MAX_STREAMS} streams "
            f"(floor {BATCH_SPEEDUP_FLOOR:.1f}x)"
        )

    return {
        "schema": "repro.serving.bench.v1",
        "quick": bool(quick),
        "seed": int(seed),
        "setup_s": round(setup_s, 3),
        "epochs": int(epochs),
        "window_s": float(window_s),
        "window_frames": WINDOW_FRAMES,
        "n_serve_recordings": len(serve_raws),
        "throughput": throughput,
        "isolation": isolation,
        "controls": controls,
        "metrics": metrics_doc,
    }


def run_ext_serving(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Fleet serving: batched scaling curve plus isolation evidence.

    The extension-study entry point (``ext-serving``): runs
    :func:`run_serving_bench` and reports the scaling curve, the
    32-stream speedup, and the isolation outcomes as rows.
    """
    doc = run_serving_bench(quick=quick, seed=seed)
    rows = []
    for point in doc["throughput"]["points"]:
        rows.append(
            ExperimentRow(
                f"{point['n_streams']} streams batched",
                None,
                point["batched_throughput_w_per_s"],
                unit="w/s",
            )
        )
        rows.append(
            ExperimentRow(
                f"{point['n_streams']} streams speedup",
                None,
                point["speedup"],
                unit="x",
            )
        )
    iso = doc["isolation"]
    rows.append(
        ExperimentRow(
            "healthy decisions unchanged",
            None,
            iso["healthy_unchanged_fraction"],
            unit="rate",
        )
    )
    rows.append(
        ExperimentRow("healthy p95 latency ratio", None, iso["p95_ratio"], unit="x")
    )
    return ExperimentResult(
        experiment_id="ext-serving",
        title="Fleet serving: cross-stream batching with per-stream isolation",
        rows=rows,
        notes=(
            "Many independent read streams sharded across workers, each "
            "stream under its own supervisor; classifiable windows from all "
            "streams of a shard share one predict_proba call per tick. "
            "NaN-poisoning 10% of streams leaves the rest with identical "
            "decisions and bounded latency; admission, shedding, and crash "
            "reassignment counters are exercised live."
        ),
        extras={
            "speedup at 32 streams": (
                f"{doc['throughput']['points'][-1]['speedup']:.2f}x"
            ),
            "fleet state after faults": iso["fleet_state_after"],
        },
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: run the bench and write the JSON artifact."""
    import argparse
    import sys
    from pathlib import Path

    parser = argparse.ArgumentParser(
        prog="python -m repro.eval.serving",
        description="Fleet serving benchmark: batching and isolation.",
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized workload (smaller, faster)"
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_ext_serving.json"),
        help="artifact path (default: BENCH_ext_serving.json)",
    )
    args = parser.parse_args(argv)

    doc = run_serving_bench(quick=args.quick, seed=args.seed)
    args.out.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")

    out = sys.stdout.write
    out(f"wrote {args.out}\n")
    out(f"{'streams':>8}{'windows':>9}{'batched w/s':>13}{'naive w/s':>11}{'speedup':>9}\n")
    for point in doc["throughput"]["points"]:
        out(
            f"{point['n_streams']:>8}{point['n_windows']:>9}"
            f"{point['batched_throughput_w_per_s']:>13.1f}"
            f"{point['naive_throughput_w_per_s']:>11.1f}"
            f"{point['speedup']:>9.2f}\n"
        )
    iso = doc["isolation"]
    out(
        f"isolation: {iso['n_poisoned']}/{iso['n_streams']} poisoned, "
        f"{iso['healthy_unchanged']}/{iso['healthy_streams']} healthy streams "
        f"unchanged, p95 ratio {iso['p95_ratio']:.2f}x\n"
    )
    controls = doc["controls"]
    out(
        f"controls: {controls['admission']['rejected']} rejected at admission, "
        f"{controls['shedding']['shed_windows_total']} windows shed, "
        f"{controls['crash_recovery']['reassigned_total']} streams reassigned\n"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
