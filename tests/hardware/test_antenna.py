"""Uniform linear array geometry."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.hardware import DEFAULT_SPACING_M, DEFAULT_WAVELENGTH_M, UniformLinearArray
from repro.geometry import Vec2


class TestGeometry:
    def test_default_spacing_is_lambda_over_8(self):
        assert DEFAULT_SPACING_M == pytest.approx(DEFAULT_WAVELENGTH_M / 8.0)
        assert DEFAULT_SPACING_M == pytest.approx(0.04)

    def test_positions_centred(self):
        array = UniformLinearArray(center=Vec2(1.0, 2.0), n_elements=4, spacing=0.04)
        pos = array.positions()
        assert pos.shape == (4, 2)
        np.testing.assert_allclose(pos.mean(axis=0), [1.0, 2.0], atol=1e-12)

    def test_adjacent_spacing(self):
        array = UniformLinearArray(center=Vec2(0, 0), n_elements=4, spacing=0.04)
        pos = array.positions()
        gaps = np.linalg.norm(np.diff(pos, axis=0), axis=1)
        np.testing.assert_allclose(gaps, 0.04)

    def test_rotation(self):
        array = UniformLinearArray(
            center=Vec2(0, 0), n_elements=2, spacing=1.0, axis_angle_rad=math.pi / 2
        )
        pos = array.positions()
        np.testing.assert_allclose(pos[:, 0], 0.0, atol=1e-12)
        assert pos[1, 1] - pos[0, 1] == pytest.approx(1.0)

    def test_element_index_bounds(self):
        array = UniformLinearArray(center=Vec2(0, 0), n_elements=4)
        with pytest.raises(IndexError):
            array.element_position(4)

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformLinearArray(center=Vec2(0, 0), n_elements=1)
        with pytest.raises(ValueError):
            UniformLinearArray(center=Vec2(0, 0), spacing=-0.1)


class TestAoA:
    @pytest.mark.parametrize("angle", [30.0, 60.0, 90.0, 120.0, 150.0])
    def test_ground_truth_aoa(self, angle):
        array = UniformLinearArray(center=Vec2(0, 0))
        rad = math.radians(angle)
        point = Vec2(5.0 * math.cos(rad), 5.0 * math.sin(rad))
        assert array.aoa_to(point) == pytest.approx(angle, abs=1e-9)

    def test_aoa_rotated_array(self):
        array = UniformLinearArray(center=Vec2(0, 0), axis_angle_rad=math.pi / 4)
        point = Vec2(0.0, 5.0)  # 45 degrees from the rotated axis
        assert array.aoa_to(point) == pytest.approx(45.0, abs=1e-9)
