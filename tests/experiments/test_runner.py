"""run_one/run_batch: validation, determinism, resume, crash handling."""

from __future__ import annotations

import pytest

from repro.experiments import (
    ExperimentBatchError,
    ResultsStore,
    UnknownExperimentError,
    make_spec,
    run_batch,
    run_one,
    validate_ids,
)
from tests.experiments import toyreg

FACTORY = "tests.experiments.toyreg:factory"
GOOD_FACTORY = "tests.experiments.toyreg:good_factory"

pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")


def toy_registry():
    return toyreg.factory()


class TestValidation:
    def test_unknown_id_lists_valid_ids(self):
        with pytest.raises(UnknownExperimentError) as err:
            validate_ids(["toy", "nope", "zap"], toy_registry())
        message = str(err.value)
        assert "nope" in message and "zap" in message
        assert "toy" in message  # the valid ids are listed

    def test_run_one_validates_id(self):
        with pytest.raises(UnknownExperimentError):
            run_one(make_spec("missing"), toy_registry())

    def test_run_batch_validates_before_running(self, tmp_path):
        ran = []

        def spy(quick=True, seed=0):
            ran.append(seed)
            return toyreg.run_toy(quick=quick, seed=seed)

        specs = [make_spec("toy"), make_spec("missing")]
        with pytest.raises(UnknownExperimentError):
            run_batch(specs, ResultsStore(tmp_path), registry={"toy": spy})
        assert ran == []

    def test_unsupported_override_is_a_type_error(self):
        spec = make_spec("crash", gen_overrides={"no_such_kwarg": 1})
        with pytest.raises(TypeError, match="no_such_kwarg"):
            run_one(spec, toy_registry())


class TestRunOne:
    def test_record_reflects_spec_and_driver(self):
        record = run_one(make_spec("toy", "full", 3), toy_registry())
        assert record.spec.exp_id == "toy"
        assert record.measured_by_name()["value"] == 32.0
        assert record.elapsed_s >= 0.0
        assert "toy experiment" in record.block

    def test_overrides_reach_the_driver(self):
        spec = make_spec("toy", "quick", 1, gen_overrides={"scale": 2.0})
        record = run_one(spec, toy_registry())
        assert record.measured_by_name()["value"] == 22.0


class TestInlineBatch:
    def test_resume_skips_completed_cells(self, tmp_path):
        store = ResultsStore(tmp_path)
        specs = [make_spec("toy", seed=s) for s in range(3)]
        first = run_batch(specs, store, registry=toy_registry())
        events = []
        second = run_batch(
            specs,
            store,
            registry=toy_registry(),
            on_event=lambda kind, spec, detail: events.append(kind),
        )
        assert events == ["skip"] * 3
        # Byte-identical service from the durable store.
        assert [r.to_json() for r in second] == [r.to_json() for r in first]

    def test_force_reruns(self, tmp_path):
        store = ResultsStore(tmp_path)
        spec = make_spec("toy")
        run_batch([spec], store, registry=toy_registry())
        calls = []

        def spy(quick=True, seed=0):
            calls.append(seed)
            return toyreg.run_toy(quick=quick, seed=seed)

        run_batch([spec], store, registry={"toy": spy})
        assert calls == []
        run_batch([spec], store, registry={"toy": spy}, force=True)
        assert calls == [0]

    def test_duplicate_specs_run_once(self, tmp_path):
        calls = []

        def spy(quick=True, seed=0):
            calls.append(seed)
            return toyreg.run_toy(quick=quick, seed=seed)

        spec = make_spec("toy")
        records = run_batch(
            [spec, spec, spec], ResultsStore(tmp_path), registry={"toy": spy}
        )
        assert calls == [0]
        assert len(records) == 1

    def test_failures_keep_completed_cells_durable(self, tmp_path):
        store = ResultsStore(tmp_path)
        specs = [make_spec("toy"), make_spec("crash")]
        with pytest.raises(ExperimentBatchError) as err:
            run_batch(specs, store, registry=toy_registry())
        assert len(err.value.failures) == 1
        assert "injected driver failure" in str(err.value)
        assert [r.spec.exp_id for r in err.value.completed] == ["toy"]
        assert specs[0].key in store


class TestParallelBatch:
    """Spawned-worker path (the RPR011-compliant 'pool')."""

    def test_worker_count_does_not_change_records(self, tmp_path):
        specs = [
            make_spec("toy", seed=s, gen_overrides={"scale": 3.0})
            for s in range(3)
        ]
        digests = []
        for workers in (1, 3):
            store = ResultsStore(tmp_path / f"w{workers}")
            records = run_batch(
                specs, store, workers=workers, registry_factory=FACTORY
            )
            digests.append([r.content_digest() for r in records])
        assert digests[0] == digests[1]

    def test_kill_mid_sweep_then_resume(self, tmp_path):
        """Hard-killed workers lose only their own cells.

        The 'die' driver os._exit()s for odd seeds — no Python cleanup,
        the closest in-test stand-in for kill -9 mid-sweep.  Completed
        even-seed cells must be durable, and the rerun must execute
        only the missing cells, serving the rest byte-identically.
        """
        store = ResultsStore(tmp_path)
        specs = [make_spec("die", seed=s) for s in range(4)]
        with pytest.raises(ExperimentBatchError) as err:
            run_batch(specs, store, workers=2, registry_factory=FACTORY)
        assert sorted(err.value.failures) == sorted(
            s.key for s in (specs[1], specs[3])
        )
        survivors = {r.spec.seed for r in err.value.completed}
        assert survivors == {0, 2}
        before = {k: store.path_for(k).read_text() for k in store.keys()}

        events = []
        records = run_batch(
            specs,
            store,
            workers=2,
            registry_factory=GOOD_FACTORY,
            on_event=lambda kind, spec, detail: events.append((kind, spec.seed)),
        )
        assert len(records) == 4
        assert {seed for kind, seed in events if kind == "skip"} == {0, 2}
        assert {seed for kind, seed in events if kind == "done"} == {1, 3}
        after = {k: store.path_for(k).read_text() for k in store.keys()}
        for key, text in before.items():
            assert after[key] == text  # served byte-identically, not rerun

    def test_worker_crash_is_attributed(self, tmp_path):
        specs = [make_spec("toy"), make_spec("crash")]
        with pytest.raises(ExperimentBatchError) as err:
            run_batch(
                specs, ResultsStore(tmp_path), workers=2, registry_factory=FACTORY
            )
        assert list(err.value.failures) == [specs[1].key]
        assert "worker exited 1" in err.value.failures[specs[1].key]
