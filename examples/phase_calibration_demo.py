"""Phase calibration demo: the Fig. 3 effect and the Eq. 1 fix.

Shows (1) how frequency hopping scatters the reported phase of a
*stationary* tag across channels, (2) that the per-channel offsets are
linear in the carrier frequency, and (3) that calibration collapses
the runtime phase stream back onto a single consistent value.

Usage::

    python examples/phase_calibration_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.dsp.angles import circular_median, fold_double, wrap_pm_pi
from repro.dsp.calibration import PhaseCalibrator
from repro.geometry import Vec2, make_laboratory
from repro.hardware import Reader, ReaderConfig, UniformLinearArray
from repro.hardware.scene import stationary_scene
from repro.hardware.tag import make_tag


def main() -> None:
    room = make_laboratory()
    array = UniformLinearArray(center=Vec2(room.bounds.width / 2.0, 0.3))
    reader = Reader(ReaderConfig(array=array), room, seed=42)
    rng = np.random.default_rng(0)
    scene = stationary_scene(
        [(make_tag("demo", rng), (room.bounds.width / 2.0 + 1.0, 4.0))]
    )

    print("Collecting 60 s from a stationary tag (the Fig. 3 protocol) ...")
    log = reader.inventory(scene, 60.0)
    psi = fold_double(log.phase_rad)
    mask = log.antenna == 0
    channels = np.unique(log.channel[mask])
    freqs = log.meta.frequencies_hz[channels] / 1e6
    medians = np.array(
        [circular_median(psi[mask & (log.channel == ch)]) for ch in channels]
    )

    print("\nPer-channel median phase of a MOTIONLESS tag (antenna 0):")
    print(f"  spread across channels: {np.ptp(medians):.2f} rad "
          f"(a motionless tag should be constant!)")
    order = np.argsort(freqs)
    unwrapped = np.unwrap(medians[order])
    slope, intercept = np.polyfit(freqs[order], unwrapped, 1)
    fitted = slope * freqs[order] + intercept
    r2 = 1.0 - np.sum((unwrapped - fitted) ** 2) / np.sum(
        (unwrapped - unwrapped.mean()) ** 2
    )
    print(f"  linear fit: slope {slope:+.3f} rad/MHz, R^2 = {r2:.4f} "
          "(the paper's Fig. 3 linearity)")

    print("\nFitting the Eq. 1 calibration table from a 20 s bootstrap ...")
    calibrator = PhaseCalibrator.fit(reader.inventory(scene, 20.0))
    runtime = reader.inventory(scene, 10.0)
    raw = fold_double(runtime.phase_rad)
    calibrated = calibrator.calibrate(runtime)

    for label, values in (("raw", raw), ("calibrated", calibrated)):
        a0 = values[runtime.antenna == 0]
        centre = circular_median(a0)
        spread = np.std(wrap_pm_pi(a0 - centre))
        print(f"  {label:>10}: circular std across hops = {spread:.3f} rad")
    print("\nCalibration collapses the hop-induced scatter by an order of "
          "magnitude — without it the learner sees noise (Fig. 10).")


if __name__ == "__main__":
    main()
