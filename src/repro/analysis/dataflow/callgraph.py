"""Project call graph: provable call edges between project functions.

Edges are collected from every :class:`ast.Call` whose target resolves
through the module symbol tables of :class:`~repro.analysis.dataflow.project.Project`
— plain functions, import aliases, and same-module ``Cls.method``
references.  Instance-method dispatch and higher-order calls stay
unresolved and therefore absent; the rule packs built on top only act
on edges the graph can prove, so absence is always the safe direction.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.dataflow.project import FunctionInfo, Project

__all__ = ["CallGraph", "CallSite", "build_call_graph"]


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge.

    Attributes:
        caller: qualified name of the calling function, or
            ``<module>`` pseudo-frame for module-level calls.
        callee: qualified name of the resolved target.
        module: dotted name of the module the call appears in.
        node: the :class:`ast.Call` node.
    """

    caller: str
    callee: str
    module: str
    node: ast.Call


@dataclass
class CallGraph:
    """Resolved call edges of one project.

    Attributes:
        edges: caller qualname → set of callee qualnames.
        sites: every resolved :class:`CallSite`, in file order.
    """

    edges: dict[str, set[str]] = field(default_factory=dict)
    sites: list[CallSite] = field(default_factory=list)

    def callers_of(self, qualname: str) -> set[str]:
        """Qualnames of functions with a proven edge into ``qualname``."""
        return {c for c, callees in self.edges.items() if qualname in callees}


def _walk_calls(body: list[ast.stmt]) -> list[ast.Call]:
    """Calls in a frame, not descending into nested def/class frames."""
    calls: list[ast.Call] = []
    stack: list[ast.AST] = list(reversed(body))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(node, ast.Call):
            calls.append(node)
        stack.extend(reversed(list(ast.iter_child_nodes(node))))
    return calls


def build_call_graph(project: Project) -> CallGraph:
    """Collect every provable call edge in ``project``.

    Returns:
        The populated :class:`CallGraph`; functions without resolved
        outgoing calls simply have no entry in ``edges``.
    """
    graph = CallGraph()
    for info in project.modules.values():
        frames: list[tuple[str, list[ast.stmt]]] = [(f"{info.name}.<module>", info.tree.body)]
        for fn in info.functions.values():
            frames.append((fn.qualname, fn.node.body))
        seen_in_functions: set[int] = set()
        for qual, body in frames[1:]:
            for call in _walk_calls(body):
                seen_in_functions.add(id(call))
                callee = project.resolve_function(info, call.func)
                if callee is None:
                    continue
                _add(graph, qual, callee, info.name, call)
        for call in _walk_calls(frames[0][1]):
            if id(call) in seen_in_functions:
                continue
            callee = project.resolve_function(info, call.func)
            if callee is None:
                continue
            _add(graph, frames[0][0], callee, info.name, call)
    return graph


def _add(
    graph: CallGraph, caller: str, callee: FunctionInfo, module: str, node: ast.Call
) -> None:
    graph.edges.setdefault(caller, set()).add(callee.qualname)
    graph.sites.append(
        CallSite(caller=caller, callee=callee.qualname, module=module, node=node)
    )
