"""Fault injection: deployment failure modes over simulated read logs.

The simulator produces clean logs; deployments do not.  This package
models the dominant UHF-RFID failure modes — read dropout, bursty
outages, dead antenna ports, phase glitches, RSSI fades, timestamp
jitter, ghost reads, and calibration channel gaps — as composable,
seeded transforms over :class:`~repro.hardware.llrp.ReadLog`, so the
robustness of the identification pipeline can be quantified
reproducibly (see :mod:`repro.eval.robustness`).
"""

from repro.faults.injectors import (
    FAULT_KINDS,
    INJECTORS,
    FaultSpec,
    apply_faults,
    inject_burst_outage,
    inject_calibration_gap,
    inject_dead_port,
    inject_dropout,
    inject_ghost_reads,
    inject_phase_flip,
    inject_phase_noise,
    inject_rssi_attenuation,
    inject_time_jitter,
)

__all__ = [
    "FAULT_KINDS",
    "INJECTORS",
    "FaultSpec",
    "apply_faults",
    "inject_burst_outage",
    "inject_calibration_gap",
    "inject_dead_port",
    "inject_dropout",
    "inject_ghost_reads",
    "inject_phase_flip",
    "inject_phase_noise",
    "inject_rssi_attenuation",
    "inject_time_jitter",
]
