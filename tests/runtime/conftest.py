"""Shared fixtures for the runtime supervision tests.

The supervisor is exercised against a *stub* inference pipeline over a
synthetic read log, so the real DSP featurisation path runs (frames,
MUSIC, periodogram — the guarded stages) without paying for network
training.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.core.streaming import StreamingIdentifier
from repro.hardware import ReadLog, ReaderMeta


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()

N_CHANNELS = 50
REFERENCE = 15


def make_log(
    n: int = 900, seed: int = 0, n_antennas: int = 4, duration_s: float = 8.0
) -> ReadLog:
    """A synthetic but structurally valid multi-tag read log."""
    meta = ReaderMeta(
        n_antennas=n_antennas,
        slot_s=0.025,
        dwell_s=0.4,
        spacing_m=0.04,
        frequencies_hz=np.linspace(902.75e6, 927.25e6, N_CHANNELS),
        reference_channel=REFERENCE,
    )
    rng = np.random.default_rng(seed)
    channel = rng.integers(0, N_CHANNELS, n)
    return ReadLog(
        epcs=("A", "B", "C"),
        tag_index=rng.integers(0, 3, n),
        antenna=rng.integers(0, n_antennas, n),
        channel=channel,
        frequency_hz=meta.frequencies_hz[channel],
        timestamp_s=np.sort(rng.uniform(0.0, duration_s, n)),
        phase_rad=rng.uniform(0, 2 * np.pi, n),
        rssi_dbm=rng.uniform(-80, -50, n),
        meta=meta,
    )


class StubPipeline:
    """Deterministic content-dependent stand-in for a fitted pipeline.

    ``predict_proba`` derives each sample's class scores from the
    sample's own feature content, so batched (``identify``) and
    per-window (``identify_window``) serving can be compared decision
    for decision without training a network.
    """

    classes = ("wave", "walk")
    model = object()  # non-None: StreamingIdentifier's fitted check

    def predict_proba(self, dataset) -> np.ndarray:
        rows = []
        for sample in dataset.samples:
            name = sorted(sample.channels)[0]
            s = float(np.tanh(np.mean(sample.channels[name])))
            p = 0.5 + 0.4 * s
            rows.append([p, 1.0 - p])
        return np.asarray(rows, dtype=np.float64)


class FailingPipeline(StubPipeline):
    """A pipeline whose inference always raises (breaker fodder)."""

    def predict_proba(self, dataset) -> np.ndarray:
        raise RuntimeError("inference exploded")


class FakeClock:
    """Manually advanced monotonic clock."""

    def __init__(self, t: float = 0.0, step: float = 0.0) -> None:
        self.t = t
        self.step = step

    def __call__(self) -> float:
        now = self.t
        self.t += self.step
        return now


@pytest.fixture(scope="module")
def stream_log() -> ReadLog:
    return make_log()


@pytest.fixture()
def identifier() -> StreamingIdentifier:
    return StreamingIdentifier(StubPipeline(), window_s=4.0, min_reads=16)
