"""Retrying with exponential backoff and full jitter.

Ingest talks to hardware: a reader session can drop an LLRP
connection, time out mid-inventory, or hiccup on the wire.  The
paper's serving story assumes the stream keeps flowing, so transient
transport failures are retried with the canonical full-jitter backoff
(AWS architecture blog: sleep ``uniform(0, min(cap, base * 2**k))``)
under an overall deadline budget.

Determinism: the jitter source is a seeded ``np.random.default_rng``
derived from the policy, and both the sleep function and the clock are
injectable, so tests replay exact backoff schedules without sleeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, TypeVar

import numpy as np

from repro.obs.metrics import counter

T = TypeVar("T")

_TRANSIENT_ERRORS: tuple[type[BaseException], ...] = (
    ConnectionError,
    TimeoutError,
    OSError,
)
"""Default retryable exception types (transport-flavoured)."""


class RetryExhaustedError(RuntimeError):
    """Raised when every attempt failed or the deadline budget ran out.

    Attributes:
        stage: logical stage name the retries were attributed to.
        attempts: how many attempts were made.
        elapsed_s: wall-clock spent across all attempts (by the
            injected clock).
    """

    def __init__(self, stage: str, attempts: int, elapsed_s: float) -> None:
        super().__init__(
            f"stage {stage!r} failed after {attempts} attempt(s) "
            f"({elapsed_s:.3f}s elapsed)"
        )
        self.stage = stage
        self.attempts = attempts
        self.elapsed_s = elapsed_s


@dataclass(frozen=True)
class RetryPolicy:
    """How a transient failure is retried.

    Attributes:
        max_attempts: total tries (first call included); must be >= 1.
        base_delay_s: backoff base — attempt ``k`` (0-based failure
            count) draws its sleep from
            ``uniform(0, min(max_delay_s, base_delay_s * 2**k))``.
        max_delay_s: backoff cap.
        deadline_s: overall wall-clock budget across all attempts;
            ``None`` disables the budget.
        retry_on: exception types that count as transient; anything
            else propagates immediately.
        jitter_seed: seed of the jitter RNG (full determinism in
            tests).
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    deadline_s: float | None = None
    retry_on: tuple[type[BaseException], ...] = _TRANSIENT_ERRORS
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive when set")


def backoff_delays(policy: RetryPolicy, rng: np.random.Generator) -> list[float]:
    """The full-jitter sleep schedule a policy would draw from ``rng``.

    Exposed so tests can assert the exact schedule ``call_with_retry``
    replays (same policy + same seed = same delays).

    Returns:
        One delay per possible retry (``max_attempts - 1`` values).
    """
    delays = []
    for k in range(policy.max_attempts - 1):
        cap = min(policy.max_delay_s, policy.base_delay_s * (2.0**k))
        delays.append(float(rng.uniform(0.0, cap)))
    return delays


def call_with_retry(
    fn: Callable[..., T],
    *args: object,
    policy: RetryPolicy,
    stage: str = "call",
    rng: np.random.Generator | None = None,
    sleep: Callable[[float], None] | None = None,
    clock: Callable[[], float] = time.monotonic,
    **kwargs: object,
) -> T:
    """Call ``fn`` under ``policy``, retrying transient failures.

    Args:
        fn: the callable to invoke.
        *args: positional arguments forwarded to ``fn``.
        policy: retry behaviour.
        stage: logical name used in metrics and error messages.
        rng: jitter source; defaults to a fresh
            ``default_rng(policy.jitter_seed)`` per call so the backoff
            schedule is deterministic.
        sleep: sleep function (injectable; defaults to ``time.sleep``).
        clock: monotonic clock used for the deadline budget.
        **kwargs: keyword arguments forwarded to ``fn``.

    Returns:
        ``fn``'s return value from the first successful attempt.

    Raises:
        RetryExhaustedError: when ``max_attempts`` failures accumulated
            or the deadline budget ran out; the final failure is
            chained as ``__cause__``.
    """
    if rng is None:
        rng = np.random.default_rng(policy.jitter_seed)
    if sleep is None:
        sleep = time.sleep
    start = clock()
    failures = 0
    while True:
        try:
            result = fn(*args, **kwargs)
        except policy.retry_on as exc:
            failures += 1
            counter("runtime.retry.attempts_total", stage=stage).inc()
            elapsed = clock() - start
            out_of_budget = (
                policy.deadline_s is not None and elapsed >= policy.deadline_s
            )
            if failures >= policy.max_attempts or out_of_budget:
                counter("runtime.retry.exhausted_total", stage=stage).inc()
                raise RetryExhaustedError(stage, failures, elapsed) from exc
            cap = min(
                policy.max_delay_s, policy.base_delay_s * (2.0 ** (failures - 1))
            )
            delay = float(rng.uniform(0.0, cap))
            if policy.deadline_s is not None:
                delay = min(delay, max(policy.deadline_s - elapsed, 0.0))
            if delay > 0.0:
                sleep(delay)
        else:
            if failures:
                counter("runtime.retry.recovered_total", stage=stage).inc()
            return result


def retry(
    policy: RetryPolicy, stage: str | None = None
) -> Callable[[Callable[..., T]], Callable[..., T]]:
    """Decorator form of :func:`call_with_retry`.

    Args:
        policy: retry behaviour applied to every call.
        stage: metrics stage name (defaults to the function's
            ``__qualname__``).

    Returns:
        A decorator wrapping the function in the retry loop.
    """

    def decorate(fn: Callable[..., T]) -> Callable[..., T]:
        name = stage if stage is not None else fn.__qualname__

        def wrapper(*args: object, **kwargs: object) -> T:
            return call_with_retry(fn, *args, policy=policy, stage=name, **kwargs)

        wrapper.__name__ = fn.__name__
        wrapper.__qualname__ = fn.__qualname__
        wrapper.__doc__ = fn.__doc__
        wrapper.__wrapped__ = fn
        return wrapper

    return decorate
