"""Spectrum frame building and featurisers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsp import (
    FEATURIZERS,
    FeatureFrames,
    build_spectrum_frames,
    normalize_pseudospectrum,
    power_to_db,
    uncalibrated,
)


class TestNormalisation:
    def test_pseudospectrum_unit_range(self):
        spectrum = np.array([1e3, 1.0, 1e-9])
        out = normalize_pseudospectrum(spectrum)
        assert out.max() == pytest.approx(1.0)
        assert (out >= 0).all() and (out <= 1).all()

    def test_scale_invariant(self):
        spectrum = np.array([5.0, 1.0, 0.2])
        np.testing.assert_allclose(
            normalize_pseudospectrum(spectrum),
            normalize_pseudospectrum(spectrum * 1e6),
        )

    def test_power_to_db(self):
        assert power_to_db(np.array([1.0]))[0] == pytest.approx(0.0)
        assert power_to_db(np.array([0.1]))[0] == pytest.approx(-10.0)
        assert power_to_db(np.array([0.0]))[0] == -120.0


class TestBuildSpectrumFrames:
    def test_shapes_and_label(self, small_log):
        psi = uncalibrated(small_log)
        frames = build_spectrum_frames(small_log, psi, label="A01")
        assert set(frames.channels) == {"pseudo", "period"}
        f, n, a = frames.channels["pseudo"].shape
        assert n == small_log.n_tags
        assert a == 180
        assert frames.channels["period"].shape == (f, n, 4)
        assert frames.label == "A01"
        assert frames.n_frames == f and frames.n_tags == n

    def test_selective_channels(self, small_log):
        psi = uncalibrated(small_log)
        pseudo_only = build_spectrum_frames(small_log, psi, include_period=False)
        assert set(pseudo_only.channels) == {"pseudo"}
        period_only = build_spectrum_frames(small_log, psi, include_pseudo=False)
        assert set(period_only.channels) == {"period"}

    def test_values_finite(self, small_log):
        psi = uncalibrated(small_log)
        frames = build_spectrum_frames(small_log, psi)
        for arr in frames.channels.values():
            assert np.isfinite(arr).all()

    def test_flatten_width(self, small_log):
        psi = uncalibrated(small_log)
        frames = build_spectrum_frames(small_log, psi)
        flat = frames.flatten()
        expected = sum(arr.size for arr in frames.channels.values())
        assert flat.shape == (expected,)

    def test_channel_dims(self, small_log):
        psi = uncalibrated(small_log)
        frames = build_spectrum_frames(small_log, psi)
        assert frames.channel_dims() == {"pseudo": 180, "period": 4}


class TestFeaturizers:
    @pytest.mark.parametrize("name", sorted(FEATURIZERS))
    def test_transform_shapes(self, small_log, name):
        psi = uncalibrated(small_log)
        frames = FEATURIZERS[name].transform(small_log, psi, label="A02")
        assert isinstance(frames, FeatureFrames)
        assert frames.label == "A02"
        assert frames.n_tags == small_log.n_tags
        for arr in frames.channels.values():
            assert np.isfinite(arr).all()

    def test_m2ai_has_both_channels(self, small_log):
        psi = uncalibrated(small_log)
        frames = FEATURIZERS["m2ai"].transform(small_log, psi)
        assert set(frames.channels) == {"pseudo", "period"}

    def test_phase_featurizer_unit_circle(self, small_log):
        psi = uncalibrated(small_log)
        frames = FEATURIZERS["phase"].transform(small_log, psi)
        arr = frames.channels["phase"]
        n_ant = small_log.meta.n_antennas
        magnitudes = np.hypot(arr[..., :n_ant], arr[..., n_ant:])
        assert (magnitudes <= 1.0 + 1e-9).all()

    def test_rssi_featurizer_in_db_range(self, small_log):
        psi = uncalibrated(small_log)
        frames = FEATURIZERS["rssi"].transform(small_log, psi)
        arr = frames.channels["rssi"]
        observed = arr[arr != 0.0]
        assert (observed > -120.0).all() and (observed < 0.0).all()
