"""Shim for legacy editable installs in environments without the wheel package."""
from setuptools import setup

setup()
