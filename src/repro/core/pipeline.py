"""End-to-end M2AI pipeline: frames in, activity labels out.

Glues the scaler, the Fig. 6 network and the trainer behind a
classifier-like ``fit``/``predict``/``evaluate`` interface operating on
:class:`~repro.core.dataset.ActivityDataset` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import M2AIConfig
from repro.core.dataset import ActivityDataset, ChannelScaler
from repro.core.model import M2AINet
from repro.core.trainer import TrainHistory, Trainer
from repro.ml.base import LabelEncoder
from repro.ml.metrics import ConfusionMatrix, accuracy, confusion_matrix


@dataclass
class EvaluationResult:
    """Scored predictions on a dataset."""

    accuracy: float
    confusion: ConfusionMatrix
    predictions: np.ndarray
    labels: np.ndarray


@dataclass
class M2AIPipeline:
    """The deployable classifier.

    Args:
        config: network/training hyper-parameters.
        mode: ``"cnn_lstm"`` (the paper), ``"cnn"`` or ``"lstm"``
            (Fig. 17 ablations).
    """

    config: M2AIConfig = field(default_factory=M2AIConfig)
    mode: str = "cnn_lstm"
    model: M2AINet | None = None
    history: TrainHistory | None = None
    _scaler: ChannelScaler = field(default_factory=ChannelScaler)
    _encoder: LabelEncoder = field(default_factory=LabelEncoder)

    def fit(
        self, train: ActivityDataset, val: ActivityDataset | None = None
    ) -> "M2AIPipeline":
        """Train on ``train``; ``val`` drives best-epoch selection."""
        channels, labels = train.to_arrays()
        channels = self._scaler.fit_transform(channels)
        ids = self._encoder.fit_transform(labels)
        self.model = M2AINet(
            channel_shapes=train.channel_shapes,
            n_classes=self._encoder.n_classes,
            cfg=self.config,
            mode=self.mode,
            rng=np.random.default_rng(self.config.seed),
        )
        trainer = Trainer(self.model, self.config)
        val_channels = val_ids = None
        if val is not None:
            raw_val, val_labels = val.to_arrays()
            val_channels = self._scaler.transform(raw_val)
            val_ids = self._encoder.transform(val_labels)
        self.history = trainer.fit(channels, ids, val_channels, val_ids)
        return self

    def fine_tune(
        self, train: ActivityDataset, epochs: int = 10, learning_rate: float | None = None
    ) -> "M2AIPipeline":
        """Continue training a fitted pipeline on new data.

        Supports the paper's Section VII deployment story: a model
        trained in one environment is adapted to another with a short
        retraining pass.  The feature scaler and label vocabulary are
        kept from the original fit (new data must use known classes).

        Raises:
            RuntimeError: when the pipeline was never fitted.
        """
        if self.model is None:
            raise RuntimeError("fine_tune requires a fitted pipeline")
        from dataclasses import replace

        channels, labels = train.to_arrays()
        channels = self._scaler.transform(channels)
        ids = self._encoder.transform(labels)
        cfg = replace(
            self.config,
            epochs=epochs,
            learning_rate=learning_rate or self.config.learning_rate / 2,
        )
        Trainer(self.model, cfg).fit(channels, ids)
        return self

    def predict(self, dataset: ActivityDataset) -> np.ndarray:
        """Predicted labels for every sample."""
        proba = self.predict_proba(dataset)
        return self._encoder.inverse(proba.argmax(axis=1))

    def predict_proba(self, dataset: ActivityDataset) -> np.ndarray:
        """Class probabilities per sample, ``(B, n_classes)``.

        Columns follow ``self.classes`` ordering.
        """
        if self.model is None:
            raise RuntimeError("pipeline not fitted")
        from repro.nn.losses import softmax

        channels, _ = dataset.to_arrays()
        channels = self._scaler.transform(channels)
        return softmax(self.model.predict_logits(channels))

    @property
    def classes(self) -> np.ndarray:
        """Label vocabulary in probability-column order."""
        if self._encoder.classes_ is None:
            raise RuntimeError("pipeline not fitted")
        return self._encoder.classes_

    def evaluate(self, dataset: ActivityDataset) -> EvaluationResult:
        """Accuracy + confusion matrix on a labelled dataset.

        The confusion matrix is indexed by the encoder's full
        vocabulary (``self.classes``), not just the labels present in
        ``dataset`` — a test split missing a class would otherwise
        silently shift the columns relative to other evaluations.
        """
        predictions = self.predict(dataset)
        labels = np.asarray(dataset.labels)
        return EvaluationResult(
            accuracy=accuracy(labels, predictions),
            confusion=confusion_matrix(
                labels, predictions, labels=np.asarray(self.classes)
            ),
            predictions=predictions,
            labels=labels,
        )


def baseline_arrays(
    train: ActivityDataset, test: ActivityDataset
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Flattened, standardised features for the classical baselines.

    The scaler is fitted on the training split only.

    Returns:
        ``(x_train, y_train, x_test, y_test)``.
    """
    from repro.ml.preprocessing import StandardScaler

    scaler = StandardScaler()
    x_train = scaler.fit_transform(train.flatten_features())
    x_test = scaler.transform(test.flatten_features())
    return x_train, np.asarray(train.labels), x_test, np.asarray(test.labels)
