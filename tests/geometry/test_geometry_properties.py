"""Hypothesis invariants of the geometry primitives used in hot paths."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rectangle, Segment, Vec2

coord = st.floats(min_value=-30, max_value=30, allow_nan=False)


class TestMirrorProperties:
    @given(coord, coord, st.sampled_from(["left", "right", "bottom", "top"]))
    @settings(max_examples=50, deadline=None)
    def test_mirror_preserves_wall_distance(self, x, y, wall):
        """The image sits at the same distance behind the wall as the
        source in front of it — the property the image-source method
        relies on for path lengths."""
        r = Rectangle(-10, -10, 10, 10)
        p = Vec2(x, y)
        image = r.mirror(p, wall)
        if wall in ("left", "right"):
            plane = r.x0 if wall == "left" else r.x1
            assert abs(p.x - plane) == pytest.approx(abs(image.x - plane))
            assert image.y == p.y
        else:
            plane = r.y0 if wall == "bottom" else r.y1
            assert abs(p.y - plane) == pytest.approx(abs(image.y - plane))
            assert image.x == p.x

    @given(coord, coord, coord, coord, st.sampled_from(["left", "right", "bottom", "top"]))
    @settings(max_examples=50, deadline=None)
    def test_image_path_length_equals_reflected_path(self, ax, ay, px, py, wall):
        """|antenna - image| equals the broken-path length through the
        wall hit point, for points inside the room."""
        r = Rectangle(-10, -10, 10, 10)
        ant, p = Vec2(ax / 3, ay / 3), Vec2(px / 3, py / 3)  # keep inside
        image = r.mirror(p, wall)
        direct = ant.distance_to(image)
        # Hit point: intersection of ant->image with the wall plane.
        d = image - ant
        if wall in ("left", "right"):
            plane = r.x0 if wall == "left" else r.x1
            if abs(d.x) < 1e-9:
                return
            t = (plane - ant.x) / d.x
        else:
            plane = r.y0 if wall == "bottom" else r.y1
            if abs(d.y) < 1e-9:
                return
            t = (plane - ant.y) / d.y
        if not 0.0 <= t <= 1.0:
            return
        hit = ant.lerp(image, t)
        broken = ant.distance_to(hit) + hit.distance_to(p)
        assert broken == pytest.approx(direct, rel=1e-9, abs=1e-9)


class TestSegmentProperties:
    @given(coord, coord, coord, coord)
    @settings(max_examples=50, deadline=None)
    def test_midpoint_equidistant(self, ax, ay, bx, by):
        seg = Segment(Vec2(ax, ay), Vec2(bx, by))
        m = seg.midpoint()
        assert m.distance_to(seg.a) == pytest.approx(m.distance_to(seg.b), abs=1e-9)

    @given(coord, coord, coord, coord)
    @settings(max_examples=50, deadline=None)
    def test_endpoints_have_zero_distance(self, ax, ay, bx, by):
        seg = Segment(Vec2(ax, ay), Vec2(bx, by))
        assert seg.distance_to_point(seg.a) == pytest.approx(0.0, abs=1e-9)
        assert seg.distance_to_point(seg.b) == pytest.approx(0.0, abs=1e-9)
