"""Invariants of recorded experiment results."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

STATE = Path(__file__).resolve().parents[2] / ".repro_cache" / "experiment_state.json"


@pytest.mark.skipif(not STATE.exists(), reason="no recorded experiments yet")
class TestRecordedState:
    def test_blocks_render_their_ids(self):
        state = json.loads(STATE.read_text())
        for exp_id, block in state.items():
            assert exp_id in block, f"{exp_id} block lacks its own id"

    def test_blocks_have_measured_column(self):
        state = json.loads(STATE.read_text())
        for exp_id, block in state.items():
            assert "measured" in block, exp_id

    def test_known_ids_only(self):
        from repro.eval import ALL_EXPERIMENTS

        state = json.loads(STATE.read_text())
        unknown = set(state) - set(ALL_EXPERIMENTS)
        assert not unknown, f"unknown experiment ids recorded: {unknown}"
