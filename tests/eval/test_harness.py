"""Experiment harness: caching, baseline zoo, M2AI train/eval glue."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import M2AIConfig
from repro.data import GenerationConfig
from repro.eval import baseline_zoo, clear_cache, eval_baselines, get_dataset, train_eval_m2ai
from repro.eval.harness import _RAW_CACHE, get_raw_samples

TINY = GenerationConfig(
    scenario_labels=("A01", "A03"),
    samples_per_class=3,
    duration_s=3.2,
    calibration_s=20.0,
    seed=77,
)


@pytest.fixture(autouse=True)
def no_disk_cache(monkeypatch, tmp_path):
    """Point the disk cache at a temp dir so tests never share state."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    clear_cache()
    yield
    clear_cache()


class TestCaching:
    def test_process_memoisation(self):
        first = get_raw_samples(TINY)
        second = get_raw_samples(TINY)
        assert first is second

    def test_disk_roundtrip(self):
        first = get_raw_samples(TINY)
        clear_cache()
        assert TINY not in _RAW_CACHE
        second = get_raw_samples(TINY)
        assert first is not second
        np.testing.assert_allclose(first[0].log.phase_rad, second[0].log.phase_rad)

    def test_dataset_from_cache(self):
        ds = get_dataset(TINY)
        assert len(ds) == 6
        assert sorted(ds.classes) == ["A01", "A03"]


class TestBaselineZoo:
    def test_nine_flat_baselines(self):
        zoo = baseline_zoo(np.random.default_rng(0))
        assert len(zoo) == 9
        assert "Linear SVM" in zoo and "Bayesian Net" in zoo

    def test_eval_baselines_scores(self):
        ds = get_dataset(TINY)
        scores = eval_baselines(ds, split_seed=0, include_hmm=True, test_fraction=0.34)
        assert "HMM" in scores
        assert len(scores) == 10
        for value in scores.values():
            assert 0.0 <= value <= 1.0


class TestTrainEval:
    def test_train_eval_m2ai_runs(self):
        ds = get_dataset(TINY)
        cfg = M2AIConfig(
            conv_channels=(3, 4), branch_dim=6, merge_dim=8, lstm_hidden=6,
            lstm_layers=1, epochs=4, batch_size=4, warmup_frames=1,
        )
        result, pipeline = train_eval_m2ai(ds, cfg, split_seed=0, test_fraction=0.34)
        assert 0.0 <= result.accuracy <= 1.0
        assert pipeline.history is not None
        assert len(pipeline.history.loss) == 4
