"""Project-specific lint rules over the stdlib :mod:`ast`.

Each rule encodes an invariant the reproduction's credibility rests on
but that no stock tool checks: seeded randomness everywhere, the
forward/backward cache contract of :mod:`repro.nn`, a single float64
numeric standard, and shape-documented spectrum producers.

Rules are pluggable: subclass :class:`LintRule`, decorate with
:func:`register_rule`, and the CLI picks the rule up automatically.
Codes are stable (``RPR001``...) so suppressions and CI logs stay
meaningful across versions.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.dataflow.callgraph import CallGraph, build_call_graph
from repro.analysis.dataflow.project import Project

__all__ = [
    "DEFAULT_DISABLED",
    "FileContext",
    "Finding",
    "LintRule",
    "PROJECT_RULES",
    "ProjectContext",
    "ProjectRule",
    "RULES",
    "register_project_rule",
    "register_rule",
]


@dataclass(frozen=True)
class Finding:
    """One lint violation.

    Attributes:
        path: file the violation was found in.
        line: 1-based line number.
        col: 0-based column.
        code: stable rule code (``RPR001``...).
        message: what is wrong, specific to the site.
        hint: how to fix it, generic to the rule.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    hint: str

    def as_dict(self) -> dict[str, object]:
        """JSON-ready representation."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass(frozen=True)
class FileContext:
    """Everything a rule may inspect about one source file."""

    path: str
    source: str
    tree: ast.Module


class LintRule:
    """Base class for a registered rule.

    Subclasses set the class attributes and implement :meth:`check`.
    """

    code: str = ""
    name: str = ""
    description: str = ""
    hint: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file."""
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
            hint=self.hint,
        )


RULES: dict[str, LintRule] = {}
"""Registry mapping rule code to rule instance (single-file rules)."""

PROJECT_RULES: dict[str, "ProjectRule"] = {}
"""Registry of project-wide (flow-aware) rules, keyed by code."""

DEFAULT_DISABLED: frozenset[str] = frozenset({"RPR006"})
"""Codes registered but left out of the default selection.

RPR006 (token-level narrow-float ban) is superseded by the flow-aware
RPR012 pack, which admits float32 proven to stay inside an explicit
``inference_mode()`` scope; the token rule stays selectable with
``--select RPR006`` for callers who want the stricter blanket ban.
"""


def register_rule(cls: type[LintRule]) -> type[LintRule]:
    """Class decorator adding a rule to :data:`RULES`.

    Raises:
        ValueError: on a duplicate or malformed code.
    """
    if not re.fullmatch(r"RPR\d{3}", cls.code):
        raise ValueError(f"rule code must look like RPR001, got {cls.code!r}")
    if cls.code in RULES or cls.code in PROJECT_RULES:
        raise ValueError(f"duplicate rule code {cls.code}")
    RULES[cls.code] = cls()
    return cls


@dataclass
class ProjectContext:
    """Everything a project rule may inspect: the whole linted tree.

    Attributes:
        project: parsed modules + symbol tables + function index.
    """

    project: Project
    _call_graph: CallGraph | None = field(default=None, repr=False)

    @property
    def call_graph(self) -> CallGraph:
        """The project call graph, built once on first use."""
        if self._call_graph is None:
            self._call_graph = build_call_graph(self.project)
        return self._call_graph


class ProjectRule(LintRule):
    """Base class for whole-project (interprocedural) rules.

    Unlike :class:`LintRule`, the single ``check_project`` call sees
    every linted file at once — call graph included — so rules can
    follow values across assignments, returns, and call edges.
    """

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Project rules never run per-file."""
        return iter(())

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        """Yield findings across the whole project."""
        raise NotImplementedError

    def finding_at(
        self, path: str, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at ``node`` in ``path``."""
        return Finding(
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
            hint=self.hint,
        )


def register_project_rule(cls: type[ProjectRule]) -> type[ProjectRule]:
    """Class decorator adding a rule to :data:`PROJECT_RULES`.

    Raises:
        ValueError: on a duplicate or malformed code.
    """
    if not re.fullmatch(r"RPR\d{3}", cls.code):
        raise ValueError(f"rule code must look like RPR001, got {cls.code!r}")
    if cls.code in RULES or cls.code in PROJECT_RULES:
        raise ValueError(f"duplicate rule code {cls.code}")
    PROJECT_RULES[cls.code] = cls()
    return cls


def _dotted(node: ast.AST) -> str | None:
    """Dotted name of a Name/Attribute chain, or None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


_LEGACY_RANDOM = frozenset(
    {
        "seed",
        "get_state",
        "set_state",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "bytes",
        "shuffle",
        "permutation",
        "beta",
        "binomial",
        "chisquare",
        "dirichlet",
        "exponential",
        "gamma",
        "geometric",
        "gumbel",
        "laplace",
        "logistic",
        "lognormal",
        "multinomial",
        "multivariate_normal",
        "normal",
        "pareto",
        "poisson",
        "power",
        "rayleigh",
        "standard_cauchy",
        "standard_exponential",
        "standard_gamma",
        "standard_normal",
        "standard_t",
        "triangular",
        "uniform",
        "vonmises",
        "wald",
        "weibull",
        "zipf",
        "RandomState",
    }
)


@register_rule
class LegacyRandomRule(LintRule):
    """RPR001: no module-state numpy randomness, no unseeded generators.

    The paper's calibration ablation (97% vs 52%) is only trustworthy
    when every run is reproducible, so every stochastic path must flow
    through an explicitly seeded ``np.random.default_rng(seed)`` or a
    :class:`numpy.random.Generator` threaded in from the caller.
    """

    code = "RPR001"
    name = "legacy-random"
    description = (
        "np.random module-state calls and unseeded default_rng() are banned; "
        "use np.random.default_rng(seed) or thread a Generator through"
    )
    hint = "seed explicitly: np.random.default_rng(<seed>) or accept a Generator argument"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file."""
        called_with_args: set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and (node.args or node.keywords):
                called_with_args.add(id(node.func))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            dotted = _dotted(node)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if len(parts) != 3 or parts[0] not in ("np", "numpy") or parts[1] != "random":
                continue
            leaf = parts[2]
            if leaf in _LEGACY_RANDOM:
                yield self.finding(
                    ctx, node, f"legacy module-state call {dotted}() shares global RNG state"
                )
            elif leaf == "default_rng" and id(node) not in called_with_args:
                yield self.finding(
                    ctx, node, f"{dotted} without an explicit seed is not reproducible"
                )


@register_rule
class ForwardBackwardPairRule(LintRule):
    """RPR002: Module subclasses define forward and backward together.

    ``repro.nn`` layers cache forward activations for the backward
    pass; a subclass overriding only one half silently breaks that
    contract (it would mix its own forward with an inherited backward
    reading a stale or missing cache).
    """

    code = "RPR002"
    name = "forward-backward-pair"
    description = "a Module subclass defining forward must define backward, and vice versa"
    hint = "implement the missing half (or inherit both from the parent layer)"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = {(_dotted(b) or "").rsplit(".", 1)[-1] for b in node.bases}
            if not bases & {"Module", "Sequential"}:
                continue
            methods = {
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            has_fwd, has_bwd = "forward" in methods, "backward" in methods
            if has_fwd != has_bwd:
                present, missing = (
                    ("forward", "backward") if has_fwd else ("backward", "forward")
                )
                yield self.finding(
                    ctx,
                    node,
                    f"class {node.name} defines {present} but not {missing}; "
                    "the forward-then-backward cache contract needs both",
                )


@register_rule
class MutableDefaultRule(LintRule):
    """RPR003: no mutable default arguments."""

    code = "RPR003"
    name = "mutable-default"
    description = "list/dict/set literals (or constructors) as argument defaults are shared state"
    hint = "default to None and construct inside the function body"

    _CONSTRUCTORS = frozenset({"list", "dict", "set"})

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = _dotted(node.func)
            return name in self._CONSTRUCTORS
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    where = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default argument in {where}() is shared across calls",
                    )


@register_rule
class SwallowedExceptionRule(LintRule):
    """RPR004: no bare ``except:`` and no exception-swallowing handlers.

    Silent handlers are exactly how non-finite values sneak past the
    DSP chain; degradation must be explicit (abstains, masks, reports).
    """

    code = "RPR004"
    name = "swallowed-exception"
    description = "bare except: and `except ...: pass` hide failures the pipeline must surface"
    hint = "catch a specific exception and handle or re-raise it; never pass silently"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(ctx, node, "bare except: catches everything, even SystemExit")
                continue
            if len(node.body) == 1:
                only = node.body[0]
                is_pass = isinstance(only, ast.Pass)
                is_ellipsis = (
                    isinstance(only, ast.Expr)
                    and isinstance(only.value, ast.Constant)
                    and only.value.value is Ellipsis
                )
                if is_pass or is_ellipsis:
                    yield self.finding(
                        ctx, node, "exception handler swallows the error without a trace"
                    )


@register_rule
class AllExportsRule(LintRule):
    """RPR005: ``__init__`` exports and ``__all__`` must match exactly.

    ``test_public_api`` walks ``__all__``; a name listed but unbound
    breaks `from repro.x import *`, while a public binding missing from
    ``__all__`` is an undocumented API users cannot discover.
    """

    code = "RPR005"
    name = "all-exports"
    description = "__all__ entries must be bound in the __init__, and public bindings listed"
    hint = "keep __all__ and the import list in lockstep (sorted, two-way complete)"

    def _bound_names(self, tree: ast.Module) -> set[str]:
        names: set[str] = set()
        for node in tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    names.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    names.add(alias.asname or alias.name)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                names.add(node.target.id)
        return names

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file."""
        if not ctx.path.endswith("__init__.py"):
            return
        all_node: ast.Assign | None = None
        for node in ctx.tree.body:
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
            ):
                all_node = node
        bound = self._bound_names(ctx.tree)
        public = {n for n in bound if not n.startswith("_")}
        if all_node is None:
            if public:
                yield self.finding(
                    ctx,
                    ctx.tree.body[0] if ctx.tree.body else ctx.tree,
                    f"__init__ binds {len(public)} public name(s) but declares no __all__",
                )
            return
        if not isinstance(all_node.value, (ast.List, ast.Tuple)) or not all(
            isinstance(e, ast.Constant) and isinstance(e.value, str)
            for e in all_node.value.elts
        ):
            yield self.finding(ctx, all_node, "__all__ must be a literal list of strings")
            return
        exported = [e.value for e in all_node.value.elts]
        for name in exported:
            if name not in bound:
                yield self.finding(
                    ctx, all_node, f"__all__ lists {name!r} but the module never binds it"
                )
        listed = set(exported)
        for name in sorted(public - listed):
            yield self.finding(
                ctx, all_node, f"public name {name!r} is bound but missing from __all__"
            )
        dupes = {n for n in exported if exported.count(n) > 1}
        for name in sorted(dupes):
            yield self.finding(ctx, all_node, f"__all__ lists {name!r} more than once")


@register_rule
class NarrowFloatRule(LintRule):
    """RPR006: float64 is the numeric standard; no narrow-float dtypes.

    Mixed precision silently truncates MUSIC eigen-decompositions and
    gradient accumulations; ``repro.nn.module.DEFAULT_DTYPE`` is the
    single source of truth and everything else stays float64/complex128.
    """

    code = "RPR006"
    name = "narrow-float"
    description = "float32/float16 dtype literals drift from the library's float64 standard"
    hint = "use float64 (repro.nn.module.DEFAULT_DTYPE) or suppress for an intentional cast"

    # reprolint: disable=RPR006 -- the ban tables below must name the banned dtypes
    _NARROW_STRINGS = frozenset({"float32", "float16", "complex64"})
    _NARROW_ATTRS = frozenset(
        {"float32", "float16", "half", "single", "csingle", "complex64"}
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Constant) and node.value in self._NARROW_STRINGS:
                yield self.finding(
                    ctx, node, f"narrow dtype string {node.value!r} mixes precision"
                )
            elif isinstance(node, ast.Attribute):
                dotted = _dotted(node)
                if dotted is None:
                    continue
                parts = dotted.split(".")
                if parts[0] in ("np", "numpy") and parts[-1] in self._NARROW_ATTRS:
                    yield self.finding(ctx, node, f"narrow dtype {dotted} mixes precision")


@register_rule
class NoPrintRule(LintRule):
    """RPR007: no ``print`` in library code.

    ``scripts/``, ``examples/`` and ``benchmarks/`` own the terminal;
    library modules must stay silent so services embedding them control
    their own logging.
    """

    code = "RPR007"
    name = "no-print"
    description = "print() in library code; reserve stdout for scripts/, examples/, benchmarks/"
    hint = "return the value, raise, or leave reporting to the calling script"

    _ALLOWED_PARTS = frozenset({"scripts", "examples", "benchmarks"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file."""
        parts = set(re.split(r"[\\/]", ctx.path))
        if parts & self._ALLOWED_PARTS:
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(ctx, node, "print() call in library code")


@register_rule
class ShapeContractRule(LintRule):
    """RPR008: spectrum producers document their output shape.

    Downstream layers are sized off the frame shapes (``(F, n_tags,
    180)`` pseudospectrum, ``(F, n_tags, N)`` periodogram); every
    function producing such frames must carry an explicit
    ``shape: (...)`` tag in its docstring so the contract is checkable
    at review time.
    """

    code = "RPR008"
    name = "shape-contract"
    description = (
        "functions producing pseudospectrum/periodogram/spectrum frames need a "
        "`shape: (...)` docstring tag"
    )
    hint = 'add a docstring tag like ``shape: (n_tags, 180)`` to the Returns section'

    _NAME_PATTERN = re.compile(r"pseudospectrum|periodogram|spectrum_frames")
    _TAG_PATTERN = re.compile(r"shape:\s*`{0,2}\(")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not self._NAME_PATTERN.search(node.name):
                continue
            doc = ast.get_docstring(node)
            if doc is None or not self._TAG_PATTERN.search(doc):
                yield self.finding(
                    ctx,
                    node,
                    f"{node.name}() produces spectrum data but documents no shape: (...) tag",
                )


@register_rule
class MonotonicClockRule(LintRule):
    """RPR010: duration and deadline math must not use ``time.time``.

    The wall clock jumps (NTP slews, DST, manual adjustment); an
    interval measured with ``time.time()`` can be negative or wildly
    wrong, which silently corrupts retry backoff budgets, breaker
    reset timeouts, and per-window deadlines.  ``time.monotonic`` (or
    ``time.perf_counter`` for profiling) is immune.  The rare
    legitimate use — stamping an *epoch timestamp* for export — takes
    a line suppression.
    """

    code = "RPR010"
    name = "monotonic-clock"
    description = (
        "time.time() in library code; durations and deadlines must use "
        "time.monotonic (or time.perf_counter for profiling)"
    )
    hint = (
        "use time.monotonic() for durations/deadlines, time.perf_counter() "
        "for profiling; suppress only genuine epoch timestamps"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if _dotted(node) == "time.time":
                yield self.finding(
                    ctx,
                    node,
                    "time.time() follows the adjustable wall clock; "
                    "interval math needs a monotonic clock",
                )


@register_rule
class PublicDocstringRule(LintRule):
    """RPR009: every public function and class carries a docstring.

    ``scripts/gen_api_docs.py`` renders ``docs/API.md`` straight from
    docstrings, so an undocumented public name is a hole in the
    generated reference.  Private names (leading underscore, which
    covers dunders) and definitions nested inside function bodies are
    exempt; property setters/deleters inherit the getter's doc.
    """

    code = "RPR009"
    name = "public-docstring"
    description = "public module-level and class-level functions/classes need docstrings"
    hint = "add a docstring (summary line at minimum); docs/API.md is generated from it"

    _EXEMPT_PARTS = frozenset({"tests", "scripts", "examples", "benchmarks"})
    _EXEMPT_DECORATORS = frozenset({"setter", "deleter"})

    def _is_exempt_accessor(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        for dec in node.decorator_list:
            if isinstance(dec, ast.Attribute) and dec.attr in self._EXEMPT_DECORATORS:
                return True
        return False

    def _check_body(self, ctx: FileContext, body: list[ast.stmt]) -> Iterator[Finding]:
        for node in body:
            if isinstance(node, ast.ClassDef):
                if node.name.startswith("_"):
                    continue
                if ast.get_docstring(node) is None:
                    yield self.finding(
                        ctx, node, f"public class {node.name} has no docstring"
                    )
                yield from self._check_body(ctx, node.body)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.startswith("_") or self._is_exempt_accessor(node):
                    continue
                if ast.get_docstring(node) is None:
                    yield self.finding(
                        ctx, node, f"public function {node.name}() has no docstring"
                    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file."""
        parts = set(re.split(r"[\\/]", ctx.path))
        if parts & self._EXEMPT_PARTS:
            return
        yield from self._check_body(ctx, ctx.tree.body)


@register_rule
class BarePoolRule(LintRule):
    """RPR011: no bare ``multiprocessing.Pool`` in library code.

    A bare pool has none of the serving layer's safety rails: no
    liveness probing (a dead worker hangs ``map`` forever), no crash
    attribution, no stream reassignment, and its lazy pickling turns
    large read logs into double copies.  Library code that needs
    worker processes goes through :mod:`repro.serving.workers`
    (``ShardWorker`` and friends), which owns the process lifecycle
    explicitly.
    """

    code = "RPR011"
    name = "bare-pool"
    description = (
        "bare multiprocessing.Pool in library code; use the supervised "
        "workers in repro.serving.workers instead"
    )
    hint = (
        "route worker processes through repro.serving.workers "
        "(ShardWorker/ProcessShardWorker) so crashes are detected and "
        "attributed instead of hanging a Pool"
    )

    _BANNED_ATTRS = frozenset(
        {
            "multiprocessing.Pool",
            "multiprocessing.pool.Pool",
            "multiprocessing.dummy.Pool",
            "mp.Pool",
        }
    )
    _BANNED_MODULES = frozenset(
        {"multiprocessing", "multiprocessing.pool", "multiprocessing.dummy"}
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                if _dotted(node) in self._BANNED_ATTRS:
                    yield self.finding(
                        ctx,
                        node,
                        "bare multiprocessing.Pool hides worker crashes; "
                        "use repro.serving.workers",
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module in self._BANNED_MODULES and any(
                    alias.name == "Pool" for alias in node.names
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"importing Pool from {node.module} bypasses the "
                        "supervised worker layer",
                    )
