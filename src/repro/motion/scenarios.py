"""The 12 multi-person activity scenarios of the evaluation.

The paper tests "12 activity scenarios with two people" (Fig. 8 shows
sketches without naming them).  We define 12 concrete two-person
combinations over the primitive vocabulary and document each; what
matters for reproduction is that the 12 classes produce distinct joint
RF signatures through the same pipeline.

Scenario instances are randomised: volunteer physique, placement
(3-6 m from the reader, per Section VI-A), base heading, and primitive
rate/amplitude/phase all vary per sample.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.room import Room
from repro.geometry.vec import Vec2
from repro.hardware.antenna import UniformLinearArray
from repro.hardware.scene import Scene, TagTrack
from repro.hardware.tag import make_tag
from repro.motion.body import ATTACHMENTS, PersonMotion, PersonProfile, perform
from repro.motion.primitives import get_primitive


@dataclass(frozen=True)
class ActivityScenario:
    """A labelled multi-person activity class.

    Attributes:
        label: class id, ``"A01"`` .. ``"A12"``.
        description: what the people are doing.
        primitives: primitive name per person; cycled when the caller
            asks for more people than listed.
    """

    label: str
    description: str
    primitives: tuple[str, ...]


SCENARIOS: dict[str, ActivityScenario] = {
    s.label: s
    for s in (
        ActivityScenario(
            "A01", "P1 waves a hand, P2 stands still", ("wave_hand", "stand_still")
        ),
        ActivityScenario(
            "A02",
            "P1 pushes forward repeatedly, P2 stands still",
            ("push_forward", "stand_still"),
        ),
        ActivityScenario("A03", "P1 walks a line, P2 stands still", ("walk_line", "stand_still")),
        ActivityScenario("A04", "P1 squats, P2 stands still", ("squat", "stand_still")),
        ActivityScenario("A05", "both people wave hands", ("wave_hand", "wave_hand")),
        ActivityScenario("A06", "both people walk lines", ("walk_line", "walk_line")),
        ActivityScenario(
            "A07", "P1 claps, P2 turns around in place", ("clap_hands", "turn_around")
        ),
        ActivityScenario(
            "A08", "P1 picks objects up, P2 walks a line", ("pick_up", "walk_line")
        ),
        ActivityScenario("A09", "P1 jumps, P2 waves a hand", ("jump", "wave_hand")),
        ActivityScenario("A10", "P1 sits down, P2 pushes forward", ("sit_down", "push_forward")),
        ActivityScenario(
            "A11", "P1 stretches arms, P2 walks a circle", ("stretch_arms", "walk_circle")
        ),
        ActivityScenario("A12", "P1 turns around, P2 squats", ("turn_around", "squat")),
    )
}
"""All twelve scenario classes, keyed by label."""

SCENARIO_LABELS: tuple[str, ...] = tuple(sorted(SCENARIOS))
"""Class labels in canonical (sorted) order."""


@dataclass
class ScenarioInstance:
    """One rendered execution of a scenario.

    Attributes:
        label: scenario class id.
        scene: the RF scene handed to the reader.
        motions: per-person sampled movement (ground truth).
    """

    label: str
    scene: Scene
    motions: list[PersonMotion]


_SPOT_BEARINGS_DEG = (70.0, 110.0, 90.0, 55.0, 125.0)
_SPOT_DISTANCES_M = (4.0, 4.5, 3.2, 5.0, 3.8)


def place_people(
    n_persons: int,
    array: UniformLinearArray,
    room: Room,
    rng: np.random.Generator,
    distance_m: float | None = None,
    min_separation: float = 1.2,
    bearing_jitter_deg: float = 8.0,
    distance_jitter_m: float = 0.5,
) -> list[Vec2]:
    """Choose anchor positions for the people.

    The paper's protocol has volunteers perform *predefined scenarios*
    3-6 m in front of the reader, and its discussion section notes the
    trained model is specific to "identical antenna settings and tag
    placements".  We model that: person ``i`` has a nominal floor spot
    (a bearing/distance pair in front of the array) and each execution
    jitters around it — repeatable the way marked positions in a lab
    study are, but never identical.

    Args:
        n_persons: how many anchors to draw.
        array: the reader array (people are placed in front of it).
        room: placements must fall inside this room.
        rng: per-execution jitter randomness.
        distance_m: fix the reader distance for every spot (Fig. 13);
            the per-spot nominal distances are used when None.
        min_separation: minimum pairwise anchor spacing.
        bearing_jitter_deg: per-execution bearing jitter.
        distance_jitter_m: per-execution distance jitter.

    Returns:
        ``n_persons`` anchor points.

    Raises:
        RuntimeError: when no valid placement is found (a pathological
            room/arguments combination).
    """
    anchors: list[Vec2] = []
    for i in range(n_persons):
        base_bearing = _SPOT_BEARINGS_DEG[i % len(_SPOT_BEARINGS_DEG)]
        base_distance = (
            distance_m
            if distance_m is not None
            else _SPOT_DISTANCES_M[i % len(_SPOT_DISTANCES_M)]
        )
        # Close-range sweeps (Fig. 13 at 1 m) cannot honour the default
        # spacing; scale it down with the working distance.
        min_separation = min(min_separation, max(0.5, 0.7 * base_distance))
        for _attempt in range(200):
            bearing = np.deg2rad(
                base_bearing + rng.uniform(-bearing_jitter_deg, bearing_jitter_deg)
            )
            dist = base_distance + rng.uniform(-distance_jitter_m, distance_jitter_m)
            dist = max(dist, 0.8)
            # Bearing is measured from the array axis, like the AoA.
            offset = Vec2(
                float(np.cos(bearing)), float(np.sin(bearing))
            ).rotated(array.axis_angle_rad)
            candidate = array.center + offset * float(dist)
            if not room.contains(candidate, margin=0.5):
                continue
            if all(candidate.distance_to(a) >= min_separation for a in anchors):
                anchors.append(candidate)
                break
        else:
            raise RuntimeError(
                f"could not place {n_persons} people in {room.name} "
                f"at distance {distance_m}"
            )
    return anchors


def build_instance(
    scenario: ActivityScenario,
    array: UniformLinearArray,
    room: Room,
    duration_s: float,
    slot_s: float,
    rng: np.random.Generator,
    n_persons: int | None = None,
    tags_per_person: int = 3,
    distance_m: float | None = None,
    profiles: list[PersonProfile] | None = None,
) -> ScenarioInstance:
    """Render one randomised execution of a scenario into a Scene.

    Args:
        scenario: the activity class.
        array: reader array (placement reference).
        room: environment.
        duration_s: observation window length.
        slot_s: reader TDM slot (sets the trajectory sample rate).
        rng: randomness for this instance.
        n_persons: people in the scene; defaults to the scenario's
            primitive count (2).  Extra people cycle the primitive
            list, fewer truncate it (Fig. 11 sweeps this).
        tags_per_person: 1-3 tags at hand/arm/shoulder (Fig. 15).
        distance_m: fixed reader distance (Fig. 13) or None for random.
        profiles: optional fixed volunteer physiques.

    Returns:
        The rendered :class:`ScenarioInstance`.
    """
    if not 1 <= tags_per_person <= len(ATTACHMENTS):
        raise ValueError(f"tags_per_person must be in [1, {len(ATTACHMENTS)}]")
    n_persons = n_persons if n_persons is not None else len(scenario.primitives)
    if n_persons < 1:
        raise ValueError("need at least one person")

    n_slots = int(round(duration_s / slot_s))
    t = (np.arange(n_slots) + 0.5) * slot_s
    anchors = place_people(n_persons, array, room, rng, distance_m=distance_m)

    motions: list[PersonMotion] = []
    for i in range(n_persons):
        primitive = get_primitive(scenario.primitives[i % len(scenario.primitives)])
        profile = profiles[i] if profiles is not None else None
        motions.append(perform(primitive, anchors[i], t, rng, profile=profile))

    bodies = tuple(m.body_track() for m in motions)
    tracks: list[TagTrack] = []
    for i, motion in enumerate(motions):
        for attachment in ATTACHMENTS[:tags_per_person]:
            epc = f"{scenario.label}-P{i}-{attachment}"
            tracks.append(
                TagTrack(
                    tag=make_tag(epc, rng),
                    positions=motion.tag_position(attachment),
                    carrier=i,
                )
            )
    scene = Scene(tag_tracks=tuple(tracks), bodies=bodies)
    return ScenarioInstance(label=scenario.label, scene=scene, motions=motions)
