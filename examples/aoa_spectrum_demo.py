"""AoA spectrum demo: reproduce the intuition of Fig. 2 as ASCII art.

Three scenes, matching the paper's motivating figure:

(a) one stationary tag — the multipath pseudospectrum holds steady;
(b) the same tag while another person walks through the scene — the
    blocked path collapses and neighbouring peaks shift;
(c) six tags on two moving people — many interleaved paths.

Usage::

    python examples/aoa_spectrum_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.channel.model import BodyTrack
from repro.dsp.calibration import PhaseCalibrator
from repro.dsp.correlation import spatial_covariance
from repro.dsp.frames import normalize_pseudospectrum
from repro.dsp.music import music_pseudospectrum
from repro.dsp.snapshots import build_snapshots
from repro.geometry import Vec2, make_laboratory
from repro.hardware import Reader, ReaderConfig, Scene, TagTrack, UniformLinearArray
from repro.hardware.scene import stationary_scene
from repro.hardware.tag import make_tag
from repro.motion import SCENARIOS, build_instance


def ascii_spectrum(spectrum: np.ndarray, angles: np.ndarray, width: int = 60) -> str:
    """Down-sample a pseudospectrum into a one-line bar strip."""
    normalized = normalize_pseudospectrum(spectrum)
    bins = np.array_split(normalized, width)
    glyphs = " .:-=+*#%@"
    line = "".join(
        glyphs[min(int(np.max(b) * (len(glyphs) - 1)), len(glyphs) - 1)] for b in bins
    )
    return f"0deg |{line}| 180deg"


def frame_spectra(reader: Reader, scene: Scene, duration: float, tag: int = 0):
    n_cal = int(round(20.0 / reader.config.slot_s))
    frozen = _freeze(scene, n_cal)
    calibrator = PhaseCalibrator.fit(reader.inventory(frozen, 20.0))
    log = reader.inventory(scene, duration)
    psi = calibrator.calibrate(log)
    snaps = build_snapshots(log, psi, tag)
    out = []
    for f in range(snaps.n_frames):
        if not snaps.frame_valid(f):
            continue
        cov = spatial_covariance(snaps.z[f], snaps.valid[f])
        out.append(
            music_pseudospectrum(
                cov,
                spacing_m=log.meta.spacing_m,
                wavelength_m=float(snaps.wavelength_m[f]),
            )
        )
    return out


def _freeze(scene: Scene, n_slots: int) -> Scene:
    tracks = []
    for track in scene.tag_tracks:
        pos = track.positions
        start = pos[0] if pos.ndim == 2 else pos
        tracks.append(
            TagTrack(tag=track.tag, positions=np.asarray(start), carrier=track.carrier)
        )
    bodies = tuple(
        BodyTrack(positions=np.tile(b.positions[0], (n_slots, 1)), radius=b.radius)
        for b in scene.bodies
    )
    return Scene(tag_tracks=tuple(tracks), bodies=bodies)


def main() -> None:
    room = make_laboratory()
    array = UniformLinearArray(center=Vec2(room.bounds.width / 2.0, 0.3))
    rng = np.random.default_rng(0)
    duration = 4.0
    n_slots = int(round(duration / 0.025))

    print("(a) Stationary tag, nobody moving — spectrum is stable:")
    reader = Reader(ReaderConfig(array=array), room, seed=1)
    tag_pos = (room.bounds.width / 2.0 + 1.2, 4.0)
    scene = stationary_scene([(make_tag("demo-a", rng), tag_pos)])
    for i, result in enumerate(frame_spectra(reader, scene, duration)):
        peaks = ", ".join(f"{a:.0f}deg" for a, _p in result.peaks(3))
        print(f"  t={i * 0.4:.1f}s {ascii_spectrum(result.spectrum, result.angles_deg)}"
              f"  peaks: {peaks}")

    print("\n(b) Same tag while a person walks through the direct path:")
    reader = Reader(ReaderConfig(array=array), room, seed=1)
    walker_x = np.linspace(
        room.bounds.width / 2.0 - 1.5, room.bounds.width / 2.0 + 2.5, n_slots
    )
    walker = BodyTrack(
        positions=np.stack([walker_x, np.full(n_slots, 2.0)], axis=1), radius=0.2
    )
    scene_b = Scene(
        tag_tracks=(TagTrack(tag=make_tag("demo-a", rng), positions=np.asarray(tag_pos)),),
        bodies=(walker,),
    )
    for i, result in enumerate(frame_spectra(reader, scene_b, duration)):
        peaks = ", ".join(f"{a:.0f}deg" for a, _p in result.peaks(3))
        print(f"  t={i * 0.4:.1f}s {ascii_spectrum(result.spectrum, result.angles_deg)}"
              f"  peaks: {peaks}")

    print("\n(c) Six tags on two moving people (scenario A06, both walking):")
    reader = Reader(ReaderConfig(array=array), room, seed=2)
    instance = build_instance(
        SCENARIOS["A06"], array, room, duration, reader.config.slot_s, rng
    )
    for tag_index in range(0, 6, 2):
        spectra = frame_spectra(reader, instance.scene, duration, tag=tag_index)
        result = spectra[len(spectra) // 2]
        epc = instance.scene.tag_tracks[tag_index].tag.epc
        print(f"  {epc:16s} {ascii_spectrum(result.spectrum, result.angles_deg)}")


if __name__ == "__main__":
    main()
