"""1-D convolution and pooling (the spectrum-frame encoders).

The paper's CONV-E1/E2/E3 layers slide over the 180-angle axis of the
pseudospectrum frame; 1-D convolution over that axis with the tag axis
as channels realises the same structure.  Implemented with im2col so
the heavy lifting is one matmul per layer.
"""

from __future__ import annotations

import numpy as np

from repro.nn.init import he_uniform
from repro.nn.module import Module, Parameter


def _out_length(length: int, kernel: int, stride: int, padding: int) -> int:
    out = (length + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"conv output length {out} <= 0 (L={length}, K={kernel}, "
            f"stride={stride}, pad={padding})"
        )
    return out


class Conv1d(Module):
    """Cross-correlation over the last axis: ``(B, C_in, L) -> (B, C_out, L_out)``."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
        name: str = "conv",
    ) -> None:
        if kernel < 1 or stride < 1 or padding < 0:
            raise ValueError("kernel/stride must be >= 1, padding >= 0")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel
        self.weight = Parameter(
            he_uniform((out_channels, in_channels, kernel), rng, fan_in=fan_in),
            name=f"{name}.W",
        )
        self.bias = Parameter(np.zeros(out_channels), name=f"{name}.b")
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None
        self._gather: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Forward pass (caches what :meth:`backward` needs)."""
        if x.ndim != 3 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected (B, {self.in_channels}, L), got {x.shape}"
            )
        batch, _c, length = x.shape
        l_out = _out_length(length, self.kernel, self.stride, self.padding)
        if self.padding:
            x_pad = np.pad(x, ((0, 0), (0, 0), (self.padding, self.padding)))
        else:
            x_pad = x
        gather = (
            np.arange(l_out)[:, None] * self.stride + np.arange(self.kernel)[None, :]
        )
        cols = x_pad[:, :, gather]  # (B, C, L_out, K)
        cols = cols.transpose(0, 2, 1, 3).reshape(batch, l_out, -1)  # (B, L_out, C*K)
        self._cols = cols
        self._x_shape = x.shape
        self._gather = gather
        w_flat = self.weight.value.reshape(self.out_channels, -1)  # (C_out, C*K)
        y = cols @ w_flat.T + self.bias.value  # (B, L_out, C_out)
        return y.transpose(0, 2, 1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backprop through the cached forward pass; returns the input gradient."""
        if self._cols is None or self._x_shape is None or self._gather is None:
            raise RuntimeError("backward before forward")
        batch, _c, length = self._x_shape
        g = grad.transpose(0, 2, 1)  # (B, L_out, C_out)
        w_flat = self.weight.value.reshape(self.out_channels, -1)
        flat_g = g.reshape(-1, self.out_channels)
        flat_cols = self._cols.reshape(-1, self._cols.shape[-1])
        self.weight.grad += (flat_g.T @ flat_cols).reshape(self.weight.value.shape)
        self.bias.grad += flat_g.sum(axis=0)
        dcols = (g @ w_flat).reshape(
            batch, -1, self.in_channels, self.kernel
        ).transpose(0, 2, 1, 3)  # (B, C, L_out, K)
        dx_pad = np.zeros((batch, self.in_channels, length + 2 * self.padding))
        np.add.at(dx_pad, (slice(None), slice(None), self._gather), dcols)
        if self.padding:
            return dx_pad[:, :, self.padding : self.padding + length]
        return dx_pad


class MaxPool1d(Module):
    """Max pooling over the last axis."""

    def __init__(self, kernel: int, stride: int | None = None) -> None:
        if kernel < 1:
            raise ValueError("kernel must be >= 1")
        self.kernel = kernel
        self.stride = stride or kernel
        self._x_shape: tuple[int, ...] | None = None
        self._argmax: np.ndarray | None = None
        self._gather: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Forward pass (caches what :meth:`backward` needs)."""
        if x.ndim != 3:
            raise ValueError(f"expected (B, C, L), got {x.shape}")
        batch, channels, length = x.shape
        l_out = _out_length(length, self.kernel, self.stride, 0)
        gather = (
            np.arange(l_out)[:, None] * self.stride + np.arange(self.kernel)[None, :]
        )
        windows = x[:, :, gather]  # (B, C, L_out, K)
        self._argmax = windows.argmax(axis=3)
        self._x_shape = x.shape
        self._gather = gather
        return windows.max(axis=3)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backprop through the cached forward pass; returns the input gradient."""
        if self._x_shape is None or self._argmax is None or self._gather is None:
            raise RuntimeError("backward before forward")
        batch, channels, length = self._x_shape
        dx = np.zeros(self._x_shape)
        l_out = grad.shape[2]
        b_idx, c_idx, o_idx = np.indices((batch, channels, l_out))
        src = self._gather[o_idx, self._argmax]
        np.add.at(dx, (b_idx, c_idx, src), grad)
        return dx


class GlobalAveragePool1d(Module):
    """Mean over the last axis: ``(B, C, L) -> (B, C)``."""

    def __init__(self) -> None:
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Forward pass (caches what :meth:`backward` needs)."""
        self._x_shape = x.shape
        return x.mean(axis=2)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backprop through the cached forward pass; returns the input gradient."""
        if self._x_shape is None:
            raise RuntimeError("backward before forward")
        batch, channels, length = self._x_shape
        return np.broadcast_to(grad[:, :, None] / length, self._x_shape).copy()
