"""2-D vector primitives used throughout the simulator.

The M2AI scenario is planar for the purposes of angle-of-arrival: the
reader antennas form a horizontal uniform linear array and the paper's
pseudospectrum spans the 0-180 degree azimuth.  All propagation geometry
is therefore expressed with :class:`Vec2`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Vec2:
    """An immutable 2-D point / vector with float components."""

    x: float
    y: float

    def __add__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x - other.x, self.y - other.y)

    def __mul__(self, k: float) -> "Vec2":
        return Vec2(self.x * k, self.y * k)

    __rmul__ = __mul__

    def __truediv__(self, k: float) -> "Vec2":
        return Vec2(self.x / k, self.y / k)

    def __neg__(self) -> "Vec2":
        return Vec2(-self.x, -self.y)

    def dot(self, other: "Vec2") -> float:
        """Scalar product."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Vec2") -> float:
        """z-component of the 3-D cross product (signed parallelogram area)."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        """Euclidean length."""
        return math.hypot(self.x, self.y)

    def norm_sq(self) -> float:
        """Squared Euclidean length (cheaper than ``norm()**2``)."""
        return self.x * self.x + self.y * self.y

    def distance_to(self, other: "Vec2") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def normalized(self) -> "Vec2":
        """Unit vector in the same direction.

        Raises:
            ZeroDivisionError: if the vector has zero length.
        """
        n = self.norm()
        if n == 0.0:
            raise ZeroDivisionError("cannot normalize the zero vector")
        return Vec2(self.x / n, self.y / n)

    def rotated(self, angle_rad: float) -> "Vec2":
        """Vector rotated counter-clockwise by ``angle_rad`` radians."""
        c, s = math.cos(angle_rad), math.sin(angle_rad)
        return Vec2(c * self.x - s * self.y, s * self.x + c * self.y)

    def angle(self) -> float:
        """Polar angle in radians, in ``(-pi, pi]``."""
        return math.atan2(self.y, self.x)

    def perp(self) -> "Vec2":
        """The vector rotated by +90 degrees."""
        return Vec2(-self.y, self.x)

    def lerp(self, other: "Vec2", t: float) -> "Vec2":
        """Linear interpolation: ``self`` at ``t=0``, ``other`` at ``t=1``."""
        return Vec2(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )

    def as_tuple(self) -> tuple[float, float]:
        """``(x, y)`` tuple, convenient for numpy interop."""
        return (self.x, self.y)


ORIGIN = Vec2(0.0, 0.0)
