"""Experiment result containers and rendering."""

from __future__ import annotations

from repro.eval import ExperimentResult, ExperimentRow, bar_chart


def make_result():
    return ExperimentResult(
        experiment_id="figXX",
        title="demo",
        rows=[
            ExperimentRow("M2AI", 0.97, 0.61),
            ExperimentRow("SVM", 0.70, 0.35, approx=True),
            ExperimentRow("HMM", None, 0.20),
        ],
        notes="shape holds",
        extras={"matrix": "1 0\n0 1"},
    )


class TestExperimentResult:
    def test_render_contains_everything(self):
        text = make_result().render()
        assert "figXX" in text
        assert "M2AI" in text
        assert "0.610" in text
        assert "~" in text  # approx marker
        assert "--" in text  # missing paper value
        assert "shape holds" in text
        assert "matrix" in text

    def test_measured_by_name(self):
        measured = make_result().measured_by_name()
        assert measured["M2AI"] == 0.61
        assert len(measured) == 3


class TestBarChart:
    def test_renders_all_series(self):
        chart = bar_chart({"a": 1.0, "b": 0.5, "c": 0.0})
        lines = chart.splitlines()
        assert len(lines) == 3
        assert lines[0].count("#") > lines[1].count("#") > lines[2].count("#")

    def test_clamps_out_of_range(self):
        chart = bar_chart({"x": 2.0}, width=10)
        assert chart.count("#") == 10

    def test_empty_dict_renders_placeholder(self):
        """Regression: used to die in max() on an empty mapping."""
        assert bar_chart({}) == "(no data)"

    def test_non_positive_vmax_rejected(self):
        """Regression: vmax=0 used to raise ZeroDivisionError."""
        import pytest

        with pytest.raises(ValueError, match="vmax"):
            bar_chart({"x": 0.5}, vmax=0.0)
        with pytest.raises(ValueError, match="vmax"):
            bar_chart({"x": 0.5}, vmax=-1.0)
