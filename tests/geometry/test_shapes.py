"""Segments, circles, rectangles and their predicates."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Circle, Rectangle, Segment, Vec2, deg2rad, rad2deg

coord = st.floats(min_value=-100, max_value=100, allow_nan=False)


class TestSegment:
    def test_length_and_midpoint(self):
        seg = Segment(Vec2(0, 0), Vec2(3, 4))
        assert seg.length() == pytest.approx(5.0)
        assert seg.midpoint() == Vec2(1.5, 2.0)

    def test_point_at(self):
        seg = Segment(Vec2(0, 0), Vec2(10, 0))
        assert seg.point_at(0.3) == Vec2(3.0, 0.0)

    def test_distance_to_point_perpendicular(self):
        seg = Segment(Vec2(0, 0), Vec2(10, 0))
        assert seg.distance_to_point(Vec2(5, 3)) == pytest.approx(3.0)

    def test_distance_to_point_beyond_endpoint(self):
        seg = Segment(Vec2(0, 0), Vec2(10, 0))
        assert seg.distance_to_point(Vec2(13, 4)) == pytest.approx(5.0)

    def test_degenerate_segment(self):
        seg = Segment(Vec2(1, 1), Vec2(1, 1))
        assert seg.distance_to_point(Vec2(4, 5)) == pytest.approx(5.0)

    def test_intersects_circle(self):
        seg = Segment(Vec2(-5, 0), Vec2(5, 0))
        assert seg.intersects_circle(Vec2(0, 0.5), 1.0)
        assert not seg.intersects_circle(Vec2(0, 2.0), 1.0)

    def test_segments_crossing(self):
        a = Segment(Vec2(0, 0), Vec2(2, 2))
        b = Segment(Vec2(0, 2), Vec2(2, 0))
        assert a.intersects_segment(b)

    def test_segments_parallel_disjoint(self):
        a = Segment(Vec2(0, 0), Vec2(2, 0))
        b = Segment(Vec2(0, 1), Vec2(2, 1))
        assert not a.intersects_segment(b)

    def test_segments_collinear_overlap(self):
        a = Segment(Vec2(0, 0), Vec2(2, 0))
        b = Segment(Vec2(1, 0), Vec2(3, 0))
        assert a.intersects_segment(b)

    def test_segments_collinear_disjoint(self):
        a = Segment(Vec2(0, 0), Vec2(1, 0))
        b = Segment(Vec2(2, 0), Vec2(3, 0))
        assert not a.intersects_segment(b)

    @given(coord, coord, coord, coord, coord, coord)
    def test_distance_nonnegative_and_bounded(self, ax, ay, bx, by, px, py):
        seg = Segment(Vec2(ax, ay), Vec2(bx, by))
        p = Vec2(px, py)
        d = seg.distance_to_point(p)
        assert d >= 0.0
        assert d <= seg.a.distance_to(p) + 1e-9
        assert d <= seg.b.distance_to(p) + 1e-9


class TestCircle:
    def test_contains(self):
        c = Circle(Vec2(0, 0), 1.0)
        assert c.contains(Vec2(0.5, 0.5))
        assert not c.contains(Vec2(1.1, 0.0))

    def test_blocks(self):
        c = Circle(Vec2(0, 0), 0.5)
        assert c.blocks(Segment(Vec2(-2, 0), Vec2(2, 0)))
        assert not c.blocks(Segment(Vec2(-2, 1), Vec2(2, 1)))


class TestRectangle:
    def test_validation(self):
        with pytest.raises(ValueError):
            Rectangle(1, 0, 0, 1)

    def test_dimensions(self):
        r = Rectangle(0, 0, 4, 3)
        assert r.width == 4 and r.height == 3
        assert r.center() == Vec2(2.0, 1.5)

    def test_contains_with_margin(self):
        r = Rectangle(0, 0, 10, 10)
        assert r.contains(Vec2(0.5, 0.5))
        assert not r.contains(Vec2(0.5, 0.5), margin=1.0)

    def test_clamp(self):
        r = Rectangle(0, 0, 10, 10)
        assert r.clamp(Vec2(-5, 5)) == Vec2(0, 5)
        assert r.clamp(Vec2(20, 20), margin=1) == Vec2(9, 9)

    @pytest.mark.parametrize(
        "wall,expected",
        [
            ("left", Vec2(-2, 3)),
            ("right", Vec2(14, 3)),
            ("bottom", Vec2(2, -3)),
            ("top", Vec2(2, 11)),
        ],
    )
    def test_mirror(self, wall, expected):
        r = Rectangle(0, 0, 8, 7)
        assert r.mirror(Vec2(2, 3), wall) == expected

    def test_mirror_unknown_wall(self):
        with pytest.raises(ValueError):
            Rectangle(0, 0, 1, 1).mirror(Vec2(0, 0), "ceiling")

    def test_mirror_involution(self):
        r = Rectangle(0, 0, 8, 7)
        p = Vec2(3.3, 2.2)
        for wall in ("left", "right", "bottom", "top"):
            back = r.mirror(r.mirror(p, wall), wall)
            assert back.x == pytest.approx(p.x)
            assert back.y == pytest.approx(p.y)


def test_angle_conversions_roundtrip():
    assert rad2deg(deg2rad(137.0)) == pytest.approx(137.0)
