"""PipelineSupervisor: queueing, degradation, deadlines, health."""

from __future__ import annotations

import pytest

from repro.core.streaming import (
    REASON_BREAKER_OPEN,
    REASON_DEADLINE,
    REASON_STAGE_FAILURE,
    StreamingIdentifier,
    split_windows,
)
from repro.runtime import (
    HEALTH_DEGRADED,
    HEALTH_FAILED,
    HEALTH_HEALTHY,
    PipelineSupervisor,
)
from repro.runtime.breaker import STATE_OPEN

from .conftest import FailingPipeline, FakeClock, StubPipeline, make_log


class TestSupervisedServing:
    def test_matches_the_unsupervised_batched_path(self, identifier, stream_log):
        # The supervisor must be a pure reliability wrapper: for a
        # healthy pipeline its decisions equal identify()'s, window
        # for window (the stub pipeline scores depend on the window's
        # feature content, so this is a real equivalence check).
        expected = identifier.identify(stream_log)
        got = PipelineSupervisor(identifier).process(stream_log)
        assert len(got) == len(expected) > 0
        for d_sup, d_ref in zip(got, expected):
            assert d_sup.t_start_s == d_ref.t_start_s
            assert d_sup.label == d_ref.label
            assert d_sup.confidence == pytest.approx(d_ref.confidence)
            assert d_sup.reason == d_ref.reason

    def test_submit_stream_counts_complete_windows(self, identifier, stream_log):
        supervisor = PipelineSupervisor(identifier)
        n = supervisor.submit_stream(stream_log)
        assert n == len(split_windows(stream_log, identifier.window_s, None))
        assert supervisor.queue_depth == n

    def test_healthy_report_when_nothing_went_wrong(self, identifier, stream_log):
        supervisor = PipelineSupervisor(identifier)
        decisions = supervisor.process(stream_log)
        report = supervisor.health()
        assert report.state == HEALTH_HEALTHY
        assert report.windows_total == len(decisions)
        assert report.windows_failed == 0
        assert report.shed_windows == 0
        assert set(report.breaker_states) == {
            "dsp.frames", "dsp.music", "dsp.periodogram", "predict",
        }


class TestBackpressure:
    def test_drop_oldest_shed_policy(self, identifier, stream_log):
        windows = split_windows(stream_log, identifier.window_s, None)
        assert len(windows) >= 2
        supervisor = PipelineSupervisor(identifier, max_queue=1)
        assert supervisor.submit(windows[0][1], windows[0][0]) == 0
        assert supervisor.submit(windows[1][1], windows[1][0]) == 1
        # The freshest window survived the shed.
        decisions = supervisor.drain()
        assert len(decisions) == 1
        assert decisions[0].t_start_s == windows[1][0]
        report = supervisor.health()
        assert report.shed_windows == 1
        assert report.state == HEALTH_DEGRADED

    def test_invalid_bounds_rejected(self, identifier):
        with pytest.raises(ValueError):
            PipelineSupervisor(identifier, max_queue=0)
        with pytest.raises(ValueError):
            PipelineSupervisor(identifier, dead_letter_capacity=0)
        with pytest.raises(ValueError):
            PipelineSupervisor(identifier, window_deadline_s=0.0)


class TestDegradation:
    def test_failing_predict_trips_the_breaker_then_rejects(self, stream_log):
        flaky = StreamingIdentifier(
            FailingPipeline(), window_s=4.0, hop_s=1.0, min_reads=16
        )
        supervisor = PipelineSupervisor(flaky, failure_threshold=2)
        decisions = supervisor.process(stream_log)
        assert len(decisions) >= 3
        reasons = [d.reason for d in decisions]
        # Two stage failures open the predict breaker; every later
        # window is rejected at the boundary without running inference.
        assert reasons[:2] == [REASON_STAGE_FAILURE, REASON_STAGE_FAILURE]
        assert all(r == REASON_BREAKER_OPEN for r in reasons[2:])
        assert all(d.abstained for d in decisions)
        report = supervisor.health()
        assert report.breaker_states["predict"] == STATE_OPEN
        assert report.state == HEALTH_FAILED
        assert report.windows_failed == len(decisions)

    def test_dead_letters_are_attributed_and_bounded(self, stream_log):
        flaky = StreamingIdentifier(
            FailingPipeline(), window_s=4.0, hop_s=1.0, min_reads=16
        )
        supervisor = PipelineSupervisor(
            flaky, failure_threshold=2, dead_letter_capacity=2
        )
        decisions = supervisor.process(stream_log)
        letters = supervisor.dead_letters()
        assert len(letters) == 2  # capacity bound, not window count
        assert supervisor.health().windows_failed == len(decisions)
        assert all(letter.stage == "predict" for letter in letters)

    def test_breaker_recovers_through_a_probe(self, stream_log):
        clock = FakeClock()

        class FlakyOnce(StubPipeline):
            def __init__(self) -> None:
                self.calls = 0

            def predict_proba(self, dataset):
                self.calls += 1
                if self.calls <= 2:
                    raise RuntimeError("warming up")
                return super().predict_proba(dataset)

        flaky = StreamingIdentifier(
            FlakyOnce(), window_s=4.0, hop_s=1.0, min_reads=16
        )
        supervisor = PipelineSupervisor(
            flaky, failure_threshold=2, reset_timeout_s=5.0, clock=clock
        )
        windows = split_windows(stream_log, 4.0, 1.0)
        assert len(windows) >= 3
        for t_start, window_log in windows[:2]:
            supervisor.submit(window_log, t_start)
        failed = supervisor.drain()
        assert supervisor.health().state == HEALTH_FAILED
        assert [d.reason for d in failed] == [REASON_STAGE_FAILURE] * 2
        clock.t += 10.0  # past the reset timeout: probe admitted
        supervisor.submit(windows[2][1], windows[2][0])
        (probe,) = supervisor.drain()
        assert not probe.abstained
        breaker = supervisor.breakers["predict"]
        assert ("open", "half_open") in breaker.transitions
        assert ("half_open", "closed") in breaker.transitions
        # Dead letters from the outage remain: degraded, not failed.
        assert supervisor.health().state == HEALTH_DEGRADED

    def test_unattributed_failure_degrades_to_abstain(self, identifier):
        class ExplodingLog:
            n_reads = 100

            @property
            def meta(self):
                raise RuntimeError("log is corrupt")

            def antenna_liveness(self):
                raise RuntimeError("log is corrupt")

        supervisor = PipelineSupervisor(identifier)
        supervisor.submit(ExplodingLog(), 0.0)
        (decision,) = supervisor.drain()
        assert decision.abstained
        assert decision.reason == REASON_STAGE_FAILURE
        (letter,) = supervisor.dead_letters()
        assert letter.stage == "window"


class TestDeadline:
    def test_mid_window_overrun_aborts_at_a_stage_boundary(self, stream_log):
        # The clock jumps 1s per reading; with a 0.5s budget the first
        # guarded stage boundary already sees an expired deadline.
        clock = FakeClock(step=1.0)
        identifier = StreamingIdentifier(
            StubPipeline(), window_s=4.0, min_reads=16
        )
        supervisor = PipelineSupervisor(
            identifier, window_deadline_s=0.5, clock=clock
        )
        decisions = supervisor.process(stream_log)
        assert decisions, "expected at least one window"
        assert all(d.reason == REASON_DEADLINE for d in decisions)
        letters = supervisor.dead_letters()
        assert letters[0].stage in (
            "dsp.frames", "dsp.music", "dsp.periodogram", "predict",
        )

    def test_post_completion_overrun_discards_the_late_decision(self):
        class InstantIdentifier:
            """Succeeds immediately — only the post-check can trip."""

            window_s = 4.0
            hop_s = None

            def identify_window(self, window_log, t_start_s):
                from repro.core.streaming import WindowDecision

                return WindowDecision(
                    t_start_s=t_start_s,
                    t_end_s=t_start_s + 4.0,
                    label="wave",
                    confidence=0.9,
                    n_reads=window_log.n_reads,
                )

        clock = FakeClock(step=1.0)
        supervisor = PipelineSupervisor(
            InstantIdentifier(), window_deadline_s=0.5, clock=clock
        )
        supervisor.submit(make_log(n=100), 0.0)
        (decision,) = supervisor.drain()
        # identify_window returned a labelled decision, but the window
        # blew its budget: a late answer degrades to a deadline abstain.
        assert decision.abstained
        assert decision.reason == REASON_DEADLINE
        (letter,) = supervisor.dead_letters()
        assert letter.stage == "window"

    def test_no_deadline_means_no_overrun(self, identifier, stream_log):
        clock = FakeClock(step=100.0)  # pathological slowness
        supervisor = PipelineSupervisor(identifier, clock=clock)
        decisions = supervisor.process(stream_log)
        assert all(d.reason != REASON_DEADLINE for d in decisions)
