"""Seed ensembles: averaging independently trained M2AI pipelines.

Small simulated corpora leave single networks with noticeable seed
variance; averaging the softmax outputs of a few independently
initialised pipelines is the standard low-effort variance reducer and
fits the library's deployment story (train overnight, serve the
ensemble).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.config import M2AIConfig
from repro.core.dataset import ActivityDataset
from repro.core.pipeline import EvaluationResult, M2AIPipeline
from repro.ml.metrics import accuracy, confusion_matrix


@dataclass
class M2AIEnsemble:
    """A probability-averaged committee of :class:`M2AIPipeline`.

    Args:
        config: base hyper-parameters; member ``i`` trains with
            ``seed = config.seed + i``.
        n_members: committee size.
        mode: network variant shared by every member.
    """

    config: M2AIConfig = field(default_factory=M2AIConfig)
    n_members: int = 3
    mode: str = "cnn_lstm"
    members: list[M2AIPipeline] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_members < 1:
            raise ValueError("an ensemble needs at least one member")

    def fit(
        self, train: ActivityDataset, val: ActivityDataset | None = None
    ) -> "M2AIEnsemble":
        """Train every member on the same data with distinct seeds."""
        self.members = []
        for i in range(self.n_members):
            member_cfg = replace(self.config, seed=self.config.seed + i)
            member = M2AIPipeline(member_cfg, mode=self.mode)
            member.fit(train, val=val)
            self.members.append(member)
        return self

    @property
    def classes(self) -> np.ndarray:
        """Class labels of the fitted members."""
        if not self.members:
            raise RuntimeError("ensemble not fitted")
        return self.members[0].classes

    def predict_proba(self, dataset: ActivityDataset) -> np.ndarray:
        """Member-averaged class probabilities, ``(B, n_classes)``."""
        if not self.members:
            raise RuntimeError("ensemble not fitted")
        stacked = np.stack([m.predict_proba(dataset) for m in self.members])
        return stacked.mean(axis=0)

    def predict(self, dataset: ActivityDataset) -> np.ndarray:
        """Committee prediction per sample."""
        return self.classes[self.predict_proba(dataset).argmax(axis=1)]

    def evaluate(self, dataset: ActivityDataset) -> EvaluationResult:
        """Accuracy + confusion of the committee."""
        predictions = self.predict(dataset)
        labels = np.asarray(dataset.labels)
        return EvaluationResult(
            accuracy=accuracy(labels, predictions),
            confusion=confusion_matrix(
                labels, predictions, labels=np.asarray(sorted(set(labels.tolist())))
            ),
            predictions=predictions,
            labels=labels,
        )

    def member_accuracies(self, dataset: ActivityDataset) -> list[float]:
        """Individual member accuracies (for diagnosing diversity)."""
        if not self.members:
            raise RuntimeError("ensemble not fitted")
        return [m.evaluate(dataset).accuracy for m in self.members]
