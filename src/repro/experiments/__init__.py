"""Durable parallel experiment harness.

``repro.experiments`` turns the ad-hoc experiment script into a
package: a spec names one sweep cell (experiment x mode x seed x
overrides, content-hashed), :func:`run_one` executes it,
:func:`run_batch` fans a sweep across supervised worker processes, the
:class:`ResultsStore` makes every completed cell durable and a killed
sweep resumable, :mod:`~repro.experiments.metrics` collapses the seed
axis, and :mod:`~repro.experiments.report` renders EXPERIMENTS.md from
the store.  The first workload built on it is the cross-environment
domain-shift eval (:mod:`~repro.experiments.domain_shift`).
"""

from repro.experiments.metrics import (
    AggregateRow,
    aggregate_records,
    render_aggregate_table,
)
from repro.experiments.report import (
    EXPERIMENTS_HEADER,
    render_block,
    render_experiments_md,
    write_experiments_md,
)
from repro.experiments.runner import (
    ExperimentBatchError,
    UnknownExperimentError,
    default_registry,
    register_runner,
    run_batch,
    run_one,
    validate_ids,
)
from repro.experiments.spec import ExperimentSpec, ResultRecord, make_spec
from repro.experiments.store import (
    ResultsStore,
    atomic_write_text,
    default_store_root,
)

__all__ = [
    "AggregateRow",
    "EXPERIMENTS_HEADER",
    "ExperimentBatchError",
    "ExperimentSpec",
    "ResultRecord",
    "ResultsStore",
    "UnknownExperimentError",
    "aggregate_records",
    "atomic_write_text",
    "default_registry",
    "default_store_root",
    "make_spec",
    "register_runner",
    "render_aggregate_table",
    "render_block",
    "render_experiments_md",
    "run_batch",
    "run_one",
    "validate_ids",
    "write_experiments_md",
]

# Convenience access (kept out of __all__ on purpose: the canonical
# home is repro.experiments.domain_shift, which documents them).
_LAZY = {"run_domain_shift", "run_domain_shift_bench"}


def __getattr__(name: str):
    """Resolve the domain-shift entry points on first use.

    :mod:`~repro.experiments.domain_shift` pulls in the full
    ``repro.eval`` training stack; importing it eagerly would make
    every spawned sweep worker pay that start-up cost (and trips
    runpy's double-import warning under ``python -m``).
    """
    if name in _LAZY:
        from repro.experiments import domain_shift

        return getattr(domain_shift, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
