"""ShardServer: cross-stream batching, poison hygiene, per-lane isolation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.streaming import REASON_STAGE_FAILURE
from repro.runtime.supervisor import HEALTH_DEGRADED, HEALTH_HEALTHY
from repro.serving.shard import STAGE_BATCH_GUARD, STAGE_SHED, ShardServer

from .conftest import StubPipeline, make_factory, make_log, poison_log


def _decisions_by_key(out):
    return {
        (sid, round(d.t_start_s, 6)): (d.label, d.abstained, d.reason)
        for sid, ds in out.items()
        for d in ds
    }


class TestBatchingEquivalence:
    def test_batched_and_naive_modes_emit_identical_decisions(self):
        results = {}
        for batched in (True, False):
            shard = ShardServer(
                0, make_factory(), batch_inference=batched, windows_per_stream=8
            )
            for i in range(4):
                shard.add_stream(f"s{i}")
                shard.submit(f"s{i}", make_log(n=1500, seed=i, duration_s=10.0))
            out = {}
            while sum(shard.queue_depths().values()):
                for sid, ds in shard.tick().items():
                    out.setdefault(sid, []).extend(ds)
            results[batched] = _decisions_by_key(out)
        assert results[True] == results[False]
        assert len(results[True]) == 4 * 4  # 4 streams x 4 windows

    def test_batched_mode_actually_batches(self):
        from repro import obs

        obs.enable()
        shard = ShardServer(0, make_factory(), windows_per_stream=4)
        for i in range(3):
            shard.add_stream(f"s{i}")
            shard.submit(f"s{i}", make_log(n=1500, seed=i, duration_s=10.0))
        shard.tick()
        values = {
            m.name: getattr(m, "value", None)
            for m in obs.get_registry().collect()
            if m.name.startswith("serving.batch")
        }
        assert values.get("serving.batch.predicts_total", 0) >= 1


class TestPoisonHygiene:
    def test_nan_stream_quarantined_others_unchanged(self):
        clean_logs = {
            f"s{i}": make_log(n=1500, seed=i, duration_s=10.0) for i in range(4)
        }
        # Baseline: all streams clean.
        shard = ShardServer(0, make_factory(), windows_per_stream=8)
        for sid, log in clean_logs.items():
            shard.add_stream(sid)
            shard.submit(sid, log)
        baseline = _decisions_by_key(shard.tick())

        # Same fleet, but s0's log is NaN-poisoned.
        shard = ShardServer(0, make_factory(), windows_per_stream=8)
        for sid, log in clean_logs.items():
            shard.add_stream(sid)
            shard.submit(sid, poison_log(log) if sid == "s0" else log)
        poisoned = _decisions_by_key(shard.tick())

        for key, value in baseline.items():
            sid = key[0]
            if sid == "s0":
                continue
            assert poisoned[key] == value, key  # healthy streams unchanged

        s0 = [v for k, v in poisoned.items() if k[0] == "s0"]
        assert s0, "poisoned stream must still emit decisions"
        assert all(abstained for _, abstained, _ in s0)

    def test_poison_lands_in_own_lane_dead_letters_only(self):
        shard = ShardServer(0, make_factory(), windows_per_stream=8)
        shard.add_stream("bad")
        shard.add_stream("good")
        log = make_log(n=1500, seed=0, duration_s=10.0)
        shard.submit("bad", poison_log(log))
        shard.submit("good", make_log(n=1500, seed=1, duration_s=10.0))
        shard.tick()
        health = shard.health()
        assert health["bad"]["state"] == HEALTH_DEGRADED
        assert health["bad"]["dead_letter_count"] > 0
        assert health["good"]["state"] == HEALTH_HEALTHY
        assert health["good"]["dead_letter_count"] == 0

    def test_nonfinite_sample_never_reaches_the_shared_batch(self):
        calls = []

        class RecordingPipeline(StubPipeline):
            def predict_proba(self, dataset):
                for sample in dataset.samples:
                    for arr in sample.channels.values():
                        calls.append(bool(np.all(np.isfinite(arr))))
                return super().predict_proba(dataset)

        shard = ShardServer(
            0, make_factory(pipeline=RecordingPipeline()), windows_per_stream=8
        )
        shard.add_stream("bad")
        shard.add_stream("good")
        log = make_log(n=1500, seed=0, duration_s=10.0)
        shard.submit("bad", poison_log(log))
        shard.submit("good", make_log(n=1500, seed=1, duration_s=10.0))
        out = shard.tick()
        assert calls, "the healthy stream must still be scored"
        assert all(calls), "no non-finite sample may enter predict_proba"
        bad = out.get("bad", [])
        # Quarantined windows degrade with batch-stage attribution when
        # featurisation produced a non-finite sample, or fail earlier in
        # DSP; either way they abstain.
        assert all(d.abstained for d in bad)


class TestBatchFallback:
    def test_batch_failure_falls_back_to_per_lane_predicts(self):
        class FlakyBatchPipeline(StubPipeline):
            def predict_proba(self, dataset):
                if len(dataset.samples) > 1:
                    raise RuntimeError("batched forward pass exploded")
                return super().predict_proba(dataset)

        shard = ShardServer(
            0, make_factory(pipeline=FlakyBatchPipeline()), windows_per_stream=8
        )
        for i in range(3):
            shard.add_stream(f"s{i}")
            shard.submit(f"s{i}", make_log(n=1500, seed=i, duration_s=10.0))
        out = shard.tick()
        # Every window still gets a labelled decision via the fallback.
        assert sum(len(ds) for ds in out.values()) == 3 * 4
        assert all(not d.abstained for ds in out.values() for d in ds)


class TestShedAndLanes:
    def test_shed_drops_oldest_and_dead_letters(self):
        shard = ShardServer(0, make_factory())
        shard.add_stream("s0")
        n = shard.submit("s0", make_log(n=1500, seed=0, duration_s=10.0))
        assert n == 4
        dropped = shard.shed("s0", 2)
        assert dropped == 2
        assert shard.queue_depths()["s0"] == 2
        letters = shard.lanes["s0"].supervisor.dead_letters()
        assert len(letters) == 2
        assert all(dl.stage == STAGE_SHED for dl in letters)
        # Oldest first: the surviving windows are the latest two.
        out = shard.tick()
        starts = sorted(d.t_start_s for d in out["s0"])
        assert starts == pytest.approx([4.8, 7.2])

    def test_shed_more_than_queued_returns_actual(self):
        shard = ShardServer(0, make_factory())
        shard.add_stream("s0")
        shard.submit("s0", make_log(n=400, seed=0, duration_s=3.0))
        assert shard.shed("s0", 99) == 1
        assert shard.shed("s0", 1) == 0

    def test_duplicate_stream_rejected(self):
        shard = ShardServer(0, make_factory())
        shard.add_stream("s0")
        with pytest.raises(ValueError):
            shard.add_stream("s0")

    def test_priority_orders_lane_service(self):
        shard = ShardServer(0, make_factory(), windows_per_stream=1)
        shard.add_stream("low", priority=0)
        shard.add_stream("high", priority=5)
        order = [lane.stream_id for lane in shard._lane_order()]
        assert order == ["high", "low"]

    def test_remove_stream_discards_queue(self):
        shard = ShardServer(0, make_factory())
        shard.add_stream("s0")
        shard.submit("s0", make_log(n=1500, seed=0, duration_s=10.0))
        shard.remove_stream("s0")
        assert shard.stream_ids() == []
        assert shard.tick() == {}


def test_stage_failure_reason_used_for_quarantine():
    assert STAGE_BATCH_GUARD == "serving.batch"
    assert REASON_STAGE_FAILURE == "stage_failure"
