"""MUSIC pseudospectrum estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsp import (
    MusicResult,
    estimate_n_sources,
    forward_backward,
    music_pseudospectrum,
    spatial_covariance,
    steering_matrix,
)

N_ANT = 4
SPACING = 0.04
LAMBDA = 0.32


def snapshots_from_angles(
    angles_deg, amplitudes, n_snapshots=32, noise=0.01, rng=None, coherent=False
):
    """Synthesise doubled-phase snapshots from plane waves."""
    rng = rng or np.random.default_rng(0)
    a = steering_matrix(np.asarray(angles_deg), N_ANT, SPACING, LAMBDA)
    z = np.zeros((n_snapshots, N_ANT), dtype=complex)
    phases = rng.uniform(0, 2 * np.pi, len(angles_deg))
    for k in range(n_snapshots):
        if not coherent:
            phases = rng.uniform(0, 2 * np.pi, len(angles_deg))
        s = np.asarray(amplitudes) * np.exp(1j * phases)
        z[k] = a @ s
    z += noise * (rng.normal(size=z.shape) + 1j * rng.normal(size=z.shape))
    return z


class TestSteering:
    def test_shape(self):
        a = steering_matrix(np.arange(0.5, 180.5), N_ANT, SPACING, LAMBDA)
        assert a.shape == (N_ANT, 180)

    def test_unit_magnitude(self):
        a = steering_matrix(np.array([30.0, 90.0]), N_ANT, SPACING, LAMBDA)
        np.testing.assert_allclose(np.abs(a), 1.0)

    def test_broadside_is_flat(self):
        a = steering_matrix(np.array([90.0]), N_ANT, SPACING, LAMBDA)
        np.testing.assert_allclose(a[:, 0], 1.0, atol=1e-12)

    def test_lambda_8_spacing_unambiguous(self):
        """With d = lambda/8 and the x4 multiplier, no grating lobes
        inside the operational field of view: distinct angles give
        distinct steering vectors.  (Like any ULA, the endfire edges
        cos(theta) -> +/-1 remain mutually ambiguous, which is why the
        people stand broadside to the array.)"""
        grid = np.arange(20.0, 161.0, 2.0)
        a = steering_matrix(grid, N_ANT, SPACING, LAMBDA)
        gram = np.abs(a.conj().T @ a) / N_ANT
        # Angles within 15 degrees are legitimately hard to resolve
        # with 4 elements; ambiguity means *distant* angles colliding.
        separation = np.abs(grid[:, None] - grid[None, :])
        gram[separation < 15.0] = 0.0
        assert gram.max() < 0.99


class TestSourceCount:
    def test_single_source(self):
        z = snapshots_from_angles([60.0], [1.0])
        cov = spatial_covariance(z)
        eigvals = np.linalg.eigvalsh(cov)[::-1]
        assert estimate_n_sources(eigvals) == 1

    def test_two_sources(self):
        z = snapshots_from_angles([40.0, 120.0], [1.0, 0.8])
        cov = spatial_covariance(z)
        eigvals = np.linalg.eigvalsh(cov)[::-1]
        assert estimate_n_sources(eigvals) == 2

    def test_capped_below_n(self):
        eigvals = np.ones(4)
        assert estimate_n_sources(eigvals) <= 3


class TestPseudospectrum:
    @pytest.mark.parametrize("true_angle", [30.0, 60.0, 90.0, 135.0])
    def test_single_source_peak(self, true_angle):
        z = snapshots_from_angles([true_angle], [1.0])
        cov = spatial_covariance(z)
        result = music_pseudospectrum(cov, SPACING, LAMBDA)
        peak_angle = result.peaks(1)[0][0]
        assert peak_angle == pytest.approx(true_angle, abs=2.0)

    def test_two_sources_resolved(self):
        z = snapshots_from_angles([45.0, 125.0], [1.0, 1.0])
        cov = spatial_covariance(z)
        result = music_pseudospectrum(cov, SPACING, LAMBDA, n_sources=2)
        top_two = sorted(a for a, _p in result.peaks(2))
        assert top_two[0] == pytest.approx(45.0, abs=4.0)
        assert top_two[1] == pytest.approx(125.0, abs=4.0)

    def test_coherent_sources_need_forward_backward(self):
        """Multipath copies are coherent; FB averaging restores rank."""
        z = snapshots_from_angles([50.0, 120.0], [1.0, 0.9], coherent=True)
        plain = spatial_covariance(z, use_forward_backward=False)
        fb = spatial_covariance(z, use_forward_backward=True)
        eig_plain = np.linalg.eigvalsh(plain)[::-1]
        eig_fb = np.linalg.eigvalsh(fb)[::-1]
        # FB raises the second eigenvalue relative to the first.
        assert eig_fb[1] / eig_fb[0] > eig_plain[1] / eig_plain[0]

    def test_spectrum_positive(self):
        z = snapshots_from_angles([75.0], [1.0])
        result = music_pseudospectrum(spatial_covariance(z), SPACING, LAMBDA)
        assert (result.spectrum > 0).all()

    def test_default_grid_180_points(self):
        z = snapshots_from_angles([75.0], [1.0])
        result = music_pseudospectrum(spatial_covariance(z), SPACING, LAMBDA)
        assert len(result.angles_deg) == 180

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError):
            music_pseudospectrum(np.zeros((3, 4)), SPACING, LAMBDA)

    def test_forced_n_sources(self):
        z = snapshots_from_angles([75.0], [1.0])
        result = music_pseudospectrum(
            spatial_covariance(z), SPACING, LAMBDA, n_sources=2
        )
        assert result.n_sources == 2


class TestForwardBackward:
    def test_preserves_hermitian(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(10, 4)) + 1j * rng.normal(size=(10, 4))
        r = x.conj().T @ x
        fb = forward_backward(r)
        np.testing.assert_allclose(fb, fb.conj().T)

    def test_idempotent_on_persymmetric(self):
        r = np.eye(4, dtype=complex)
        np.testing.assert_allclose(forward_backward(r), r)


class TestPeaks:
    """MusicResult.peaks: plateaus collapse, endpoints count."""

    def _result(self, values):
        values = np.asarray(values, dtype=float)
        return MusicResult(
            angles_deg=np.arange(values.size, dtype=float),
            spectrum=values,
            n_sources=1,
            eigenvalues=np.ones(4),
        )

    def test_isolated_maxima(self):
        peaks = self._result([0, 3, 0, 5, 0]).peaks()
        assert peaks == [(3.0, 5.0), (1.0, 3.0)]

    def test_plateau_collapses_to_one_centroid_peak(self):
        # The naive s[i-1] <= s[i] >= s[i+1] scan reported all three
        # plateau samples as separate peaks; the plateau is one maximum.
        peaks = self._result([0, 2, 2, 2, 0]).peaks()
        assert peaks == [(2.0, 2.0)]

    def test_even_plateau_uses_lower_centroid(self):
        peaks = self._result([0, 4, 4, 0]).peaks()
        assert peaks == [(1.0, 4.0)]

    def test_endpoint_maximum_is_reported(self):
        # The naive interior scan could never see index 0 or n-1.
        peaks = self._result([5, 1, 0, 1, 3]).peaks()
        assert peaks == [(0.0, 5.0), (4.0, 3.0)]

    def test_plateau_at_endpoint(self):
        peaks = self._result([4, 4, 1, 0]).peaks()
        assert peaks == [(0.0, 4.0)]

    def test_rising_shoulder_is_not_a_peak(self):
        # A plateau with a higher neighbour on either side is a ledge.
        peaks = self._result([0, 2, 2, 3, 0]).peaks()
        assert peaks == [(3.0, 3.0)]

    def test_strongest_first_and_capped(self):
        peaks = self._result([0, 1, 0, 3, 0, 2, 0]).peaks(max_peaks=2)
        assert peaks == [(3.0, 3.0), (5.0, 2.0)]

    def test_constant_spectrum_is_one_plateau(self):
        peaks = self._result([1, 1, 1, 1]).peaks()
        assert peaks == [(1.0, 1.0)]

    def test_empty_spectrum(self):
        assert self._result([]).peaks() == []
