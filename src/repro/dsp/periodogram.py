"""Periodogram power estimation (Section III-C.2, Eq. 13-16).

The paper pairs the pseudospectrum (accurate angles, unreliable
powers) with the periodogram (accurate powers): the DFT of the
snapshot across the antenna aperture gives a coarse spatial power
density with N bins — "four values" on the R420 (Fig. 5b).

This module also provides the generic discrete-time periodogram
(Eq. 14) because tests pin it to Parseval's theorem (Eq. 16's
footnote), and the FFT-based featuriser of Fig. 16 reuses it.
"""

from __future__ import annotations

import numpy as np

from repro.obs.tracing import span


def periodogram_psd(y: np.ndarray) -> np.ndarray:
    """The classical periodogram ``phi_p(omega_k) = |Y(k)|^2 / N``.

    Evaluated at the standard frequency sampling ``omega_k = 2*pi*k/N``
    (Eq. 15) via the FFT (Eq. 16).

    Args:
        y: ``(N,)`` complex or real sequence.

    Returns:
        Non-negative power densities, shape: ``(N,)``.

    Raises:
        ValueError: on an empty sequence.
    """
    arr = np.asarray(y, dtype=np.complex128)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("y must be a non-empty 1-D sequence")
    spectrum = np.fft.fft(arr)
    return (np.abs(spectrum) ** 2) / arr.size


def spatial_periodogram(
    snapshots: np.ndarray,
    valid: np.ndarray | None = None,
    liveness: np.ndarray | None = None,
) -> np.ndarray:
    """Average spatial periodogram of a dwell's snapshots.

    Args:
        snapshots: ``(K, N)`` complex snapshots (rounds x antennas).
        valid: optional ``(K, N)`` observation mask; incomplete
            snapshots are dropped when any complete one exists.  When
            *no* snapshot is complete (a degraded dwell), the invalid
            entries of the surviving rows are zero-filled before the
            transform — whatever values sit in unobserved slots are
            measurement garbage and must not leak into the average.
        liveness: optional ``(N,)`` port-liveness mask for a degraded
            array.  Dead ports are excluded from the completeness
            check, forced to zero, and the power density is rescaled by
            ``N / n_live`` so the per-live-element power level stays
            comparable to the healthy array instead of silently
            sagging.  None (or all-live) reproduces the healthy path
            exactly.

    Returns:
        Mean power per spatial-frequency bin, shape: ``(N,)``.

    Raises:
        ValueError: when nothing is observed, or no port is live.
    """
    x = np.asarray(snapshots, dtype=np.complex128)
    if x.ndim != 2:
        raise ValueError("snapshots must be (K, N)")
    with span("dsp.periodogram", snapshots=int(x.shape[0])):
        live = None
        if liveness is not None:
            live = np.asarray(liveness, dtype=bool)
            if live.shape != (x.shape[1],):
                raise ValueError("liveness must be (N,)")
            if not live.any():
                raise ValueError("no live ports")
            if live.all():
                live = None
        if valid is not None:
            complete = (
                valid.all(axis=1) if live is None else valid[:, live].all(axis=1)
            )
            if complete.any():
                x = x[complete]
            elif not valid.any():
                raise ValueError("no valid snapshots")
            else:
                x = np.where(valid, x, 0.0)
        if x.shape[0] == 0:
            raise ValueError("no valid snapshots")
        scale = 1.0
        if live is not None:
            x = np.where(live[None, :], x, 0.0)
            scale = x.shape[1] / float(live.sum())
        powers = np.abs(np.fft.fft(x, axis=1)) ** 2 / x.shape[1]
        return scale * powers.mean(axis=0)


def spatial_periodogram_batch(
    snapshots: np.ndarray,
    valid: np.ndarray | None = None,
    liveness: np.ndarray | None = None,
) -> np.ndarray:
    """Average spatial periodograms for a stack of dwells at once.

    One FFT over the whole ``(W, K, N)`` stack replaces W separate
    :func:`spatial_periodogram` calls; per-window snapshot selection
    (drop incomplete rows when a complete one exists, zero-fill
    otherwise) is expressed as a 0/1 row weighting, which is exact
    because a zero-weighted row contributes exactly nothing to the
    average.

    Args:
        snapshots: ``(W, K, N)`` complex snapshots (windows x rounds x
            antennas).
        valid: optional ``(W, K, N)`` observation mask, same semantics
            per window as the scalar function.
        liveness: optional ``(N,)`` port-liveness mask shared by the
            batch (one log = one liveness verdict).

    Returns:
        Mean power per spatial-frequency bin, shape: ``(W, N)``.

    Raises:
        ValueError: on shape mismatches, when no port is live, or when
            some window has no observed entry at all.
    """
    x = np.asarray(snapshots, dtype=np.complex128)
    if x.ndim != 3:
        raise ValueError("snapshots must be (W, K, N)")
    n_windows, n_rounds, n_ant = x.shape
    if n_windows == 0:
        return np.zeros((0, n_ant))
    with span("dsp.periodogram.batch", windows=n_windows, snapshots=n_rounds):
        live = None
        if liveness is not None:
            live = np.asarray(liveness, dtype=bool)
            if live.shape != (n_ant,):
                raise ValueError("liveness must be (N,)")
            if not live.any():
                raise ValueError("no live ports")
            if live.all():
                live = None
        if valid is not None:
            if valid.shape != x.shape:
                raise ValueError("valid must match snapshots")
            complete = (
                valid.all(axis=2)
                if live is None
                else valid[:, :, live].all(axis=2)
            )  # (W, K)
            has_complete = complete.any(axis=1)
            if not (has_complete | valid.any(axis=(1, 2))).all():
                raise ValueError("no valid snapshots in some window")
            # Keep complete rows where they exist; otherwise keep every
            # row but silence the unobserved entries.
            weights = np.where(has_complete[:, None], complete, True)
            x = np.where(valid, x, 0.0)
        else:
            weights = np.ones((n_windows, n_rounds), dtype=bool)
        scale = 1.0
        if live is not None:
            x = np.where(live[None, None, :], x, 0.0)
            scale = n_ant / float(live.sum())
        powers = np.abs(np.fft.fft(x, axis=2)) ** 2 / n_ant
        counts = weights.sum(axis=1).astype(np.float64)
        mean = (powers * weights[:, :, None]).sum(axis=1) / counts[:, None]
        return scale * mean


def total_power(y: np.ndarray) -> float:
    """Sum of squared magnitudes — the Parseval-side invariant."""
    arr = np.asarray(y, dtype=np.complex128)
    return float(np.sum(np.abs(arr) ** 2))
