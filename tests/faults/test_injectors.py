"""Fault injectors: determinism, zero-severity identity, effect shape."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import FAULT_KINDS, FaultSpec, apply_faults
from repro.hardware import ReadLog, ReaderMeta

N_CHANNELS = 50
REFERENCE = 15


def make_log(n: int = 600, seed: int = 0, n_antennas: int = 4) -> ReadLog:
    meta = ReaderMeta(
        n_antennas=n_antennas,
        slot_s=0.025,
        dwell_s=0.4,
        spacing_m=0.04,
        frequencies_hz=np.linspace(902.75e6, 927.25e6, N_CHANNELS),
        reference_channel=REFERENCE,
    )
    rng = np.random.default_rng(seed)
    channel = rng.integers(0, N_CHANNELS, n)
    return ReadLog(
        epcs=("A", "B", "C"),
        tag_index=rng.integers(0, 3, n),
        antenna=rng.integers(0, n_antennas, n),
        channel=channel,
        frequency_hz=meta.frequencies_hz[channel],
        timestamp_s=np.sort(rng.uniform(0.0, 8.0, n)),
        phase_rad=rng.uniform(0, 2 * np.pi, n),
        rssi_dbm=rng.uniform(-80, -50, n),
        meta=meta,
    )


def logs_equal(a: ReadLog, b: ReadLog) -> bool:
    return (
        a.epcs == b.epcs
        and np.array_equal(a.tag_index, b.tag_index)
        and np.array_equal(a.antenna, b.antenna)
        and np.array_equal(a.channel, b.channel)
        and np.array_equal(a.frequency_hz, b.frequency_hz)
        and np.array_equal(a.timestamp_s, b.timestamp_s)
        and np.array_equal(a.phase_rad, b.phase_rad)
        and np.array_equal(a.rssi_dbm, b.rssi_dbm)
    )


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="meteor_strike", severity=0.5)

    @pytest.mark.parametrize("severity", [-0.1, 1.1])
    def test_severity_range(self, severity):
        with pytest.raises(ValueError):
            FaultSpec(kind="dropout", severity=severity)

    def test_magnitude_override_scales(self):
        assert FaultSpec("dropout", 0.5, magnitude=0.4).scaled(0.9) == 0.2
        assert FaultSpec("dropout", 0.5).scaled(0.9) == pytest.approx(0.45)


class TestDeterminism:
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_same_spec_and_seed_identical(self, kind):
        log = make_log()
        spec = FaultSpec(kind=kind, severity=0.6)
        assert logs_equal(
            apply_faults(log, [spec], seed=7), apply_faults(log, [spec], seed=7)
        )

    def test_different_seed_differs(self):
        log = make_log()
        spec = FaultSpec(kind="dropout", severity=0.5)
        a = apply_faults(log, [spec], seed=1)
        b = apply_faults(log, [spec], seed=2)
        assert not logs_equal(a, b)

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_zero_severity_is_identity(self, kind):
        log = make_log()
        out = apply_faults(log, [FaultSpec(kind=kind, severity=0.0)], seed=3)
        assert out is log  # bitwise-identical by construction

    def test_scenario_composition(self):
        log = make_log()
        scenario = [
            FaultSpec("dead_port", 0.4),
            FaultSpec("dropout", 0.3),
            FaultSpec("phase_noise", 0.5),
        ]
        out = apply_faults(log, scenario, seed=11)
        assert out.n_reads < log.n_reads
        assert logs_equal(out, apply_faults(log, scenario, seed=11))


class TestEffects:
    def test_dropout_removes_reads(self):
        log = make_log()
        out = apply_faults(log, [FaultSpec("dropout", 0.5)], seed=0)
        # ~45% drop probability at severity 0.5.
        assert 0.3 * log.n_reads < out.n_reads < 0.8 * log.n_reads

    def test_burst_outage_leaves_contiguous_gap(self):
        log = make_log()
        out = apply_faults(log, [FaultSpec("burst_outage", 0.5)], seed=0)
        assert out.n_reads < log.n_reads
        # Every tag retains some reads outside its outage window.
        for tag in range(out.n_tags):
            assert out.for_tag(tag).n_reads > 0

    def test_dead_port_silences_ports(self):
        log = make_log()
        out = apply_faults(log, [FaultSpec("dead_port", 0.5)], seed=0)
        live = out.antenna_liveness()
        assert live.sum() < log.meta.n_antennas
        assert live.sum() >= 1

    def test_dead_port_full_severity_keeps_one_port(self):
        log = make_log()
        out = apply_faults(log, [FaultSpec("dead_port", 1.0)], seed=0)
        assert out.antenna_liveness().sum() == 1

    def test_phase_flip_adds_pi(self):
        log = make_log()
        out = apply_faults(log, [FaultSpec("phase_flip", 1.0, magnitude=1.0)], seed=0)
        delta = np.mod(out.phase_rad - log.phase_rad, 2 * np.pi)
        assert np.allclose(delta, np.pi)

    def test_phase_noise_perturbs_only_phase(self):
        log = make_log()
        out = apply_faults(log, [FaultSpec("phase_noise", 0.5)], seed=0)
        assert not np.allclose(out.phase_rad, log.phase_rad)
        assert np.array_equal(out.timestamp_s, log.timestamp_s)
        assert np.array_equal(out.rssi_dbm, log.rssi_dbm)
        assert (out.phase_rad >= 0).all() and (out.phase_rad < 2 * np.pi).all()

    def test_rssi_attenuation_lowers_rssi(self):
        log = make_log()
        out = apply_faults(log, [FaultSpec("rssi_attenuation", 0.5)], seed=0)
        assert (out.rssi_dbm < log.rssi_dbm).all()
        assert (log.rssi_dbm - out.rssi_dbm).max() <= 10.0 + 1e-9

    def test_time_jitter_bounded(self):
        log = make_log()
        out = apply_faults(log, [FaultSpec("time_jitter", 1.0)], seed=0)
        delta = np.abs(out.timestamp_s - log.timestamp_s)
        assert delta.max() <= log.meta.slot_s / 2 + 1e-12
        assert delta.max() > 0

    def test_ghost_reads_add_sorted_duplicates(self):
        log = make_log()
        out = apply_faults(log, [FaultSpec("ghost_reads", 0.8)], seed=0)
        assert out.n_reads > log.n_reads
        assert (np.diff(out.timestamp_s) >= 0).all()

    def test_calibration_gap_blanks_reference_channel(self):
        log = make_log()
        out = apply_faults(log, [FaultSpec("calibration_gap", 0.3)], seed=0)
        assert REFERENCE not in out.channel
        assert out.n_reads > 0
