"""Per-stage circuit breakers and the stage-guard protocol.

A circuit breaker keeps a repeatedly failing stage from burning the
window budget on work that cannot succeed: after ``failure_threshold``
consecutive failures the breaker *opens* and calls are rejected
outright; once ``reset_timeout_s`` has elapsed a single *half-open*
probe is let through, and its outcome decides between closing the
breaker and re-opening it.

Library stages (DSP featurisation, network inference) do not know
about breakers.  They mark themselves with :func:`stage_boundary`,
which is a no-op until a supervisor installs a :class:`GuardSet` for
the current thread via :func:`guard_scope`.  With guards installed, a
boundary checks the stage's breaker (and the window deadline) on
entry and records the outcome on exit; a failure inside the innermost
boundary is wrapped in a stage-attributed :class:`StageFailureError`
that outer boundaries pass through without double-counting.

All timing uses an injectable monotonic clock so tests drive the
open → half-open → closed cycle without sleeping.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator, TypeVar

from repro.obs.metrics import counter, gauge

T = TypeVar("T")

STATE_CLOSED = "closed"
"""Breaker state: calls flow, consecutive failures are counted."""

STATE_OPEN = "open"
"""Breaker state: calls are rejected until the reset timeout."""

STATE_HALF_OPEN = "half_open"
"""Breaker state: one probe call decides closed vs open."""

_STATE_VALUE = {STATE_CLOSED: 0.0, STATE_HALF_OPEN: 1.0, STATE_OPEN: 2.0}

_TLS = threading.local()


class CircuitOpenError(RuntimeError):
    """Raised when a call is rejected by an open breaker.

    Attributes:
        stage: the guarded stage whose breaker is open.
    """

    def __init__(self, stage: str) -> None:
        super().__init__(f"circuit breaker for stage {stage!r} is open")
        self.stage = stage


class DeadlineExceededError(RuntimeError):
    """Raised at a stage boundary once the window deadline has passed.

    Attributes:
        stage: the boundary at which the overrun was detected.
    """

    def __init__(self, stage: str) -> None:
        super().__init__(f"window deadline exceeded at stage {stage!r}")
        self.stage = stage


class StageFailureError(RuntimeError):
    """A guarded stage raised; carries the stage attribution.

    The original exception is chained as ``__cause__``.

    Attributes:
        stage: the innermost guarded stage that failed.
    """

    def __init__(self, stage: str, cause: BaseException) -> None:
        super().__init__(f"stage {stage!r} failed: {cause!r}")
        self.stage = stage


class CircuitBreaker:
    """Closed → open → half-open breaker for one stage.

    Args:
        stage: name used in metrics and errors.
        failure_threshold: consecutive failures that open the breaker.
        reset_timeout_s: how long an open breaker rejects calls before
            allowing a half-open probe.
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        stage: str,
        failure_threshold: int = 3,
        reset_timeout_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout_s <= 0:
            raise ValueError("reset_timeout_s must be positive")
        self.stage = stage
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self.clock = clock
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probe_in_flight = False
        self.transitions: list[tuple[str, str]] = []

    @property
    def state(self) -> str:
        """Current state (one of the ``STATE_*`` constants)."""
        return self._state

    def before_call(self) -> None:
        """Admission check; call before running the guarded stage.

        Raises:
            CircuitOpenError: when the breaker is open (and the reset
                timeout has not elapsed) or a half-open probe is
                already in flight.
        """
        with self._lock:
            if self._state == STATE_OPEN:
                opened_at = self._opened_at if self._opened_at is not None else 0.0
                if self.clock() - opened_at >= self.reset_timeout_s:
                    self._transition(STATE_HALF_OPEN)
                else:
                    counter(
                        "runtime.breaker.rejected_total", stage=self.stage
                    ).inc()
                    raise CircuitOpenError(self.stage)
            if self._state == STATE_HALF_OPEN:
                if self._probe_in_flight:
                    counter(
                        "runtime.breaker.rejected_total", stage=self.stage
                    ).inc()
                    raise CircuitOpenError(self.stage)
                self._probe_in_flight = True

    def record_success(self) -> None:
        """Report a successful guarded call."""
        with self._lock:
            self._consecutive_failures = 0
            self._probe_in_flight = False
            if self._state != STATE_CLOSED:
                self._transition(STATE_CLOSED)

    def record_failure(self) -> None:
        """Report a failed guarded call; may open the breaker."""
        with self._lock:
            self._consecutive_failures += 1
            if self._state == STATE_HALF_OPEN:
                self._probe_in_flight = False
                self._open()
            elif (
                self._state == STATE_CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._open()

    def record_abort(self) -> None:
        """Report a call that ended without a stage outcome.

        Used when an *inner* stage failed: the outer stage neither
        succeeded nor failed on its own, but a half-open probe slot it
        claimed must be released so the breaker does not wedge.
        """
        with self._lock:
            self._probe_in_flight = False

    def reset(self) -> None:
        """Force the breaker back to closed (operator action)."""
        with self._lock:
            self._consecutive_failures = 0
            self._probe_in_flight = False
            self._opened_at = None
            if self._state != STATE_CLOSED:
                self._transition(STATE_CLOSED)

    def call(self, fn: Callable[..., T], *args: object, **kwargs: object) -> T:
        """Run ``fn`` through the breaker (standalone convenience).

        Returns:
            ``fn``'s return value.

        Raises:
            CircuitOpenError: when the breaker rejects the call.
        """
        self.before_call()
        try:
            result = fn(*args, **kwargs)
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result

    def _open(self) -> None:
        self._opened_at = self.clock()
        counter("runtime.breaker.trips_total", stage=self.stage).inc()
        self._transition(STATE_OPEN)

    def _transition(self, new_state: str) -> None:
        old_state = self._state
        self._state = new_state
        self.transitions.append((old_state, new_state))
        counter(
            "runtime.breaker.transitions_total",
            stage=self.stage,
            from_state=old_state,
            to_state=new_state,
        ).inc()
        gauge("runtime.breaker.state", stage=self.stage).set(
            _STATE_VALUE[new_state]
        )


class GuardSet:
    """The per-window guard state a supervisor installs for one thread.

    Args:
        breakers: stage name → breaker for the guarded stages; stages
            without a breaker pass through unguarded.
        deadline: absolute monotonic deadline for the current window
            (``None`` disables the check).
        clock: monotonic time source matching ``deadline``.
    """

    def __init__(
        self,
        breakers: dict[str, CircuitBreaker],
        deadline: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.breakers = breakers
        self.deadline = deadline
        self.clock = clock

    def enter(self, stage: str) -> None:
        """Admission check at a stage boundary.

        Raises:
            DeadlineExceededError: the window budget has run out.
            CircuitOpenError: the stage's breaker rejects the call.
        """
        if self.deadline is not None and self.clock() > self.deadline:
            raise DeadlineExceededError(stage)
        breaker = self.breakers.get(stage)
        if breaker is not None:
            breaker.before_call()

    def success(self, stage: str) -> None:
        """Record a successful stage completion."""
        breaker = self.breakers.get(stage)
        if breaker is not None:
            breaker.record_success()

    def failure(self, stage: str) -> None:
        """Record a stage failure."""
        breaker = self.breakers.get(stage)
        if breaker is not None:
            breaker.record_failure()

    def release(self, stage: str) -> None:
        """Release a stage without an outcome (inner stage failed)."""
        breaker = self.breakers.get(stage)
        if breaker is not None:
            breaker.record_abort()


@contextmanager
def guard_scope(guards: GuardSet) -> Iterator[GuardSet]:
    """Install ``guards`` for the current thread's stage boundaries."""
    previous = getattr(_TLS, "guards", None)
    _TLS.guards = guards
    try:
        yield guards
    finally:
        _TLS.guards = previous


def active_guards() -> GuardSet | None:
    """The guard set installed for the current thread, if any."""
    return getattr(_TLS, "guards", None)


@contextmanager
def stage_boundary(stage: str) -> Iterator[None]:
    """Mark a guarded pipeline stage.

    A no-op (one thread-local read) when no supervisor has installed
    guards, so library call sites pay nothing outside supervised runs.
    Under guards: checks the deadline and the stage's breaker on
    entry, records success/failure on exit, and wraps the innermost
    failure in a stage-attributed :class:`StageFailureError`.

    Raises:
        CircuitOpenError: when the stage's breaker rejects the call.
        DeadlineExceededError: when the window deadline has passed.
        StageFailureError: when the guarded body raised (the original
            exception is chained).
    """
    guards = getattr(_TLS, "guards", None)
    if guards is None:
        yield
        return
    guards.enter(stage)
    try:
        yield
    except (StageFailureError, CircuitOpenError, DeadlineExceededError):
        # Already attributed by an inner boundary (or an inner breaker
        # rejection): release this stage's probe slot and pass through.
        guards.release(stage)
        raise
    except Exception as exc:
        guards.failure(stage)
        raise StageFailureError(stage, exc) from exc
    else:
        guards.success(stage)
