"""Training losses."""

from __future__ import annotations

import numpy as np


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable log-softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


def softmax(logits: np.ndarray) -> np.ndarray:
    """Softmax over the last axis."""
    return np.exp(log_softmax(logits))


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy (Eq. 17) and its gradient w.r.t. the logits.

    Args:
        logits: ``(..., C)`` unnormalised scores.
        labels: integer class ids with shape ``logits.shape[:-1]``.

    Returns:
        ``(loss, dlogits)``: the scalar mean negative log-likelihood
        and the gradient array, already divided by the number of
        predictions so it can be fed straight into ``backward``.

    Raises:
        ValueError: on shape mismatch or out-of-range labels.
    """
    labels = np.asarray(labels)
    if labels.shape != logits.shape[:-1]:
        raise ValueError(
            f"labels shape {labels.shape} != logits batch shape {logits.shape[:-1]}"
        )
    n_classes = logits.shape[-1]
    if labels.size and (labels.min() < 0 or labels.max() >= n_classes):
        raise ValueError("label out of range")
    log_p = log_softmax(logits)
    flat_log_p = log_p.reshape(-1, n_classes)
    flat_labels = labels.reshape(-1)
    count = flat_labels.size
    nll = -flat_log_p[np.arange(count), flat_labels].mean()
    grad = np.exp(flat_log_p)
    grad[np.arange(count), flat_labels] -= 1.0
    grad /= count
    return float(nll), grad.reshape(logits.shape)


def mse_loss(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error and gradient."""
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    diff = pred - target
    loss = float(np.mean(diff**2))
    return loss, 2.0 * diff / diff.size
