"""Experiment drivers reproducing every paper table and figure."""

from repro.eval.experiments import (
    EXPERIMENTS,
    run_fig09,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14,
    run_fig15,
    run_fig16,
    run_fig17,
    run_table1,
)
from repro.eval.harness import (
    baseline_zoo,
    clear_cache,
    eval_baselines,
    get_dataset,
    get_raw_samples,
    train_eval_m2ai,
)
from repro.eval.extensions import (
    EXTENSIONS,
    run_ext_augmentation,
    run_ext_batching,
    run_ext_hub_coverage,
    run_ext_realtime,
    run_ext_transfer,
)
from repro.eval.reporting import ExperimentResult, ExperimentRow, bar_chart
from repro.eval.resilience import (
    ResilienceCell,
    resilience_sweep,
    run_ext_resilience,
    run_resilience_bench,
)
from repro.eval.robustness import (
    RobustnessCell,
    RobustnessReport,
    robustness_sweep,
    run_ext_robustness,
)
from repro.eval.serving import run_ext_serving, run_serving_bench
from repro.eval.signal_studies import run_fig02, run_fig03

ALL_EXPERIMENTS = {
    "fig02": run_fig02,
    "fig03": run_fig03,
    **EXPERIMENTS,
    **EXTENSIONS,
}
"""Every experiment driver (paper figures + Section VII extensions)."""

__all__ = [
    "ALL_EXPERIMENTS",
    "EXPERIMENTS",
    "EXTENSIONS",
    "ExperimentResult",
    "ExperimentRow",
    "ResilienceCell",
    "RobustnessCell",
    "RobustnessReport",
    "bar_chart",
    "resilience_sweep",
    "robustness_sweep",
    "run_resilience_bench",
    "run_serving_bench",
    "baseline_zoo",
    "clear_cache",
    "eval_baselines",
    "get_dataset",
    "get_raw_samples",
    "run_ext_augmentation",
    "run_ext_batching",
    "run_ext_hub_coverage",
    "run_ext_realtime",
    "run_ext_resilience",
    "run_ext_robustness",
    "run_ext_serving",
    "run_ext_transfer",
    "run_fig02",
    "run_fig03",
    "run_fig09",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_fig14",
    "run_fig15",
    "run_fig16",
    "run_fig17",
    "run_table1",
    "train_eval_m2ai",
]
