"""CART decision tree (Fig. 9's "Decision Tree", and the forest's base).

Binary splits on single features chosen by Gini impurity reduction,
with the usual depth / min-samples stopping rules.  To keep training
fast on wide feature vectors the split search can subsample features
(used by the random forest).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import Classifier, LabelEncoder, validate_xy


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    probabilities: np.ndarray | None = None

    @property
    def is_leaf(self) -> bool:
        return self.probabilities is not None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.sum(p**2))


class DecisionTreeClassifier(Classifier):
    """CART with Gini impurity.

    Args:
        max_depth: depth cap (None = grow to purity).
        min_samples_split: do not split smaller nodes.
        max_features: features examined per split; ``None`` = all,
            ``"sqrt"`` = square root (the random-forest setting), or
            an int.
        rng: feature subsampling randomness.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        max_features: int | str | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.rng = rng or np.random.default_rng(0)
        self._encoder = LabelEncoder()
        self._root: _Node | None = None
        self._n_classes = 0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        """Fit the classifier; returns ``self``."""
        x, y = validate_xy(x, y)
        ids = self._encoder.fit_transform(y)
        self._n_classes = self._encoder.n_classes
        self._root = self._grow(x, ids, depth=0)
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Leaf class distributions, ``(n, k)``."""
        if self._root is None:
            raise RuntimeError("classifier not fitted")
        x = np.asarray(x, dtype=np.float64)
        return np.stack([self._route(row) for row in x])

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted class ids for ``x``, shape ``(B,)``."""
        return self._encoder.inverse(self.predict_proba(x).argmax(axis=1))

    def depth(self) -> int:
        """Actual depth of the grown tree."""
        def walk(node: _Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)

    # ------------------------------------------------------------------

    def _n_split_features(self, d: int) -> int:
        if self.max_features is None:
            return d
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(d)))
        return max(1, min(int(self.max_features), d))

    def _grow(self, x: np.ndarray, ids: np.ndarray, depth: int) -> _Node:
        counts = np.bincount(ids, minlength=self._n_classes).astype(np.float64)
        node = _Node()
        if (
            len(ids) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or _gini(counts) == 0.0
        ):
            node.probabilities = counts / counts.sum()
            return node

        best = self._best_split(x, ids, counts)
        if best is None:
            node.probabilities = counts / counts.sum()
            return node
        feature, threshold = best
        mask = x[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(x[mask], ids[mask], depth + 1)
        node.right = self._grow(x[~mask], ids[~mask], depth + 1)
        return node

    _FEATURE_CHUNK = 1024
    """Features evaluated per vectorised block (bounds peak memory)."""

    def _best_split(
        self, x: np.ndarray, ids: np.ndarray, counts: np.ndarray
    ) -> tuple[int, float] | None:
        """Vectorised exhaustive split search.

        For every candidate feature, all ``n - 1`` split positions are
        scored at once from cumulative per-class counts — spectrum
        frames have tens of thousands of features, so a per-row Python
        loop is untenable.
        """
        n, d = x.shape
        parent_impurity = _gini(counts)
        features = self.rng.choice(d, size=self._n_split_features(d), replace=False)
        best_gain = 1e-12
        best: tuple[int, float] | None = None
        one_hot = np.zeros((n, self._n_classes))
        one_hot[np.arange(n), ids] = 1.0
        positions = np.arange(1, n)  # left-side sizes

        for start in range(0, len(features), self._FEATURE_CHUNK):
            chunk = features[start : start + self._FEATURE_CHUNK]
            cols = x[:, chunk]  # (n, c)
            order = np.argsort(cols, axis=0, kind="stable")
            sorted_vals = np.take_along_axis(cols, order, axis=0)
            # left_counts[i, f, c] = class-c count among the first i+1 rows.
            left_counts = np.cumsum(one_hot[order], axis=0)[:-1]  # (n-1, c_feat, k)
            n_left = positions[:, None]
            n_right = n - n_left
            sum_sq_left = np.sum(left_counts**2, axis=2)
            right_counts = counts[None, None, :] - left_counts
            sum_sq_right = np.sum(right_counts**2, axis=2)
            gini_left = 1.0 - sum_sq_left / (n_left**2)
            gini_right = 1.0 - sum_sq_right / (n_right**2)
            gain = parent_impurity - (n_left * gini_left + n_right * gini_right) / n
            # Splits between equal values are invalid.
            valid = sorted_vals[:-1] != sorted_vals[1:]
            gain = np.where(valid, gain, -np.inf)
            flat = int(np.argmax(gain))
            row, col = np.unravel_index(flat, gain.shape)
            if gain[row, col] > best_gain:
                best_gain = float(gain[row, col])
                threshold = float(
                    (sorted_vals[row, col] + sorted_vals[row + 1, col]) / 2.0
                )
                best = (int(chunk[col]), threshold)
        return best

    def _route(self, row: np.ndarray) -> np.ndarray:
        node = self._root
        while node is not None and not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        if node is None or node.probabilities is None:
            raise RuntimeError("corrupt tree")
        return node.probabilities
