"""Minimal deep-learning framework: parameters and modules.

The paper trains its CNN+LSTM in Keras/TensorFlow; this environment has
neither, so ``repro.nn`` implements the needed subset from scratch on
numpy with explicit forward/backward passes.  Every layer caches what
its backward pass needs during forward, so the usage contract is the
classic one: ``forward`` then ``backward`` once, gradients accumulate
into ``Parameter.grad`` until ``zero_grad``.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from typing import Iterator

import numpy as np

DEFAULT_DTYPE = np.dtype(np.float64)
"""The library-wide parameter/activation dtype.

Single source of truth for the numeric standard: ``Parameter`` casts to
it by default and the runtime sanitizer
(:func:`repro.analysis.sanitize.anomaly_detection`) treats any drift
away from it as an anomaly.
"""

INFERENCE_DTYPE = np.dtype(np.float32)  # reprolint: disable=RPR012 -- the one sanctioned narrow dtype must be named here
"""The sanctioned narrow dtype for cast-once inference serving.

Training stays float64 end to end; a serve path may cast a trained
model's activations down to this dtype *inside* an
:func:`inference_mode` scope.  Both enforcement layers key off that
scope: the RPR012 dtype-flow lint admits narrow-float values proven to
stay inside ``with inference_mode():``, and the runtime sanitizer
accepts this dtype (plus its complex companion) only while the scope
is active.
"""

_INFERENCE_DEPTH: contextvars.ContextVar[int] = contextvars.ContextVar(
    "repro_inference_mode_depth", default=0
)


@contextmanager
def inference_mode() -> Iterator[None]:
    """Scope in which float32 inference tensors are sanctioned.

    The float64 discipline (lint rule RPR012, sanitizer dtype checks)
    applies everywhere *except* inside this context manager: a serve
    path that casts a trained model down to :data:`INFERENCE_DTYPE`
    once and runs narrow activations must do every narrow operation
    within the scope and cast back (or emit non-array decisions)
    before leaving it.

    The scope is tracked with a :class:`contextvars.ContextVar`, so it
    is thread- and task-local: arming it on a serving thread never
    relaxes checks for a concurrently training thread.  Nesting is
    allowed and counts depth.
    """
    token = _INFERENCE_DEPTH.set(_INFERENCE_DEPTH.get() + 1)
    try:
        yield
    finally:
        _INFERENCE_DEPTH.reset(token)


def in_inference_mode() -> bool:
    """True while the calling thread/task is inside :func:`inference_mode`."""
    return _INFERENCE_DEPTH.get() > 0


class Parameter:
    """A trainable tensor with an accumulated gradient.

    Args:
        value: initial value; cast to ``dtype``.
        name: diagnostic name (surfaces in gradcheck and sanitizer
            reports).
        dtype: target floating dtype.  The historical behaviour was a
            silent upcast to float64; the cast is now an explicit,
            validated argument so precision policy lives in one place.

    Raises:
        TypeError: when ``dtype`` is not a floating dtype.
    """

    def __init__(
        self,
        value: np.ndarray,
        name: str = "",
        dtype: np.dtype | type = DEFAULT_DTYPE,
    ) -> None:
        dt = np.dtype(dtype)
        if dt.kind != "f":
            raise TypeError(
                f"Parameter dtype must be a floating dtype, got {dt} "
                f"(the library standard is {DEFAULT_DTYPE})"
            )
        self.value = np.asarray(value, dtype=dt)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the parameter value."""
        return self.value.shape

    @property
    def size(self) -> int:
        """Number of scalar elements."""
        return int(self.value.size)

    def zero_grad(self) -> None:
        """Reset the gradient to zero."""
        self.grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter({self.name or 'unnamed'}, shape={self.shape})"


class Module:
    """Base class for layers and models.

    Subclasses register :class:`Parameter` attributes and sub-``Module``
    attributes directly on ``self``; :meth:`parameters` discovers both
    recursively.  ``forward`` takes a ``training`` flag (dropout etc.);
    ``backward`` receives the upstream gradient and returns the
    gradient with respect to the input.
    """

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output for ``x``."""
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Propagate ``grad``; returns the gradient w.r.t. the input."""
        raise NotImplementedError

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)

    def parameters(self) -> list[Parameter]:
        """All trainable parameters, depth-first, deterministic order."""
        params: list[Parameter] = []
        for _name, attr in sorted(vars(self).items()):
            if isinstance(attr, Parameter):
                params.append(attr)
            elif isinstance(attr, Module):
                params.extend(attr.parameters())
            elif isinstance(attr, (list, tuple)):
                for item in attr:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
                    elif isinstance(item, Parameter):
                        params.append(item)
        return params

    def modules(self) -> list["Module"]:
        """This module and every sub-module, depth-first, deterministic order.

        The structural companion of :meth:`parameters`: walks the same
        attribute/list/tuple registration scheme but yields the modules
        themselves, so whole-model passes (weight packing, freezing)
        can visit each layer exactly once.
        """
        found: list[Module] = [self]
        for _name, attr in sorted(vars(self).items()):
            if isinstance(attr, Module):
                found.extend(attr.modules())
            elif isinstance(attr, (list, tuple)):
                for item in attr:
                    if isinstance(item, Module):
                        found.extend(item.modules())
        return found

    def zero_grad(self) -> None:
        """Reset every parameter gradient to zero."""
        for p in self.parameters():
            p.zero_grad()

    def n_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    def get_state(self) -> list[np.ndarray]:
        """Snapshot of all parameter values (for checkpointing)."""
        return [p.value.copy() for p in self.parameters()]

    def set_state(self, state: list[np.ndarray]) -> None:
        """Restore a snapshot taken by :meth:`get_state`.

        Raises:
            ValueError: on a count or shape mismatch.
        """
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(
                f"state has {len(state)} tensors, model has {len(params)}"
            )
        for p, value in zip(params, state):
            if p.value.shape != value.shape:
                raise ValueError(f"shape mismatch for {p.name}: {p.value.shape} vs {value.shape}")
            p.value[...] = value


def cast_once(module: Module, dtype: np.dtype | type) -> Module:
    """Cast every parameter of ``module`` to ``dtype``, freeze, and pre-pack.

    The serve-path primitive: a trained model is deep-copied by the
    caller, cast down *once* here, and then only ever run forward.  Three
    things happen, in order:

    1. every :class:`Parameter` value is cast to ``dtype`` (gradients are
       re-zeroed in the new dtype so the invariant ``value.dtype ==
       grad.dtype`` holds),
    2. every parameter value is frozen read-only, so in-place training
       updates (and :meth:`Module.set_state`) fail loudly instead of
       silently invalidating pre-packed views,
    3. every layer exposing ``pack_weights()`` (e.g.
       :class:`repro.nn.conv.Conv1d`) pre-packs contiguous weight views
       keyed on the now-frozen buffer.

    Narrow targets (anything below :data:`DEFAULT_DTYPE`) must be
    requested inside :func:`inference_mode` — the same scope the RPR012
    lint and the runtime sanitizer key off — so a float32 pack can never
    be built on a code path where narrow activations would leak into
    training.

    Idempotent: casting to the current dtype only re-freezes and
    re-packs.

    Args:
        module: the model to cast in place (cast your own deepcopy).
        dtype: target floating dtype.

    Returns:
        ``module``, for chaining.

    Raises:
        TypeError: when ``dtype`` is not a floating dtype.
        RuntimeError: when ``dtype`` is narrower than the library
            standard and the caller is not inside :func:`inference_mode`.
    """
    dt = np.dtype(dtype)
    if dt.kind != "f":
        raise TypeError(f"cast_once target must be a floating dtype, got {dt}")
    if dt != DEFAULT_DTYPE and not in_inference_mode():
        raise RuntimeError(
            f"cast_once to {dt} is a narrow cast and must run inside "
            "inference_mode() (see DESIGN.md section 14)"
        )
    for p in module.parameters():
        if p.value.dtype != dt:
            p.value = p.value.astype(dt)
            p.grad = np.zeros_like(p.value)
        p.value.flags.writeable = False
    for sub in module.modules():
        pack = getattr(sub, "pack_weights", None)
        if callable(pack):
            pack()
    return module


class Sequential(Module):
    """Feed-forward chain of modules."""

    def __init__(self, *layers: Module) -> None:
        self.layers = list(layers)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the layers in order."""
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backprop through the layers in reverse order."""
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad
