"""Training-vs-inference mode propagation through composite models."""

from __future__ import annotations

import numpy as np

from repro.core import M2AIConfig, M2AINet

SHAPES = {"pseudo": (2, 40), "period": (2, 4)}


def make_net(dropout: float) -> M2AINet:
    cfg = M2AIConfig(
        conv_channels=(3, 4),
        branch_dim=6,
        merge_dim=8,
        lstm_hidden=5,
        lstm_layers=1,
        dropout=dropout,
        epochs=1,
        warmup_frames=0,
    )
    return M2AINet(SHAPES, n_classes=3, cfg=cfg, rng=np.random.default_rng(0))


def make_inputs():
    rng = np.random.default_rng(1)
    return {name: rng.normal(size=(2, 3, n, d)) for name, (n, d) in SHAPES.items()}


class TestModePropagation:
    def test_inference_deterministic_despite_dropout(self):
        net = make_net(dropout=0.5)
        inputs = make_inputs()
        a = net.forward(inputs, training=False)
        b = net.forward(inputs, training=False)
        np.testing.assert_allclose(a, b)

    def test_training_mode_stochastic_with_dropout(self):
        net = make_net(dropout=0.5)
        inputs = make_inputs()
        a = net.forward(inputs, training=True)
        b = net.forward(inputs, training=True)
        assert not np.allclose(a, b)

    def test_training_deterministic_without_dropout(self):
        net = make_net(dropout=0.0)
        inputs = make_inputs()
        a = net.forward(inputs, training=True)
        b = net.forward(inputs, training=True)
        np.testing.assert_allclose(a, b)

    def test_predict_logits_uses_inference_mode(self):
        net = make_net(dropout=0.5)
        inputs = make_inputs()
        a = net.predict_logits(inputs)
        b = net.predict_logits(inputs)
        np.testing.assert_allclose(a, b)
