"""Spatial correlation matrices (Eq. 10) with coherent-source fixes.

Backscatter multipath components are *coherent* — they are copies of
one tag reply — so the plain sample covariance is rank-deficient and
plain MUSIC cannot separate them.  Forward-backward averaging restores
rank for a uniform linear array and is standard practice; it is the
de-correlation step implied by the paper's "de-couple multipath
signals" stage.
"""

from __future__ import annotations

import numpy as np


def sample_covariance(snapshots: np.ndarray, valid: np.ndarray | None = None) -> np.ndarray:
    """Sample spatial covariance ``R = E[x x^H]`` over snapshots.

    Args:
        snapshots: ``(K, N)`` complex array, one row per snapshot.
        valid: optional ``(K, N)`` mask; snapshots missing any antenna
            are dropped, and when *every* snapshot has gaps the gaps
            are zero-filled (conservative fallback).

    Returns:
        ``(N, N)`` Hermitian covariance.

    Raises:
        ValueError: when no snapshot is available at all.
    """
    x = np.asarray(snapshots, dtype=np.complex128)
    if x.ndim != 2:
        raise ValueError("snapshots must be (K, N)")
    if valid is not None:
        complete = valid.all(axis=1)
        if complete.any():
            x = x[complete]
        elif not valid.any():
            raise ValueError("no valid snapshots")
    if x.shape[0] == 0:
        raise ValueError("no valid snapshots")
    # R[i, j] = E[x_i * conj(x_j)] — rows of ``x`` are snapshots.
    return x.T @ x.conj() / x.shape[0]


def forward_backward(r: np.ndarray) -> np.ndarray:
    """Forward-backward averaged covariance ``(R + J R* J) / 2``.

    ``J`` is the exchange matrix.  For a ULA this doubles the effective
    snapshot count and de-correlates coherent path pairs.
    """
    r = np.asarray(r)
    n = r.shape[0]
    j = np.eye(n)[::-1]
    return 0.5 * (r + j @ r.conj() @ j)


def diagonal_load(r: np.ndarray, level: float = 1e-6) -> np.ndarray:
    """Add ``level * trace(R)/N`` to the diagonal for numerical safety."""
    n = r.shape[0]
    return r + np.eye(n) * (level * np.trace(r).real / n)


def spatial_covariance(
    snapshots: np.ndarray,
    valid: np.ndarray | None = None,
    use_forward_backward: bool = True,
    loading: float = 1e-6,
) -> np.ndarray:
    """The full covariance pipeline used by the pseudospectrum stage."""
    r = sample_covariance(snapshots, valid)
    if use_forward_backward:
        r = forward_backward(r)
    return diagonal_load(r, loading)
