"""Domain-shift eval: train in one environment, test in another.

The paper trains and tests in the same two rooms; production means
unseen rooms daily.  This workload quantifies the gap in both transfer
directions (laboratory -> hall and hall -> laboratory) with three arms
per direction:

* **same-env** — held-out accuracy in the training room (the ceiling);
* **cross-env** — zero-shot accuracy in the *other* room;
* **k-shot adapted** — cross-env accuracy after a short
  :meth:`~repro.core.pipeline.M2AIPipeline.fine_tune` pass on ``k``
  windows per class from the target room (the paper's Section VII
  "re-train for different settings" story, made cheap).

Cells sweep seeds in parallel through
:func:`~repro.experiments.runner.run_batch` and land in the durable
results store, so a killed sweep resumes instead of restarting.  Run
as a module to produce the benchmark artifact::

    PYTHONPATH=src python -m repro.experiments.domain_shift --quick

which writes ``BENCH_ext_domain_shift.json``.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.core.config import M2AIConfig
from repro.core.pipeline import M2AIPipeline
from repro.data.generator import GenerationConfig, vary
from repro.eval.harness import get_dataset
from repro.eval.reporting import ExperimentResult, ExperimentRow
from repro.experiments.metrics import aggregate_records
from repro.experiments.runner import register_runner, run_batch
from repro.experiments.spec import make_spec
from repro.experiments.store import ResultsStore, atomic_write_text

__all__ = [
    "EXPERIMENT_ID",
    "DIRECTIONS",
    "k_shot_subset",
    "run_domain_shift",
    "run_domain_shift_bench",
]

EXPERIMENT_ID = "ext-domain-shift"
"""Registry id of the per-cell driver."""

DIRECTIONS = (("laboratory", "hall"), ("hall", "laboratory"))
"""Both transfer directions the bench sweeps."""

ROW_SAME = "same-env"
ROW_CROSS = "cross-env"
ROW_ADAPTED = "k-shot adapted"

BENCH_SCHEMA = 1


def _gen_config(quick: bool, seed: int, **overrides) -> GenerationConfig:
    base = GenerationConfig(
        samples_per_class=6 if quick else 16,
        duration_s=6.0,
        calibration_s=20.0,
        seed=seed,
    )
    return vary(base, **overrides)


def _train_config(quick: bool, seed: int) -> M2AIConfig:
    epochs = 30 if quick else 50
    # The CI/benchmark budget trim applies, but transfer effects need a
    # competent source model, so the trim keeps a floor (cf. the
    # ext-transfer driver, which floors its epochs the same way).
    override = os.environ.get("REPRO_BENCH_EPOCHS")
    if override:
        epochs = max(20, min(epochs, int(override)))
    return M2AIConfig(epochs=epochs, batch_size=16, seed=seed)


def k_shot_subset(dataset, k: int, seed: int):
    """``k`` seeded samples per class (all of them when a class has < k).

    This is the adaptation budget of the k-shot arm: the windows a
    deployment could plausibly label in a new room on day one.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    rng = np.random.default_rng(seed)
    labels = np.asarray(dataset.labels)
    chosen: list[int] = []
    for label in sorted(set(dataset.labels)):
        indices = np.flatnonzero(labels == label)
        take = min(k, indices.size)
        chosen.extend(rng.choice(indices, size=take, replace=False).tolist())
    return dataset.subset(np.sort(np.asarray(chosen)))


def run_domain_shift(
    quick: bool = True,
    seed: int = 0,
    source: str = "laboratory",
    target: str = "hall",
    k_shot: "int | None" = None,
) -> ExperimentResult:
    """One transfer cell: train in ``source``, evaluate in ``target``.

    Raises:
        ValueError: ``source`` and ``target`` name the same environment.
    """
    if source == target:
        raise ValueError("source and target must be different environments")
    k = k_shot if k_shot is not None else (2 if quick else 4)

    source_ds = get_dataset(_gen_config(quick, seed, environment=source))
    target_ds = get_dataset(_gen_config(quick, seed, environment=target))
    training = _train_config(quick, seed)

    src_train, src_test = source_ds.split(0.2, np.random.default_rng(seed))
    pipeline = M2AIPipeline(training).fit(src_train, val=src_test)
    same_env = pipeline.evaluate(src_test).accuracy

    adapt_pool, tgt_test = target_ds.split(0.5, np.random.default_rng(seed + 1))
    cross_env = pipeline.evaluate(tgt_test).accuracy

    shots = k_shot_subset(adapt_pool, k, seed + 2)
    pipeline.fine_tune(shots, epochs=15 if quick else 25)
    adapted = pipeline.evaluate(tgt_test).accuracy

    gap = same_env - cross_env
    recovered = adapted - cross_env
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=f"Domain shift: train {source}, test {target}",
        rows=[
            ExperimentRow(ROW_SAME, None, same_env),
            ExperimentRow(ROW_CROSS, None, cross_env),
            ExperimentRow(ROW_ADAPTED, None, adapted),
            ExperimentRow("k (windows/class)", None, float(k), unit="n"),
        ],
        notes=(
            f"Unseen-room generalization, {source} -> {target}: zero-shot "
            f"transfer moves accuracy by {-gap * 100:+.0f} points from the "
            f"in-room ceiling; fine-tuning on {k} windows/class from the "
            f"target room moves it back {recovered * 100:+.0f} points "
            f"({len(shots)} adaptation windows). The paper predicts the "
            "model is environment-specific and needs a short retrain "
            "(Section VII)."
        ),
    )


register_runner(EXPERIMENT_ID, run_domain_shift)


def _direction_summary(aggregates, source: str, target: str) -> dict:
    """Bench rows for one direction from its aggregate rows.

    Raises:
        ValueError: a required arm is missing from the records.
    """
    by_name = {}
    for row in aggregates:
        by_name[row.name] = row
    stats = {}
    for arm, name in (
        ("same_env", ROW_SAME),
        ("cross_env", ROW_CROSS),
        ("k_shot_adapted", ROW_ADAPTED),
    ):
        row = by_name.get(name)
        if row is None:
            raise ValueError(
                f"direction {source}->{target} is missing the {name!r} arm"
            )
        stats[arm] = {
            "mean": row.mean,
            "std": row.std,
            "min": row.low,
            "max": row.high,
            "seeds": list(row.seeds),
        }
    gap = stats["same_env"]["mean"] - stats["cross_env"]["mean"]
    recovered = stats["k_shot_adapted"]["mean"] - stats["cross_env"]["mean"]
    stats["transfer_gap"] = gap
    stats["gap_recovered_frac"] = recovered / gap if abs(gap) > 1e-9 else None
    return stats


def run_domain_shift_bench(
    quick: bool = True,
    seeds: tuple[int, ...] = (0, 1),
    workers: int = 2,
    store: "ResultsStore | None" = None,
    force: bool = False,
    k_shot: "int | None" = None,
    on_event=None,
) -> dict:
    """Sweep both directions x ``seeds`` and assemble the bench document.

    Completed cells are served from the durable store (kill the sweep,
    rerun, and only missing cells execute); the returned document has
    one entry per direction with same-env / cross-env / k-shot-adapted
    statistics across seeds.
    """
    store = store if store is not None else ResultsStore()
    mode = "quick" if quick else "full"
    specs = []
    for source, target in DIRECTIONS:
        for seed in seeds:
            overrides: dict[str, object] = {"source": source, "target": target}
            if k_shot is not None:
                overrides["k_shot"] = k_shot
            specs.append(
                make_spec(EXPERIMENT_ID, mode, seed, gen_overrides=overrides)
            )
    t0 = time.monotonic()
    records = run_batch(
        specs, store, workers=workers, force=force, on_event=on_event
    )
    elapsed = time.monotonic() - t0

    directions = {}
    for source, target in DIRECTIONS:
        cell_records = [
            r
            for r in records
            if dict(r.spec.gen_overrides).get("source") == source
        ]
        directions[f"{source}->{target}"] = _direction_summary(
            aggregate_records(cell_records), source, target
        )
    return {
        "bench": "ext_domain_shift",
        "schema": BENCH_SCHEMA,
        "mode": mode,
        "seeds": list(seeds),
        "workers": workers,
        "directions": directions,
        "cells": [record.to_payload() for record in records],
        "elapsed_s": elapsed,
    }


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point: run the sweep and write the JSON artifact."""
    import argparse
    import sys
    from pathlib import Path

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.domain_shift",
        description="Cross-environment generalization sweep.",
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized workload (smaller, faster)"
    )
    parser.add_argument(
        "--seeds", type=int, default=None, help="number of seeds (default 2/3)"
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="parallel worker processes"
    )
    parser.add_argument(
        "--k-shot", type=int, default=None, help="adaptation windows per class"
    )
    parser.add_argument(
        "--force", action="store_true", help="rerun cells already in the store"
    )
    parser.add_argument(
        "--store", type=Path, default=None, help="results store directory"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_ext_domain_shift.json"),
        help="artifact path (default: BENCH_ext_domain_shift.json)",
    )
    args = parser.parse_args(argv)

    n_seeds = args.seeds if args.seeds is not None else (2 if args.quick else 3)
    out = sys.stdout.write

    def on_event(kind, spec, detail):
        tag = {"skip": "skip", "start": "run ", "done": "done", "failed": "FAIL"}
        note = f" ({detail})" if detail else ""
        out(f"[{tag[kind]}] {spec.key}{note}\n")

    doc = run_domain_shift_bench(
        quick=args.quick,
        seeds=tuple(range(n_seeds)),
        workers=args.workers,
        store=ResultsStore(args.store) if args.store else None,
        force=args.force,
        k_shot=args.k_shot,
        on_event=on_event,
    )
    atomic_write_text(args.out, json.dumps(doc, indent=2, sort_keys=False) + "\n")

    out(f"wrote {args.out}\n")
    for direction, stats in doc["directions"].items():
        out(
            f"{direction:<24} same-env {stats['same_env']['mean']:.3f}  "
            f"cross-env {stats['cross_env']['mean']:.3f}  "
            f"k-shot {stats['k_shot_adapted']['mean']:.3f}  "
            f"(gap {stats['transfer_gap'] * 100:+.0f} pts)\n"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
