"""Batched DSP entry points: bit-close equivalence with the scalar path.

The batching contract (DESIGN.md section 10): every batched function
must reproduce the scalar loop it replaced to ``rtol=1e-12`` — same
LAPACK kernels, same selection semantics — so these tests sweep random
dwell stacks, degraded masks and forced subspace dimensions and compare
element-wise against the scalar reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsp import (
    STEERING_CACHE_MAXSIZE,
    cached_steering_matrix,
    clear_steering_cache,
    music_pseudospectrum,
    music_pseudospectrum_batch,
    spatial_covariance,
    spatial_covariance_stack,
    spatial_periodogram,
    spatial_periodogram_batch,
    steering_cache_info,
    steering_matrix,
)

RTOL = 1e-12
SPACING = 0.04


def random_dwells(seed: int, n_windows=None, n_rounds=None, n_ant=None):
    """A random snapshot stack with a mixed validity profile.

    Windows cycle through the three selection regimes the scalar path
    distinguishes: fully observed, some-complete-rows (incomplete rows
    must be dropped), and no-complete-row (gaps must be zero-filled).
    """
    rng = np.random.default_rng(seed)
    w = int(n_windows if n_windows is not None else rng.integers(3, 12))
    k = int(n_rounds if n_rounds is not None else rng.integers(2, 6))
    n = int(n_ant if n_ant is not None else rng.integers(3, 6))
    z = rng.normal(size=(w, k, n)) + 1j * rng.normal(size=(w, k, n))
    valid = np.ones((w, k, n), dtype=bool)
    for i in range(w):
        regime = i % 3
        if regime == 1:  # incomplete rows alongside complete ones
            valid[i, rng.integers(0, k), rng.integers(0, n)] = False
        elif regime == 2:  # every row has a gap -> zero-fill fallback
            for row in range(k):
                valid[i, row, rng.integers(0, n)] = False
    # Garbage in unobserved slots must never leak into any output.
    z[~valid] = 1e6 * (1.0 + 1.0j)
    wavelengths = rng.uniform(0.31, 0.34, size=w)
    return z, valid, wavelengths


class TestCovarianceStack:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_scalar(self, seed):
        z, valid, _ = random_dwells(seed)
        stack = spatial_covariance_stack(z, valid)
        for w in range(z.shape[0]):
            np.testing.assert_allclose(
                stack[w], spatial_covariance(z[w], valid[w]), rtol=RTOL
            )

    def test_matches_scalar_without_mask(self):
        z, _, _ = random_dwells(3)
        z = z.real + 1j * z.imag  # strip the injected garbage pattern
        stack = spatial_covariance_stack(z)
        for w in range(z.shape[0]):
            np.testing.assert_allclose(stack[w], spatial_covariance(z[w]), rtol=RTOL)

    def test_forward_backward_toggle(self):
        z, valid, _ = random_dwells(4)
        stack = spatial_covariance_stack(z, valid, use_forward_backward=False)
        for w in range(z.shape[0]):
            np.testing.assert_allclose(
                stack[w],
                spatial_covariance(z[w], valid[w], use_forward_backward=False),
                rtol=RTOL,
            )

    def test_empty_stack(self):
        assert spatial_covariance_stack(np.zeros((0, 4, 4), complex)).shape == (0, 4, 4)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            spatial_covariance_stack(np.zeros((4, 4), complex))

    def test_rejects_fully_unobserved_window(self):
        z = np.ones((2, 3, 4), dtype=complex)
        valid = np.ones((2, 3, 4), dtype=bool)
        valid[1] = False
        with pytest.raises(ValueError):
            spatial_covariance_stack(z, valid)


class TestMusicBatch:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_scalar(self, seed):
        z, valid, wl = random_dwells(seed)
        covs = spatial_covariance_stack(z, valid)
        batch = music_pseudospectrum_batch(covs, SPACING, wl)
        for w, result in enumerate(batch):
            scalar = music_pseudospectrum(covs[w], SPACING, wl[w])
            np.testing.assert_allclose(result.spectrum, scalar.spectrum, rtol=RTOL)
            np.testing.assert_allclose(
                result.eigenvalues, scalar.eigenvalues, rtol=RTOL
            )
            assert result.n_sources == scalar.n_sources

    @pytest.mark.parametrize("seed", range(3))
    def test_forced_n_sources_per_window(self, seed):
        z, valid, wl = random_dwells(seed, n_ant=4)
        covs = spatial_covariance_stack(z, valid)
        rng = np.random.default_rng(seed + 100)
        forced = rng.integers(1, 4, size=covs.shape[0])
        batch = music_pseudospectrum_batch(covs, SPACING, wl, n_sources=forced)
        for w, result in enumerate(batch):
            scalar = music_pseudospectrum(
                covs[w], SPACING, wl[w], n_sources=int(forced[w])
            )
            np.testing.assert_allclose(result.spectrum, scalar.spectrum, rtol=RTOL)
            assert result.n_sources == scalar.n_sources == int(forced[w])

    def test_forced_n_sources_scalar_broadcasts(self):
        z, valid, wl = random_dwells(7, n_ant=4)
        covs = spatial_covariance_stack(z, valid)
        batch = music_pseudospectrum_batch(covs, SPACING, wl, n_sources=2)
        assert all(r.n_sources == 2 for r in batch)

    def test_shared_scalar_wavelength(self):
        z, valid, _ = random_dwells(5)
        covs = spatial_covariance_stack(z, valid)
        batch = music_pseudospectrum_batch(covs, SPACING, 0.328)
        for w, result in enumerate(batch):
            scalar = music_pseudospectrum(covs[w], SPACING, 0.328)
            np.testing.assert_allclose(result.spectrum, scalar.spectrum, rtol=RTOL)

    def test_element_indices_subarray(self):
        z, valid, wl = random_dwells(9, n_ant=4)
        idx = np.array([0, 1, 3])  # ragged surviving subarray
        covs = spatial_covariance_stack(
            z[:, :, idx], valid[:, :, idx], use_forward_backward=False
        )
        batch = music_pseudospectrum_batch(covs, SPACING, wl, element_indices=idx)
        for w, result in enumerate(batch):
            scalar = music_pseudospectrum(
                covs[w], SPACING, wl[w], element_indices=idx
            )
            np.testing.assert_allclose(result.spectrum, scalar.spectrum, rtol=RTOL)

    def test_empty_stack(self):
        assert music_pseudospectrum_batch(np.zeros((0, 4, 4)), SPACING, 0.328) == []

    def test_rejects_non_stack(self):
        with pytest.raises(ValueError):
            music_pseudospectrum_batch(np.zeros((4, 4)), SPACING, 0.328)
        with pytest.raises(ValueError):
            music_pseudospectrum_batch(np.zeros((2, 3, 4)), SPACING, 0.328)


class TestPeriodogramBatch:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_scalar(self, seed):
        z, valid, _ = random_dwells(seed)
        batch = spatial_periodogram_batch(z, valid)
        for w in range(z.shape[0]):
            np.testing.assert_allclose(
                batch[w], spatial_periodogram(z[w], valid[w]), rtol=RTOL
            )

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_scalar_dead_ports(self, seed):
        z, valid, _ = random_dwells(seed, n_ant=4)
        live = np.array([True, True, False, True])
        valid[:, :, ~live] = False
        batch = spatial_periodogram_batch(z, valid, liveness=live)
        for w in range(z.shape[0]):
            np.testing.assert_allclose(
                batch[w], spatial_periodogram(z[w], valid[w], liveness=live),
                rtol=RTOL,
            )

    def test_matches_scalar_without_mask(self):
        z, _, _ = random_dwells(2)
        batch = spatial_periodogram_batch(z)
        for w in range(z.shape[0]):
            np.testing.assert_allclose(batch[w], spatial_periodogram(z[w]), rtol=RTOL)

    def test_empty_stack(self):
        assert spatial_periodogram_batch(np.zeros((0, 4, 4), complex)).shape == (0, 4)

    def test_rejects_fully_unobserved_window(self):
        z = np.ones((2, 3, 4), dtype=complex)
        valid = np.ones((2, 3, 4), dtype=bool)
        valid[0] = False
        with pytest.raises(ValueError):
            spatial_periodogram_batch(z, valid)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            spatial_periodogram_batch(np.zeros((4, 4), complex))
        with pytest.raises(ValueError):
            spatial_periodogram_batch(
                np.zeros((2, 3, 4), complex), np.ones((2, 3, 3), bool)
            )


class TestSteeringCache:
    def setup_method(self):
        clear_steering_cache()

    def teardown_method(self):
        clear_steering_cache()

    def test_hit_matches_uncached(self):
        grid = np.arange(0.5, 180.5, 1.0)
        a = cached_steering_matrix(grid, 4, SPACING, 0.328)
        np.testing.assert_array_equal(a, steering_matrix(grid, 4, SPACING, 0.328))

    def test_hit_returns_same_readonly_object(self):
        grid = np.arange(0.5, 180.5, 1.0)
        a = cached_steering_matrix(grid, 4, SPACING, 0.328)
        b = cached_steering_matrix(grid, 4, SPACING, 0.328)
        assert a is b
        assert not a.flags.writeable
        assert steering_cache_info()["size"] == 1

    def test_element_indices_are_part_of_the_key(self):
        grid = np.arange(0.5, 180.5, 1.0)
        full = cached_steering_matrix(grid, 3, SPACING, 0.328)
        sparse = cached_steering_matrix(
            grid, 3, SPACING, 0.328, element_indices=np.array([0, 1, 3])
        )
        assert steering_cache_info()["size"] == 2
        assert not np.allclose(full, sparse)

    def test_bounded_under_randomized_grids(self):
        """The CI guard: adversarial inputs cannot grow the cache."""
        rng = np.random.default_rng(0)
        for _ in range(STEERING_CACHE_MAXSIZE + 64):
            grid = np.sort(rng.uniform(0.0, 180.0, size=rng.integers(8, 32)))
            cached_steering_matrix(grid, 4, SPACING, rng.uniform(0.31, 0.34))
            info = steering_cache_info()
            assert info["size"] <= info["maxsize"]
        assert steering_cache_info()["size"] == STEERING_CACHE_MAXSIZE

    def test_lru_keeps_hot_entries(self):
        base = np.arange(0.5, 180.5, 1.0)
        hot = cached_steering_matrix(base, 4, SPACING, 0.328)
        for i in range(STEERING_CACHE_MAXSIZE):
            cached_steering_matrix(base, 4, SPACING, 0.31 + i * 1e-4)
            cached_steering_matrix(base, 4, SPACING, 0.328)  # keep it hot
        assert steering_cache_info()["size"] == STEERING_CACHE_MAXSIZE
        # The hot entry survived a full capacity's worth of insertions
        # (identity proves it was never evicted and rebuilt).
        assert cached_steering_matrix(base, 4, SPACING, 0.328) is hot
