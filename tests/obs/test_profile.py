"""The profiling harness writes a complete, well-formed benchmark artifact."""

from __future__ import annotations

import json

from repro.obs import profile


def test_quick_profile_writes_required_stages(tmp_path):
    out = tmp_path / "BENCH_obs_realtime.json"
    rc = profile.main(
        ["--quick", "--seed", "3", "--repeat", "1", "--out", str(out)]
    )
    assert rc == 0
    doc = json.loads(out.read_text())

    assert doc["schema"] == "repro.obs.bench.v1"
    assert doc["quick"] is True
    assert doc["required_stages"] == list(profile.REQUIRED_STAGES)
    for stage in profile.REQUIRED_STAGES:
        st = doc["stages"][stage]
        assert st["count"] >= 1
        assert 0.0 <= st["p50_ms"] <= st["p95_ms"] <= st["p99_ms"]

    rt = doc["realtime"]
    assert rt["window_s"] == 4.0
    assert rt["margin_x"] > 1.0, "window processing slower than real time"
    assert rt["window_p95_ms"] == doc["stages"]["streaming.window"]["p95_ms"]

    # The metrics export rides along so counters land in the artifact too.
    metric_names = {m["name"] for m in doc["metrics"]["metrics"]}
    assert "streaming.windows_total" in metric_names


def test_profile_leaves_instrumentation_disabled(tmp_path):
    from repro import obs

    out = tmp_path / "bench.json"
    profile.main(["--quick", "--seed", "5", "--repeat", "1", "--out", str(out)])
    assert not obs.is_enabled()
