"""Long Short-Term Memory layer with full backpropagation through time.

The paper stacks two LSTM layers of 32 memory cells on top of the CNN
encoder (Section IV-B.2); the gating follows Hochreiter & Schmidhuber
with the usual forget-gate bias of 1 so memories persist early in
training.
"""

from __future__ import annotations

import numpy as np

from repro.nn.init import glorot_uniform, orthogonal
from repro.nn.module import Module, Parameter


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


class LSTM(Module):
    """Sequence-to-sequence LSTM: ``(B, T, D) -> (B, T, H)``.

    Gate order in the packed weight matrices is (input, forget, cell,
    output).
    """

    def __init__(
        self, in_dim: int, hidden: int, rng: np.random.Generator, name: str = "lstm"
    ) -> None:
        self.in_dim = in_dim
        self.hidden = hidden
        self.w_x = Parameter(
            glorot_uniform((in_dim, 4 * hidden), rng), name=f"{name}.Wx"
        )
        w_h = np.concatenate(
            [orthogonal((hidden, hidden), rng) for _ in range(4)], axis=1
        )
        self.w_h = Parameter(w_h, name=f"{name}.Wh")
        bias = np.zeros(4 * hidden)
        bias[hidden : 2 * hidden] = 1.0  # forget-gate bias
        self.bias = Parameter(bias, name=f"{name}.b")
        self._cache: list[dict[str, np.ndarray]] | None = None
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Forward pass (caches what :meth:`backward` needs)."""
        if x.ndim != 3 or x.shape[2] != self.in_dim:
            raise ValueError(f"expected (B, T, {self.in_dim}), got {x.shape}")
        batch, steps, _dim = x.shape
        hid = self.hidden
        h = np.zeros((batch, hid))
        c = np.zeros((batch, hid))
        outputs = np.empty((batch, steps, hid))
        cache: list[dict[str, np.ndarray]] = []
        for t in range(steps):
            x_t = x[:, t, :]
            a = x_t @ self.w_x.value + h @ self.w_h.value + self.bias.value
            i = _sigmoid(a[:, :hid])
            f = _sigmoid(a[:, hid : 2 * hid])
            g = np.tanh(a[:, 2 * hid : 3 * hid])
            o = _sigmoid(a[:, 3 * hid :])
            c_new = f * c + i * g
            tanh_c = np.tanh(c_new)
            h_new = o * tanh_c
            cache.append(
                {
                    "x": x_t,
                    "h_prev": h,
                    "c_prev": c,
                    "i": i,
                    "f": f,
                    "g": g,
                    "o": o,
                    "tanh_c": tanh_c,
                }
            )
            h, c = h_new, c_new
            outputs[:, t, :] = h
        self._cache = cache
        self._x_shape = x.shape
        return outputs

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backprop through the cached forward pass; returns the input gradient."""
        if self._cache is None or self._x_shape is None:
            raise RuntimeError("backward before forward")
        batch, steps, _dim = self._x_shape
        hid = self.hidden
        dx = np.zeros(self._x_shape)
        dh_next = np.zeros((batch, hid))
        dc_next = np.zeros((batch, hid))
        for t in reversed(range(steps)):
            step = self._cache[t]
            dh = grad[:, t, :] + dh_next
            do = dh * step["tanh_c"]
            dc = dh * step["o"] * (1.0 - step["tanh_c"] ** 2) + dc_next
            di = dc * step["g"]
            df = dc * step["c_prev"]
            dg = dc * step["i"]
            dc_next = dc * step["f"]
            da = np.concatenate(
                [
                    di * step["i"] * (1.0 - step["i"]),
                    df * step["f"] * (1.0 - step["f"]),
                    dg * (1.0 - step["g"] ** 2),
                    do * step["o"] * (1.0 - step["o"]),
                ],
                axis=1,
            )
            self.w_x.grad += step["x"].T @ da
            self.w_h.grad += step["h_prev"].T @ da
            self.bias.grad += da.sum(axis=0)
            dx[:, t, :] = da @ self.w_x.value.T
            dh_next = da @ self.w_h.value.T
        return dx


class LastStep(Module):
    """Select the final timestep: ``(B, T, H) -> (B, H)``."""

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Forward pass (caches what :meth:`backward` needs)."""
        self._shape = x.shape
        return x[:, -1, :]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backprop through the cached forward pass; returns the input gradient."""
        if self._shape is None:
            raise RuntimeError("backward before forward")
        dx = np.zeros(self._shape)
        dx[:, -1, :] = grad
        return dx
