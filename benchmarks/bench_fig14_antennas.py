"""Fig. 14: 2 -> 4 reader antennas.  More elements resolve more
multipath angles, so accuracy rises with the array size."""

from repro.eval import run_fig14


def test_fig14_antennas(run_experiment):
    result = run_experiment(run_fig14)
    measured = result.measured_by_name()
    # Shape check: 4 antennas beat (or at worst match) 2 —
    # a small tolerance absorbs the trimmed training budget.
    assert measured["4 antennas"] >= measured["2 antennas"] - 0.05
