"""LSTM: exact BPTT gradients, state semantics, learnability."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    LSTM,
    Adam,
    Dense,
    LastStep,
    Sequential,
    check_module_gradients,
    softmax_cross_entropy,
)

RNG = np.random.default_rng(5)


class TestLSTM:
    def test_output_shape(self):
        lstm = LSTM(4, 6, RNG)
        out = lstm(RNG.normal(size=(3, 7, 4)))
        assert out.shape == (3, 7, 6)

    def test_wrong_input_dim_rejected(self):
        lstm = LSTM(4, 6, RNG)
        with pytest.raises(ValueError):
            lstm(RNG.normal(size=(3, 7, 5)))

    def test_gradients_exact(self):
        lstm = LSTM(3, 4, RNG)
        errors = check_module_gradients(lstm, RNG.normal(size=(2, 5, 3)), RNG)
        assert max(errors.values()) < 1e-6

    def test_forget_gate_bias_initialised_to_one(self):
        lstm = LSTM(3, 4, RNG)
        hid = 4
        np.testing.assert_allclose(lstm.bias.value[hid : 2 * hid], 1.0)
        np.testing.assert_allclose(lstm.bias.value[:hid], 0.0)

    def test_output_bounded_by_tanh(self):
        lstm = LSTM(3, 4, RNG)
        out = lstm(RNG.normal(size=(2, 50, 3)) * 10)
        assert np.abs(out).max() <= 1.0

    def test_state_carries_information(self):
        """The output at step t must depend on inputs before t."""
        lstm = LSTM(2, 8, np.random.default_rng(0))
        x = RNG.normal(size=(1, 6, 2))
        base = lstm(x)[0, -1]
        x2 = x.copy()
        x2[0, 0] += 5.0  # change only the FIRST step
        changed = lstm(x2)[0, -1]
        assert not np.allclose(base, changed)

    def test_no_lookahead(self):
        """The output at step t must NOT depend on inputs after t."""
        lstm = LSTM(2, 8, np.random.default_rng(0))
        x = RNG.normal(size=(1, 6, 2))
        base = lstm(x)[0, 2].copy()
        x2 = x.copy()
        x2[0, 4] += 5.0  # change only a LATER step
        changed = lstm(x2)[0, 2]
        np.testing.assert_allclose(base, changed)


class TestLastStep:
    def test_selects_final(self):
        layer = LastStep()
        x = RNG.normal(size=(2, 5, 3))
        np.testing.assert_allclose(layer(x), x[:, -1, :])

    def test_gradient_routing(self):
        layer = LastStep()
        x = RNG.normal(size=(2, 5, 3))
        layer(x)
        grad = layer.backward(np.ones((2, 3)))
        assert grad[:, :-1].sum() == 0.0
        np.testing.assert_allclose(grad[:, -1, :], 1.0)


class TestLearnability:
    def test_learns_temporal_order(self):
        """Distinguish rising from falling ramps — impossible without
        temporal state given per-step-identical marginals."""
        rng = np.random.default_rng(0)
        steps = 8
        n = 120
        x = np.zeros((n, steps, 1))
        y = np.zeros(n, dtype=int)
        for i in range(n):
            ramp = np.linspace(-1, 1, steps)
            if i % 2:
                ramp = ramp[::-1]
                y[i] = 1
            x[i, :, 0] = ramp + rng.normal(0, 0.05, steps)
        net = Sequential(LSTM(1, 8, rng), LastStep(), Dense(8, 2, rng))
        optimizer = Adam(net.parameters(), lr=0.02)
        for _ in range(60):
            logits = net(x, training=True)
            _loss, grad = softmax_cross_entropy(logits, y)
            net.zero_grad()
            net.backward(grad)
            optimizer.step()
        accuracy = float((net(x).argmax(axis=1) == y).mean())
        assert accuracy > 0.95
