"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the steady-state face of observability: where the span
tree answers "what happened to *this* window", the registry answers
"what has the process been doing" — total windows decided, abstains by
reason, latency distributions per stage — in a form that exports
losslessly to JSON and to the Prometheus text exposition format.

Naming convention (see DESIGN.md §9): dotted lowercase names,
``_total`` suffix for counters (``streaming.abstain_total``), ``_ms``
suffix for latency histograms (``dsp.music.latency_ms``).  Labels are
plain keyword arguments: ``counter("streaming.abstain_total",
reason="dead_ports")``.  The Prometheus export maps dots to
underscores, the JSON export keeps names verbatim.

Every metric carries its own lock, so concurrent readers/DSP threads
can update shared counters safely; the registry lock covers only
metric creation.
"""

from __future__ import annotations

import json
import re
import threading

from repro.obs import tracing

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRIC",
    "NullMetric",
    "counter",
    "gauge",
    "get_registry",
    "histogram",
    "reset_registry",
]

DEFAULT_LATENCY_BUCKETS_MS = (
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1000.0,
    2500.0,
    5000.0,
    10000.0,
)
"""Default histogram edges (milliseconds) covering µs DSP kernels up
to multi-second training epochs."""

_NAME_PATTERN = re.compile(r"[a-z][a-z0-9_.]*")


def _check_name(name: str) -> str:
    """Validate a metric/label name against the naming convention."""
    if not _NAME_PATTERN.fullmatch(name):
        raise ValueError(
            f"metric name {name!r} must match {_NAME_PATTERN.pattern}"
        )
    return name


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]) -> None:
        """Create a zeroed counter; use the registry, not this directly."""
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current count."""
        with self._lock:
            return self._value

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "name": self.name,
            "kind": self.kind,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Gauge:
    """A value that can go up and down (queue depth, liveness)."""

    kind = "gauge"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]) -> None:
        """Create a zeroed gauge; use the registry, not this directly."""
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        """Current value."""
        with self._lock:
            return self._value

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "name": self.name,
            "kind": self.kind,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Histogram:
    """Fixed-bucket histogram with Prometheus ``le`` semantics.

    An observation lands in the first bucket whose upper edge is
    **greater than or equal to** the value (``v <= le``); values above
    the last edge land in the implicit ``+Inf`` bucket.  Bucket edges
    are fixed at creation, so merging across processes or scrape
    intervals is exact.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...],
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS,
    ) -> None:
        """Create an empty histogram; use the registry, not this directly."""
        edges = tuple(float(b) for b in buckets)
        if not edges or any(b <= a for b, a in zip(edges[1:], edges[:-1])):
            raise ValueError("buckets must be a non-empty increasing sequence")
        self.name = name
        self.labels = labels
        self.buckets = edges
        self._lock = threading.Lock()
        self._counts = [0] * (len(edges) + 1)  # last = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        idx = len(self.buckets)
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                idx = i
                break
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        """Total number of observations."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(le, count)`` pairs ending with ``(inf, count)``."""
        with self._lock:
            counts = list(self._counts)
        cumulative: list[tuple[float, int]] = []
        running = 0
        for edge, c in zip(self.buckets, counts):
            running += c
            cumulative.append((edge, running))
        cumulative.append((float("inf"), running + counts[-1]))
        return cumulative

    def as_dict(self) -> dict:
        """JSON-ready representation (per-bucket, non-cumulative)."""
        with self._lock:
            counts = list(self._counts)
            total, sum_ = self._count, self._sum
        return {
            "name": self.name,
            "kind": self.kind,
            "labels": dict(self.labels),
            "buckets": [
                {"le": edge, "count": c} for edge, c in zip(self.buckets, counts)
            ]
            + [{"le": "+Inf", "count": counts[-1]}],
            "sum": sum_,
            "count": total,
        }


class NullMetric:
    """Shared do-nothing metric for the disabled fast path."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        """No-op."""
        return None

    def dec(self, amount: float = 1.0) -> None:
        """No-op."""
        return None

    def set(self, value: float) -> None:
        """No-op."""
        return None

    def observe(self, value: float) -> None:
        """No-op."""
        return None


NULL_METRIC = NullMetric()
"""The singleton handed out by the :mod:`repro.obs` facade while
instrumentation is disabled."""

_Key = tuple[str, str, tuple[tuple[str, str], ...]]


class MetricsRegistry:
    """Lazily-creating, thread-safe home for every metric.

    The same ``(name, labels)`` always returns the same instance;
    asking for an existing name with a different metric kind raises,
    so a counter cannot silently shadow a histogram.
    """

    def __init__(self) -> None:
        """Create an empty registry."""
        self._lock = threading.Lock()
        self._metrics: dict[_Key, Counter | Gauge | Histogram] = {}

    def _get(
        self, kind: str, name: str, labels: dict[str, str], factory
    ) -> Counter | Gauge | Histogram:
        """Fetch or create the metric for ``(kind, name, labels)``."""
        _check_name(name)
        for key in labels:
            _check_name(key)
        label_items = tuple(sorted((k, str(v)) for k, v in labels.items()))
        key = (kind, name, label_items)
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                for other_kind, other_name, _ in self._metrics:
                    if other_name == name and other_kind != kind:
                        raise ValueError(
                            f"metric {name!r} already registered as "
                            f"{other_kind}, cannot re-register as {kind}"
                        )
                metric = factory(name, label_items)
                self._metrics[key] = metric
            return metric

    def counter(self, name: str, **labels: str) -> Counter:
        """The counter for ``(name, labels)``, created on first use."""
        return self._get(Counter.kind, name, labels, Counter)

    def gauge(self, name: str, **labels: str) -> Gauge:
        """The gauge for ``(name, labels)``, created on first use."""
        return self._get(Gauge.kind, name, labels, Gauge)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS,
        **labels: str,
    ) -> Histogram:
        """The histogram for ``(name, labels)``, created on first use.

        ``buckets`` only matters on first creation; later calls reuse
        the existing edges.
        """
        return self._get(
            Histogram.kind,
            name,
            labels,
            lambda n, items: Histogram(n, items, buckets=buckets),
        )

    def collect(self) -> list[Counter | Gauge | Histogram]:
        """Every registered metric, deterministically ordered."""
        with self._lock:
            return [self._metrics[k] for k in sorted(self._metrics)]

    def reset(self) -> None:
        """Drop every registered metric."""
        with self._lock:
            self._metrics.clear()

    def to_json(self, indent: int | None = None) -> str:
        """Serialise every metric as a JSON document."""
        return json.dumps(
            {"metrics": [m.as_dict() for m in self.collect()]}, indent=indent
        )

    def to_prometheus(self) -> str:
        """Serialise in the Prometheus text exposition format (0.0.4).

        Dots in names become underscores; histograms are exported as
        cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``.
        Label values are escaped per the spec, and two registry names
        that collide after dot-to-underscore mapping (``a.b`` vs
        ``a_b``) raise :class:`ValueError` rather than emitting a
        series under the wrong ``# TYPE``.
        """
        lines: list[str] = []
        seen: dict[str, str] = {}  # prom name -> registry name
        for metric in self.collect():
            prom = metric.name.replace(".", "_")
            prior = seen.get(prom)
            if prior is None:
                seen[prom] = metric.name
                lines.append(f"# TYPE {prom} {metric.kind}")
            elif prior != metric.name:
                # 'a.b' and 'a_b' both map to 'a_b'; exporting the
                # second under the first one's # TYPE line would
                # mislabel the series, so fail loudly instead.
                raise ValueError(
                    f"prometheus name {prom!r} collides: registry "
                    f"names {prior!r} and {metric.name!r} both map "
                    "to it after dot-to-underscore conversion"
                )
            label_str = _prom_labels(metric.labels)
            if isinstance(metric, Histogram):
                for le, count in metric.bucket_counts():
                    le_str = "+Inf" if le == float("inf") else _prom_number(le)
                    bucket_labels = _prom_labels(
                        metric.labels + (("le", le_str),)
                    )
                    lines.append(f"{prom}_bucket{bucket_labels} {count}")
                lines.append(f"{prom}_sum{label_str} {_prom_number(metric.sum)}")
                lines.append(f"{prom}_count{label_str} {metric.count}")
            else:
                lines.append(f"{prom}{label_str} {_prom_number(metric.value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _prom_escape(value: str) -> str:
    """Escape a label value per the text exposition format spec."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _prom_labels(items: tuple[tuple[str, str], ...]) -> str:
    """Render a label set as ``{k="v",...}`` (empty string when bare)."""
    if not items:
        return ""
    body = ",".join(f'{k}="{_prom_escape(v)}"' for k, v in items)
    return "{" + body + "}"


def _prom_number(value: float) -> str:
    """Render a number the way Prometheus clients expect (no 1e+03)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global default registry."""
    return _registry


def reset_registry() -> None:
    """Clear the default registry (tests and fresh profiling runs)."""
    _registry.reset()


def counter(name: str, **labels: str) -> Counter | NullMetric:
    """Default-registry counter, or the shared no-op when disabled.

    This is the call-site facade: instrumented library code calls
    ``counter("streaming.abstain_total", reason=...).inc()`` and pays
    only a flag check while observability is off.
    """
    if not tracing.is_enabled():
        return NULL_METRIC
    return _registry.counter(name, **labels)


def gauge(name: str, **labels: str) -> Gauge | NullMetric:
    """Default-registry gauge, or the shared no-op when disabled."""
    if not tracing.is_enabled():
        return NULL_METRIC
    return _registry.gauge(name, **labels)


def histogram(
    name: str,
    buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS,
    **labels: str,
) -> Histogram | NullMetric:
    """Default-registry histogram, or the shared no-op when disabled."""
    if not tracing.is_enabled():
        return NULL_METRIC
    return _registry.histogram(name, buckets, **labels)
