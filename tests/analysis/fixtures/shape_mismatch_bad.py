"""RPR015 true-positive fixture: a seeded producer/consumer mismatch.

``make_spectrum`` documents ``(F, n_tags, 180)`` but ``pool_spectrum``
demands ``(F, n_tags, 360)`` — a literal-dim conflict the contract
checker must catch both through an assignment and through direct
nesting.
"""

import numpy as np


def make_spectrum(frames, tags):
    """Produce a pseudospectrum stack.

    Returns:
        Stacked spectra, shape: ``(F, n_tags, 180)``.
    """
    return np.zeros((frames, tags, 180))


def pool_spectrum(spectrum):
    """Pool over an (incompatibly) finer angle grid.

    Args:
        spectrum: stacked spectra, shape: ``(F, n_tags, 360)``.

    Returns:
        Pooled spectra, shape: ``(F, n_tags)``.
    """
    return spectrum.max(axis=-1)


def pipeline(frames, tags):
    """Both flow styles must be caught (lines 36 and 37)."""
    s = make_spectrum(frames, tags)
    a = pool_spectrum(s)
    b = pool_spectrum(make_spectrum(frames, tags))
    return a + b
