"""Phase calibration across frequency-hopping channels (Section III-A).

Hopping scrambles phases: every channel adds its own offset from the
reader oscillator, the RF chain, and the tag antenna's frequency
response.  The paper's fix (Eq. 1) collects ~10 s of reads from the tag
while stationary, takes the per-channel median phase, and maps every
runtime read onto a common reference channel:

    phi(t) = phi_j(t) - median(phi_j) + median(phi_r)

Our implementation works in the *doubled-phase* domain (see
:func:`repro.dsp.angles.fold_double`) so the R420's pi ambiguity drops
out before medians are taken, and keeps one table entry per
(tag, antenna port, channel) since real ports have distinct cable
offsets.  Channels never visited during calibration are covered by a
linear phase-vs-frequency fit — exactly the linearity the paper
demonstrates in Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dsp.angles import circular_median, fold_double, wrap_2pi
from repro.hardware.llrp import ReadLog
from repro.obs.tracing import span

_MIN_CHANNELS_FOR_FIT = 4


@dataclass
class _AntennaCalibration:
    """Per-(tag, antenna) calibration state."""

    offsets: np.ndarray  # (n_channels,) doubled-phase offset or nan
    fit_intercept: float
    fit_slope_per_mhz: float
    has_fit: bool
    _resolved: np.ndarray | None = field(default=None, compare=False, repr=False)

    def offset_for(self, channel: int, frequencies_hz: np.ndarray) -> float:
        """Offset for a channel never observed during calibration.

        Fallback chain: the linear phase-vs-frequency fit when enough
        channels were observed, else the nearest *observed* channel by
        frequency (the best local estimate a sparse bootstrap allows —
        e.g. a reference channel blanked by a fade), else zero.
        """
        value = self.offsets[channel]
        if not np.isnan(value):
            return float(value)
        if self.has_fit:
            f_mhz = frequencies_hz[channel] / 1e6
            return float(self.fit_intercept + self.fit_slope_per_mhz * f_mhz)
        observed = np.flatnonzero(~np.isnan(self.offsets))
        if observed.size == 0:
            return 0.0
        nearest = observed[
            np.argmin(np.abs(frequencies_hz[observed] - frequencies_hz[channel]))
        ]
        return float(self.offsets[nearest])

    def resolved_offsets(self, frequencies_hz: np.ndarray) -> np.ndarray:
        """Every channel's offset with the fallback chain applied.

        The table is immutable after :func:`_fit_antenna`, so the
        per-channel :meth:`offset_for` resolution is computed once and
        cached — :meth:`PhaseCalibrator.calibrate` sits on the
        per-window serving hot path and must not re-run the Python
        fallback chain for every read.
        """
        if self._resolved is None:
            self._resolved = np.array(
                [
                    self.offset_for(c, frequencies_hz)
                    for c in range(frequencies_hz.size)
                ]
            )
        return self._resolved


@dataclass
class PhaseCalibrator:
    """Fitted per-(tag, antenna, channel) phase offset table.

    Build with :meth:`fit` on a stationary-scene calibration log, then
    map runtime logs with :meth:`calibrate`.

    Attributes:
        frequencies_hz: the reader's channel table.
        reference_channel: channel everything is mapped onto.
    """

    frequencies_hz: np.ndarray
    reference_channel: int
    _tables: dict[tuple[int, int], _AntennaCalibration] = field(default_factory=dict)
    _dense: np.ndarray | None = field(default=None, compare=False, repr=False)

    @classmethod
    def fit(cls, calibration_log: ReadLog) -> "PhaseCalibrator":
        """Learn offsets from a stationary-tag inventory.

        Args:
            calibration_log: reads taken while every tag holds still
                (the paper's ~10 s bootstrap).

        Returns:
            A fitted calibrator covering every tag in the log.

        Raises:
            ValueError: when the log is empty.
        """
        if calibration_log.n_reads == 0:
            raise ValueError("calibration log is empty")
        meta = calibration_log.meta
        with span(
            "dsp.calibration.fit",
            reads=calibration_log.n_reads,
            tags=calibration_log.n_tags,
        ):
            freqs = np.asarray(meta.frequencies_hz, dtype=np.float64)
            calibrator = cls(
                frequencies_hz=freqs, reference_channel=meta.reference_channel
            )
            psi = fold_double(calibration_log.phase_rad)
            n_channels = freqs.size
            for tag in range(calibration_log.n_tags):
                tag_mask = calibration_log.tag_index == tag
                for ant in range(meta.n_antennas):
                    mask = tag_mask & (calibration_log.antenna == ant)
                    offsets = np.full(n_channels, np.nan)
                    for ch in np.unique(calibration_log.channel[mask]):
                        ch_mask = mask & (calibration_log.channel == ch)
                        offsets[ch] = circular_median(psi[ch_mask])
                    calibrator._tables[(tag, ant)] = _fit_antenna(offsets, freqs)
        return calibrator

    def calibrate(self, log: ReadLog) -> np.ndarray:
        """Calibrated doubled phases for every read in ``log``.

        Implements Eq. 1 in the doubled domain:
        ``psi_cal = psi - offset[channel] + offset[reference]``.

        Args:
            log: runtime read log from the same reader session.

        A (tag, antenna) pair that produced no calibration reads at all
        (e.g. the tag was occluded for the whole bootstrap) is passed
        through uncalibrated — the graceful degradation a streaming
        deployment needs.

        Returns:
            ``(R,)`` calibrated doubled phases in ``[0, 2*pi)``.
        """
        with span("dsp.calibration.calibrate", reads=log.n_reads):
            psi = fold_double(log.phase_rad)
            dense = self._dense_offsets()
            n_tag_rows, n_ant_rows, _n_ch = dense.shape
            # Out-of-table tags/ports clip onto the all-NaN guard row.
            tags = np.minimum(log.tag_index, n_tag_rows - 1)
            ants = np.minimum(log.antenna, n_ant_rows - 1)
            per_read = dense[tags, ants, log.channel]
            ref = dense[tags, ants, self.reference_channel]
            calibrated = wrap_2pi(psi - per_read + ref)
            # A (tag, antenna) pair with no calibration table passes
            # through uncalibrated.
            out = np.where(np.isnan(per_read), psi, calibrated)
        return out

    def _dense_offsets(self) -> np.ndarray:
        """Resolved offsets as one ``(tags+1, antennas+1, channels)`` array.

        Rows beyond the fitted table (and pairs that produced no
        calibration reads) are NaN — :meth:`calibrate` maps those reads
        straight through.  Built lazily once: the table is immutable
        after :meth:`fit`, and per-read gathers from a dense array are
        what keep ``calibrate`` off the serving hot path's profile.
        """
        if self._dense is None:
            n_ch = self.frequencies_hz.size
            max_tag = max((k[0] for k in self._tables), default=-1)
            max_ant = max((k[1] for k in self._tables), default=-1)
            dense = np.full((max_tag + 2, max_ant + 2, n_ch), np.nan)
            for (tag, ant), table in self._tables.items():
                dense[tag, ant] = table.resolved_offsets(self.frequencies_hz)
            self._dense = dense
        return self._dense

    def coverage(self, tag: int, antenna: int) -> float:
        """Fraction of channels directly observed during calibration."""
        table = self._tables[(tag, antenna)]
        return float(np.mean(~np.isnan(table.offsets)))

    def interpolated_channels(self, tag: int, antenna: int) -> np.ndarray:
        """Channels covered only by interpolation for one (tag, port).

        These are the channels with no direct bootstrap observation;
        :meth:`calibrate` serves them through the linear fit or the
        nearest observed channel.  An empty array means full coverage.
        """
        table = self._tables[(tag, antenna)]
        return np.flatnonzero(np.isnan(table.offsets))

    def interpolation_report(self) -> dict[tuple[int, int], np.ndarray]:
        """Interpolated channels for every calibrated (tag, port) pair.

        The degradation report a deployment wants in its logs: which
        parts of the calibration table are guesses rather than
        measurements (and, via
        ``log.meta.reference_channel in report[key]``, whether the
        reference channel itself had to be interpolated).
        """
        return {
            key: self.interpolated_channels(*key) for key in sorted(self._tables)
        }


def uncalibrated(log: ReadLog) -> np.ndarray:
    """The Fig. 10 "no calibration" baseline: raw reported phases.

    The paper's ablation feeds the reader API's phase output straight
    into the pipeline ("directly using the measured phase by Impinj
    R420 reader API is not accurate enough").  Raw means *everything*
    stays in: the per-channel hopping offsets **and** the per-read pi
    ambiguity — it is the calibration stage (working in the folded,
    doubled domain) that neutralises both.  Downstream processing still
    interprets these values in its doubled-phase convention, exactly
    what "skip the preprocessing" does to a pipeline built for
    calibrated inputs.
    """
    return wrap_2pi(np.asarray(log.phase_rad, dtype=np.float64))


def _fit_antenna(offsets: np.ndarray, freqs: np.ndarray) -> _AntennaCalibration:
    """Fit the linear phase-vs-frequency model over observed channels."""
    observed = np.flatnonzero(~np.isnan(offsets))
    if observed.size < _MIN_CHANNELS_FOR_FIT:
        return _AntennaCalibration(offsets, 0.0, 0.0, has_fit=False)
    f_mhz = freqs[observed] / 1e6
    order = np.argsort(f_mhz)
    f_sorted = f_mhz[order]
    psi_sorted = np.unwrap(offsets[observed][order])
    slope, intercept = np.polyfit(f_sorted, psi_sorted, 1)
    return _AntennaCalibration(
        offsets=offsets,
        fit_intercept=float(intercept),
        fit_slope_per_mhz=float(slope),
        has_fit=True,
    )
