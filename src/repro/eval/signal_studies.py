"""Signal-level studies: Fig. 2 (AoA spectra) and Fig. 3 (hopping offsets).

These experiments exercise the substrate without any learning:

* Fig. 2 shows how the pseudospectrum of a stationary tag is stable,
  how a moving person reshapes it (blocks one peak, shifts another),
  and how more tags mean more observable paths.
* Fig. 3 shows that the per-channel phase offset of a stationary tag
  is linear in the carrier frequency — the property the calibrator's
  extrapolation relies on.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.angles import circular_median, fold_double
from repro.dsp.calibration import PhaseCalibrator
from repro.dsp.correlation import spatial_covariance
from repro.dsp.music import music_pseudospectrum
from repro.dsp.snapshots import build_snapshots
from repro.eval.reporting import ExperimentResult, ExperimentRow
from repro.geometry.room import make_laboratory
from repro.geometry.vec import Vec2
from repro.hardware.antenna import UniformLinearArray
from repro.hardware.reader import Reader, ReaderConfig
from repro.hardware.scene import Scene, TagTrack, stationary_scene
from repro.hardware.tag import make_tag
from repro.channel.model import BodyTrack


def _spectra_for_tag(reader: Reader, scene: Scene, duration_s: float, tag: int = 0):
    """Calibrate against the scene frozen at t=0, then frame spectra."""
    cal_scene = _freeze(scene, int(round(20.0 / reader.config.slot_s)))
    cal_log = reader.inventory(cal_scene, 20.0)
    calibrator = PhaseCalibrator.fit(cal_log)
    log = reader.inventory(scene, duration_s)
    psi = calibrator.calibrate(log)
    snaps = build_snapshots(log, psi, tag)
    spectra = []
    for f in range(snaps.n_frames):
        if not snaps.frame_valid(f):
            continue
        cov = spatial_covariance(snaps.z[f], snaps.valid[f])
        result = music_pseudospectrum(
            cov,
            spacing_m=log.meta.spacing_m,
            wavelength_m=float(snaps.wavelength_m[f]),
        )
        spectra.append(result)
    return spectra


def _freeze(scene: Scene, n_slots: int) -> Scene:
    tracks = []
    for track in scene.tag_tracks:
        pos = track.positions
        start = pos[0] if pos.ndim == 2 else pos
        tracks.append(TagTrack(tag=track.tag, positions=np.asarray(start), carrier=track.carrier))
    bodies = tuple(
        BodyTrack(positions=np.tile(b.positions[0], (n_slots, 1)), radius=b.radius)
        for b in scene.bodies
    )
    return Scene(tag_tracks=tuple(tracks), bodies=bodies)


def run_fig02(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Fig. 2: pseudospectrum behaviour from one tag to a crowded room."""
    del quick  # signal-level study; always fast
    room = make_laboratory()
    array = UniformLinearArray(center=Vec2(room.bounds.width / 2.0, 0.3))
    rng = np.random.default_rng(seed)
    duration = 4.0
    n_slots = int(round(duration / 0.025))

    # (a) Stationary tag alone: stable multi-peak spectrum.
    reader_a = Reader(ReaderConfig(array=array), room, seed=seed + 1)
    tag_pos = (room.bounds.width / 2.0 + 1.2, 4.0)
    scene_a = stationary_scene([(make_tag("fig2-a", rng), tag_pos)])
    spectra_a = _spectra_for_tag(reader_a, scene_a, duration)
    top_angles = [s.peaks(1)[0][0] for s in spectra_a]
    angle_std = float(np.std(top_angles))
    n_paths_single = float(np.mean([s.n_sources for s in spectra_a]))

    # (b) Same tag with a person walking through the direct path.
    reader_b = Reader(ReaderConfig(array=array), room, seed=seed + 1)
    walker_x = np.linspace(
        room.bounds.width / 2.0 - 1.5, room.bounds.width / 2.0 + 2.5, n_slots
    )
    walker = BodyTrack(
        positions=np.stack([walker_x, np.full(n_slots, 2.0)], axis=1), radius=0.2
    )
    scene_b = Scene(
        tag_tracks=(TagTrack(tag=make_tag("fig2-a", rng), positions=np.asarray(tag_pos)),),
        bodies=(walker,),
    )
    spectra_b = _spectra_for_tag(reader_b, scene_b, duration)
    peak_powers = np.array([s.peaks(1)[0][1] for s in spectra_b])
    power_swing_db = float(
        10.0 * np.log10(peak_powers.max() / max(peak_powers.min(), 1e-12))
    )
    peak_angles_b = np.array([s.peaks(1)[0][0] for s in spectra_b])
    angle_swing = float(peak_angles_b.max() - peak_angles_b.min())

    rows = [
        ExperimentRow("stationary: top-peak angle std (deg)", None, angle_std, unit="deg"),
        ExperimentRow(
            "stationary: mean resolved paths/frame", None, n_paths_single, unit="paths"
        ),
        ExperimentRow(
            "moving blocker: peak power swing (dB)", None, power_swing_db, unit="dB"
        ),
        ExperimentRow(
            "moving blocker: peak angle swing (deg)", None, angle_swing, unit="deg"
        ),
    ]
    return ExperimentResult(
        experiment_id="fig02",
        title="AoA spectra: single object to multiple objects",
        rows=rows,
        notes=(
            "Paper (qualitative): a stationary tag keeps the same peaks; a "
            "moving person attenuates the blocked path and shifts others. "
            "Shape check: blocker-induced swings dwarf the stationary "
            f"stability ({power_swing_db:.1f} dB swing vs {angle_std:.1f} deg "
            "static angle std)."
        ),
    )


def run_fig03(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Fig. 3: phase-vs-frequency linearity of a stationary tag."""
    room = make_laboratory()
    array = UniformLinearArray(center=Vec2(room.bounds.width / 2.0, 0.3))
    rng = np.random.default_rng(seed)
    reader = Reader(ReaderConfig(array=array), room, seed=seed + 5)
    scene = stationary_scene([(make_tag("fig3", rng), (room.bounds.width / 2.0 + 1.0, 4.0))])
    duration = 24.0 if quick else 60.0
    log = reader.inventory(scene, duration)

    psi = fold_double(log.phase_rad)
    antenna = 0
    mask = log.antenna == antenna
    channels = np.unique(log.channel[mask])
    freqs_mhz = log.meta.frequencies_hz[channels] / 1e6
    medians = np.array(
        [
            circular_median(psi[mask & (log.channel == ch)])
            for ch in channels
        ]
    )
    order = np.argsort(freqs_mhz)
    unwrapped = np.unwrap(medians[order])
    slope, intercept = np.polyfit(freqs_mhz[order], unwrapped, 1)
    fitted = slope * freqs_mhz[order] + intercept
    ss_res = float(np.sum((unwrapped - fitted) ** 2))
    ss_tot = float(np.sum((unwrapped - unwrapped.mean()) ** 2))
    r_squared = 1.0 - ss_res / max(ss_tot, 1e-12)

    rows = [
        ExperimentRow("phase-frequency linearity R^2", 1.0, r_squared, unit="R^2"),
        ExperimentRow(
            "fitted slope magnitude (rad/MHz)", None, abs(float(slope)), unit="rad/MHz"
        ),
        ExperimentRow("channels observed", None, float(len(channels)), unit="count"),
    ]
    return ExperimentResult(
        experiment_id="fig03",
        title="Phase jumping caused by frequency hopping",
        rows=rows,
        notes=(
            "Paper: 'the phase and frequency relation follows the linear "
            "model'. R^2 close to 1 confirms the linear structure our "
            "calibrator's extrapolation assumes."
        ),
    )
