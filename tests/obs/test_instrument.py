"""Per-layer nn spans: metric-safe names, crash-proof span exit."""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.obs.instrument import _span_component, nn_layer_spans
from repro.obs.tracing import span


def _forward_dense() -> None:
    from repro.nn.layers import Dense

    rng = np.random.default_rng(0)
    layer = Dense(4, 3, rng)
    layer.forward(rng.normal(size=(2, 4)))


class TestSpanComponent:
    def test_lowercases_class_names(self):
        assert _span_component("Dense") == "dense"
        assert _span_component("ReLU") == "relu"

    def test_sanitizes_non_metric_characters(self):
        assert _span_component("Bi-LSTM") == "bi_lstm"
        assert _span_component("") == "module"


class TestNnLayerSpans:
    def test_enabled_forward_records_span_and_histogram(self):
        # Regression: capitalized class names in span names used to
        # make the auto-histogram registration raise ValueError and
        # crash every wrapped forward/backward call.
        obs.enable()
        with nn_layer_spans():
            _forward_dense()
        names = [s.name for s in obs.walk_spans(obs.get_collector().drain())]
        assert "nn.dense.forward" in names
        metrics = {m.name: m for m in obs.get_registry().collect()}
        hist = metrics["nn.dense.forward.latency_ms"]
        assert hist.kind == "histogram"
        assert hist.count == 1

    def test_disabled_is_noop(self):
        assert not obs.is_enabled()
        with nn_layer_spans():
            _forward_dense()
        assert obs.get_collector().snapshot() == []
        assert obs.get_registry().collect() == []

    def test_unwraps_on_exit(self):
        from repro.nn.layers import Dense

        obs.enable()
        orig = Dense.__dict__["forward"]
        with nn_layer_spans():
            assert Dense.__dict__["forward"] is not orig
        assert Dense.__dict__["forward"] is orig


class TestSpanExitGuard:
    def test_metric_clash_does_not_crash_instrumented_code(self):
        # A counter squatting on the span's auto-histogram name makes
        # the registry raise a kind clash; the span must swallow it
        # and count a dropped observation instead.
        obs.enable()
        obs.get_registry().counter("clashing.stage.latency_ms").inc()
        with span("clashing.stage"):
            pass
        metrics = {m.name: m for m in obs.get_registry().collect()}
        assert metrics["obs.dropped_observations_total"].value == 1.0

    def test_invalid_span_name_does_not_crash(self):
        obs.enable()
        with span("Not A Valid Metric Name"):
            pass
        metrics = {m.name: m for m in obs.get_registry().collect()}
        assert metrics["obs.dropped_observations_total"].value == 1.0
