"""RPR013 lockset discipline and RPR014 blocking-under-lock."""

from __future__ import annotations

from repro.analysis.lint import lint_source


def findings_of(src: str, code: str) -> list[int]:
    findings = lint_source(src, path="mod.py", select=[code])
    assert all(f.code == code for f in findings)
    return [f.line for f in findings]


CLASS_HEADER = (
    "import threading\n"
    "class Cache:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self._store = {}\n"
)


# ---------------------------------------------------------------------------
# RPR013 — lockset.


def test_unlocked_write_to_protected_attr():
    src = CLASS_HEADER + (
        "    def put(self, k, v):\n"
        "        with self._lock:\n"
        "            self._store[k] = v\n"
        "    def evict(self, k):\n"
        "        self._store.pop(k, None)\n"
    )
    assert findings_of(src, "RPR013") == [10]


def test_attr_never_locked_is_not_protected():
    # An attribute no method ever touches under the lock has no
    # declared discipline — flagging it would drown real findings.
    src = CLASS_HEADER + (
        "    def bump(self):\n"
        "        self.hits = 1\n"
    )
    assert findings_of(src, "RPR013") == []


def test_init_writes_exempt():
    src = CLASS_HEADER + (
        "    def put(self, k, v):\n"
        "        with self._lock:\n"
        "            self._store[k] = v\n"
    )
    assert findings_of(src, "RPR013") == []


def test_unlocked_check_then_act():
    src = CLASS_HEADER + (
        "    def put(self, k, v):\n"
        "        with self._lock:\n"
        "            self._store[k] = v\n"
        "    def ensure(self, k):\n"
        "        if k not in self._store:\n"
        "            self._store[k] = 0\n"
    )
    assert findings_of(src, "RPR013") == [10, 11]


def test_locked_check_then_act_ok():
    src = CLASS_HEADER + (
        "    def ensure(self, k):\n"
        "        with self._lock:\n"
        "            if k not in self._store:\n"
        "                self._store[k] = 0\n"
    )
    assert findings_of(src, "RPR013") == []


def test_module_level_globals_tracked():
    src = (
        "import threading\n"
        "_lock = threading.Lock()\n"
        "_registry = {}\n"
        "def add(k, v):\n"
        "    with _lock:\n"
        "        _registry[k] = v\n"
        "def drop(k):\n"
        "    _registry.pop(k, None)\n"
    )
    assert findings_of(src, "RPR013") == [8]


def test_function_locals_not_confused_with_globals():
    # `key` is a local of both functions, not shared state; only the
    # true module global is in scope for the lockset.
    src = (
        "import threading\n"
        "_lock = threading.Lock()\n"
        "_registry = {}\n"
        "def add(k, v):\n"
        "    key = str(k)\n"
        "    with _lock:\n"
        "        _registry[key] = v\n"
        "def probe(k):\n"
        "    key = str(k)\n"
        "    return key\n"
    )
    assert findings_of(src, "RPR013") == []


def test_module_import_time_init_exempt():
    src = (
        "import threading\n"
        "_lock = threading.Lock()\n"
        "_registry = {}\n"
        "_registry['seed'] = 0\n"
        "def add(k, v):\n"
        "    with _lock:\n"
        "        _registry[k] = v\n"
    )
    assert findings_of(src, "RPR013") == []


# ---------------------------------------------------------------------------
# RPR014 — blocking under lock.


def test_sleep_under_lock():
    src = CLASS_HEADER + (
        "    def drain(self):\n"
        "        with self._lock:\n"
        "            import time\n"
        "            time.sleep(0.1)\n"
    )
    assert findings_of(src, "RPR014") == [9]


def test_queue_get_under_lock():
    src = CLASS_HEADER + (
        "    def drain(self, request_q):\n"
        "        with self._lock:\n"
        "            item = request_q.get()\n"
        "        return item\n"
    )
    assert findings_of(src, "RPR014") == [8]


def test_dict_get_is_not_blocking():
    src = CLASS_HEADER + (
        "    def peek(self, k):\n"
        "        with self._lock:\n"
        "            return self._store.get(k)\n"
    )
    assert findings_of(src, "RPR014") == []


def test_process_join_under_lock_but_str_join_fine():
    src = CLASS_HEADER + (
        "    def shutdown(self, worker_proc, parts):\n"
        "        with self._lock:\n"
        "            worker_proc.join()\n"
        "            return ', '.join(parts)\n"
    )
    assert findings_of(src, "RPR014") == [8]


def test_blocking_outside_lock_ok():
    src = CLASS_HEADER + (
        "    def drain(self, request_q):\n"
        "        item = request_q.get()\n"
        "        with self._lock:\n"
        "            self._store['last'] = item\n"
    )
    assert findings_of(src, "RPR014") == []
