"""Tests for the durable parallel experiment harness."""
