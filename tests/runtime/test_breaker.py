"""Circuit breaker state machine and the stage-guard protocol."""

from __future__ import annotations

import pytest

from repro import obs
from repro.runtime import (
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceededError,
    GuardSet,
    StageFailureError,
    guard_scope,
    stage_boundary,
)
from repro.runtime.breaker import STATE_CLOSED, STATE_HALF_OPEN, STATE_OPEN

from .conftest import FakeClock


def make_breaker(
    clock: FakeClock | None = None,
    failure_threshold: int = 3,
    reset_timeout_s: float = 10.0,
) -> CircuitBreaker:
    return CircuitBreaker(
        "stage.x",
        failure_threshold=failure_threshold,
        reset_timeout_s=reset_timeout_s,
        clock=clock or FakeClock(),
    )


class TestValidation:
    def test_zero_threshold_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker("s", failure_threshold=0)

    def test_non_positive_timeout_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker("s", reset_timeout_s=0.0)


class TestStateMachine:
    def test_starts_closed_and_admits(self):
        b = make_breaker()
        assert b.state == STATE_CLOSED
        b.before_call()  # must not raise

    def test_opens_after_threshold_consecutive_failures(self):
        b = make_breaker(failure_threshold=3)
        b.record_failure()
        b.record_failure()
        assert b.state == STATE_CLOSED
        b.record_failure()
        assert b.state == STATE_OPEN
        with pytest.raises(CircuitOpenError) as err:
            b.before_call()
        assert err.value.stage == "stage.x"

    def test_success_resets_the_failure_streak(self):
        b = make_breaker(failure_threshold=2)
        b.record_failure()
        b.record_success()
        b.record_failure()
        assert b.state == STATE_CLOSED

    def test_full_open_half_open_closed_cycle(self):
        clock = FakeClock()
        b = make_breaker(clock, failure_threshold=1, reset_timeout_s=10.0)
        b.record_failure()
        assert b.state == STATE_OPEN
        clock.t = 5.0
        with pytest.raises(CircuitOpenError):
            b.before_call()  # still inside the hold-off
        clock.t = 10.0
        b.before_call()  # timeout elapsed: half-open probe admitted
        assert b.state == STATE_HALF_OPEN
        b.record_success()
        assert b.state == STATE_CLOSED
        assert b.transitions == [
            (STATE_CLOSED, STATE_OPEN),
            (STATE_OPEN, STATE_HALF_OPEN),
            (STATE_HALF_OPEN, STATE_CLOSED),
        ]

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        b = make_breaker(clock, failure_threshold=1, reset_timeout_s=10.0)
        b.record_failure()
        clock.t = 11.0
        b.before_call()
        b.record_failure()
        assert b.state == STATE_OPEN
        # The re-open restarts the hold-off from the probe failure.
        clock.t = 12.0
        with pytest.raises(CircuitOpenError):
            b.before_call()

    def test_single_probe_slot(self):
        clock = FakeClock()
        b = make_breaker(clock, failure_threshold=1, reset_timeout_s=10.0)
        b.record_failure()
        clock.t = 10.0
        b.before_call()  # probe in flight
        with pytest.raises(CircuitOpenError):
            b.before_call()  # second caller rejected

    def test_record_abort_releases_the_probe_slot(self):
        clock = FakeClock()
        b = make_breaker(clock, failure_threshold=1, reset_timeout_s=10.0)
        b.record_failure()
        clock.t = 10.0
        b.before_call()
        b.record_abort()  # probe ended with no stage outcome
        b.before_call()  # slot free again; still half-open
        assert b.state == STATE_HALF_OPEN

    def test_reset_forces_closed(self):
        b = make_breaker(failure_threshold=1)
        b.record_failure()
        assert b.state == STATE_OPEN
        b.reset()
        assert b.state == STATE_CLOSED
        b.before_call()


class TestCallConvenience:
    def test_success_passes_through(self):
        b = make_breaker()
        assert b.call(lambda x: x + 1, 41) == 42

    def test_failures_trip_then_reject(self):
        b = make_breaker(failure_threshold=2)

        def boom() -> None:
            raise RuntimeError("bad")

        for _ in range(2):
            with pytest.raises(RuntimeError):
                b.call(boom)
        with pytest.raises(CircuitOpenError):
            b.call(boom)


class TestMetrics:
    def test_trip_and_rejection_counters(self):
        obs.enable()
        b = make_breaker(failure_threshold=1)
        b.record_failure()
        with pytest.raises(CircuitOpenError):
            b.before_call()
        metrics = {m.name: m.value for m in obs.get_registry().collect()}
        assert metrics["runtime.breaker.trips_total"] == 1.0
        assert metrics["runtime.breaker.rejected_total"] == 1.0
        assert metrics["runtime.breaker.state"] == 2.0  # open


class TestStageBoundary:
    def test_no_op_without_guards(self):
        with stage_boundary("predict"):
            pass  # no supervisor installed: nothing to trip over

    def test_exception_without_guards_is_untouched(self):
        with pytest.raises(ValueError):
            with stage_boundary("predict"):
                raise ValueError("raw")

    def test_failure_is_wrapped_and_attributed(self):
        b = make_breaker(failure_threshold=3)
        guards = GuardSet({"stage.x": b})
        with pytest.raises(StageFailureError) as err:
            with guard_scope(guards):
                with stage_boundary("stage.x"):
                    raise RuntimeError("inner boom")
        assert err.value.stage == "stage.x"
        assert isinstance(err.value.__cause__, RuntimeError)

    def test_success_and_failure_feed_the_breaker(self):
        b = make_breaker(failure_threshold=2)
        guards = GuardSet({"stage.x": b})
        with guard_scope(guards):
            for _ in range(2):
                with pytest.raises(StageFailureError):
                    with stage_boundary("stage.x"):
                        raise RuntimeError("boom")
        assert b.state == STATE_OPEN

    def test_open_breaker_rejects_at_the_boundary(self):
        b = make_breaker(failure_threshold=1)
        b.record_failure()
        guards = GuardSet({"stage.x": b})
        with guard_scope(guards):
            with pytest.raises(CircuitOpenError):
                with stage_boundary("stage.x"):
                    raise AssertionError("body must not run")

    def test_inner_failure_passes_outer_boundary_without_double_count(self):
        inner = make_breaker(failure_threshold=1)
        outer = make_breaker(failure_threshold=1)
        guards = GuardSet({"inner": inner, "outer": outer})
        with guard_scope(guards):
            with pytest.raises(StageFailureError) as err:
                with stage_boundary("outer"):
                    with stage_boundary("inner"):
                        raise RuntimeError("boom")
        # Attribution stays with the innermost stage; the outer breaker
        # records neither success nor failure.
        assert err.value.stage == "inner"
        assert inner.state == STATE_OPEN
        assert outer.state == STATE_CLOSED

    def test_inner_failure_releases_outer_half_open_probe(self):
        # Regression: an outer probe claimed before an inner failure
        # must be released, or the outer breaker wedges half-open.
        clock = FakeClock()
        inner = make_breaker(clock, failure_threshold=1)
        outer = make_breaker(clock, failure_threshold=1, reset_timeout_s=10.0)
        outer.record_failure()
        clock.t = 10.0
        guards = GuardSet({"inner": inner, "outer": outer}, clock=clock)
        with guard_scope(guards):
            with pytest.raises(StageFailureError):
                with stage_boundary("outer"):  # claims the probe slot
                    with stage_boundary("inner"):
                        raise RuntimeError("boom")
            # The probe slot must be free for the next window.
            with stage_boundary("outer"):
                pass
        assert outer.state == STATE_CLOSED

    def test_unguarded_stage_passes_through(self):
        guards = GuardSet({})
        with guard_scope(guards):
            with stage_boundary("not.guarded"):
                pass

    def test_scope_restores_previous_guards(self):
        from repro.runtime.breaker import active_guards

        g1 = GuardSet({})
        g2 = GuardSet({})
        with guard_scope(g1):
            with guard_scope(g2):
                assert active_guards() is g2
            assert active_guards() is g1
        assert active_guards() is None


class TestGuardDeadline:
    def test_expired_deadline_raises_before_the_breaker(self):
        clock = FakeClock(t=5.0)
        b = make_breaker(failure_threshold=1)
        b.record_failure()  # open — but the deadline must win
        guards = GuardSet({"stage.x": b}, deadline=4.0, clock=clock)
        with pytest.raises(DeadlineExceededError) as err:
            guards.enter("stage.x")
        assert err.value.stage == "stage.x"

    def test_live_deadline_admits(self):
        clock = FakeClock(t=1.0)
        guards = GuardSet({}, deadline=4.0, clock=clock)
        guards.enter("anything")
