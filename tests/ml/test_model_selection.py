"""Splitting and cross-validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import GaussianNB, cross_val_score, stratified_kfold, train_test_split


def data(k=3, per_class=20, d=4, seed=0):
    rng = np.random.default_rng(seed)
    means = rng.normal(0, 4, (k, d))
    x = np.concatenate([means[i] + rng.normal(0, 1, (per_class, d)) for i in range(k)])
    y = np.repeat([f"C{i}" for i in range(k)], per_class)
    return x, y


class TestTrainTestSplit:
    def test_sizes(self):
        x, y = data()
        x_train, x_test, y_train, y_test = train_test_split(
            x, y, 0.2, np.random.default_rng(0)
        )
        assert len(x_train) + len(x_test) == len(x)
        assert len(x_test) == 12  # 20% of each class of 20

    def test_stratified_every_class_in_test(self):
        x, y = data()
        _xtr, _xte, _ytr, y_test = train_test_split(x, y, 0.2, np.random.default_rng(0))
        assert set(y_test.tolist()) == {"C0", "C1", "C2"}

    def test_disjoint(self):
        x, y = data()
        x_train, x_test, _ytr, _yte = train_test_split(x, y, 0.3, np.random.default_rng(1))
        train_rows = {tuple(row) for row in x_train}
        assert all(tuple(row) not in train_rows for row in x_test)

    def test_unstratified(self):
        x, y = data()
        _xtr, x_test, _ytr, _yte = train_test_split(
            x, y, 0.25, np.random.default_rng(0), stratify=False
        )
        assert len(x_test) == 15

    def test_fraction_validation(self):
        x, y = data()
        with pytest.raises(ValueError):
            train_test_split(x, y, 0.0)
        with pytest.raises(ValueError):
            train_test_split(x, y, 1.0)

    def test_alignment_validation(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((5, 2)), np.zeros(4))


class TestStratifiedKFold:
    def test_folds_partition_everything(self):
        _x, y = data()
        seen = []
        for _train, test in stratified_kfold(y, 4, np.random.default_rng(0)):
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(len(y)))

    def test_train_test_disjoint(self):
        _x, y = data()
        for train, test in stratified_kfold(y, 4, np.random.default_rng(0)):
            assert not set(train.tolist()) & set(test.tolist())

    def test_class_balanced(self):
        _x, y = data()
        for _train, test in stratified_kfold(y, 4, np.random.default_rng(0)):
            classes, counts = np.unique(y[test], return_counts=True)
            assert len(classes) == 3
            assert counts.max() - counts.min() <= 1

    def test_too_many_splits_rejected(self):
        y = np.array(["a", "a", "b", "b"])
        with pytest.raises(ValueError):
            list(stratified_kfold(y, 3))

    def test_min_splits(self):
        with pytest.raises(ValueError):
            list(stratified_kfold(np.array(["a", "a"]), 1))


class TestCrossValScore:
    def test_scores_shape_and_range(self):
        x, y = data()
        scores = cross_val_score(GaussianNB, x, y, n_splits=4, rng=np.random.default_rng(0))
        assert scores.shape == (4,)
        assert (scores >= 0).all() and (scores <= 1).all()

    def test_easy_data_high_scores(self):
        x, y = data()
        scores = cross_val_score(GaussianNB, x, y, n_splits=4, rng=np.random.default_rng(0))
        assert scores.mean() > 0.9
