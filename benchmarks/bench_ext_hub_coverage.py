"""Extension (Section VII): area coverage scaling with antenna hubs."""

from repro.eval import run_ext_hub_coverage


def test_ext_hub_coverage(run_experiment):
    result = run_experiment(run_ext_hub_coverage)
    measured = result.measured_by_name()
    assert measured["4 array(s)"] > measured["2 array(s)"] > measured["1 array(s)"]
