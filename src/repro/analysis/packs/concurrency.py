"""RPR013/RPR014: lockset lint for the serving/runtime shared state.

The serving tier (:mod:`repro.serving`), the supervised runtime
(:mod:`repro.runtime`) and the steering-vector LRU in
:mod:`repro.dsp.music` all share mutable state across threads and
processes.  These rules apply the classic *lockset* approximation
lexically:

* For every class that creates ``threading.Lock/RLock/Condition``
  attributes, the attributes touched inside any ``with self._lock:``
  block form the **protected set**.  RPR013 flags writes (assignment,
  augmented assignment, subscript stores, mutator-method calls) to a
  protected attribute outside every lock block — except in
  ``__init__``-like methods, where the object is not yet shared.  It
  also flags *check-then-act* on a protected mapping (``if k in
  self._cache: ... self._cache[k] ...``) performed outside the lock,
  which is racy even when each step is individually atomic.
* The same analysis runs at module scope for module-global locks
  guarding module-global caches (the steering LRU pattern).
* RPR014 flags calls that can block for a long time — ``time.sleep``,
  ``queue.get/put``, ``Process.join``, ``predict_proba``, ``.wait``,
  ``.recv``/``.select`` — made while lexically holding a lock.
  Holding a mutex across a blocking call turns every other consumer of
  that lock into a convoy and is the textbook serving-latency bug.

Both rules are deliberately *intra*-class and lexical: a write hidden
behind a helper call is out of scope (documented false negative), and
code paths that never use a lock at all produce no protected set and
hence no findings.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.dataflow.project import ModuleInfo, dotted_name
from repro.analysis.rules import (
    Finding,
    ProjectContext,
    ProjectRule,
    register_project_rule,
)

__all__ = ["BlockingUnderLockRule", "LocksetRule"]

_LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"})
_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "discard",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "move_to_end",
        "appendleft",
    }
)
_INIT_METHODS = frozenset(
    {
        "__init__",
        "__new__",
        "__post_init__",
        "__init_subclass__",
        # Module/class bodies execute at import time, before any other
        # thread can observe the state — the module analog of __init__.
        "<module>",
    }
)

_PROCESSY_NAME = re.compile(r"(?i)(proc|process|thread|worker)")
_QUEUEY_NAME = re.compile(r"(?i)(queue|request|response|^q$|_q$)")

_ALWAYS_BLOCKING_ATTRS = frozenset({"wait", "recv", "select", "predict_proba"})


def _is_lock_factory(value: ast.expr) -> bool:
    if not isinstance(value, ast.Call):
        return False
    dotted = dotted_name(value.func)
    if dotted is None:
        return False
    parts = dotted.split(".")
    return parts[-1] in _LOCK_FACTORIES


@dataclass
class _Access:
    """One touch of a tracked attribute/global."""

    node: ast.AST
    name: str
    is_write: bool
    under_lock: bool
    method: str


@dataclass
class _Scope:
    """Accumulated lockset facts for one class (or the module itself)."""

    label: str
    lock_names: set[str] = field(default_factory=set)
    accesses: list[_Access] = field(default_factory=list)
    check_then_act: list[tuple[ast.AST, str, str]] = field(default_factory=list)

    @property
    def protected(self) -> set[str]:
        """Attributes ever touched under a lock, minus the locks."""
        touched = {a.name for a in self.accesses if a.under_lock}
        return touched - self.lock_names


class _ScopeCollector(ast.NodeVisitor):
    """Walk one class body (or module body) gathering lockset facts.

    ``attr_of`` maps an expression to the tracked name it denotes:
    ``self.x`` for class scope, a bare global name for module scope.
    """

    def __init__(
        self,
        scope: _Scope,
        class_mode: bool,
        module_globals: frozenset[str] = frozenset(),
    ) -> None:
        self.scope = scope
        self.class_mode = class_mode
        self.module_globals = module_globals
        self.lock_depth = 0
        self.method = "<module>"

    # -- name extraction --------------------------------------------------

    def attr_of(self, node: ast.AST) -> str | None:
        if self.class_mode:
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                return node.attr
            return None
        # Module scope: only names actually bound at module level are
        # shared state; function locals that happen to be touched under
        # the lock are not.
        if isinstance(node, ast.Name) and node.id in self.module_globals:
            return node.id
        return None

    def _is_lock_expr(self, node: ast.expr) -> bool:
        name = self.attr_of(node)
        return name is not None and name in self.scope.lock_names

    # -- structure --------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return  # nested classes get their own collector via _scopes()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_method(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_method(node)

    def _visit_method(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        prev = self.method
        self.method = node.name
        for stmt in node.body:
            self.visit(stmt)
        self.method = prev

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        holds = any(self._is_lock_expr(item.context_expr) for item in node.items)
        for item in node.items:
            self.visit(item.context_expr)
        if holds:
            self.lock_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if holds:
            self.lock_depth -= 1

    # -- accesses ---------------------------------------------------------

    def _record(self, node: ast.AST, name: str, is_write: bool) -> None:
        self.scope.accesses.append(
            _Access(
                node=node,
                name=name,
                is_write=is_write,
                under_lock=self.lock_depth > 0,
                method=self.method,
            )
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_store_target(target, node)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_store_target(node.target, node)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_store_target(node.target, node)
            self.visit(node.value)

    def _record_store_target(self, target: ast.expr, stmt: ast.stmt) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_store_target(elt, stmt)
            return
        if isinstance(target, ast.Subscript):
            name = self.attr_of(target.value)
            if name is not None:
                self._record(stmt, name, is_write=True)
            self.visit(target.slice)
            return
        name = self.attr_of(target)
        if name is not None:
            self._record(stmt, name, is_write=True)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
            name = self.attr_of(func.value)
            if name is not None:
                self._record(node, name, is_write=True)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        name = self.attr_of(node)
        if name is not None and isinstance(node.ctx, ast.Load):
            self._record(node, name, is_write=False)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if not self.class_mode and isinstance(node.ctx, ast.Load):
            name = self.attr_of(node)
            if name is not None:
                self._record(node, name, is_write=False)

    # -- check-then-act ---------------------------------------------------

    def visit_If(self, node: ast.If) -> None:
        if self.lock_depth == 0:
            checked = self._checked_names(node.test)
            if checked:
                written = self._written_names(node.body)
                for name in sorted(checked & written):
                    self.scope.check_then_act.append((node, name, self.method))
        self.generic_visit(node)

    def _checked_names(self, test: ast.expr) -> set[str]:
        """Tracked names whose membership/content the test inspects."""
        names: set[str] = set()
        for sub in ast.walk(test):
            if isinstance(sub, ast.Compare) and any(
                isinstance(op, (ast.In, ast.NotIn)) for op in sub.ops
            ):
                for operand in sub.comparators:
                    name = self.attr_of(operand)
                    if name is not None:
                        names.add(name)
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "get"
            ):
                name = self.attr_of(sub.func.value)
                if name is not None:
                    names.add(name)
        return names

    def _written_names(self, body: list[ast.stmt]) -> set[str]:
        names: set[str] = set()
        for stmt in body:
            for sub in ast.walk(stmt):
                if isinstance(sub, (ast.Assign, ast.AugAssign)):
                    targets = (
                        sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                    )
                    for target in targets:
                        if isinstance(target, ast.Subscript):
                            name = self.attr_of(target.value)
                        else:
                            name = self.attr_of(target)
                        if name is not None:
                            names.add(name)
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in _MUTATORS
                ):
                    name = self.attr_of(sub.func.value)
                    if name is not None:
                        names.add(name)
        return names


def _class_scope(node: ast.ClassDef) -> _Scope:
    scope = _Scope(label=node.name)
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Assign)
            and _is_lock_factory(sub.value)
        ):
            for target in sub.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    scope.lock_names.add(target.attr)
    if not scope.lock_names:
        return scope
    collector = _ScopeCollector(scope, class_mode=True)
    for stmt in node.body:
        collector.visit(stmt)
    return scope


def _module_globals(tree: ast.Module) -> frozenset[str]:
    """Names bound by module-level statements (the shared namespace)."""
    names: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
    return frozenset(names)


def _module_scope(info: ModuleInfo) -> _Scope:
    scope = _Scope(label="<module>")
    for stmt in info.tree.body:
        if isinstance(stmt, ast.Assign) and _is_lock_factory(stmt.value):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    scope.lock_names.add(target.id)
    if not scope.lock_names:
        return scope
    collector = _ScopeCollector(
        scope, class_mode=False, module_globals=_module_globals(info.tree)
    )
    for stmt in info.tree.body:
        if isinstance(stmt, ast.ClassDef):
            continue  # classes get their own lockset scope
        collector.visit(stmt)
    return scope


def _scopes(info: ModuleInfo) -> Iterator[_Scope]:
    yield _module_scope(info)
    for node in ast.walk(info.tree):
        if isinstance(node, ast.ClassDef):
            yield _class_scope(node)


@register_project_rule
class LocksetRule(ProjectRule):
    """RPR013: shared mutable state written outside its owning lock.

    A class (or module) that guards some attributes with a lock has
    declared a protection discipline; every unlocked write to those
    attributes — and every unlocked check-then-act sequence on them —
    is a race window.  Constructor-like methods are exempt because the
    object is not yet published.
    """

    code = "RPR013"
    name = "lockset"
    description = (
        "write or check-then-act on lock-protected shared state performed "
        "without holding the owning lock"
    )
    hint = (
        "take the owning lock (`with self._lock:` / the module lock) around "
        "the write, or make the whole check-then-act sequence atomic"
    )

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        """Yield unlocked-write and check-then-act findings."""
        for info in ctx.project.modules.values():
            for scope in _scopes(info):
                protected = scope.protected
                if not protected:
                    continue
                for access in scope.accesses:
                    if not access.is_write or access.under_lock:
                        continue
                    if access.name not in protected:
                        continue
                    if access.method in _INIT_METHODS:
                        continue
                    where = (
                        f"{scope.label}.{access.method}"
                        if scope.label != "<module>"
                        else access.method
                    )
                    yield self.finding_at(
                        info.path,
                        access.node,
                        f"write to lock-protected {access.name!r} in {where} "
                        "without holding the owning lock",
                    )
                for node, name, method in scope.check_then_act:
                    if name not in protected or method in _INIT_METHODS:
                        continue
                    where = (
                        f"{scope.label}.{method}"
                        if scope.label != "<module>"
                        else method
                    )
                    yield self.finding_at(
                        info.path,
                        node,
                        f"non-atomic check-then-act on lock-protected {name!r} "
                        f"in {where}: the state can change between the test "
                        "and the write",
                    )


def _blocking_reason(call: ast.Call) -> str | None:
    """Why this call is considered blocking, or None."""
    dotted = dotted_name(call.func)
    if dotted is not None and dotted.split(".")[:1] == ["time"] and dotted.endswith(
        ".sleep"
    ):
        return "time.sleep() sleeps while holding the lock"
    if not isinstance(call.func, ast.Attribute):
        return None
    attr = call.func.attr
    base = dotted_name(call.func.value) or ""
    base_last = base.split(".")[-1]
    if attr in _ALWAYS_BLOCKING_ATTRS:
        return f".{attr}() can block indefinitely"
    if attr == "join" and _PROCESSY_NAME.search(base_last):
        return f"{base_last}.join() waits for a process/thread to exit"
    if attr in ("get", "put") and _QUEUEY_NAME.search(base_last):
        return f"{base_last}.{attr}() blocks on queue traffic"
    return None


@register_project_rule
class BlockingUnderLockRule(ProjectRule):
    """RPR014: blocking call made while lexically holding a lock.

    Sleeping, joining a process, or waiting on a queue while holding a
    mutex serialises every other thread that needs the lock behind an
    unbounded wait — the canonical convoy.  The fix is to move the
    blocking call outside the critical section and re-validate state
    after reacquiring.
    """

    code = "RPR014"
    name = "blocking-under-lock"
    description = (
        "blocking call (sleep, queue get/put, process join, predict_proba, "
        "wait/recv) made while holding a lock"
    )
    hint = (
        "shrink the critical section: copy what you need under the lock, "
        "release it, then block"
    )

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        """Yield blocking-call-under-lock findings."""
        for info in ctx.project.modules.values():
            lock_names = self._all_lock_names(info)
            if not lock_names:
                continue
            yield from self._scan(info, info.tree, lock_names)

    def _all_lock_names(self, info: ModuleInfo) -> set[str]:
        """Every self-attr or global name bound to a lock factory."""
        names: set[str] = set()
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Assign) and _is_lock_factory(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
                    elif isinstance(target, ast.Attribute):
                        names.add(target.attr)
        return names

    def _scan(
        self, info: ModuleInfo, tree: ast.AST, lock_names: set[str]
    ) -> Iterator[Finding]:
        """Depth-first walk tracking lexical with-lock nesting."""
        stack: list[tuple[ast.AST, int]] = [(tree, 0)]
        while stack:
            node, depth = stack.pop()
            if isinstance(node, (ast.With, ast.AsyncWith)):
                holds = any(
                    self._names_lock(item.context_expr, lock_names)
                    for item in node.items
                )
                inner = depth + (1 if holds else 0)
                for child in node.body:
                    stack.append((child, inner))
                for item in node.items:
                    stack.append((item.context_expr, depth))
                continue
            if depth > 0 and isinstance(node, ast.Call):
                reason = _blocking_reason(node)
                if reason is not None:
                    yield self.finding_at(
                        info.path,
                        node,
                        f"blocking call under lock: {reason}",
                    )
            for child in ast.iter_child_nodes(node):
                stack.append((child, depth))

    def _names_lock(self, expr: ast.expr, lock_names: set[str]) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in lock_names
        if isinstance(expr, ast.Attribute):
            return expr.attr in lock_names
        return False
