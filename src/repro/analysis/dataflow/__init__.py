"""Interprocedural dataflow substrate for the flow-aware rule packs.

Layers, bottom up:

* :mod:`.cfg` — per-function control-flow graphs;
* :mod:`.engine` — a worklist forward-dataflow solver over those CFGs;
* :mod:`.project` — parsed modules, import tables, function index;
* :mod:`.callgraph` — provable call edges across the project;
* :mod:`.shapes` — ``shape: (...)`` docstring tags parsed into
  machine-checkable contracts.

The rule packs in :mod:`repro.analysis.packs` compose these into
RPR012 (dtype flow), RPR013/RPR014 (lockset concurrency), and RPR015
(shape contracts).  Everything here is stdlib-``ast`` only — the
analyses run in CI without importing the code under analysis.
"""

from repro.analysis.dataflow.callgraph import CallGraph, CallSite, build_call_graph
from repro.analysis.dataflow.cfg import CFG, BasicBlock, build_cfg
from repro.analysis.dataflow.engine import ForwardAnalysis, run_forward
from repro.analysis.dataflow.project import (
    FunctionInfo,
    ModuleInfo,
    Project,
    dotted_name,
    module_name_for_path,
)
from repro.analysis.dataflow.shapes import (
    ContractParseError,
    FunctionContracts,
    ShapeContract,
    extract_contracts,
    find_shape_tags,
    parse_shape_tag,
)

__all__ = [
    "BasicBlock",
    "CFG",
    "CallGraph",
    "CallSite",
    "ContractParseError",
    "ForwardAnalysis",
    "FunctionContracts",
    "FunctionInfo",
    "ModuleInfo",
    "Project",
    "ShapeContract",
    "build_call_graph",
    "build_cfg",
    "dotted_name",
    "extract_contracts",
    "find_shape_tags",
    "module_name_for_path",
    "parse_shape_tag",
    "run_forward",
]
