"""Dataset containers for frame-sequence samples."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dsp.frames import FeatureFrames
from repro.ml.preprocessing import StandardScaler


@dataclass
class ActivityDataset:
    """A labelled collection of :class:`FeatureFrames` samples.

    All samples must share channel names, frame counts, tag counts and
    feature widths (one experiment = one shape).
    """

    samples: list[FeatureFrames]
    labels: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.samples:
            raise ValueError("dataset needs at least one sample")
        if self.labels and len(self.labels) != len(self.samples):
            raise ValueError("labels must align with samples")
        if not self.labels:
            self.labels = [s.label or "?" for s in self.samples]
        ref = self.samples[0].channel_dims()
        ref_shape = (self.samples[0].n_frames, self.samples[0].n_tags)
        for s in self.samples[1:]:
            if s.channel_dims() != ref or (s.n_frames, s.n_tags) != ref_shape:
                raise ValueError("inconsistent sample shapes in dataset")

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def classes(self) -> list[str]:
        """Sorted distinct labels."""
        return sorted(set(self.labels))

    @property
    def channel_shapes(self) -> dict[str, tuple[int, int]]:
        """``{channel: (n_tags, width)}`` — what the model needs."""
        first = self.samples[0]
        return {
            name: (first.n_tags, dim)
            for name, dim in first.channel_dims().items()
        }

    def to_arrays(self) -> tuple[dict[str, np.ndarray], np.ndarray]:
        """Stack into ``{channel: (B, T, n, D)}`` plus the label array."""
        channels = {
            name: np.stack([s.channels[name] for s in self.samples])
            for name in self.samples[0].channels
        }
        return channels, np.asarray(self.labels)

    def flatten_features(self) -> np.ndarray:
        """``(B, total)`` flat features for the classical baselines."""
        return np.stack([s.flatten() for s in self.samples])

    def to_sequences(self) -> np.ndarray:
        """``(B, T, D)`` per-frame feature sequences (HMM baseline input).

        Each frame concatenates every channel's tag features.
        """
        out = []
        for s in self.samples:
            per_frame = [
                s.channels[name].reshape(s.n_frames, -1)
                for name in sorted(s.channels)
            ]
            out.append(np.concatenate(per_frame, axis=1))
        return np.stack(out)

    def subset(self, indices: np.ndarray) -> "ActivityDataset":
        """A new dataset restricted to the given sample indices."""
        idx = np.asarray(indices)
        return ActivityDataset(
            samples=[self.samples[i] for i in idx],
            labels=[self.labels[i] for i in idx],
        )

    def split(
        self, test_fraction: float = 0.2, rng: np.random.Generator | None = None
    ) -> tuple["ActivityDataset", "ActivityDataset"]:
        """Stratified train/test split (the paper's 80/20).

        Deterministic by default (seed 0): pass a seeded generator for
        a different, still-reproducible shuffle.
        """
        rng = rng or np.random.default_rng(0)
        labels = np.asarray(self.labels)
        test_idx: list[int] = []
        for cls in sorted(set(self.labels)):
            members = np.flatnonzero(labels == cls)
            members = members[rng.permutation(len(members))]
            n_test = max(1, int(round(test_fraction * len(members))))
            test_idx.extend(members[:n_test].tolist())
        mask = np.zeros(len(self.labels), dtype=bool)
        mask[test_idx] = True
        return self.subset(np.flatnonzero(~mask)), self.subset(np.flatnonzero(mask))


class ChannelScaler:
    """Per-channel feature standardisation fitted on training data.

    Each channel's ``(B, T, n, D)`` tensor is standardised feature-wise
    over the ``B*T*n`` rows, which puts the dB-scaled periodogram and
    the unit-scaled pseudospectrum on a common footing for the network.
    """

    def __init__(self) -> None:
        self._scalers: dict[str, StandardScaler] = {}

    def fit(self, channels: dict[str, np.ndarray]) -> "ChannelScaler":
        """Fit one scaler per channel; returns ``self``."""
        for name, arr in channels.items():
            scaler = StandardScaler()
            scaler.fit(arr.reshape(-1, arr.shape[-1]))
            self._scalers[name] = scaler
        return self

    def transform(self, channels: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Standardise each channel with its fitted scaler."""
        if not self._scalers:
            raise RuntimeError("scaler not fitted")
        out = {}
        for name, arr in channels.items():
            scaler = self._scalers[name]
            out[name] = scaler.transform(arr.reshape(-1, arr.shape[-1])).reshape(
                arr.shape
            )
        return out

    def fit_transform(self, channels: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Fit and transform in one call."""
        return self.fit(channels).transform(channels)
