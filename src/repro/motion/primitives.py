"""Motion primitives: parameterised human movements.

Each primitive turns a time axis into a set of *motion signals* —
centre displacement, body orientation, hand/arm extension — that the
attachment model (:mod:`repro.motion.body`) converts into tag
trajectories.  Rates, amplitudes and phases are drawn per instance, so
two executions of "wave hand" by different simulated volunteers differ
the way two real volunteers do (the paper's ten volunteers "vary in
age, gender, height, and weight").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

Signals = dict[str, np.ndarray]
"""Motion signal bundle.

Keys (all ``(T,)`` float arrays):
    ``dx``, ``dy``: centre displacement from the anchor, metres.
    ``orientation``: body heading, radians.
    ``hand_extend``: hand reach along the heading, ``[0, 1]``.
    ``hand_lateral``: hand sideways displacement, metres.
    ``arm_extend``: forearm reach along the heading, ``[0, 1]``.
"""

_SamplerFn = Callable[[np.ndarray, np.random.Generator], Signals]


@dataclass(frozen=True)
class Primitive:
    """A named motion primitive.

    Attributes:
        name: registry key.
        sampler: function mapping (time array, rng) to signals.
    """

    name: str
    sampler: _SamplerFn

    def sample(self, t: np.ndarray, rng: np.random.Generator) -> Signals:
        """Draw one randomised execution of the primitive.

        Always includes low-amplitude idle sway (breathing, balance
        corrections) on top of the scripted movement.
        """
        signals = _zero_signals(t)
        signals.update(self.sampler(t, rng))
        _add_idle_sway(signals, t, rng)
        return signals


def _zero_signals(t: np.ndarray) -> Signals:
    z = np.zeros_like(t)
    return {
        "dx": z.copy(),
        "dy": z.copy(),
        "orientation": z.copy(),
        "hand_extend": z.copy(),
        "hand_lateral": z.copy(),
        "arm_extend": z.copy(),
    }


def _add_idle_sway(signals: Signals, t: np.ndarray, rng: np.random.Generator) -> None:
    """Small always-on physiological motion (~1 cm sway, breathing)."""
    rate = rng.uniform(0.2, 0.35)
    phase = rng.uniform(0.0, 2 * np.pi)
    sway = 0.01 * np.sin(2 * np.pi * rate * t + phase)
    signals["dx"] = signals["dx"] + sway
    signals["dy"] = signals["dy"] + 0.008 * np.sin(2 * np.pi * rate * 0.8 * t + phase * 1.7)
    signals["hand_lateral"] = signals["hand_lateral"] + 0.005 * np.sin(
        2 * np.pi * rate * 1.3 * t
    )


def _sin(t: np.ndarray, rate: float, phase: float) -> np.ndarray:
    return np.sin(2 * np.pi * rate * t + phase)


# ---------------------------------------------------------------------------
# Primitive samplers


def _stand_still(t: np.ndarray, rng: np.random.Generator) -> Signals:
    """No scripted movement; only idle sway."""
    return _zero_signals(t)


def _wave_hand(t: np.ndarray, rng: np.random.Generator) -> Signals:
    s = _zero_signals(t)
    rate = rng.uniform(0.8, 1.6)
    phase = rng.uniform(0, 2 * np.pi)
    amp = rng.uniform(0.25, 0.40)
    s["hand_lateral"] = amp * _sin(t, rate, phase)
    s["arm_extend"] = 0.3 + 0.25 * _sin(t, rate, phase + 0.6)
    return s


def _push_forward(t: np.ndarray, rng: np.random.Generator) -> Signals:
    s = _zero_signals(t)
    rate = rng.uniform(0.5, 0.9)
    phase = rng.uniform(0, 2 * np.pi)
    cycle = 0.5 * (1.0 + _sin(t, rate, phase))
    s["hand_extend"] = cycle
    s["arm_extend"] = 0.7 * cycle
    return s


def _clap_hands(t: np.ndarray, rng: np.random.Generator) -> Signals:
    s = _zero_signals(t)
    rate = rng.uniform(2.0, 3.0)
    phase = rng.uniform(0, 2 * np.pi)
    s["hand_lateral"] = 0.12 * _sin(t, rate, phase)
    s["hand_extend"] = 0.4 + 0.08 * _sin(t, rate, phase + np.pi / 2)
    s["arm_extend"] = 0.3 + 0.06 * _sin(t, rate, phase)
    return s


def _walk_line(t: np.ndarray, rng: np.random.Generator) -> Signals:
    s = _zero_signals(t)
    span = rng.uniform(0.8, 1.6)
    speed = rng.uniform(0.4, 0.7)
    heading = rng.uniform(0, 2 * np.pi)
    phase = rng.uniform(0, 2 * np.pi)
    # Triangle-ish back-and-forth via a sine of the right period.
    period = 2.0 * span / speed
    along = (span / 2.0) * np.sin(2 * np.pi * t / period + phase)
    s["dx"] = along * np.cos(heading)
    s["dy"] = along * np.sin(heading)
    s["orientation"] = np.full_like(t, heading)
    step_rate = rng.uniform(1.6, 2.1)
    s["hand_lateral"] = 0.15 * _sin(t, step_rate, phase)
    s["arm_extend"] = 0.15 + 0.1 * _sin(t, step_rate, phase + 1.0)
    return s


def _walk_circle(t: np.ndarray, rng: np.random.Generator) -> Signals:
    s = _zero_signals(t)
    radius = rng.uniform(0.5, 0.9)
    rev_rate = rng.uniform(0.12, 0.22)
    phase = rng.uniform(0, 2 * np.pi)
    angle = 2 * np.pi * rev_rate * t + phase
    s["dx"] = radius * np.cos(angle)
    s["dy"] = radius * np.sin(angle)
    s["orientation"] = angle + np.pi / 2.0
    step_rate = rng.uniform(1.6, 2.1)
    s["hand_lateral"] = 0.12 * _sin(t, step_rate, phase)
    return s


def _squat(t: np.ndarray, rng: np.random.Generator) -> Signals:
    s = _zero_signals(t)
    rate = rng.uniform(0.35, 0.6)
    phase = rng.uniform(0, 2 * np.pi)
    # In plan view a squat pulls the torso slightly back and the arms
    # forward for balance, cyclically.
    cycle = 0.5 * (1.0 + _sin(t, rate, phase))
    s["dx"] = -0.10 * cycle
    s["hand_extend"] = 0.5 * cycle
    s["arm_extend"] = 0.4 * cycle
    return s


def _turn_around(t: np.ndarray, rng: np.random.Generator) -> Signals:
    s = _zero_signals(t)
    rev_rate = rng.uniform(0.2, 0.4) * rng.choice([-1.0, 1.0])
    phase = rng.uniform(0, 2 * np.pi)
    s["orientation"] = 2 * np.pi * rev_rate * t + phase
    return s


def _pick_up(t: np.ndarray, rng: np.random.Generator) -> Signals:
    s = _zero_signals(t)
    rate = rng.uniform(0.25, 0.45)
    phase = rng.uniform(0, 2 * np.pi)
    # Reach down-forward, grab, lift: an asymmetric slow cycle.
    cycle = np.clip(1.4 * np.sin(2 * np.pi * rate * t + phase), -1.0, 1.0)
    reach = 0.5 * (1.0 + cycle)
    s["hand_extend"] = reach
    s["arm_extend"] = 0.8 * reach
    s["dx"] = 0.12 * reach
    return s


def _jump(t: np.ndarray, rng: np.random.Generator) -> Signals:
    s = _zero_signals(t)
    rate = rng.uniform(1.8, 2.5)
    phase = rng.uniform(0, 2 * np.pi)
    bounce = np.abs(_sin(t, rate / 2.0, phase))
    s["dx"] = 0.05 * bounce
    s["dy"] = 0.05 * _sin(t, rate, phase)
    s["hand_lateral"] = 0.10 * _sin(t, rate, phase + 0.3)
    s["arm_extend"] = 0.2 * bounce
    return s


def _sit_down(t: np.ndarray, rng: np.random.Generator) -> Signals:
    s = _zero_signals(t)
    onset = rng.uniform(0.15, 0.35) * (t[-1] if len(t) else 1.0)
    tau = rng.uniform(0.6, 1.2)
    ramp = 1.0 / (1.0 + np.exp(-(t - onset) / tau))
    s["dx"] = -0.35 * ramp
    s["hand_extend"] = 0.3 * ramp * (1.0 - ramp) * 4.0
    s["arm_extend"] = 0.2 * ramp
    return s


def _stretch_arms(t: np.ndarray, rng: np.random.Generator) -> Signals:
    s = _zero_signals(t)
    rate = rng.uniform(0.2, 0.35)
    phase = rng.uniform(0, 2 * np.pi)
    cycle = 0.5 * (1.0 + _sin(t, rate, phase))
    s["hand_extend"] = cycle
    s["arm_extend"] = cycle
    s["hand_lateral"] = 0.25 * _sin(t, rate * 2.0, phase)
    return s


PRIMITIVES: dict[str, Primitive] = {
    p.name: p
    for p in (
        Primitive("stand_still", _stand_still),
        Primitive("wave_hand", _wave_hand),
        Primitive("push_forward", _push_forward),
        Primitive("clap_hands", _clap_hands),
        Primitive("walk_line", _walk_line),
        Primitive("walk_circle", _walk_circle),
        Primitive("squat", _squat),
        Primitive("turn_around", _turn_around),
        Primitive("pick_up", _pick_up),
        Primitive("jump", _jump),
        Primitive("sit_down", _sit_down),
        Primitive("stretch_arms", _stretch_arms),
    )
}
"""Registry of every primitive by name."""


def get_primitive(name: str) -> Primitive:
    """Look up a primitive.

    Raises:
        KeyError: with the list of valid names, for typo-friendliness.
    """
    try:
        return PRIMITIVES[name]
    except KeyError:
        raise KeyError(
            f"unknown primitive {name!r}; valid: {sorted(PRIMITIVES)}"
        ) from None
