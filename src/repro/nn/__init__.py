"""From-scratch numpy deep-learning framework (CNN + LSTM + training)."""

from repro.nn.conv import Conv1d, GlobalAveragePool1d, MaxPool1d
from repro.nn.gradcheck import check_module_gradients, numerical_gradient
from repro.nn.init import glorot_uniform, he_uniform, orthogonal
from repro.nn.layers import Dense, Dropout, Flatten, ReLU, Tanh
from repro.nn.losses import log_softmax, mse_loss, softmax, softmax_cross_entropy
from repro.nn.module import (
    DEFAULT_DTYPE,
    INFERENCE_DTYPE,
    Module,
    Parameter,
    Sequential,
    cast_once,
    in_inference_mode,
    inference_mode,
)
from repro.nn.optim import SGD, Adam, clip_grad_norm
from repro.nn.recurrent import LSTM, LastStep

__all__ = [
    "SGD",
    "Adam",
    "Conv1d",
    "DEFAULT_DTYPE",
    "Dense",
    "Dropout",
    "Flatten",
    "GlobalAveragePool1d",
    "INFERENCE_DTYPE",
    "LSTM",
    "LastStep",
    "MaxPool1d",
    "Module",
    "Parameter",
    "ReLU",
    "Sequential",
    "Tanh",
    "cast_once",
    "check_module_gradients",
    "clip_grad_norm",
    "glorot_uniform",
    "he_uniform",
    "in_inference_mode",
    "inference_mode",
    "log_softmax",
    "mse_loss",
    "numerical_gradient",
    "orthogonal",
    "softmax",
    "softmax_cross_entropy",
]
