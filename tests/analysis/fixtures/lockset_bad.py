"""RPR013/RPR014 true-positive fixture: every classic lockset bug.

An unlocked write to protected state, an unlocked check-then-act, and
blocking calls made while holding the lock.
"""

import threading
import time


class SharedCache:
    """A cache whose discipline is violated below."""

    def __init__(self):
        self._lock = threading.Lock()
        self._store = {}

    def put(self, key, value):
        """The declared discipline: writes hold the lock."""
        with self._lock:
            self._store[key] = value

    def evict(self, key):
        """BUG: unlocked write (line 26)."""
        self._store.pop(key, None)

    def ensure(self, key):
        """BUG: unlocked check-then-act (line 30)."""
        if key not in self._store:
            self._store[key] = 0

    def drain(self, queue):
        """BUG: queue.get and sleep while holding the lock (lines 36-37)."""
        with self._lock:
            item = queue.get()
            time.sleep(0.01)
            self._store["last"] = item

    def shutdown(self, worker_proc):
        """BUG: process join while holding the lock (line 42)."""
        with self._lock:
            worker_proc.join()
