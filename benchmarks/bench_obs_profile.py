"""Obs profile artifact: margins read back from the freshly written file.

The identify margin printed (and asserted) here comes from the
artifact this very run wrote to a temp path — never from the committed
repo copy, which goes stale the moment the hot path changes.  The
committed ``BENCH_obs_realtime.json`` is a reference snapshot for
readers; any driver output must be read-after-write.
"""

import json

from repro.obs import profile


def test_obs_profile_identify_margin(tmp_path, capsys):
    out = tmp_path / "BENCH_obs_realtime.json"
    rc = profile.main(
        ["--quick", "--seed", "0", "--repeat", "1", "--out", str(out)]
    )
    assert rc == 0

    # Read-after-write: the fresh artifact, not the repo copy.
    doc = json.loads(out.read_text())
    assert "nn.fused" in doc["stages"], "fused LSTM stage missing from artifact"
    assert doc["nn"]["serve"]["parity_gate"]["accepted"] is True
    rt = doc["realtime"]
    assert rt["identify_margin_x"] > 1.0, "identify slower than real time"
    assert rt["serve_dtype"] == "float32"

    with capsys.disabled():
        print(
            f"\nidentify margin (fresh artifact): {rt['identify_margin_x']:.1f}x "
            f"({rt['identify_per_window_ms']:.2f} ms/window, "
            f"predict {rt['predict_per_window_ms']:.3f} ms/window, "
            f"serve_dtype={rt['serve_dtype']})"
        )
