"""The reader's uniform linear antenna array.

The paper's array geometry (Section V) sets the element spacing to
lambda/8 = 0.04 m: lambda/2 gives an unambiguous spatial Nyquist rate,
backscatter doubles the phase-per-metre (round trip), and the R420's
pi phase ambiguity doubles it once more, so lambda/8 physical spacing
behaves like a standard half-wavelength array after the DSP folds and
doubles the reported phases.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.geometry.vec import Vec2

DEFAULT_WAVELENGTH_M = 0.32
DEFAULT_SPACING_M = DEFAULT_WAVELENGTH_M / 8.0


@dataclass(frozen=True)
class UniformLinearArray:
    """An N-element ULA centred at ``center``.

    The elements lie along the *array axis*; angle-of-arrival is
    measured from that axis, so a source broadside to the array sits at
    90 degrees, matching the paper's 0-180 degree pseudospectrum.

    Attributes:
        center: array centre position in room coordinates.
        n_elements: number of antennas (the R420 has four ports).
        spacing: element separation in metres (default lambda/8).
        axis_angle_rad: orientation of the array axis; ``0`` lays the
            elements along +x.
    """

    center: Vec2
    n_elements: int = 4
    spacing: float = DEFAULT_SPACING_M
    axis_angle_rad: float = 0.0

    def __post_init__(self) -> None:
        if self.n_elements < 2:
            raise ValueError("an AoA array needs at least two elements")
        if self.spacing <= 0.0:
            raise ValueError("spacing must be positive")

    @property
    def axis_unit(self) -> Vec2:
        """Unit vector along the element axis."""
        return Vec2(math.cos(self.axis_angle_rad), math.sin(self.axis_angle_rad))

    def element_position(self, index: int) -> Vec2:
        """Position of element ``index`` (0-based, centred layout)."""
        if not 0 <= index < self.n_elements:
            raise IndexError(f"element {index} out of range")
        offset = (index - (self.n_elements - 1) / 2.0) * self.spacing
        return self.center + self.axis_unit * offset

    def positions(self) -> np.ndarray:
        """All element positions as an ``(N, 2)`` array."""
        return np.array(
            [self.element_position(i).as_tuple() for i in range(self.n_elements)]
        )

    def aoa_to(self, point: Vec2) -> float:
        """Ground-truth angle of arrival of ``point``, degrees in [0, 180].

        Measured from the array axis, so it is directly comparable to a
        MUSIC pseudospectrum peak.
        """
        rel = point - self.center
        ang = math.degrees(math.acos(max(-1.0, min(1.0, self._cos_to(rel)))))
        return ang

    def _cos_to(self, rel: Vec2) -> float:
        n = rel.norm()
        if n == 0.0:
            return 0.0
        return rel.dot(self.axis_unit) / n
