"""Scene validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel import BodyTrack
from repro.hardware import Scene, TagTrack, make_tag, stationary_scene


def tag(name="T"):
    return make_tag(name, np.random.default_rng(0))


class TestTagTrack:
    def test_accepts_static_and_trajectory(self):
        TagTrack(tag=tag(), positions=np.array([1.0, 2.0]))
        TagTrack(tag=tag(), positions=np.zeros((10, 2)))

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            TagTrack(tag=tag(), positions=np.zeros((10, 3)))
        with pytest.raises(ValueError):
            TagTrack(tag=tag(), positions=np.zeros(3))


class TestScene:
    def test_needs_a_tag(self):
        with pytest.raises(ValueError):
            Scene(tag_tracks=())

    def test_inconsistent_time_axes_rejected(self):
        t1 = TagTrack(tag=tag("A"), positions=np.zeros((5, 2)))
        t2 = TagTrack(tag=tag("B"), positions=np.zeros((7, 2)))
        with pytest.raises(ValueError):
            Scene(tag_tracks=(t1, t2))

    def test_carrier_index_checked(self):
        t1 = TagTrack(tag=tag("A"), positions=np.zeros((5, 2)), carrier=0)
        with pytest.raises(ValueError):
            Scene(tag_tracks=(t1,), bodies=())

    def test_n_slots_from_tags_or_bodies(self):
        t1 = TagTrack(tag=tag("A"), positions=np.zeros((5, 2)))
        body = BodyTrack(positions=np.zeros((5, 2)))
        scene = Scene(tag_tracks=(t1,), bodies=(body,))
        assert scene.n_slots == 5

    def test_stationary_scene_broadcasts(self):
        scene = stationary_scene([(tag("A"), (1.0, 2.0)), (tag("B"), (2.0, 3.0))])
        assert scene.n_slots == 1
        assert scene.epcs == ("A", "B")
