"""Signal preprocessing: calibration, MUSIC, periodogram, frames."""

from repro.dsp.angles import (
    circular_distance,
    circular_mean,
    circular_median,
    fold_double,
    wrap_2pi,
    wrap_pm_pi,
)
from repro.dsp.calibration import PhaseCalibrator, uncalibrated
from repro.dsp.correlation import (
    diagonal_load,
    forward_backward,
    sample_covariance,
    spatial_covariance,
    spatial_covariance_stack,
)
from repro.dsp.doppler import DopplerFeaturizer, doppler_from_phases, dwell_doppler
from repro.dsp.features import (
    FEATURIZERS,
    FftOnlyFeaturizer,
    M2AIFeaturizer,
    MusicOnlyFeaturizer,
    PhaseFeaturizer,
    RssiFeaturizer,
)
from repro.dsp.frames import (
    FeatureFrames,
    build_spectrum_frames,
    normalize_pseudospectrum,
    power_to_db,
)
from repro.dsp.localization import (
    BearingEstimate,
    bearing_ray,
    estimate_bearing,
    localize_tag,
    triangulate,
)
from repro.dsp.music import (
    DEFAULT_ANGLES_DEG,
    PHASE_MULTIPLIER,
    STEERING_CACHE_MAXSIZE,
    MusicResult,
    cached_steering_matrix,
    clear_steering_cache,
    estimate_n_sources,
    masked_pseudospectrum,
    music_pseudospectrum,
    music_pseudospectrum_batch,
    steering_cache_info,
    steering_matrix,
)
from repro.dsp.periodogram import (
    periodogram_psd,
    spatial_periodogram,
    spatial_periodogram_batch,
    total_power,
)
from repro.dsp.snapshots import TagSnapshots, build_snapshots

__all__ = [
    "DEFAULT_ANGLES_DEG",
    "BearingEstimate",
    "DopplerFeaturizer",
    "FEATURIZERS",
    "PHASE_MULTIPLIER",
    "FeatureFrames",
    "FftOnlyFeaturizer",
    "M2AIFeaturizer",
    "MusicOnlyFeaturizer",
    "MusicResult",
    "PhaseCalibrator",
    "PhaseFeaturizer",
    "RssiFeaturizer",
    "STEERING_CACHE_MAXSIZE",
    "TagSnapshots",
    "bearing_ray",
    "build_snapshots",
    "build_spectrum_frames",
    "cached_steering_matrix",
    "circular_distance",
    "circular_mean",
    "circular_median",
    "clear_steering_cache",
    "diagonal_load",
    "doppler_from_phases",
    "dwell_doppler",
    "estimate_bearing",
    "estimate_n_sources",
    "fold_double",
    "localize_tag",
    "forward_backward",
    "masked_pseudospectrum",
    "music_pseudospectrum",
    "music_pseudospectrum_batch",
    "normalize_pseudospectrum",
    "periodogram_psd",
    "power_to_db",
    "sample_covariance",
    "spatial_covariance",
    "spatial_covariance_stack",
    "spatial_periodogram",
    "spatial_periodogram_batch",
    "steering_cache_info",
    "steering_matrix",
    "total_power",
    "triangulate",
    "uncalibrated",
    "wrap_2pi",
    "wrap_pm_pi",
]
