"""Extension: batched vs per-dwell DSP throughput (streaming hot path)."""

from repro.eval import run_ext_batching


def test_ext_batching_speedup(run_experiment):
    result = run_experiment(run_ext_batching)
    measured = result.measured_by_name()
    # The batched entry points must beat the per-dwell scalar loop they
    # replaced (the driver itself asserts rtol=1e-12 equivalence).
    assert measured["MUSIC speedup"] > 1.0
    assert measured["periodogram speedup"] > 1.0
