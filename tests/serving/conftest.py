"""Fleet-serving test fixtures.

Reuses the runtime suite's stub pipeline and synthetic log factory;
adds the identifier factory every fleet/shard constructor wants.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.core.streaming import StreamingIdentifier

from ..runtime.conftest import (  # noqa: F401 - re-exported for tests
    FailingPipeline,
    FakeClock,
    StubPipeline,
    make_log,
)

@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


_SHARED_STUB = StubPipeline()


def make_identifier() -> StreamingIdentifier:
    """Module-level factory (picklable) over one shared stub pipeline."""
    return StreamingIdentifier(pipeline=_SHARED_STUB, window_s=2.4, min_reads=5)


def make_factory(pipeline=None, window_s: float = 2.4, min_reads: int = 5):
    """A closure factory for inline-mode tests (fork makes it portable)."""
    pipe = pipeline if pipeline is not None else StubPipeline()

    def factory() -> StreamingIdentifier:
        return StreamingIdentifier(
            pipeline=pipe, window_s=window_s, min_reads=min_reads
        )

    return factory


def poison_log(log, fraction: float = 1.0, seed: int = 0):
    """Return a copy of ``log`` with NaN phases on a read fraction."""
    rng = np.random.default_rng(seed)
    phase = np.array(log.phase_rad, dtype=np.float64, copy=True)
    n = len(phase)
    k = max(1, int(round(fraction * n)))
    idx = rng.choice(n, size=k, replace=False)
    phase[idx] = np.nan
    from dataclasses import replace

    return replace(log, phase_rad=phase)
