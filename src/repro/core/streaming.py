"""Streaming activity identification over a continuous read log.

A deployment does not see neatly cut samples: the reader emits one
endless LLRP stream while residents switch activities.  The streaming
identifier slides a fixed observation window over that stream,
featurises each window exactly like training samples, and emits a
labelled, confidence-scored decision per window — the paper's
"examines both spatial and temporal information in realtime".

No window is ever silently dropped: a window the identifier cannot (or
should not) classify yields an explicit *abstain* decision carrying a
machine-readable reason, so a supervisor process can distinguish "the
room is quiet" from "the reader is failing".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dataset import ActivityDataset
from repro.core.pipeline import M2AIPipeline
from repro.dsp.calibration import PhaseCalibrator, uncalibrated
from repro.dsp.features import M2AIFeaturizer
from repro.hardware.llrp import ReadLog
from repro.obs.metrics import counter
from repro.obs.tracing import span
from repro.runtime.breaker import stage_boundary

ABSTAIN = "abstain"
"""Label carried by abstain decisions."""

REASON_TOO_FEW_READS = "too_few_reads"
"""Abstain reason: the window held fewer than ``min_reads`` reads."""

REASON_DEAD_PORTS = "dead_ports"
"""Abstain reason: fewer than ``min_live_ports`` ports reported reads."""

REASON_LOW_CONFIDENCE = "low_confidence"
"""Abstain reason: top softmax probability below ``min_confidence``."""

REASON_STAGE_FAILURE = "stage_failure"
"""Abstain reason: a pipeline stage raised under supervision."""

REASON_BREAKER_OPEN = "breaker_open"
"""Abstain reason: a stage's circuit breaker rejected the window."""

REASON_DEADLINE = "deadline_exceeded"
"""Abstain reason: the window missed its wall-clock deadline."""

REASON_ADMISSION = "admission_rejected"
"""Abstain reason: the fleet rejected the stream at admission (over
capacity), so its windows are answered without being served."""


@dataclass(frozen=True)
class WindowDecision:
    """One emitted decision.

    Attributes:
        t_start_s: window start time in stream time.
        t_end_s: window end time.
        label: predicted activity class, or :data:`ABSTAIN`.
        confidence: softmax probability of the predicted class (0 for
            an abstain).
        n_reads: reads that fell inside the window.
        abstained: True when the identifier declined to classify.
        reason: machine-readable abstain reason (one of
            :data:`REASON_TOO_FEW_READS`, :data:`REASON_DEAD_PORTS`,
            :data:`REASON_LOW_CONFIDENCE`), None for a labelled
            decision.
    """

    t_start_s: float
    t_end_s: float
    label: str
    confidence: float
    n_reads: int
    abstained: bool = False
    reason: str | None = None


def abstain_decision(
    start: float, end: float, n_reads: int, reason: str
) -> WindowDecision:
    """Build (and count) one abstain decision.

    The single construction point for abstains — the identifier and
    the runtime supervisor both emit through it, so the
    ``streaming.abstain_total`` counter stays authoritative.
    """
    counter("streaming.abstain_total", reason=reason).inc()
    return WindowDecision(
        t_start_s=start,
        t_end_s=end,
        label=ABSTAIN,
        confidence=0.0,
        n_reads=n_reads,
        abstained=True,
        reason=reason,
    )


def split_windows(
    log: ReadLog, window_s: float, hop_s: float | None = None
) -> list[tuple[float, ReadLog]]:
    """Cut a continuous log into complete observation windows.

    Uses the same windowing grid as
    :meth:`StreamingIdentifier.identify` (start snapped to the dwell
    grid, a window complete once its final dwell has started), so a
    supervisor slicing windows up front sees exactly the windows the
    batched path would.

    Args:
        log: the continuous session log.
        window_s: observation window length.
        hop_s: stride between windows (defaults to ``window_s``).

    Returns:
        ``(t_start_s, window_log)`` pairs in time order; empty when
        the log cannot hold one complete window.

    Raises:
        ValueError: on a non-positive ``window_s`` or ``hop_s``.
    """
    if window_s is None or window_s <= 0:
        raise ValueError("window_s must be positive")
    if hop_s is not None and hop_s <= 0:
        raise ValueError("hop_s must be positive")
    hop = window_s if hop_s is None else hop_s
    if log.n_reads == 0:
        return []
    dwell = log.meta.dwell_s
    if np.all(log.timestamp_s[1:] >= log.timestamp_s[:-1]):
        sorted_log = log
    else:
        sorted_log = log.take(np.argsort(log.timestamp_s, kind="stable"))
    ts = sorted_log.timestamp_s
    t0 = np.floor(float(ts[0]) / dwell) * dwell
    t_end = float(ts[-1]) + dwell
    starts: list[float] = []
    start = t0
    while start + window_s <= t_end + 1e-9:
        starts.append(float(start))
        start += hop
    if not starts:
        return []
    starts_arr = np.asarray(starts, dtype=np.float64)
    lo = np.searchsorted(ts, starts_arr, side="left")
    hi = np.searchsorted(ts, starts_arr + window_s, side="left")
    return [
        (w_start, sorted_log.take(slice(int(w_lo), int(w_hi))))
        for w_start, w_lo, w_hi in zip(starts, lo, hi)
    ]


@dataclass
class StreamingIdentifier:
    """Sliding-window classifier over a continuous log.

    Args:
        pipeline: a fitted :class:`M2AIPipeline`.
        calibrator: the session's phase calibrator (None = raw doubled
            phases, only sensible in tests).
        window_s: observation window length — must match the frame
            count the pipeline was trained with.
        hop_s: stride between consecutive windows (defaults to the
            window length: back-to-back, non-overlapping decisions).
        featurizer: preprocessing used during training.
        min_reads: windows with fewer reads abstain (tag outage).
        min_live_ports: windows observing fewer antenna ports abstain
            (the spatial features need at least a 2-element aperture).
        min_confidence: classifications below this top-class
            probability become abstains; 0 (the default) disables the
            check, preserving the always-classify behaviour.
        serve_dtype: required pipeline serving precision (one of
            :data:`~repro.core.pipeline.SERVE_DTYPES`), or None (the
            default) to serve at whatever precision the pipeline is
            configured for.  When set, every predict call re-checks the
            pipeline — a pack silently invalidated by a retrain (or
            never installed) raises instead of silently serving at the
            wrong precision.
    """

    pipeline: M2AIPipeline
    calibrator: PhaseCalibrator | None = None
    window_s: float = 6.0
    hop_s: float | None = None
    featurizer: object = field(default_factory=M2AIFeaturizer)
    min_reads: int = 32
    min_live_ports: int = 2
    min_confidence: float = 0.0
    serve_dtype: str | None = None

    def _check_serve_dtype(self) -> None:
        """Fail loudly when the pipeline's precision drifted from ours."""
        if self.serve_dtype is None:
            return
        active = getattr(self.pipeline, "serve_dtype", "float64")
        if active != self.serve_dtype:
            raise RuntimeError(
                f"identifier requires serve_dtype={self.serve_dtype!r} but "
                f"the pipeline is serving {active!r} — call "
                "pipeline.set_serve_dtype() (a refit/fine-tune drops the pack)"
            )

    def identify(self, log: ReadLog) -> list[WindowDecision]:
        """Classify every complete window of ``log``.

        Every window position yields exactly one decision — labelled
        when the window is classifiable, abstaining with a reason
        otherwise.  Only a log too short to contain a single complete
        window produces an empty list.

        The log is sorted by timestamp once and every window becomes a
        ``searchsorted`` slice of that order (instead of one boolean
        scan of all reads per window); all classifiable windows are
        featurised and scored through a *single* batched
        ``predict_proba`` call.

        Returns:
            Decisions in time order (possibly empty for a short log).

        Raises:
            RuntimeError: when the pipeline is not fitted.
            ValueError: on a non-positive ``window_s`` or ``hop_s``
                (a zero or negative hop would never advance the
                window).
        """
        if self.pipeline.model is None:
            raise RuntimeError("pipeline not fitted")
        if self.window_s is None or self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.hop_s is not None and self.hop_s <= 0:
            raise ValueError("hop_s must be positive")
        hop = self.window_s if self.hop_s is None else self.hop_s
        if log.n_reads == 0:
            return []
        dwell = log.meta.dwell_s
        n_frames = max(1, int(round(self.window_s / dwell)))

        with span("streaming.identify", reads=log.n_reads) as identify_span:
            psi_full = (
                self.calibrator.calibrate(log)
                if self.calibrator is not None
                else uncalibrated(log)
            )
            if np.all(log.timestamp_s[1:] >= log.timestamp_s[:-1]):
                sorted_log, psi_sorted = log, psi_full
            else:
                order = np.argsort(log.timestamp_s, kind="stable")
                sorted_log = log.take(order)
                psi_sorted = psi_full[order]
            ts = sorted_log.timestamp_s
            t0 = np.floor(float(ts[0]) / dwell) * dwell
            # A window is complete once its final dwell has started.
            t_end = float(ts[-1]) + dwell
            starts: list[float] = []
            start = t0
            while start + self.window_s <= t_end + 1e-9:
                starts.append(float(start))
                start += hop
            if not starts:
                identify_span.set(windows=0)
                return []
            starts_arr = np.asarray(starts, dtype=np.float64)
            lo = np.searchsorted(ts, starts_arr, side="left")
            hi = np.searchsorted(ts, starts_arr + self.window_s, side="left")

            decisions: list[WindowDecision | None] = [None] * len(starts)
            pending: list[tuple[int, float, int]] = []
            samples = []
            for i, (w_start, w_lo, w_hi) in enumerate(zip(starts, lo, hi)):
                n_reads = int(w_hi - w_lo)
                with span("streaming.window", t_start_s=w_start):
                    if n_reads < self.min_reads:
                        decisions[i] = self._abstain(
                            w_start, w_start + self.window_s, n_reads,
                            REASON_TOO_FEW_READS,
                        )
                    else:
                        window_log = sorted_log.take(slice(int(w_lo), int(w_hi)))
                        live_ports = int(window_log.antenna_liveness().sum())
                        if live_ports < self.min_live_ports:
                            decisions[i] = self._abstain(
                                w_start, w_start + self.window_s, n_reads,
                                REASON_DEAD_PORTS,
                            )
                        else:
                            samples.append(
                                self.featurizer.transform(
                                    window_log,
                                    psi_sorted[w_lo:w_hi],
                                    n_frames=n_frames,
                                )
                            )
                            pending.append((i, w_start, n_reads))
                counter("streaming.windows_total").inc()

            if pending:
                dataset = ActivityDataset(
                    samples=samples, labels=["?"] * len(samples)
                )
                self._check_serve_dtype()
                with span("streaming.predict", windows=len(pending)):
                    with stage_boundary("predict"):
                        probas = self.pipeline.predict_proba(dataset)
                for (i, w_start, n_reads), proba in zip(pending, probas):
                    decisions[i] = self._score(
                        w_start, n_reads, np.asarray(proba)
                    )
            identify_span.set(windows=len(decisions))
        return [d for d in decisions if d is not None]

    def identify_window(
        self,
        window_log: ReadLog,
        t_start_s: float,
        psi: np.ndarray | None = None,
    ) -> WindowDecision:
        """Classify exactly one pre-sliced observation window.

        The per-window serving path used by
        :class:`~repro.runtime.supervisor.PipelineSupervisor`: windows
        are processed in isolation (one featurise + one
        ``predict_proba`` each) so a failure or breaker rejection in
        one window cannot take down a batch.  For the same reads the
        decision matches :meth:`identify`'s batched path.

        Args:
            window_log: the reads falling inside the window (e.g. from
                :func:`split_windows`).
            t_start_s: the window's nominal start in stream time.
            psi: pre-computed doubled phases aligned with
                ``window_log``; computed via the calibrator when None.

        Returns:
            Exactly one :class:`WindowDecision`.

        Raises:
            RuntimeError: when the pipeline is not fitted.
        """
        with span("streaming.window", t_start_s=t_start_s):
            decision, sample = self.prepare_window(window_log, t_start_s, psi)
            if decision is None:
                probas = self.predict_prepared([sample])
                decision = self.score_window(
                    t_start_s, window_log.n_reads, probas[0]
                )
            counter("streaming.windows_total").inc()
        return decision

    def prepare_window(
        self,
        window_log: ReadLog,
        t_start_s: float,
        psi: np.ndarray | None = None,
    ) -> tuple[WindowDecision | None, object | None]:
        """Featurise one window without running inference.

        The first phase of the split serving path: admission checks
        (read count, live ports) and featurisation happen here, so a
        fleet shard can collect featurised samples from many streams
        and push them through :meth:`predict_prepared` as one batch.

        Args:
            window_log: the reads falling inside the window.
            t_start_s: the window's nominal start in stream time.
            psi: pre-computed doubled phases aligned with
                ``window_log``; computed via the calibrator when None.

        Returns:
            ``(decision, None)`` when the window resolves without
            inference (an early abstain), ``(None, sample)`` with the
            featurised sample otherwise.

        Raises:
            RuntimeError: when the pipeline is not fitted.
        """
        if self.pipeline.model is None:
            raise RuntimeError("pipeline not fitted")
        t_end = t_start_s + self.window_s
        n_reads = window_log.n_reads
        if n_reads < self.min_reads:
            return (
                self._abstain(t_start_s, t_end, n_reads, REASON_TOO_FEW_READS),
                None,
            )
        if int(window_log.antenna_liveness().sum()) < self.min_live_ports:
            return (
                self._abstain(t_start_s, t_end, n_reads, REASON_DEAD_PORTS),
                None,
            )
        if psi is None:
            psi = (
                self.calibrator.calibrate(window_log)
                if self.calibrator is not None
                else uncalibrated(window_log)
            )
        dwell = window_log.meta.dwell_s
        n_frames = max(1, int(round(self.window_s / dwell)))
        sample = self.featurizer.transform(window_log, psi, n_frames=n_frames)
        return None, sample

    def prepare_windows(
        self,
        windows: list[tuple["ReadLog", float, np.ndarray | None]],
    ) -> list[tuple["WindowDecision | None", object | None]]:
        """Featurise many windows through one pooled DSP batch.

        The batched counterpart of :meth:`prepare_window`: admission
        checks run per window, then every admissible window is
        featurised through the featuriser's ``transform_many`` (one
        stacked MUSIC/periodogram batch for the lot) when it has one,
        falling back to per-window ``transform`` otherwise.  Results
        are identical to calling :meth:`prepare_window` per window.

        Args:
            windows: ``(window_log, t_start_s, psi)`` per window;
                ``psi`` None computes calibrated phases per window.

        Returns:
            One ``(decision, sample)`` pair per window, in order, with
            the same semantics as :meth:`prepare_window`.

        Raises:
            RuntimeError: when the pipeline is not fitted.
        """
        if self.pipeline.model is None:
            raise RuntimeError("pipeline not fitted")
        out: list[tuple[WindowDecision | None, object | None]] = [
            (None, None)
        ] * len(windows)
        pending: list[int] = []
        items: list[tuple[ReadLog, np.ndarray, int | None]] = []
        for i, (window_log, t_start_s, psi) in enumerate(windows):
            t_end = t_start_s + self.window_s
            n_reads = window_log.n_reads
            if n_reads < self.min_reads:
                out[i] = (
                    self._abstain(
                        t_start_s, t_end, n_reads, REASON_TOO_FEW_READS
                    ),
                    None,
                )
                continue
            if int(window_log.antenna_liveness().sum()) < self.min_live_ports:
                out[i] = (
                    self._abstain(t_start_s, t_end, n_reads, REASON_DEAD_PORTS),
                    None,
                )
                continue
            if psi is None:
                psi = (
                    self.calibrator.calibrate(window_log)
                    if self.calibrator is not None
                    else uncalibrated(window_log)
                )
            dwell = window_log.meta.dwell_s
            n_frames = max(1, int(round(self.window_s / dwell)))
            pending.append(i)
            items.append((window_log, psi, n_frames))
        if items:
            transform_many = getattr(self.featurizer, "transform_many", None)
            if transform_many is not None:
                samples = transform_many(items)
            else:
                samples = [
                    self.featurizer.transform(log, psi, n_frames=n_frames)
                    for log, psi, n_frames in items
                ]
            for i, sample in zip(pending, samples):
                out[i] = (None, sample)
        return out

    def predict_prepared(self, samples: list) -> np.ndarray:
        """Run inference over featurised samples from :meth:`prepare_window`.

        One ``predict_proba`` call for the whole batch — the fleet's
        cross-stream batching entry point — guarded by the ``predict``
        stage boundary so supervised callers get breaker protection.

        Returns:
            Class probabilities, shape ``(len(samples), n_classes)``.

        Raises:
            RuntimeError: when the pipeline is not fitted.
            ValueError: when ``samples`` is empty or shapes disagree.
        """
        if self.pipeline.model is None:
            raise RuntimeError("pipeline not fitted")
        self._check_serve_dtype()
        dataset = ActivityDataset(
            samples=list(samples), labels=["?"] * len(samples)
        )
        with span("streaming.predict", windows=len(samples)):
            with stage_boundary("predict"):
                return np.asarray(self.pipeline.predict_proba(dataset))

    def score_window(
        self, t_start_s: float, n_reads: int, proba: np.ndarray
    ) -> WindowDecision:
        """Turn one window's class probabilities into a decision.

        The final phase of the split serving path (confidence
        thresholding included); public so shard servers can score
        batch rows back to their streams.
        """
        return self._score(t_start_s, int(n_reads), np.asarray(proba))

    def _score(
        self, start: float, n_reads: int, proba: np.ndarray
    ) -> WindowDecision:
        """Turn one window's class probabilities into a decision."""
        end = start + self.window_s
        best = int(proba.argmax())
        confidence = float(proba[best])
        if confidence < self.min_confidence:
            return self._abstain(start, end, n_reads, REASON_LOW_CONFIDENCE)
        counter("streaming.decisions_total").inc()
        return WindowDecision(
            t_start_s=start,
            t_end_s=end,
            label=str(self.pipeline.classes[best]),
            confidence=confidence,
            n_reads=n_reads,
        )

    def _abstain(
        self, start: float, end: float, n_reads: int, reason: str
    ) -> WindowDecision:
        return abstain_decision(start, end, n_reads, reason)
