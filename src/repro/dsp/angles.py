"""Circular (angular) statistics helpers.

Reader phases live on the circle; medians and means must respect the
wrap-around.  These helpers are shared by calibration and tests.
"""

from __future__ import annotations

import numpy as np

TWO_PI = 2.0 * np.pi


def wrap_2pi(angles: np.ndarray | float) -> np.ndarray:
    """Wrap angles into ``[0, 2*pi)``.

    ``np.mod`` alone can return exactly ``2*pi`` for tiny negative
    inputs (floating-point rounding); that boundary case is folded to 0.
    """
    out = np.mod(angles, TWO_PI)
    return np.where(out >= TWO_PI, 0.0, out)


def wrap_pm_pi(angles: np.ndarray | float) -> np.ndarray:
    """Wrap angles into ``(-pi, pi]``."""
    return np.mod(np.asarray(angles) + np.pi, TWO_PI) - np.pi


def fold_double(phase: np.ndarray | float) -> np.ndarray:
    """Collapse the reader's pi ambiguity by doubling the phase.

    The R420 reports either the true phase or the true phase plus pi
    (Section V).  Doubling maps both onto the same point of the circle:
    ``2*(phi + pi) = 2*phi (mod 2*pi)``.  All downstream array
    processing happens in this doubled-phase domain, which also doubles
    the phase-per-metre and is why the antennas are spaced lambda/8.

    Args:
        phase: reported phase(s) in radians.

    Returns:
        Doubled phase(s) in ``[0, 2*pi)``.
    """
    return wrap_2pi(2.0 * np.asarray(phase, dtype=np.float64))


def circular_mean(angles: np.ndarray) -> float:
    """Mean direction of a sample of angles.

    Raises:
        ValueError: on an empty sample.
    """
    arr = np.asarray(angles, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("circular_mean of empty sample")
    return float(np.angle(np.exp(1j * arr).mean()))


def circular_median(angles: np.ndarray) -> float:
    """Robust median direction.

    Rotates the sample by its circular mean, takes the linear median of
    the wrapped residuals, and rotates back — the standard fast
    approximation, exact whenever the sample spans less than a
    half-circle around its mean (true for per-channel phase samples of
    a stationary tag, which is what calibration feeds in).

    Returns:
        Median angle in ``[0, 2*pi)``.

    Raises:
        ValueError: on an empty sample.
    """
    arr = np.asarray(angles, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("circular_median of empty sample")
    centre = circular_mean(arr)
    residuals = wrap_pm_pi(arr - centre)
    return float(wrap_2pi(centre + np.median(residuals)))


def circular_distance(a: np.ndarray | float, b: np.ndarray | float) -> np.ndarray:
    """Absolute angular distance in ``[0, pi]``."""
    return np.abs(wrap_pm_pi(np.asarray(a) - np.asarray(b)))
