"""Tag localization with an antenna hub — and why the paper exists.

Two arrays estimate per-array bearings from the dominant MUSIC peak
and triangulate each tag (the RF-IDraw / Tagoram capability the
paper's related work builds on).  The demo runs the same pipeline in
two environments:

* **open space** — bearings are clean, positions resolve to ~decimetres;
* **the laboratory** — wall/furniture reflections merge into the
  pseudospectrum, the dominant peak wanders off the geometric truth,
  and positions degrade to metres.

That contrast *is* the paper's motivation: in real rooms, geometric
multipath-fighting breaks down, so M2AI feeds the whole (multipath-
rich) spectrum to a learner instead of extracting a single angle.

Usage::

    python examples/tag_localization.py
"""

from __future__ import annotations

import numpy as np

from repro.dsp import PhaseCalibrator, localize_tag
from repro.geometry import Room, Vec2, make_laboratory, make_open_space
from repro.hardware import UniformLinearArray, make_tag, stationary_scene
from repro.hardware.hub import AntennaHub

TRUE_POSITIONS = [(5.0, 3.5), (7.5, 4.5), (4.0, 5.5)]


def localization_errors(room: Room, label: str) -> list[float]:
    hub = AntennaHub(
        room=room,
        arrays=(
            UniformLinearArray(center=Vec2(2.0, 0.3)),
            UniformLinearArray(center=Vec2(10.5, 0.3)),
        ),
        seed=11,
    )
    rng = np.random.default_rng(0)
    scene = stationary_scene(
        [(make_tag(f"asset-{i}", rng), pos) for i, pos in enumerate(TRUE_POSITIONS)]
    )
    calibrators = [PhaseCalibrator.fit(log) for log in hub.calibration_inventory(scene, 20.0)]
    logs = hub.inventory(scene, 4.0)
    psis = [cal.calibrate(log) for cal, log in zip(calibrators, logs)]

    print(f"--- {label} ---")
    print(f"{'tag':10s} {'true (x, y)':>16s} {'estimated':>18s} {'error':>8s}")
    errors = []
    for tag_index, true_pos in enumerate(TRUE_POSITIONS):
        position, bearings = localize_tag(logs, psis, list(hub.arrays), tag_index)
        error = float(np.linalg.norm(position - np.asarray(true_pos)))
        errors.append(error)
        bearing_text = ", ".join(f"{b.angle_deg:.0f}deg" for b in bearings)
        print(
            f"asset-{tag_index:<4d} ({true_pos[0]:5.2f}, {true_pos[1]:5.2f})  "
            f"({position[0]:6.2f}, {position[1]:6.2f})  {error:5.2f} m"
            f"   bearings: {bearing_text}"
        )
    print(f"median error: {np.median(errors):.2f} m\n")
    return errors


def main() -> None:
    open_errors = localization_errors(make_open_space(), "open space (no multipath)")
    lab_errors = localization_errors(make_laboratory(), "laboratory (rich multipath)")
    print(
        "Multipath inflates the median position error "
        f"{np.median(lab_errors) / max(np.median(open_errors), 1e-9):.0f}x.\n"
        "Geometric approaches fight this; M2AI instead hands the whole\n"
        "pseudospectrum (reflections included) to the CNN+LSTM — the extra\n"
        "peaks become evidence rather than error."
    )


if __name__ == "__main__":
    main()
