"""The fleet: admission, sharding, shedding, crash recovery, health.

A deployment serving "millions of users" is thousands of simultaneous
(room, reader, person-set) streams, not one.  :class:`FleetServer`
spreads admitted streams over shard workers (in-process by default,
one OS process per shard with ``mode="process"``), wraps each stream
in its own supervisor, and cross-stream batches inference inside each
shard.  On top sit the fleet-level robustness controls:

* **admission control** — past ``capacity`` a new stream is rejected
  with an explicit decision; windows submitted for a rejected stream
  are answered with ``REASON_ADMISSION`` abstains, never dropped
  silently;
* **load shedding** — when the fleet-wide queue backlog stays above
  ``max_queued_windows`` for ``overload_grace_ticks`` consecutive
  ticks, oldest windows are dropped (dead-lettered) from the
  *lowest-priority* streams first until the backlog fits;
* **crash recovery** — a dead worker is detected at the next tick,
  replaced, and its streams reassigned to the replacement (their
  supervisor state restarts; the reassignment is counted);
* **health roll-up** — per-stream supervisor states aggregate to
  per-shard and fleet-wide HEALTHY/DEGRADED/FAILED, exported through
  ``repro.obs`` gauges and counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.obs.metrics import counter, gauge
from repro.runtime.supervisor import (
    HEALTH_DEGRADED,
    HEALTH_FAILED,
    HEALTH_HEALTHY,
)
from repro.serving.workers import (
    InlineShardWorker,
    ProcessShardWorker,
    ShardWorker,
    TickResult,
    WorkerCrashedError,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.streaming import WindowDecision
    from repro.hardware.llrp import ReadLog

__all__ = [
    "AdmissionResult",
    "FleetHealth",
    "FleetServer",
    "ShardHealth",
    "SubmitReceipt",
]

REASON_CAPACITY = "capacity"
"""Admission rejection reason: the fleet is at stream capacity."""

_HEALTH_RANK = {HEALTH_HEALTHY: 0, HEALTH_DEGRADED: 1, HEALTH_FAILED: 2}
_HEALTH_VALUE = {HEALTH_HEALTHY: 0.0, HEALTH_DEGRADED: 1.0, HEALTH_FAILED: 2.0}


@dataclass(frozen=True)
class AdmissionResult:
    """The explicit outcome of one admission request.

    Attributes:
        stream_id: the requesting stream.
        admitted: whether a lane was created.
        reason: rejection reason (:data:`REASON_CAPACITY`), None when
            admitted.
        shard: index of the shard the stream landed on, None when
            rejected.
    """

    stream_id: str
    admitted: bool
    reason: str | None = None
    shard: int | None = None


@dataclass(frozen=True)
class SubmitReceipt:
    """What happened to one submitted log.

    Attributes:
        stream_id: the submitting stream.
        enqueued: complete windows added to the stream's queue.
        decisions: immediate decisions for windows that were *not*
            enqueued — ``REASON_ADMISSION`` abstains when the stream
            was rejected at admission (empty for admitted streams).
    """

    stream_id: str
    enqueued: int
    decisions: list["WindowDecision"] = field(default_factory=list)


@dataclass(frozen=True)
class ShardHealth:
    """One shard's health roll-up.

    Attributes:
        shard_id: shard index.
        state: worst state across the shard's streams (FAILED when
            the worker itself is dead).
        worker_alive: whether the shard worker is running.
        streams: stream id → that stream's supervisor health dict.
    """

    shard_id: int
    state: str
    worker_alive: bool
    streams: dict[str, dict]

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "shard_id": self.shard_id,
            "state": self.state,
            "worker_alive": self.worker_alive,
            "streams": dict(self.streams),
        }


@dataclass(frozen=True)
class FleetHealth:
    """The fleet-wide health roll-up.

    Attributes:
        state: worst state across shards.
        shards: per-shard roll-ups.
        n_streams: admitted streams currently laned.
        admitted_total: streams admitted since construction.
        rejected_total: admission rejections since construction.
        shed_windows_total: windows dropped by fleet load shedding.
        reassigned_total: stream reassignments after worker crashes.
    """

    state: str
    shards: list[ShardHealth]
    n_streams: int
    admitted_total: int
    rejected_total: int
    shed_windows_total: int
    reassigned_total: int

    def stream_states(self) -> dict[str, str]:
        """Stream id → HEALTHY/DEGRADED/FAILED across the fleet."""
        states: dict[str, str] = {}
        for shard in self.shards:
            for sid, report in shard.streams.items():
                states[sid] = str(report["state"])
        return states

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "state": self.state,
            "n_streams": self.n_streams,
            "admitted_total": self.admitted_total,
            "rejected_total": self.rejected_total,
            "shed_windows_total": self.shed_windows_total,
            "reassigned_total": self.reassigned_total,
            "shards": [shard.as_dict() for shard in self.shards],
        }


@dataclass
class _StreamInfo:
    shard: int
    priority: int
    calibrator: object = None


class FleetServer:
    """Multi-tenant serving over shard workers.

    Args:
        identifier_factory: zero-argument callable returning a fresh
            :class:`~repro.core.streaming.StreamingIdentifier` over the
            shared fitted pipeline; must be importable from a child
            process in ``mode="process"``.
        capacity: max admitted streams; admission past it is rejected.
        n_shards: shard workers to spread streams over.
        mode: ``"inline"`` (shards in this process; default) or
            ``"process"`` (one OS process per shard, shared-memory log
            transport, crash detection + reassignment).
        batch_inference: cross-stream batched inference inside each
            shard (True) or the naive one-predict-per-window loop
            (False; the benchmark's comparison mode).
        windows_per_stream_per_tick: windows a lane may serve per tick.
        max_queued_windows: fleet-wide backlog watermark that arms
            load shedding.
        overload_grace_ticks: consecutive over-watermark ticks before
            shedding actually drops windows.
        supervisor_kwargs: forwarded to every stream's supervisor
            (queue bound, deadline, breaker thresholds, clock...).

    Raises:
        ValueError: on a non-positive capacity/shard count or an
            unknown mode.
    """

    def __init__(
        self,
        identifier_factory: Callable,
        capacity: int = 256,
        n_shards: int = 1,
        mode: str = "inline",
        batch_inference: bool = True,
        windows_per_stream_per_tick: int = 4,
        max_queued_windows: int = 1024,
        overload_grace_ticks: int = 2,
        supervisor_kwargs: dict | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if mode not in ("inline", "process"):
            raise ValueError(f"unknown fleet mode {mode!r}")
        if max_queued_windows < 1:
            raise ValueError("max_queued_windows must be >= 1")
        if overload_grace_ticks < 1:
            raise ValueError("overload_grace_ticks must be >= 1")
        self.capacity = int(capacity)
        self.mode = mode
        self.max_queued_windows = int(max_queued_windows)
        self.overload_grace_ticks = int(overload_grace_ticks)
        self._factory = identifier_factory
        self._worker_kwargs = {
            "identifier_factory": identifier_factory,
            "batch_inference": bool(batch_inference),
            "windows_per_stream": int(windows_per_stream_per_tick),
            "supervisor_kwargs": dict(supervisor_kwargs or {}),
        }
        self.workers: list[ShardWorker] = [
            self._spawn_worker(i) for i in range(int(n_shards))
        ]
        # Windowing parameters for answering rejected streams' windows.
        self._reference_identifier = identifier_factory()
        self._streams: dict[str, _StreamInfo] = {}
        self._rejected: set[str] = set()
        self._overloaded_ticks = 0
        self._admitted_total = 0
        self._rejected_total = 0
        self._shed_total = 0
        self._reassigned_total = 0

    # -- admission -------------------------------------------------------

    def admit(
        self, stream_id: str, priority: int = 0, calibrator: object = None
    ) -> AdmissionResult:
        """Request a lane for a new stream.

        Past ``capacity`` the request is rejected with an explicit
        :class:`AdmissionResult` (and counted); otherwise the stream
        lands on the least-loaded shard.

        Raises:
            ValueError: when the stream is already admitted.
        """
        if stream_id in self._streams:
            raise ValueError(f"stream {stream_id!r} already admitted")
        if len(self._streams) >= self.capacity:
            self._rejected_total += 1
            self._rejected.add(stream_id)
            counter(
                "serving.admission.rejected_total", reason=REASON_CAPACITY
            ).inc()
            return AdmissionResult(
                stream_id=stream_id, admitted=False, reason=REASON_CAPACITY
            )
        shard = self._least_loaded_shard()
        self.workers[shard].add_stream(
            stream_id, priority=priority, calibrator=calibrator
        )
        self._streams[stream_id] = _StreamInfo(
            shard=shard, priority=int(priority), calibrator=calibrator
        )
        self._rejected.discard(stream_id)
        self._admitted_total += 1
        counter("serving.admission.admitted_total").inc()
        gauge("serving.streams.active").set(float(len(self._streams)))
        return AdmissionResult(stream_id=stream_id, admitted=True, shard=shard)

    def evict(self, stream_id: str) -> None:
        """Remove an admitted stream and free its capacity slot.

        Raises:
            KeyError: when the stream is not admitted.
        """
        info = self._streams.pop(stream_id)
        self.workers[info.shard].remove_stream(stream_id)
        gauge("serving.streams.active").set(float(len(self._streams)))

    # -- ingest ----------------------------------------------------------

    def submit(self, stream_id: str, log: "ReadLog") -> SubmitReceipt:
        """Route one continuous log to its stream's queue.

        A rejected stream's windows are answered immediately with
        ``REASON_ADMISSION`` abstain decisions — the fleet never
        silently swallows data it declined to serve.

        Raises:
            KeyError: when the stream was never offered to
                :meth:`admit` at all.
        """
        info = self._streams.get(stream_id)
        if info is None:
            if stream_id not in self._rejected:
                raise KeyError(
                    f"stream {stream_id!r} was never admitted; call admit()"
                )
            return SubmitReceipt(
                stream_id=stream_id,
                enqueued=0,
                decisions=self._admission_decisions(log),
            )
        enqueued = self.workers[info.shard].submit(stream_id, log)
        return SubmitReceipt(stream_id=stream_id, enqueued=enqueued)

    # -- serving ---------------------------------------------------------

    def tick(self) -> dict[str, list["WindowDecision"]]:
        """One fleet round: recover crashes, shed overload, serve.

        Returns:
            Stream id → decisions emitted this tick.
        """
        self._recover_crashed_workers()
        self._shed_if_overloaded()
        merged: dict[str, list["WindowDecision"]] = {}
        for worker in self.workers:
            try:
                result = worker.tick()
            except WorkerCrashedError:
                # Died mid-tick: next tick reassigns its streams.
                counter("serving.workers.crashed_total").inc()
                continue
            for sid, decisions in result.decisions.items():
                merged.setdefault(sid, []).extend(decisions)
        self._export_health_gauges()
        return merged

    def drain(self, max_ticks: int = 10_000) -> dict[str, list["WindowDecision"]]:
        """Tick until every queue is empty; merged decisions per stream.

        Raises:
            RuntimeError: when queues fail to empty within
                ``max_ticks`` (a wedged worker would otherwise spin
                this loop forever).
        """
        merged: dict[str, list["WindowDecision"]] = {}
        for _ in range(max_ticks):
            for sid, decisions in self.tick().items():
                merged.setdefault(sid, []).extend(decisions)
            if self.total_queued() == 0:
                return merged
        raise RuntimeError(f"fleet failed to drain within {max_ticks} ticks")

    def total_queued(self) -> int:
        """Fleet-wide queued-window backlog (dead workers count 0)."""
        total = 0
        for worker in self.workers:
            try:
                total += sum(worker.queue_depths().values())
            except WorkerCrashedError:
                continue
        return total

    # -- health ----------------------------------------------------------

    def health(self) -> FleetHealth:
        """The fleet-wide HEALTHY/DEGRADED/FAILED roll-up."""
        shards: list[ShardHealth] = []
        for index, worker in enumerate(self.workers):
            alive = worker.alive()
            streams: dict[str, dict] = {}
            if alive:
                try:
                    streams = worker.health()
                except WorkerCrashedError:
                    alive = False
            if not alive:
                state = HEALTH_FAILED
            elif streams:
                state = max(
                    (str(report["state"]) for report in streams.values()),
                    key=lambda s: _HEALTH_RANK.get(s, 2),
                )
            else:
                state = HEALTH_HEALTHY
            shards.append(
                ShardHealth(
                    shard_id=index,
                    state=state,
                    worker_alive=alive,
                    streams=streams,
                )
            )
        fleet_state = (
            max(
                (shard.state for shard in shards),
                key=lambda s: _HEALTH_RANK.get(s, 2),
            )
            if shards
            else HEALTH_HEALTHY
        )
        return FleetHealth(
            state=fleet_state,
            shards=shards,
            n_streams=len(self._streams),
            admitted_total=self._admitted_total,
            rejected_total=self._rejected_total,
            shed_windows_total=self._shed_total,
            reassigned_total=self._reassigned_total,
        )

    def stop(self) -> None:
        """Stop every worker (idempotent)."""
        for worker in self.workers:
            worker.stop()

    # -- internals -------------------------------------------------------

    def _spawn_worker(self, shard_id: int) -> ShardWorker:
        if self.mode == "process":
            return ProcessShardWorker(shard_id, **self._worker_kwargs)
        return InlineShardWorker(shard_id, **self._worker_kwargs)

    def _least_loaded_shard(self) -> int:
        loads = [0] * len(self.workers)
        for info in self._streams.values():
            loads[info.shard] += 1
        return int(min(range(len(loads)), key=lambda i: loads[i]))

    def _admission_decisions(self, log: "ReadLog") -> list["WindowDecision"]:
        """One explicit REASON_ADMISSION abstain per complete window."""
        from repro.core.streaming import (
            REASON_ADMISSION,
            abstain_decision,
            split_windows,
        )

        identifier = self._reference_identifier
        windows = split_windows(log, identifier.window_s, identifier.hop_s)
        return [
            abstain_decision(
                t_start,
                t_start + identifier.window_s,
                window_log.n_reads,
                REASON_ADMISSION,
            )
            for t_start, window_log in windows
        ]

    def _recover_crashed_workers(self) -> None:
        """Replace dead workers and reassign their streams."""
        for index, worker in enumerate(self.workers):
            if worker.alive():
                continue
            worker.stop()
            replacement = self._spawn_worker(index)
            self.workers[index] = replacement
            orphaned = [
                (sid, info)
                for sid, info in self._streams.items()
                if info.shard == index
            ]
            for sid, info in orphaned:
                # Queued windows died with the worker; the stream
                # itself survives with a fresh supervisor.
                replacement.add_stream(
                    sid, priority=info.priority, calibrator=info.calibrator
                )
                self._reassigned_total += 1
                counter("serving.workers.reassigned_total").inc()
            if orphaned:
                counter("serving.workers.replaced_total").inc()

    def _shed_if_overloaded(self) -> None:
        """Drop-oldest from lowest-priority streams under sustained load."""
        total = self.total_queued()
        if total <= self.max_queued_windows:
            self._overloaded_ticks = 0
            return
        self._overloaded_ticks += 1
        if self._overloaded_ticks < self.overload_grace_ticks:
            return
        excess = total - self.max_queued_windows
        depths: dict[str, int] = {}
        for worker in self.workers:
            try:
                depths.update(worker.queue_depths())
            except WorkerCrashedError:
                continue
        # Lowest priority first; deepest queue first within a priority.
        order = sorted(
            (sid for sid in depths if sid in self._streams),
            key=lambda sid: (self._streams[sid].priority, -depths[sid]),
        )
        for sid in order:
            if excess <= 0:
                break
            take = min(depths[sid], excess)
            if take <= 0:
                continue
            info = self._streams[sid]
            try:
                dropped = self.workers[info.shard].shed(sid, take)
            except WorkerCrashedError:
                continue
            excess -= dropped
            self._shed_total += dropped

    def _export_health_gauges(self) -> None:
        health = self.health()
        for shard in health.shards:
            gauge("serving.shard.health", shard=str(shard.shard_id)).set(
                _HEALTH_VALUE.get(shard.state, 2.0)
            )
        gauge("serving.streams.active").set(float(len(self._streams)))
