"""Shared plumbing for the classical baselines.

Fig. 9 compares M2AI against ten conventional classifiers; scikit-learn
is not available here, so :mod:`repro.ml` implements each from scratch
behind one small interface.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class LabelEncoder:
    """Map arbitrary hashable labels to dense integer ids."""

    def __init__(self) -> None:
        self.classes_: np.ndarray | None = None

    def fit(self, labels: np.ndarray) -> "LabelEncoder":
        """Learn the sorted class vocabulary; returns ``self``."""
        self.classes_ = np.array(sorted(set(np.asarray(labels).tolist())))
        return self

    def transform(self, labels: np.ndarray) -> np.ndarray:
        """Labels to ids.

        Raises:
            RuntimeError: when not fitted.
            ValueError: for a label unseen at fit time.
        """
        if self.classes_ is None:
            raise RuntimeError("LabelEncoder not fitted")
        lookup = {c: i for i, c in enumerate(self.classes_.tolist())}
        try:
            return np.array([lookup[label] for label in np.asarray(labels).tolist()])
        except KeyError as exc:
            raise ValueError(f"unseen label {exc.args[0]!r}") from None

    def fit_transform(self, labels: np.ndarray) -> np.ndarray:
        """Fit and transform in one call."""
        return self.fit(labels).transform(labels)

    def inverse(self, ids: np.ndarray) -> np.ndarray:
        """Ids back to labels."""
        if self.classes_ is None:
            raise RuntimeError("LabelEncoder not fitted")
        return self.classes_[np.asarray(ids)]

    @property
    def n_classes(self) -> int:
        """Number of fitted classes."""
        if self.classes_ is None:
            raise RuntimeError("LabelEncoder not fitted")
        return len(self.classes_)


class Classifier(ABC):
    """Interface every baseline implements."""

    @abstractmethod
    def fit(self, x: np.ndarray, y: np.ndarray) -> "Classifier":
        """Train on features ``(n, d)`` and labels ``(n,)``."""

    @abstractmethod
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict labels for features ``(n, d)``."""

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy on the given data."""
        return float(np.mean(self.predict(x) == np.asarray(y)))


def validate_xy(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Common input checks: 2-D features aligned with 1-D labels.

    Raises:
        ValueError: on empty or misaligned inputs.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y)
    if x.ndim != 2:
        raise ValueError(f"features must be 2-D, got {x.shape}")
    if y.ndim != 1 or len(y) != len(x):
        raise ValueError("labels must be 1-D and aligned with features")
    if len(x) == 0:
        raise ValueError("empty training set")
    return x, y
