"""Supervised runtime: retries, circuit breakers, deadlines, health.

The serving loop of a deployed recognizer must keep emitting decisions
*through* faults — flaky reader transports, a DSP stage blowing up on
degenerate windows, inference running past its real-time budget.  This
package supplies the supervision layer:

* :mod:`repro.runtime.retry` — exponential backoff with full jitter
  under a deadline budget, deterministic via a seeded jitter RNG;
* :mod:`repro.runtime.breaker` — per-stage circuit breakers and the
  :func:`~repro.runtime.breaker.stage_boundary` guard protocol library
  stages opt into;
* :mod:`repro.runtime.supervisor` — the
  :class:`~repro.runtime.supervisor.PipelineSupervisor` driving a
  :class:`~repro.core.streaming.StreamingIdentifier` over a bounded
  queue with dead-lettering and a HEALTHY/DEGRADED/FAILED health
  report.

Quickstart::

    from repro.runtime import PipelineSupervisor

    supervisor = PipelineSupervisor(identifier, window_deadline_s=2.0)
    decisions = supervisor.process(stream_log)   # never raises per-window
    print(supervisor.health().state)
"""

from repro.runtime.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceededError,
    GuardSet,
    StageFailureError,
    active_guards,
    guard_scope,
    stage_boundary,
)
from repro.runtime.retry import (
    RetryExhaustedError,
    RetryPolicy,
    backoff_delays,
    call_with_retry,
    retry,
)
from repro.runtime.supervisor import (
    GUARDED_STAGES,
    HEALTH_DEGRADED,
    HEALTH_FAILED,
    HEALTH_HEALTHY,
    DeadLetter,
    HealthReport,
    PipelineSupervisor,
    PreparedWindow,
)

__all__ = [
    "GUARDED_STAGES",
    "HEALTH_DEGRADED",
    "HEALTH_FAILED",
    "HEALTH_HEALTHY",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadLetter",
    "DeadlineExceededError",
    "GuardSet",
    "HealthReport",
    "PipelineSupervisor",
    "PreparedWindow",
    "RetryExhaustedError",
    "RetryPolicy",
    "StageFailureError",
    "active_guards",
    "backoff_delays",
    "call_with_retry",
    "guard_scope",
    "retry",
    "stage_boundary",
]
