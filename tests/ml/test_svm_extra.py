"""SVM internals beyond the shared classifier contract."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import LinearSVM, RbfSVM


def margin_data(n=60, gap=2.0, seed=0):
    rng = np.random.default_rng(seed)
    x_pos = rng.normal(0, 0.4, (n // 2, 2)) + [gap, 0.0]
    x_neg = rng.normal(0, 0.4, (n // 2, 2)) - [gap, 0.0]
    x = np.concatenate([x_pos, x_neg])
    y = np.array(["pos"] * (n // 2) + ["neg"] * (n // 2))
    return x, y


class TestLinearSVM:
    def test_decision_function_signs(self):
        x, y = margin_data()
        model = LinearSVM(epochs=30, rng=np.random.default_rng(0)).fit(x, y)
        scores = model.decision_function(x)
        assert scores.shape == (len(x), 2)
        # The winning class's score column should be the largest.
        predicted = model.predict(x)
        np.testing.assert_array_equal(predicted, y)

    def test_regularisation_shrinks_weights(self):
        x, y = margin_data()
        soft = LinearSVM(c=0.01, epochs=30, rng=np.random.default_rng(0)).fit(x, y)
        hard = LinearSVM(c=100.0, epochs=30, rng=np.random.default_rng(0)).fit(x, y)
        assert np.linalg.norm(soft._w) < np.linalg.norm(hard._w)

    def test_c_validation(self):
        with pytest.raises(ValueError):
            LinearSVM(c=0.0)


class TestRbfSVM:
    def test_gamma_heuristic_set_on_fit(self):
        x, y = margin_data()
        model = RbfSVM(epochs=10, rng=np.random.default_rng(0)).fit(x, y)
        assert model._gamma_fitted > 0

    def test_explicit_gamma_respected(self):
        x, y = margin_data()
        model = RbfSVM(gamma=2.5, epochs=10, rng=np.random.default_rng(0)).fit(x, y)
        assert model._gamma_fitted == 2.5

    def test_multiclass(self):
        rng = np.random.default_rng(1)
        x = np.concatenate([rng.normal(c * 4, 0.5, (20, 3)) for c in range(3)])
        y = np.repeat(["a", "b", "c"], 20)
        model = RbfSVM(epochs=15, rng=np.random.default_rng(0)).fit(x, y)
        assert model.score(x, y) > 0.95

    def test_c_validation(self):
        with pytest.raises(ValueError):
            RbfSVM(c=-1.0)
