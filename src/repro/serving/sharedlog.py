"""Shipping :class:`~repro.hardware.llrp.ReadLog` to worker processes.

A fleet's process workers receive read logs from the ingest side.  A
small log travels inline (pickled through the command queue), but a
large one — minutes of dense-deployment inventory, megabytes of
struct-of-arrays — would be copied twice by the queue's pickle round
trip.  Above :data:`SHARED_MEMORY_MIN_BYTES` the numeric arrays are
packed into one :class:`multiprocessing.shared_memory.SharedMemory`
block instead and only the block name plus array headers cross the
queue.

The receiver copies out of the block and unlinks it immediately, so
blocks live exactly as long as one submission and a crashed consumer
leaks at most the blocks in flight.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.llrp import ReadLog, ReaderMeta

__all__ = [
    "SHARED_MEMORY_MIN_BYTES",
    "ShippedLog",
    "discard_shipped",
    "ship_log",
    "unship_log",
]

SHARED_MEMORY_MIN_BYTES = 1 << 16
"""Logs whose array payload exceeds this travel via shared memory."""

_ARRAY_FIELDS = (
    "tag_index",
    "antenna",
    "channel",
    "frequency_hz",
    "timestamp_s",
    "phase_rad",
    "rssi_dbm",
)


@dataclass(frozen=True)
class ShippedLog:
    """A read log encoded for transport to another process.

    Attributes:
        epcs: the log's EPC vocabulary (tiny; always inline).
        meta: session facts (tiny; always inline).
        headers: per-array ``(name, dtype_str, shape)`` tuples in
            payload order.
        inline: concatenated array bytes when travelling inline,
            None when a shared-memory block carries them.
        shm_name: name of the shared-memory block, None when inline.
        nbytes: total payload size (sizing decisions + metrics).
    """

    epcs: tuple[str, ...]
    meta: ReaderMeta
    headers: tuple[tuple[str, str, tuple[int, ...]], ...]
    inline: bytes | None
    shm_name: str | None
    nbytes: int


def _payload(log: ReadLog) -> tuple[tuple, bytes]:
    headers = []
    chunks = []
    for name in _ARRAY_FIELDS:
        arr = np.ascontiguousarray(getattr(log, name))
        headers.append((name, arr.dtype.str, tuple(arr.shape)))
        chunks.append(arr.tobytes())
    return tuple(headers), b"".join(chunks)


def ship_log(
    log: ReadLog, min_shared_bytes: int = SHARED_MEMORY_MIN_BYTES
) -> ShippedLog:
    """Encode a log for the command queue.

    Args:
        log: the log to ship.
        min_shared_bytes: payload size above which a shared-memory
            block is used instead of inline bytes.

    Returns:
        A picklable :class:`ShippedLog` (the heavy arrays live in
        shared memory when large).
    """
    headers, payload = _payload(log)
    if len(payload) < min_shared_bytes:
        return ShippedLog(
            epcs=log.epcs,
            meta=log.meta,
            headers=headers,
            inline=payload,
            shm_name=None,
            nbytes=len(payload),
        )
    from multiprocessing import shared_memory

    block = shared_memory.SharedMemory(create=True, size=len(payload))
    try:
        block.buf[: len(payload)] = payload
        name = block.name
    finally:
        block.close()
    return ShippedLog(
        epcs=log.epcs,
        meta=log.meta,
        headers=headers,
        inline=None,
        shm_name=name,
        nbytes=len(payload),
    )


def unship_log(shipped: ShippedLog) -> ReadLog:
    """Decode a :class:`ShippedLog` back into an owned :class:`ReadLog`.

    Shared-memory blocks are copied out, closed and unlinked here, so
    the returned log owns its arrays and the block is gone.

    Raises:
        FileNotFoundError: when the shared block vanished (producer
            crashed before the consumer attached).
    """
    if shipped.inline is not None:
        payload = shipped.inline
    else:
        from multiprocessing import shared_memory

        block = shared_memory.SharedMemory(name=shipped.shm_name)
        try:
            payload = bytes(block.buf[: shipped.nbytes])
        finally:
            block.close()
            block.unlink()
    arrays = {}
    offset = 0
    for name, dtype_str, shape in shipped.headers:
        dtype = np.dtype(dtype_str)
        count = int(np.prod(shape)) if shape else 1
        nbytes = count * dtype.itemsize
        arrays[name] = np.frombuffer(
            payload, dtype=dtype, count=count, offset=offset
        ).reshape(shape).copy()
        offset += nbytes
    return ReadLog(epcs=shipped.epcs, meta=shipped.meta, **arrays)


def discard_shipped(shipped: ShippedLog) -> None:
    """Release a shipped log without decoding it (shed/reject paths).

    Unlinks the shared block when one exists; inline payloads need no
    cleanup.  Missing blocks are ignored — the consumer may already
    have unshipped it.
    """
    if shipped.shm_name is None:
        return
    from multiprocessing import shared_memory

    try:
        block = shared_memory.SharedMemory(name=shipped.shm_name)
    except FileNotFoundError:
        return
    block.close()
    block.unlink()
