"""The isolation smoke test: poison one stream, the rest don't notice.

This is the fleet's core promise — a NaN-poisoned tenant degrades
only itself.  The benchmark (``python -m repro.eval.serving``) proves
the same property at scale with latency bounds; this test is the fast
CI gate.
"""

from __future__ import annotations

from repro.serving import FleetServer

from .conftest import make_factory, make_log, poison_log

N_STREAMS = 10
POISONED = {"s0"}  # 10% of the fleet


def _decision_keys(decisions):
    return {
        sid: [(round(d.t_start_s, 6), d.label, d.abstained, d.reason) for d in ds]
        for sid, ds in decisions.items()
    }


def _run_fleet(poison: bool):
    fleet = FleetServer(
        make_factory(), capacity=N_STREAMS, n_shards=2, batch_inference=True
    )
    logs = {
        f"s{i}": make_log(n=1200, seed=i, duration_s=10.0)
        for i in range(N_STREAMS)
    }
    for sid in logs:
        fleet.admit(sid)
    for sid, log in logs.items():
        if poison and sid in POISONED:
            fleet.submit(sid, poison_log(log, fraction=0.5, seed=99))
        else:
            fleet.submit(sid, log)
    decisions = fleet.drain()
    health = fleet.health()
    fleet.stop()
    return _decision_keys(decisions), health


def test_poisoned_stream_leaves_healthy_streams_unchanged():
    baseline, _ = _run_fleet(poison=False)
    poisoned, health = _run_fleet(poison=True)

    healthy = [sid for sid in baseline if sid not in POISONED]
    unchanged = [sid for sid in healthy if poisoned[sid] == baseline[sid]]
    # The acceptance bar is >= 95% unchanged; this fleet should be exact.
    assert len(unchanged) >= 0.95 * len(healthy), (
        sorted(set(healthy) - set(unchanged))
    )

    # The poisoned stream itself still answered every window.
    assert len(poisoned["s0"]) == len(baseline["s0"])

    # And the damage is visible where it belongs: only s0 degraded.
    states = health.stream_states()
    assert all(
        states[sid] == "healthy" for sid in healthy
    ), {s: states[s] for s in healthy if states[s] != "healthy"}


def test_poisoned_stream_never_raises_out_of_tick():
    fleet = FleetServer(make_factory(), capacity=4, n_shards=1)
    for i in range(4):
        fleet.admit(f"s{i}")
    log = make_log(n=1200, seed=3, duration_s=10.0)
    for i in range(4):
        fleet.submit(
            f"s{i}", poison_log(log, fraction=1.0) if i == 0 else log
        )
    decisions = fleet.drain()  # must not raise
    assert sum(len(ds) for ds in decisions.values()) == 4 * 4
