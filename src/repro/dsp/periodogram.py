"""Periodogram power estimation (Section III-C.2, Eq. 13-16).

The paper pairs the pseudospectrum (accurate angles, unreliable
powers) with the periodogram (accurate powers): the DFT of the
snapshot across the antenna aperture gives a coarse spatial power
density with N bins — "four values" on the R420 (Fig. 5b).

This module also provides the generic discrete-time periodogram
(Eq. 14) because tests pin it to Parseval's theorem (Eq. 16's
footnote), and the FFT-based featuriser of Fig. 16 reuses it.
"""

from __future__ import annotations

import numpy as np

from repro.obs.tracing import span


def periodogram_psd(y: np.ndarray) -> np.ndarray:
    """The classical periodogram ``phi_p(omega_k) = |Y(k)|^2 / N``.

    Evaluated at the standard frequency sampling ``omega_k = 2*pi*k/N``
    (Eq. 15) via the FFT (Eq. 16).

    Args:
        y: ``(N,)`` complex or real sequence.

    Returns:
        Non-negative power densities, shape: ``(N,)``.

    Raises:
        ValueError: on an empty sequence.
    """
    arr = np.asarray(y, dtype=np.complex128)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("y must be a non-empty 1-D sequence")
    spectrum = np.fft.fft(arr)
    return (np.abs(spectrum) ** 2) / arr.size


def spatial_periodogram(
    snapshots: np.ndarray,
    valid: np.ndarray | None = None,
    liveness: np.ndarray | None = None,
) -> np.ndarray:
    """Average spatial periodogram of a dwell's snapshots.

    Args:
        snapshots: ``(K, N)`` complex snapshots (rounds x antennas).
        valid: optional ``(K, N)`` observation mask; incomplete
            snapshots are dropped when any complete one exists.
        liveness: optional ``(N,)`` port-liveness mask for a degraded
            array.  Dead ports are excluded from the completeness
            check, forced to zero, and the power density is rescaled by
            ``N / n_live`` so the per-live-element power level stays
            comparable to the healthy array instead of silently
            sagging.  None (or all-live) reproduces the healthy path
            exactly.

    Returns:
        Mean power per spatial-frequency bin, shape: ``(N,)``.

    Raises:
        ValueError: when nothing is observed, or no port is live.
    """
    x = np.asarray(snapshots, dtype=np.complex128)
    if x.ndim != 2:
        raise ValueError("snapshots must be (K, N)")
    with span("dsp.periodogram", snapshots=int(x.shape[0])):
        live = None
        if liveness is not None:
            live = np.asarray(liveness, dtype=bool)
            if live.shape != (x.shape[1],):
                raise ValueError("liveness must be (N,)")
            if not live.any():
                raise ValueError("no live ports")
            if live.all():
                live = None
        if valid is not None:
            complete = (
                valid.all(axis=1) if live is None else valid[:, live].all(axis=1)
            )
            if complete.any():
                x = x[complete]
            elif not valid.any():
                raise ValueError("no valid snapshots")
        if x.shape[0] == 0:
            raise ValueError("no valid snapshots")
        scale = 1.0
        if live is not None:
            x = np.where(live[None, :], x, 0.0)
            scale = x.shape[1] / float(live.sum())
        powers = np.abs(np.fft.fft(x, axis=1)) ** 2 / x.shape[1]
        return scale * powers.mean(axis=0)


def total_power(y: np.ndarray) -> float:
    """Sum of squared magnitudes — the Parseval-side invariant."""
    arr = np.asarray(y, dtype=np.complex128)
    return float(np.sum(np.abs(arr) ** 2))
