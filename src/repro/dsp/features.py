"""Featurisers: the preprocessing variants compared in Fig. 16.

The paper compares its joint pseudospectrum+periodogram preprocessing
against MUSIC-only, FFT-only, raw-phase and RSSI inputs, holding the
deep network fixed.  Every featuriser here maps ``(log, psi)`` to a
:class:`~repro.dsp.frames.FeatureFrames`, so they are drop-in
interchangeable in the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.frames import (
    FeatureFrames,
    build_spectrum_frames,
    build_spectrum_frames_many,
    power_to_db,
    tag_snapshot_set,
)
from repro.hardware.llrp import ReadLog


@dataclass(frozen=True)
class M2AIFeaturizer:
    """The paper's preprocessing: pseudospectrum + periodogram frames."""

    angles_deg: np.ndarray | None = None
    name: str = "m2ai"

    def transform(
        self, log: ReadLog, psi: np.ndarray, n_frames: int | None = None, label: str | None = None
    ) -> FeatureFrames:
        """Featurise one calibrated log into :class:`FeatureFrames`."""
        return build_spectrum_frames(
            log,
            psi,
            n_frames=n_frames,
            angles_deg=self.angles_deg,
            include_pseudo=True,
            include_period=True,
            label=label,
        )

    def transform_many(
        self, windows: list[tuple[ReadLog, np.ndarray, int | None]]
    ) -> list[FeatureFrames]:
        """Featurise many windows through one pooled DSP batch.

        Output per window is identical to :meth:`transform`; see
        :func:`~repro.dsp.frames.build_spectrum_frames_many` for how
        the pooling works and why it pays on a fleet shard.
        """
        return build_spectrum_frames_many(
            windows,
            angles_deg=self.angles_deg,
            include_pseudo=True,
            include_period=True,
        )


@dataclass(frozen=True)
class MusicOnlyFeaturizer:
    """Pseudospectrum frames alone ("MUSIC-based" in Fig. 16)."""

    angles_deg: np.ndarray | None = None
    name: str = "music"

    def transform(
        self, log: ReadLog, psi: np.ndarray, n_frames: int | None = None, label: str | None = None
    ) -> FeatureFrames:
        """Featurise one calibrated log into :class:`FeatureFrames`."""
        return build_spectrum_frames(
            log,
            psi,
            n_frames=n_frames,
            angles_deg=self.angles_deg,
            include_pseudo=True,
            include_period=False,
            label=label,
        )


@dataclass(frozen=True)
class FftOnlyFeaturizer:
    """Periodogram frames alone ("FFT-based" in Fig. 16)."""

    name: str = "fft"

    def transform(
        self, log: ReadLog, psi: np.ndarray, n_frames: int | None = None, label: str | None = None
    ) -> FeatureFrames:
        """Featurise one calibrated log into :class:`FeatureFrames`."""
        return build_spectrum_frames(
            log,
            psi,
            n_frames=n_frames,
            include_pseudo=False,
            include_period=True,
            label=label,
        )


@dataclass(frozen=True)
class PhaseFeaturizer:
    """Per-antenna phase frames ("Phase-based" in Fig. 16).

    The per-dwell circular-mean phase of each antenna, embedded as
    ``(cos, sin)`` pairs so the wrap-around does not create artificial
    discontinuities for the learner.
    """

    name: str = "phase"

    def transform(
        self, log: ReadLog, psi: np.ndarray, n_frames: int | None = None, label: str | None = None
    ) -> FeatureFrames:
        """Featurise one calibrated log into :class:`FeatureFrames`."""
        snapshot_sets = tag_snapshot_set(log, psi, n_frames)
        frames = snapshot_sets[0].n_frames
        n_tags = len(snapshot_sets)
        n_ant = log.meta.n_antennas
        out = np.zeros((frames, n_tags, 2 * n_ant))
        for k, snaps in enumerate(snapshot_sets):
            for f in range(frames):
                if not snaps.valid[f].any():
                    if f > 0:
                        out[f, k] = out[f - 1, k]
                    continue
                unit = np.where(
                    np.abs(snaps.z[f]) > 0, snaps.z[f] / np.maximum(np.abs(snaps.z[f]), 1e-12), 0
                )
                counts = np.maximum(snaps.valid[f].sum(axis=0), 1)
                mean_vec = unit.sum(axis=0) / counts
                out[f, k, :n_ant] = mean_vec.real
                out[f, k, n_ant:] = mean_vec.imag
        return FeatureFrames(channels={"phase": out}, label=label)


@dataclass(frozen=True)
class RssiFeaturizer:
    """Per-antenna RSSI frames ("RSSI-based" in Fig. 16)."""

    name: str = "rssi"

    def transform(
        self, log: ReadLog, psi: np.ndarray, n_frames: int | None = None, label: str | None = None
    ) -> FeatureFrames:
        """Featurise one calibrated log into :class:`FeatureFrames`."""
        snapshot_sets = tag_snapshot_set(log, psi, n_frames)
        frames = snapshot_sets[0].n_frames
        n_tags = len(snapshot_sets)
        n_ant = log.meta.n_antennas
        out = np.zeros((frames, n_tags, n_ant))
        for k, snaps in enumerate(snapshot_sets):
            for f in range(frames):
                if not snaps.valid[f].any():
                    if f > 0:
                        out[f, k] = out[f - 1, k]
                    continue
                power = np.abs(snaps.z[f]) ** 2
                counts = np.maximum(snaps.valid[f].sum(axis=0), 1)
                out[f, k] = power_to_db(power.sum(axis=0) / counts)
        return FeatureFrames(channels={"rssi": out}, label=label)


FEATURIZERS = {
    f.name: f
    for f in (
        M2AIFeaturizer(),
        MusicOnlyFeaturizer(),
        FftOnlyFeaturizer(),
        PhaseFeaturizer(),
        RssiFeaturizer(),
    )
}
"""Default instance of every featuriser, keyed by Fig. 16 name."""
