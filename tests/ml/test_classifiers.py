"""The ten Fig. 9 baselines on synthetic blobs — every classifier must
clear a common generalisation bar and honour the shared interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import (
    AdaBoostClassifier,
    DecisionTreeClassifier,
    GaussianNB,
    GaussianProcessClassifier,
    KNeighborsClassifier,
    LinearSVM,
    QuadraticDiscriminantAnalysis,
    RandomForestClassifier,
    RbfSVM,
    train_test_split,
)


def blobs(k=3, per_class=40, d=8, spread=1.0, seed=0):
    rng = np.random.default_rng(seed)
    means = rng.normal(0, 4, (k, d))
    x = np.concatenate([means[i] + rng.normal(0, spread, (per_class, d)) for i in range(k)])
    y = np.repeat([f"C{i}" for i in range(k)], per_class)
    return train_test_split(x, y, rng=rng)


ZOO = [
    ("knn", lambda: KNeighborsClassifier(5)),
    ("knn-distance", lambda: KNeighborsClassifier(5, weights="distance")),
    ("linear-svm", lambda: LinearSVM(epochs=25, rng=np.random.default_rng(0))),
    ("rbf-svm", lambda: RbfSVM(epochs=15, rng=np.random.default_rng(0))),
    ("gp", lambda: GaussianProcessClassifier()),
    ("tree", lambda: DecisionTreeClassifier(max_depth=8)),
    ("forest", lambda: RandomForestClassifier(n_estimators=15, rng=np.random.default_rng(0))),
    ("adaboost", lambda: AdaBoostClassifier(n_estimators=15, rng=np.random.default_rng(0))),
    ("nb", lambda: GaussianNB()),
    ("qda", lambda: QuadraticDiscriminantAnalysis()),
]


@pytest.mark.parametrize("name,factory", ZOO, ids=[n for n, _f in ZOO])
class TestCommonBehaviour:
    def test_generalises_on_blobs(self, name, factory):
        x_train, x_test, y_train, y_test = blobs()
        model = factory()
        model.fit(x_train, y_train)
        assert model.score(x_test, y_test) >= 0.9

    def test_string_labels_roundtrip(self, name, factory):
        x_train, x_test, y_train, y_test = blobs(k=2, per_class=20)
        model = factory()
        model.fit(x_train, y_train)
        predictions = model.predict(x_test)
        assert set(predictions.tolist()) <= {"C0", "C1"}

    def test_unfitted_predict_raises(self, name, factory):
        with pytest.raises(RuntimeError):
            factory().predict(np.zeros((2, 4)))

    def test_bad_training_shape_rejected(self, name, factory):
        with pytest.raises(ValueError):
            factory().fit(np.zeros((4, 2, 2)), np.zeros(4))

    def test_deterministic(self, name, factory):
        x_train, x_test, y_train, _y_test = blobs(k=2, per_class=15)
        p1 = factory().fit(x_train, y_train).predict(x_test)
        p2 = factory().fit(x_train, y_train).predict(x_test)
        np.testing.assert_array_equal(p1, p2)


class TestSpecifics:
    def test_knn_k1_memorises(self):
        x_train, _x_test, y_train, _y_test = blobs(k=2, per_class=10)
        model = KNeighborsClassifier(1).fit(x_train, y_train)
        assert model.score(x_train, y_train) == 1.0

    def test_tree_depth_limit(self):
        x_train, _x_test, y_train, _ = blobs(k=3, per_class=30)
        tree = DecisionTreeClassifier(max_depth=2).fit(x_train, y_train)
        assert tree.depth() <= 2

    def test_tree_pure_leaf_stops(self):
        x = np.array([[0.0], [1.0]])
        y = np.array(["a", "b"])
        tree = DecisionTreeClassifier().fit(x, y)
        assert tree.score(x, y) == 1.0

    def test_forest_beats_single_tree_on_noisy_data(self):
        x_train, x_test, y_train, y_test = blobs(k=4, per_class=40, spread=2.8, seed=3)
        tree = DecisionTreeClassifier(rng=np.random.default_rng(0)).fit(x_train, y_train)
        forest = RandomForestClassifier(
            n_estimators=30, rng=np.random.default_rng(0)
        ).fit(x_train, y_train)
        assert forest.score(x_test, y_test) >= tree.score(x_test, y_test)

    def test_rbf_svm_solves_circles(self):
        """Linearly inseparable ring data: RBF must beat linear."""
        rng = np.random.default_rng(0)
        n = 150
        radius = np.concatenate([rng.uniform(0, 1, n), rng.uniform(2, 3, n)])
        angle = rng.uniform(0, 2 * np.pi, 2 * n)
        x = np.stack([radius * np.cos(angle), radius * np.sin(angle)], axis=1)
        y = np.repeat(["inner", "outer"], n)
        x_train, x_test, y_train, y_test = train_test_split(x, y, rng=rng)
        rbf = RbfSVM(epochs=20, rng=np.random.default_rng(0)).fit(x_train, y_train)
        linear = LinearSVM(epochs=20, rng=np.random.default_rng(0)).fit(x_train, y_train)
        assert rbf.score(x_test, y_test) > 0.9
        assert rbf.score(x_test, y_test) > linear.score(x_test, y_test)

    def test_nb_variance_informative(self):
        """Classes with equal means but different variances — only a
        variance-aware model separates them."""
        rng = np.random.default_rng(0)
        x = np.concatenate([rng.normal(0, 0.3, (100, 4)), rng.normal(0, 3.0, (100, 4))])
        y = np.repeat(["tight", "wide"], 100)
        x_train, x_test, y_train, y_test = train_test_split(x, y, rng=rng)
        model = GaussianNB().fit(x_train, y_train)
        assert model.score(x_test, y_test) > 0.9

    def test_qda_learns_quadratic_boundary(self):
        rng = np.random.default_rng(1)
        x = rng.normal(0, 2, (300, 2))
        y = np.where(x[:, 0] ** 2 + x[:, 1] ** 2 < 2.0, "in", "out")
        x_train, x_test, y_train, y_test = train_test_split(x, y, rng=rng)
        model = QuadraticDiscriminantAnalysis(reg_param=0.05).fit(x_train, y_train)
        assert model.score(x_test, y_test) > 0.85

    def test_adaboost_improves_with_rounds(self):
        x_train, x_test, y_train, y_test = blobs(k=2, per_class=60, spread=2.5, seed=5)
        weak = AdaBoostClassifier(n_estimators=1, rng=np.random.default_rng(0)).fit(
            x_train, y_train
        )
        strong = AdaBoostClassifier(n_estimators=30, rng=np.random.default_rng(0)).fit(
            x_train, y_train
        )
        assert strong.score(x_test, y_test) >= weak.score(x_test, y_test)

    def test_gp_decision_function_shape(self):
        x_train, x_test, y_train, _ = blobs(k=3, per_class=15)
        model = GaussianProcessClassifier().fit(x_train, y_train)
        scores = model.decision_function(x_test)
        assert scores.shape == (len(x_test), 3)

    def test_linear_svm_margin_sign(self):
        x = np.array([[2.0, 0.0], [-2.0, 0.0]] * 20)
        y = np.array(["pos", "neg"] * 20)
        model = LinearSVM(epochs=30, rng=np.random.default_rng(0)).fit(x, y)
        assert model.score(x, y) == 1.0
