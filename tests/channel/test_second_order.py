"""Second-order reflection geometry details."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel import ChannelParams, MultipathChannel
from repro.geometry import Rectangle, Room

ANT = np.array([-3.0, -2.0])
TAG = np.array([4.0, 3.0])
LAM = 0.328


def channel(order: int) -> MultipathChannel:
    room = Room(bounds=Rectangle(-10, -10, 10, 10), wall_reflectivity=0.6)
    return MultipathChannel(
        room=room,
        params=ChannelParams(diffuse_level=0.0),
        rng=np.random.default_rng(0),
        max_reflection_order=order,
    )


class TestCornerImages:
    def test_amplitude_carries_squared_coefficient(self):
        comps = {c.name: c for c in channel(2).path_components(ANT, TAG, LAM)}
        for name, comp in comps.items():
            if not name.startswith("wall2:"):
                continue
            # amp = rho^2 / d exactly (no blockers in this room).
            expected = 0.6**2 / comp.distance[0]
            assert np.abs(comp.gain[0]) == pytest.approx(expected, rel=1e-9)

    def test_corner_distance_matches_double_mirror(self):
        room = Room(bounds=Rectangle(-10, -10, 10, 10), wall_reflectivity=0.6)
        comps = {c.name: c for c in channel(2).path_components(ANT, TAG, LAM)}
        tag = TAG
        # left+bottom corner image: mirror across bottom then left.
        image = np.array([2 * -10 - tag[0], 2 * -10 - tag[1]])
        expected = float(np.linalg.norm(image - ANT))
        assert comps["wall2:left+bottom"].distance[0] == pytest.approx(expected)
        del room

    def test_reciprocity_holds_with_second_order(self):
        ch = channel(2)
        ab = ch.one_way_gain(ANT, TAG, LAM, include_diffuse=False)
        ba = ch.one_way_gain(TAG, ANT, LAM, include_diffuse=False)
        np.testing.assert_allclose(ab, ba, rtol=1e-9)

    def test_superposition_still_exact(self):
        ch = channel(2)
        comps = ch.path_components(ANT, TAG, LAM)
        total = ch.one_way_gain(ANT, TAG, LAM, include_diffuse=False)
        np.testing.assert_allclose(total, sum(c.gain for c in comps))
