"""The full M2AI network must learn synthetic temporal patterns.

These tests feed hand-built frame sequences whose classes are
distinguished by *temporal structure only* — the capability the LSTM
stack exists for — and by *spatial structure only* — the CNN's job.
"""

from __future__ import annotations

import numpy as np

from repro.core import ActivityDataset, M2AIConfig, M2AIPipeline
from repro.dsp.frames import FeatureFrames

CFG = M2AIConfig(
    conv_channels=(3, 4),
    branch_dim=8,
    merge_dim=10,
    lstm_hidden=8,
    lstm_layers=1,
    dropout=0.0,
    epochs=40,
    batch_size=8,
    learning_rate=0.01,
    warmup_frames=1,
    augment=False,
)


def temporal_dataset(per_class=14, frames=8, seed=0):
    """Classes share identical marginal frames; only the ORDER differs.

    Class "rise": a bright band sweeps up the angle axis over time.
    Class "fall": the same band sweeps down.
    """
    rng = np.random.default_rng(seed)
    samples, labels = [], []
    for cls, direction in (("rise", 1), ("fall", -1)):
        for _ in range(per_class):
            pseudo = rng.normal(0, 0.3, (frames, 2, 40))
            positions = np.arange(frames) if direction > 0 else np.arange(frames)[::-1]
            for f, pos in enumerate(positions):
                centre = 4 + pos * 4
                pseudo[f, :, centre : centre + 4] += 2.0
            samples.append(
                FeatureFrames(
                    channels={
                        "pseudo": pseudo,
                        "period": rng.normal(size=(frames, 2, 4)),
                    },
                    label=cls,
                )
            )
            labels.append(cls)
    return ActivityDataset(samples=samples, labels=labels)


def spatial_dataset(per_class=14, frames=5, seed=0):
    """Classes differ by WHERE the energy sits, identically over time."""
    rng = np.random.default_rng(seed)
    samples, labels = [], []
    for cls in range(3):
        for _ in range(per_class):
            pseudo = rng.normal(0, 0.3, (frames, 2, 40))
            pseudo[:, :, 4 + cls * 12 : 10 + cls * 12] += 2.0
            samples.append(
                FeatureFrames(
                    channels={
                        "pseudo": pseudo,
                        "period": rng.normal(size=(frames, 2, 4)),
                    },
                    label=f"S{cls}",
                )
            )
            labels.append(f"S{cls}")
    return ActivityDataset(samples=samples, labels=labels)


class TestTemporalCapability:
    def test_cnn_lstm_learns_direction(self):
        ds = temporal_dataset()
        train, test = ds.split(0.25, np.random.default_rng(0))
        pipeline = M2AIPipeline(CFG, mode="cnn_lstm").fit(train, val=test)
        assert pipeline.evaluate(test).accuracy > 0.85

    def test_cnn_only_cannot_see_direction(self):
        """Temporal mean pooling destroys order: CNN-only stays near
        chance on order-defined classes — the Fig. 17 rationale."""
        ds = temporal_dataset()
        train, test = ds.split(0.25, np.random.default_rng(0))
        pipeline = M2AIPipeline(CFG, mode="cnn").fit(train, val=test)
        assert pipeline.evaluate(test).accuracy < 0.8


class TestSpatialCapability:
    def test_all_modes_learn_spatial_classes(self):
        ds = spatial_dataset()
        train, test = ds.split(0.25, np.random.default_rng(0))
        for mode in ("cnn_lstm", "cnn"):
            pipeline = M2AIPipeline(CFG, mode=mode).fit(train, val=test)
            assert pipeline.evaluate(test).accuracy > 0.85, mode
