"""Shared fixtures.

Expensive artifacts (reader sessions, small generated datasets) are
session-scoped so the whole suite pays for them once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import GenerationConfig, SyntheticDatasetGenerator
from repro.geometry import Vec2, make_laboratory, make_open_space
from repro.hardware import Reader, ReaderConfig, UniformLinearArray, make_tag, stationary_scene


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def open_space_reader() -> Reader:
    """A reader in free space (single dominant path) with defaults."""
    array = UniformLinearArray(center=Vec2(0.0, 0.0))
    return Reader(ReaderConfig(array=array), make_open_space(), seed=11)


@pytest.fixture(scope="session")
def lab_reader() -> Reader:
    """A reader in the high-multipath laboratory."""
    room = make_laboratory()
    array = UniformLinearArray(center=Vec2(room.bounds.width / 2.0, 0.3))
    return Reader(ReaderConfig(array=array), room, seed=13)


@pytest.fixture(scope="session")
def small_log(lab_reader):
    """A short three-tag inventory in the laboratory."""
    gen = np.random.default_rng(7)
    tags = [
        (make_tag(f"fixture-{i}", gen), (5.0 + i * 0.8, 3.5 + 0.4 * i))
        for i in range(3)
    ]
    return lab_reader.inventory(stationary_scene(tags), duration_s=3.2)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A 3-class generated dataset shared by core/data/eval tests."""
    config = GenerationConfig(
        scenario_labels=("A01", "A03", "A05"),
        samples_per_class=4,
        duration_s=4.0,
        calibration_s=20.0,
        seed=99,
    )
    return SyntheticDatasetGenerator(config).generate()
