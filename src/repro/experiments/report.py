"""Render EXPERIMENTS.md from the durable results store.

Each record renders as one fenced block whose footer names the mode
and seed it was produced under — the old single-key cache silently
interleaved quick/full blocks and seeds with nothing in the output to
tell them apart.  Blocks are ordered by the experiment registry (so
the document reads in paper order) and, within one experiment, by
``(mode, seed)``.  The file itself is published atomically.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.spec import ResultRecord
from repro.experiments.store import ResultsStore, atomic_write_text

__all__ = [
    "EXPERIMENTS_HEADER",
    "render_block",
    "render_experiments_md",
    "write_experiments_md",
]

EXPERIMENTS_HEADER = """# EXPERIMENTS — paper vs measured

Reproduction record for Fan et al., *Multiple Object Activity
Identification using RFIDs* (ICDCS 2018).  Every entry regenerates one
paper table/figure on the simulated substrate (see DESIGN.md for the
substitutions).  Absolute accuracies are not expected to match the
hardware testbed; the *shape* of each result is what is verified.
Paper values marked `~` are read off a bar chart, not stated in text.

Regenerate with `python scripts/run_experiments.py` (quick mode) or
`pytest benchmarks/ --benchmark-only`.  Results live in a durable
per-cell store (`.repro_cache/experiments/`, one JSON record per
(experiment, mode, seed) — see DESIGN.md section 15): reruns skip
completed cells, `--force` re-executes them, and each block's footer
records the mode and seed that produced it, so quick and full runs or
different seeds can coexist without overwriting each other.  Blocks
tagged "recorded by the benchmark suite" come from the trimmed-budget
benchmark pass and are correspondingly noisier.  Small held-out splits
(12-48 samples) give the accuracies a granularity of several points;
treat trends, not single cells, as the signal.

"""


def render_block(record: ResultRecord) -> str:
    """One record as a fenced text block with a mode/seed footer."""
    spec = record.spec
    footer = (
        f"\n\n(wall-clock: {record.elapsed_s:.0f} s, "
        f"mode: {spec.mode}, seed: {spec.seed})\n"
    )
    return "```text\n" + record.block + footer + "```\n"


def _registry_order() -> dict[str, int]:
    from repro.experiments.runner import default_registry

    return {exp_id: i for i, exp_id in enumerate(default_registry())}


def render_experiments_md(
    records: list[ResultRecord], header: str = EXPERIMENTS_HEADER
) -> str:
    """The full document for a record set.

    Records are ordered by registry position (unknown ids sort last,
    alphabetically), then mode, then seed, then overrides — a stable
    total order, so regenerating from the same store is byte-identical.
    """
    position = _registry_order()

    def sort_key(record: ResultRecord):
        spec = record.spec
        return (
            position.get(spec.exp_id, len(position)),
            spec.exp_id,
            spec.mode,
            spec.seed,
            spec.gen_overrides,
            spec.train_overrides,
        )

    parts = [header]
    for record in sorted(records, key=sort_key):
        parts.append(render_block(record))
    return "\n".join(parts)


def write_experiments_md(
    out: "str | Path", store: ResultsStore, header: str = EXPERIMENTS_HEADER
) -> None:
    """Atomically (re)write ``out`` from every readable store record."""
    atomic_write_text(Path(out), render_experiments_md(store.records(), header))
