"""Experiment specs and result records.

An :class:`ExperimentSpec` names one cell of a sweep — experiment id x
mode x seed plus optional generation/training overrides — and derives
a **content-hashed key** from the whole payload.  The key is what the
durable :class:`~repro.experiments.store.ResultsStore` files records
under, so two cells that differ in *any* field (a different seed, a
``--full`` rerun, an extra override) can never collide.  This is the
fix for the old ``scripts/run_experiments.py`` cache, which keyed on
the experiment id alone and silently served a quick-mode seed-0 block
to a ``--full --seed 3`` rerun.

Override values are restricted to JSON scalars so the canonical form
(and therefore the hash) is unambiguous across processes and runs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

__all__ = [
    "ExperimentSpec",
    "ResultRecord",
    "SPEC_SCHEMA",
    "make_spec",
]

SPEC_SCHEMA = 1
"""Version folded into every spec hash; bump on incompatible changes."""

_MODES = ("quick", "full")

_SCALAR_TYPES = (str, int, float, bool, type(None))


def _normalise_overrides(
    overrides: "dict[str, object] | tuple[tuple[str, object], ...] | None",
    what: str,
) -> tuple[tuple[str, object], ...]:
    """Sorted, validated ``(name, scalar)`` tuple form of an override set."""
    if not overrides:
        return ()
    items = dict(overrides).items()
    for name, value in items:
        if not isinstance(name, str):
            raise TypeError(f"{what} override names must be str, got {name!r}")
        if not isinstance(value, _SCALAR_TYPES):
            raise TypeError(
                f"{what} override {name!r} must be a JSON scalar "
                f"(str/int/float/bool/None), got {type(value).__name__}"
            )
    return tuple(sorted(items))


@dataclass(frozen=True)
class ExperimentSpec:
    """One sweep cell: experiment id x mode x seed x overrides.

    Attributes:
        exp_id: registry id of the experiment driver (``"fig09"``,
            ``"ext-domain-shift"``, ...).
        mode: ``"quick"`` (CI-sized) or ``"full"`` (paper-scale).
        seed: master randomness seed handed to the driver.
        gen_overrides: extra keyword arguments for the driver's dataset
            generation, as a sorted ``(name, value)`` tuple.
        train_overrides: extra keyword arguments for the driver's
            training configuration, same form.
    """

    exp_id: str
    mode: str = "quick"
    seed: int = 0
    gen_overrides: tuple[tuple[str, object], ...] = ()
    train_overrides: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if not self.exp_id:
            raise ValueError("exp_id must be non-empty")
        if self.mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {self.mode!r}")

    def payload(self) -> dict:
        """JSON-safe canonical form (what the key hashes)."""
        return {
            "schema": SPEC_SCHEMA,
            "exp_id": self.exp_id,
            "mode": self.mode,
            "seed": self.seed,
            "gen_overrides": [list(kv) for kv in self.gen_overrides],
            "train_overrides": [list(kv) for kv in self.train_overrides],
        }

    @property
    def key(self) -> str:
        """Filename-safe store key: readable prefix + content hash.

        The ``(exp_id, mode, seed)`` triple is spelled out for humans
        browsing the store directory; the hash covers the *entire*
        payload, so overrides (and schema bumps) also separate records.
        """
        digest = hashlib.sha256(
            json.dumps(self.payload(), sort_keys=True).encode()
        ).hexdigest()[:12]
        safe_id = self.exp_id.replace("/", "_")
        return f"{safe_id}--{self.mode}--s{self.seed}--{digest}"

    @classmethod
    def from_payload(cls, payload: dict) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`payload` output."""
        return cls(
            exp_id=payload["exp_id"],
            mode=payload["mode"],
            seed=int(payload["seed"]),
            gen_overrides=tuple(
                (str(k), v) for k, v in payload.get("gen_overrides", [])
            ),
            train_overrides=tuple(
                (str(k), v) for k, v in payload.get("train_overrides", [])
            ),
        )

    def overrides_dict(self) -> dict[str, object]:
        """All overrides merged into one kwargs dict (collisions checked)."""
        merged = dict(self.gen_overrides)
        for name, value in self.train_overrides:
            if name in merged:
                raise ValueError(
                    f"override {name!r} appears in both gen_overrides and "
                    "train_overrides"
                )
            merged[name] = value
        return merged


def make_spec(
    exp_id: str,
    mode: str = "quick",
    seed: int = 0,
    gen_overrides: "dict[str, object] | None" = None,
    train_overrides: "dict[str, object] | None" = None,
) -> ExperimentSpec:
    """Build an :class:`ExperimentSpec`, normalising override dicts."""
    return ExperimentSpec(
        exp_id=exp_id,
        mode=mode,
        seed=seed,
        gen_overrides=_normalise_overrides(gen_overrides, "gen"),
        train_overrides=_normalise_overrides(train_overrides, "train"),
    )


RECORD_SCHEMA = 1
"""On-disk record format version (see :class:`ResultRecord`)."""


@dataclass
class ResultRecord:
    """The durable outcome of running one spec.

    Everything except ``elapsed_s`` is a pure function of the spec (the
    drivers are seeded), which is what makes run_batch deterministic
    across worker counts: :meth:`content_digest` hashes the
    deterministic payload only, and the determinism tests compare it.

    Attributes:
        spec: the cell this record answers.
        title: the driver's human title.
        rows: ``{"name", "paper", "measured", "unit", "approx"}`` dicts.
        notes: the driver's free-text commentary.
        extras: named text blocks (confusion matrices, ...).
        block: the rendered paper-vs-measured text table (no timing).
        elapsed_s: wall-clock of the producing run (monotonic-derived;
            excluded from :meth:`content_digest`).
    """

    spec: ExperimentSpec
    title: str
    rows: list[dict] = field(default_factory=list)
    notes: str = ""
    extras: dict[str, str] = field(default_factory=dict)
    block: str = ""
    elapsed_s: float = 0.0

    @classmethod
    def from_result(
        cls, spec: ExperimentSpec, result, elapsed_s: float
    ) -> "ResultRecord":
        """Record for one driver's :class:`ExperimentResult`."""
        rows = [asdict(row) for row in result.rows]
        return cls(
            spec=spec,
            title=result.title,
            rows=rows,
            notes=result.notes,
            extras=dict(result.extras),
            block=result.render(),
            elapsed_s=float(elapsed_s),
        )

    def measured_by_name(self) -> dict[str, float]:
        """Lookup table of measured values (mirrors ExperimentResult)."""
        return {row["name"]: row["measured"] for row in self.rows}

    def to_payload(self) -> dict:
        """Full JSON-safe form, including timing."""
        return {
            "record_schema": RECORD_SCHEMA,
            "spec": self.spec.payload(),
            "key": self.spec.key,
            "title": self.title,
            "rows": self.rows,
            "notes": self.notes,
            "extras": self.extras,
            "block": self.block,
            "elapsed_s": self.elapsed_s,
        }

    def content_digest(self) -> str:
        """Hash of the deterministic payload (timing excluded)."""
        payload = self.to_payload()
        del payload["elapsed_s"]
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest()

    def to_json(self) -> str:
        """Canonical serialised form (sorted keys, trailing newline)."""
        return json.dumps(self.to_payload(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ResultRecord":
        """Parse a serialised record.

        Raises:
            ValueError: malformed JSON or a missing/mismatched field.
        """
        payload = json.loads(text)
        if not isinstance(payload, dict) or "spec" not in payload:
            raise ValueError("record payload is not a spec-bearing object")
        spec = ExperimentSpec.from_payload(payload["spec"])
        if payload.get("key") != spec.key:
            raise ValueError(
                f"stored key {payload.get('key')!r} does not match the "
                f"spec's content key {spec.key!r}"
            )
        return cls(
            spec=spec,
            title=payload.get("title", ""),
            rows=list(payload.get("rows", [])),
            notes=payload.get("notes", ""),
            extras=dict(payload.get("extras", {})),
            block=payload.get("block", ""),
            elapsed_s=float(payload.get("elapsed_s", 0.0)),
        )
