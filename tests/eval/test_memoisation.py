"""Harness memoisation: one corpus, one training, many drivers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import M2AIConfig
from repro.data import GenerationConfig
from repro.eval import clear_cache, get_dataset, train_eval_m2ai

TINY = GenerationConfig(
    scenario_labels=("A01", "A03"),
    samples_per_class=3,
    duration_s=3.2,
    calibration_s=20.0,
    seed=171,
)
TRAIN = M2AIConfig(
    conv_channels=(3, 4), branch_dim=6, merge_dim=8, lstm_hidden=6,
    lstm_layers=1, epochs=3, batch_size=4, warmup_frames=1,
)


@pytest.fixture(autouse=True)
def isolated_cache(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    clear_cache()
    yield
    clear_cache()


class TestDatasetMemo:
    def test_same_object_returned(self):
        a = get_dataset(TINY)
        b = get_dataset(TINY)
        assert a is b

    def test_featurizer_key_separates(self):
        from repro.dsp.features import RssiFeaturizer

        a = get_dataset(TINY)
        b = get_dataset(TINY, featurizer=RssiFeaturizer())
        assert a is not b
        assert set(b.channel_shapes) == {"rssi"}

    def test_calibration_key_separates(self):
        a = get_dataset(TINY, use_calibration=True)
        b = get_dataset(TINY, use_calibration=False)
        assert a is not b


class TestTrainMemo:
    def test_repeat_call_returns_same_model(self):
        ds = get_dataset(TINY)
        result_a, pipe_a = train_eval_m2ai(ds, TRAIN, split_seed=0, test_fraction=0.34)
        result_b, pipe_b = train_eval_m2ai(ds, TRAIN, split_seed=0, test_fraction=0.34)
        assert pipe_a is pipe_b
        assert result_a.accuracy == result_b.accuracy

    def test_different_mode_not_shared(self):
        ds = get_dataset(TINY)
        _r1, pipe_a = train_eval_m2ai(ds, TRAIN, mode="cnn_lstm", split_seed=0, test_fraction=0.34)
        _r2, pipe_b = train_eval_m2ai(ds, TRAIN, mode="cnn", split_seed=0, test_fraction=0.34)
        assert pipe_a is not pipe_b

    def test_dead_dataset_entries_are_evicted(self):
        """Regression: the memo was keyed on id(dataset).

        After a dataset died, CPython could hand its id to a new
        dataset and a later caller got a model trained on *different*
        data.  The handle-keyed memo evicts entries when their dataset
        is collected, and a recycled id can never alias a stale key.
        """
        import gc

        from repro.eval import harness

        base = get_dataset(TINY)
        indices = np.arange(len(base))

        d1 = base.subset(indices)
        key1 = harness._train_memo_key(d1, TRAIN, "cnn_lstm", 0, 0.34)
        harness._TRAIN_MEMO[key1] = ("stale-sentinel", None)
        old_id = id(d1)
        del d1
        gc.collect()
        # Eviction: the dead dataset's entry is gone, not waiting to
        # be served to whoever inherits its id.
        assert key1 not in harness._TRAIN_MEMO

        # Force the id-reuse scenario: allocate identical datasets
        # until CPython hands back the dead object's address (the
        # freelist usually does this on the first try).
        d2 = base.subset(indices)
        for _ in range(64):
            if id(d2) == old_id:
                break
            del d2
            gc.collect()
            d2 = base.subset(indices)
        key2 = harness._train_memo_key(d2, TRAIN, "cnn_lstm", 0, 0.34)
        # Whether or not the id was recycled, the new dataset must get
        # a fresh key; with the old id()-keying this assertion fails
        # whenever the loop above achieved reuse.
        assert key2 != key1

    def test_same_dataset_key_is_stable(self):
        from repro.eval import harness

        ds = get_dataset(TINY)
        key_a = harness._train_memo_key(ds, TRAIN, "cnn_lstm", 0, 0.34)
        key_b = harness._train_memo_key(ds, TRAIN, "cnn_lstm", 0, 0.34)
        assert key_a == key_b

    def test_clear_cache_resets(self):
        ds = get_dataset(TINY)
        _r, pipe_a = train_eval_m2ai(ds, TRAIN, split_seed=0, test_fraction=0.34)
        clear_cache()
        ds2 = get_dataset(TINY)
        _r2, pipe_b = train_eval_m2ai(ds2, TRAIN, split_seed=0, test_fraction=0.34)
        assert pipe_a is not pipe_b
