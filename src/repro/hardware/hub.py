"""Antenna hubs: multiple arrays on one reader (Section VII).

The paper's coverage discussion: a single array covers ~12 m of read
range; larger areas need "Impinj antenna hubs to deploy multiple RFID
antenna arrays".  An :class:`AntennaHub` time-multiplexes whole arrays
the same way a single reader multiplexes ports — each observation
window is split across the member arrays, and the per-array logs are
featurised independently and concatenated channel-wise, giving the
learning engine several viewpoints of the same scene.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.params import ChannelParams
from repro.dsp.frames import FeatureFrames
from repro.geometry.room import Room
from repro.hardware.antenna import UniformLinearArray
from repro.hardware.llrp import ReadLog
from repro.hardware.reader import Reader, ReaderConfig
from repro.hardware.scene import Scene, TagTrack
from repro.obs.metrics import counter
from repro.obs.tracing import span
from repro.runtime.retry import RetryPolicy


@dataclass
class AntennaHub:
    """Several reader arrays observing one scene.

    Args:
        room: shared environment.
        arrays: member arrays (each gets its own reader session).
        channel_params: propagation constants.
        seed: base session seed; member ``i`` uses ``seed + i``.
        retry_policy: per-member ingest retry policy, handed to every
            member reader (None disables retries).
        degrade_on_member_failure: when True, a member whose inventory
            still fails after retries yields ``None`` in the returned
            log list instead of failing the whole hub —
            :func:`merge_hub_features` zero-fills the lost view
            downstream.
    """

    room: Room
    arrays: tuple[UniformLinearArray, ...]
    channel_params: ChannelParams | None = None
    seed: int = 0
    retry_policy: RetryPolicy | None = None
    degrade_on_member_failure: bool = False

    def __post_init__(self) -> None:
        if not self.arrays:
            raise ValueError("a hub needs at least one array")
        self.readers = [
            Reader(
                ReaderConfig(array=array),
                self.room,
                channel_params=self.channel_params,
                seed=self.seed + i,
                retry_policy=self.retry_policy,
            )
            for i, array in enumerate(self.arrays)
        ]

    def inventory(self, scene: Scene, duration_s: float) -> list[ReadLog | None]:
        """One log per member array.

        The hub switches arrays per dwell in a real deployment; here
        each member observes the full window independently, which is
        equivalent for feature purposes (and an upper bound the
        time-shared hardware approaches with more hub ports).

        Returns:
            Logs in array order.  With ``degrade_on_member_failure``
            set, a member that failed (after any retries) contributes
            ``None``; otherwise every entry is a :class:`ReadLog`.

        Raises:
            Exception: whatever the failing member raised, when
                ``degrade_on_member_failure`` is False.
        """
        with span("hub.inventory", arrays=len(self.readers)):
            logs: list[ReadLog | None] = []
            for reader in self.readers:
                if not self.degrade_on_member_failure:
                    logs.append(reader.inventory(scene, duration_s))
                    continue
                try:
                    logs.append(reader.inventory(scene, duration_s))
                except Exception:
                    counter("runtime.ingest.member_lost_total").inc()
                    logs.append(None)
        counter("hub.reads_merged_total").inc(
            sum(log.n_reads for log in logs if log is not None)
        )
        return logs

    def calibration_inventory(self, scene: Scene, duration_s: float = 20.0) -> list[ReadLog]:
        """Stationary bootstrap per member array."""
        frozen = _freeze_scene(scene, int(round(duration_s / self.readers[0].config.slot_s)))
        return [reader.inventory(frozen, duration_s) for reader in self.readers]

    def coverage_mask(self, points: np.ndarray, max_range_m: float = 12.0) -> np.ndarray:
        """Which points fall inside at least one member's read range.

        Args:
            points: ``(P, 2)`` candidate positions.
            max_range_m: the paper's ~12 m R420 read range.

        Returns:
            ``(P,)`` boolean coverage mask.
        """
        pts = np.asarray(points, dtype=np.float64)
        covered = np.zeros(len(pts), dtype=bool)
        for array in self.arrays:
            centre = np.asarray(array.center.as_tuple())
            covered |= np.linalg.norm(pts - centre, axis=1) <= max_range_m
        return covered


def merge_hub_features(
    per_array: list[FeatureFrames | None], with_liveness: bool = False
) -> FeatureFrames:
    """Concatenate per-array features into one multi-view sample.

    Channels are suffixed with the array index (``pseudo@0``,
    ``pseudo@1``, ...), so the network grows one encoder branch per
    viewpoint.

    The merge degrades to the surviving arrays instead of failing the
    whole sample: a lost member — passed as ``None`` (reader offline)
    or disagreeing on the frame/tag shape (truncated session) — is
    zero-filled with the surviving members' channel layout, so the
    merged sample keeps the shape the model was trained on.

    Args:
        per_array: one :class:`FeatureFrames` per hub member, ``None``
            for a member whose reader produced nothing.
        with_liveness: also emit a per-member ``alive@i`` channel
            (ones for a surviving view, zeros for a zero-filled one) so
            the learner can tell a dead viewpoint from a silent room.
            Off by default — it changes the channel set, so a model
            must be trained with it on.

    Raises:
        ValueError: when the list is empty or no member survived.
    """
    if not per_array:
        raise ValueError("nothing to merge")
    reference = next((feat for feat in per_array if feat is not None), None)
    if reference is None:
        raise ValueError("no surviving hub members to merge")
    with span("hub.merge", members=len(per_array)) as merge_span:
        frames = reference.n_frames
        tags = reference.n_tags
        zero_filled = 0
        channels: dict[str, np.ndarray] = {}
        for idx, feat in enumerate(per_array):
            alive = (
                feat is not None
                and feat.n_frames == frames
                and feat.n_tags == tags
            )
            if not alive:
                zero_filled += 1
            source = feat.channels if alive else {
                name: np.zeros_like(arr) for name, arr in reference.channels.items()
            }
            for name, arr in source.items():
                channels[f"{name}@{idx}"] = arr
            if with_liveness:
                channels[f"alive@{idx}"] = np.full(
                    (frames, tags, 1), 1.0 if alive else 0.0
                )
        merge_span.set(zero_filled=zero_filled)
    counter("hub.views_merged_total").inc(len(per_array) - zero_filled)
    counter("hub.views_zero_filled_total").inc(zero_filled)
    return FeatureFrames(channels=channels, label=reference.label)


def _freeze_scene(scene: Scene, n_slots: int) -> Scene:
    from repro.channel.model import BodyTrack

    tracks = []
    for track in scene.tag_tracks:
        pos = track.positions
        start = pos[0] if pos.ndim == 2 else pos
        tracks.append(
            TagTrack(tag=track.tag, positions=np.asarray(start), carrier=track.carrier)
        )
    bodies = tuple(
        BodyTrack(positions=np.tile(b.positions[0], (n_slots, 1)), radius=b.radius)
        for b in scene.bodies
    )
    return Scene(tag_tracks=tuple(tracks), bodies=bodies)
