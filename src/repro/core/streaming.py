"""Streaming activity identification over a continuous read log.

A deployment does not see neatly cut samples: the reader emits one
endless LLRP stream while residents switch activities.  The streaming
identifier slides a fixed observation window over that stream,
featurises each window exactly like training samples, and emits a
labelled, confidence-scored decision per window — the paper's
"examines both spatial and temporal information in realtime".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dataset import ActivityDataset
from repro.core.pipeline import M2AIPipeline
from repro.dsp.calibration import PhaseCalibrator, uncalibrated
from repro.dsp.features import M2AIFeaturizer
from repro.hardware.llrp import ReadLog


@dataclass(frozen=True)
class WindowDecision:
    """One emitted decision.

    Attributes:
        t_start_s: window start time in stream time.
        t_end_s: window end time.
        label: predicted activity class.
        confidence: softmax probability of the predicted class.
        n_reads: reads that fell inside the window.
    """

    t_start_s: float
    t_end_s: float
    label: str
    confidence: float
    n_reads: int


@dataclass
class StreamingIdentifier:
    """Sliding-window classifier over a continuous log.

    Args:
        pipeline: a fitted :class:`M2AIPipeline`.
        calibrator: the session's phase calibrator (None = raw doubled
            phases, only sensible in tests).
        window_s: observation window length — must match the frame
            count the pipeline was trained with.
        hop_s: stride between consecutive windows (defaults to the
            window length: back-to-back, non-overlapping decisions).
        featurizer: preprocessing used during training.
        min_reads: windows with fewer reads are skipped (tag outage).
    """

    pipeline: M2AIPipeline
    calibrator: PhaseCalibrator | None = None
    window_s: float = 6.0
    hop_s: float | None = None
    featurizer: object = field(default_factory=M2AIFeaturizer)
    min_reads: int = 32

    def identify(self, log: ReadLog) -> list[WindowDecision]:
        """Classify every complete window of ``log``.

        Returns:
            Decisions in time order (possibly empty for a short log).

        Raises:
            RuntimeError: when the pipeline is not fitted.
        """
        if self.pipeline.model is None:
            raise RuntimeError("pipeline not fitted")
        if log.n_reads == 0:
            return []
        hop = self.hop_s or self.window_s
        dwell = log.meta.dwell_s
        n_frames = max(1, int(round(self.window_s / dwell)))

        psi_full = (
            self.calibrator.calibrate(log)
            if self.calibrator is not None
            else uncalibrated(log)
        )
        t0 = np.floor(float(log.timestamp_s.min()) / dwell) * dwell
        # A window is complete once its final dwell has started.
        t_end = float(log.timestamp_s.max()) + dwell
        decisions: list[WindowDecision] = []
        start = t0
        while start + self.window_s <= t_end + 1e-9:
            mask = (log.timestamp_s >= start) & (
                log.timestamp_s < start + self.window_s
            )
            if int(mask.sum()) >= self.min_reads:
                window_log = log.select(mask)
                psi = psi_full[mask]
                frames = self.featurizer.transform(
                    window_log, psi, n_frames=n_frames
                )
                dataset = ActivityDataset(samples=[frames], labels=["?"])
                proba = self.pipeline.predict_proba(dataset)[0]
                best = int(proba.argmax())
                decisions.append(
                    WindowDecision(
                        t_start_s=float(start),
                        t_end_s=float(start + self.window_s),
                        label=str(self.pipeline.classes[best]),
                        confidence=float(proba[best]),
                        n_reads=int(mask.sum()),
                    )
                )
            start += hop
        return decisions
