"""The learning-free experiment drivers (Fig. 2 / Fig. 3)."""

from __future__ import annotations

import pytest

from repro.eval import run_fig02, run_fig03


@pytest.fixture(scope="module")
def fig02_result():
    return run_fig02(seed=0)


@pytest.fixture(scope="module")
def fig03_result():
    return run_fig03(quick=True, seed=0)


class TestFig02:
    def test_stationary_spectrum_stable(self, fig02_result):
        measured = fig02_result.measured_by_name()
        assert measured["stationary: top-peak angle std (deg)"] < 15.0

    def test_blocker_reshapes_spectrum(self, fig02_result):
        measured = fig02_result.measured_by_name()
        assert measured["moving blocker: peak power swing (dB)"] > 1.0

    def test_renderable(self, fig02_result):
        text = fig02_result.render()
        assert "fig02" in text and "blocker" in text


class TestFig03:
    def test_linearity(self, fig03_result):
        measured = fig03_result.measured_by_name()
        assert measured["phase-frequency linearity R^2"] > 0.9

    def test_all_channels_visited(self, fig03_result):
        measured = fig03_result.measured_by_name()
        assert measured["channels observed"] == 50

    def test_slope_in_session_range(self, fig03_result):
        # Doubled-domain slope = 2 x (oscillator + tag - geometry) slopes;
        # anything wildly outside the configured ranges indicates a bug.
        measured = fig03_result.measured_by_name()
        assert 0.0 < measured["fitted slope magnitude (rad/MHz)"] < 3.0
