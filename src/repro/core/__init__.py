"""The M2AI core: configuration, network, trainer, pipeline."""

from repro.core.config import M2AIConfig
from repro.core.dataset import ActivityDataset, ChannelScaler
from repro.core.ensemble import M2AIEnsemble
from repro.core.model import MODEL_MODES, ConvBranch, DenseBranch, M2AINet
from repro.core.pipeline import (
    SERVE_DTYPES,
    EvaluationResult,
    M2AIPipeline,
    ServeParityError,
    baseline_arrays,
)
from repro.core.serialization import load_pipeline, save_pipeline
from repro.core.streaming import ABSTAIN, StreamingIdentifier, WindowDecision
from repro.core.trainer import TrainHistory, Trainer

__all__ = [
    "ABSTAIN",
    "MODEL_MODES",
    "ActivityDataset",
    "ChannelScaler",
    "ConvBranch",
    "DenseBranch",
    "EvaluationResult",
    "M2AIConfig",
    "M2AIEnsemble",
    "M2AINet",
    "M2AIPipeline",
    "SERVE_DTYPES",
    "ServeParityError",
    "StreamingIdentifier",
    "TrainHistory",
    "Trainer",
    "WindowDecision",
    "baseline_arrays",
    "load_pipeline",
    "save_pipeline",
]
