"""The reader session: TDM inventory, impairments, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import Vec2, make_open_space
from repro.hardware import (
    Reader,
    ReaderConfig,
    Scene,
    TagTrack,
    UniformLinearArray,
    make_tag,
    stationary_scene,
)


def make_reader(seed: int = 0, **overrides) -> Reader:
    array = UniformLinearArray(center=Vec2(0.0, 0.0))
    return Reader(ReaderConfig(array=array, **overrides), make_open_space(), seed=seed)


def one_tag_scene(rng=None, pos=(3.0, 3.0)):
    rng = rng or np.random.default_rng(0)
    return stationary_scene([(make_tag("T0", rng), pos)])


class TestInventory:
    def test_read_rate_about_40_per_second(self):
        reader = make_reader(random_miss_prob=0.0)
        log = reader.inventory(one_tag_scene(), duration_s=2.0)
        assert log.read_rate_hz(0) == pytest.approx(40.0, rel=0.05)

    def test_antenna_ports_cycle(self):
        reader = make_reader(random_miss_prob=0.0)
        log = reader.inventory(one_tag_scene(), duration_s=1.0)
        assert sorted(np.unique(log.antenna).tolist()) == [0, 1, 2, 3]

    def test_timestamps_sorted(self):
        reader = make_reader()
        log = reader.inventory(one_tag_scene(), duration_s=1.0)
        assert (np.diff(log.timestamp_s) >= 0).all()

    def test_phase_in_range(self):
        reader = make_reader()
        log = reader.inventory(one_tag_scene(), duration_s=2.0)
        assert (log.phase_rad >= 0).all() and (log.phase_rad < 2 * np.pi).all()

    def test_duration_validation(self):
        reader = make_reader()
        with pytest.raises(ValueError):
            reader.inventory(one_tag_scene(), duration_s=0.0)

    def test_scene_slot_mismatch_raises(self):
        reader = make_reader()
        rng = np.random.default_rng(0)
        moving = Scene(
            tag_tracks=(
                TagTrack(tag=make_tag("T0", rng), positions=np.zeros((17, 2)) + 3.0),
            )
        )
        with pytest.raises(ValueError):
            reader.inventory(moving, duration_s=1.0)

    def test_multiple_tags_all_reported(self):
        rng = np.random.default_rng(0)
        scene = stationary_scene(
            [(make_tag(f"T{i}", rng), (3.0 + i, 3.0)) for i in range(3)]
        )
        reader = make_reader()
        log = reader.inventory(scene, duration_s=1.0)
        assert sorted(np.unique(log.tag_index).tolist()) == [0, 1, 2]
        assert log.epcs == ("T0", "T1", "T2")


class TestImpairments:
    def test_session_offsets_frozen(self):
        reader = make_reader(seed=5)
        a = reader.oscillator_offsets
        b = reader.oscillator_offsets
        np.testing.assert_allclose(a, b)

    def test_different_sessions_different_offsets(self):
        assert not np.allclose(
            make_reader(seed=5).oscillator_offsets,
            make_reader(seed=6).oscillator_offsets,
        )

    def test_offsets_linear_in_frequency(self):
        reader = make_reader(seed=5)
        freqs = reader.hopper.frequencies_hz / 1e6
        offsets = reader.oscillator_offsets
        slope, intercept = np.polyfit(freqs, offsets, 1)
        residual = offsets - (slope * freqs + intercept)
        assert np.abs(residual).max() < 0.5  # jitter only
        lo, hi = reader.config.oscillator_slope_range
        assert lo <= slope <= hi

    def test_disable_offsets(self):
        reader = make_reader(enable_hopping_offsets=False)
        assert np.allclose(reader.oscillator_offsets, 0.0)

    def test_pi_flip_table_stable_per_session(self):
        reader = make_reader(seed=5)
        np.testing.assert_array_equal(
            reader._flip_table("E1"), reader._flip_table("E1")
        )

    def test_pi_flip_differs_across_tags(self):
        reader = make_reader(seed=5)
        assert not np.array_equal(reader._flip_table("E1"), reader._flip_table("E2"))

    def test_quantisation_grid(self):
        reader = make_reader(phase_noise_std_rad=0.0)
        log = reader.inventory(one_tag_scene(), duration_s=1.0)
        lsb = reader.config.phase_lsb_rad
        remainders = np.mod(log.phase_rad / lsb, 1.0)
        assert np.all((remainders < 1e-6) | (remainders > 1 - 1e-6))


class TestMissedReads:
    def test_far_tag_not_read(self):
        # Beyond the harvest range the tag stays silent (paper: ~6 m
        # power limit; open space with 1/d one-way amplitude).
        reader = make_reader(random_miss_prob=0.0)
        far = stationary_scene([(make_tag("far", np.random.default_rng(0)), (80.0, 0.0))])
        log = reader.inventory(far, duration_s=1.0)
        assert log.n_reads == 0

    def test_random_misses_reduce_rate(self):
        lossless = make_reader(random_miss_prob=0.0).inventory(
            one_tag_scene(), duration_s=4.0
        )
        lossy = make_reader(random_miss_prob=0.3).inventory(
            one_tag_scene(), duration_s=4.0
        )
        assert lossy.n_reads < lossless.n_reads


class TestDeterminism:
    def test_same_seed_same_log(self):
        log1 = make_reader(seed=9).inventory(one_tag_scene(), duration_s=1.0)
        log2 = make_reader(seed=9).inventory(one_tag_scene(), duration_s=1.0)
        np.testing.assert_allclose(log1.phase_rad, log2.phase_rad)
        np.testing.assert_allclose(log1.rssi_dbm, log2.rssi_dbm)
