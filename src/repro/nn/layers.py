"""Dense and element-wise layers."""

from __future__ import annotations

import numpy as np

from repro.nn.init import glorot_uniform, he_uniform
from repro.nn.module import Module, Parameter


class Dense(Module):
    """Affine layer ``y = x W + b`` over the last axis.

    Accepts any leading batch shape: ``(..., in_dim) -> (..., out_dim)``.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        relu_init: bool = False,
        name: str = "dense",
    ) -> None:
        init = he_uniform if relu_init else glorot_uniform
        self.weight = Parameter(init((in_dim, out_dim), rng), name=f"{name}.W")
        self.bias = Parameter(np.zeros(out_dim), name=f"{name}.b")
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Forward pass (caches what :meth:`backward` needs)."""
        self._x = x
        return x @ self.weight.value + self.bias.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backprop through the cached forward pass; returns the input gradient."""
        x = self._x
        if x is None:
            raise RuntimeError("backward before forward")
        flat_x = x.reshape(-1, x.shape[-1])
        flat_g = grad.reshape(-1, grad.shape[-1])
        self.weight.grad += flat_x.T @ flat_g
        self.bias.grad += flat_g.sum(axis=0)
        return grad @ self.weight.value.T


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Forward pass (caches what :meth:`backward` needs)."""
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backprop through the cached forward pass; returns the input gradient."""
        if self._mask is None:
            raise RuntimeError("backward before forward")
        return np.where(self._mask, grad, 0.0)


class Tanh(Module):
    """Hyperbolic tangent."""

    def __init__(self) -> None:
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Forward pass (caches what :meth:`backward` needs)."""
        self._y = np.tanh(x)
        return self._y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backprop through the cached forward pass; returns the input gradient."""
        if self._y is None:
            raise RuntimeError("backward before forward")
        return grad * (1.0 - self._y**2)


class Dropout(Module):
    """Inverted dropout; identity at inference time."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError("rate must be in [0, 1)")
        self.rate = rate
        self._rng = rng
        self._mask: np.ndarray | None = None

    @property
    def rng(self) -> np.random.Generator:
        """The generator feeding the masks (checkpointing captures it)."""
        return self._rng

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Forward pass (caches what :meth:`backward` needs)."""
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backprop through the cached forward pass; returns the input gradient."""
        if self._mask is None:
            return grad
        return grad * self._mask


class Flatten(Module):
    """Collapse all but the first axis: ``(B, ...) -> (B, D)``."""

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Forward pass (caches what :meth:`backward` needs)."""
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backprop through the cached forward pass; returns the input gradient."""
        if self._shape is None:
            raise RuntimeError("backward before forward")
        return grad.reshape(self._shape)
