"""Weight initialisers."""

from __future__ import annotations

import numpy as np


def glorot_uniform(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    fan_in: int | None = None,
    fan_out: int | None = None,
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation.

    Args:
        shape: tensor shape.
        rng: randomness source.
        fan_in: override the inferred input fan.
        fan_out: override the inferred output fan.
    """
    if fan_in is None:
        fan_in = int(np.prod(shape[:-1])) if len(shape) > 1 else shape[0]
    if fan_out is None:
        fan_out = shape[-1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, shape)


def he_uniform(
    shape: tuple[int, ...], rng: np.random.Generator, fan_in: int | None = None
) -> np.ndarray:
    """He uniform initialisation (for ReLU stacks)."""
    if fan_in is None:
        fan_in = int(np.prod(shape[:-1])) if len(shape) > 1 else shape[0]
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, shape)


def orthogonal(shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """Orthogonal initialisation (recurrent weight matrices)."""
    a = rng.normal(0.0, 1.0, shape)
    q, r = np.linalg.qr(a if shape[0] >= shape[1] else a.T)
    q = q * np.sign(np.diag(r))
    return q if shape[0] >= shape[1] else q.T
