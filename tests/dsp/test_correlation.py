"""Spatial covariance estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsp import diagonal_load, forward_backward, sample_covariance, spatial_covariance

RNG = np.random.default_rng(0)


def random_snapshots(k=20, n=4):
    return RNG.normal(size=(k, n)) + 1j * RNG.normal(size=(k, n))


class TestSampleCovariance:
    def test_hermitian(self):
        r = sample_covariance(random_snapshots())
        np.testing.assert_allclose(r, r.conj().T)

    def test_positive_semidefinite(self):
        r = sample_covariance(random_snapshots())
        eigvals = np.linalg.eigvalsh(r)
        assert (eigvals >= -1e-12).all()

    def test_definition(self):
        z = random_snapshots(k=5, n=3)
        r = sample_covariance(z)
        manual = np.zeros((3, 3), dtype=complex)
        for row in z:
            manual += np.outer(row, row.conj())
        np.testing.assert_allclose(r, manual / 5)

    def test_valid_mask_filters(self):
        z = random_snapshots(k=4, n=3)
        valid = np.ones((4, 3), dtype=bool)
        valid[1, 0] = False  # snapshot 1 incomplete
        r = sample_covariance(z, valid)
        np.testing.assert_allclose(r, sample_covariance(z[[0, 2, 3]]))

    def test_no_snapshots_rejected(self):
        with pytest.raises(ValueError):
            sample_covariance(np.zeros((0, 4), dtype=complex))
        with pytest.raises(ValueError):
            sample_covariance(random_snapshots(3), np.zeros((3, 4), dtype=bool))

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            sample_covariance(np.zeros(4, dtype=complex))


class TestForwardBackward:
    def test_hermitian_preserved(self):
        r = sample_covariance(random_snapshots())
        fb = forward_backward(r)
        np.testing.assert_allclose(fb, fb.conj().T)

    def test_trace_preserved(self):
        r = sample_covariance(random_snapshots())
        assert np.trace(forward_backward(r)) == pytest.approx(np.trace(r))

    def test_persymmetric_output(self):
        r = sample_covariance(random_snapshots())
        fb = forward_backward(r)
        n = fb.shape[0]
        j = np.eye(n)[::-1]
        np.testing.assert_allclose(fb, j @ fb.conj() @ j)


class TestDiagonalLoading:
    def test_raises_smallest_eigenvalue(self):
        r = np.zeros((3, 3), dtype=complex)
        r[0, 0] = 3.0
        loaded = diagonal_load(r, 1e-3)
        assert np.linalg.eigvalsh(loaded).min() > 0

    def test_full_pipeline_shape(self):
        z = random_snapshots()
        r = spatial_covariance(z)
        assert r.shape == (4, 4)
        assert np.isfinite(r).all()
