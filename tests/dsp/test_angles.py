"""Circular statistics, with hypothesis identities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dsp import (
    circular_distance,
    circular_mean,
    circular_median,
    fold_double,
    wrap_2pi,
    wrap_pm_pi,
)

angle = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)


class TestWrapping:
    @given(angle)
    def test_wrap_2pi_range(self, a):
        w = float(wrap_2pi(a))
        assert 0.0 <= w < 2 * np.pi

    @given(angle)
    def test_wrap_pm_pi_range(self, a):
        w = float(wrap_pm_pi(a))
        assert -np.pi < w <= np.pi + 1e-12

    @given(angle)
    def test_wraps_agree_mod_2pi(self, a):
        diff = float(wrap_2pi(a)) - float(wrap_pm_pi(a))
        assert abs(diff % (2 * np.pi)) < 1e-9 or abs(diff % (2 * np.pi) - 2 * np.pi) < 1e-9


class TestFoldDouble:
    @given(angle)
    def test_pi_ambiguity_removed(self, a):
        d = circular_distance(float(fold_double(a)), float(fold_double(a + np.pi)))
        assert float(d) < 1e-7

    @given(angle)
    def test_doubling(self, a):
        d = circular_distance(float(fold_double(a)), float(wrap_2pi(2 * a)))
        assert float(d) < 1e-9


class TestCircularStats:
    def test_mean_of_concentrated_sample(self):
        samples = np.array([0.1, 0.2, 6.2])  # wraps across 0
        assert abs(wrap_pm_pi(circular_mean(samples) - 0.05)) < 0.2

    def test_median_robust_to_outlier(self):
        samples = np.array([1.0, 1.01, 0.99, 1.02, 4.0])
        assert circular_median(samples) == pytest.approx(1.01, abs=0.05)

    def test_median_wraps(self):
        samples = np.array([6.25, 6.28, 0.02, 0.05])
        med = circular_median(samples)
        assert circular_distance(med, 0.0)[()] < 0.1

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            circular_mean(np.array([]))
        with pytest.raises(ValueError):
            circular_median(np.array([]))

    @given(st.lists(angle, min_size=1, max_size=30), angle)
    def test_median_rotation_equivariant(self, values, shift):
        arr = np.array(values)
        a = circular_median(wrap_2pi(arr + shift))
        b = wrap_2pi(circular_median(wrap_2pi(arr)) + shift)
        # Equivariance can legitimately break for dispersed samples
        # (the circular median is not unique then); restrict to
        # concentrated samples.
        spread = np.abs(wrap_pm_pi(arr - circular_mean(arr))).max()
        if spread < 1.0:
            assert circular_distance(a, b)[()] < 1e-6

    def test_distance_symmetric_and_bounded(self):
        a, b = 0.3, 6.0
        d1 = float(circular_distance(a, b))
        d2 = float(circular_distance(b, a))
        assert d1 == pytest.approx(d2)
        assert 0 <= d1 <= np.pi
