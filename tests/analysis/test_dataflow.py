"""The dataflow substrate: CFGs, the worklist solver, the project
model, and the call graph — exercised directly, below the rule packs.
"""

from __future__ import annotations

import ast

from repro.analysis.dataflow import (
    ForwardAnalysis,
    Project,
    build_call_graph,
    build_cfg,
    dotted_name,
    module_name_for_path,
    run_forward,
)


def fn_of(src: str) -> ast.FunctionDef:
    tree = ast.parse(src)
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            return node
    raise AssertionError("no function in source")


def proj_of(*units: tuple[str, str]) -> Project:
    return Project.from_sources([(p, s, ast.parse(s)) for p, s in units])


# ---------------------------------------------------------------------------
# CFG construction.


def test_straight_line_is_one_block():
    cfg = build_cfg(fn_of("def f():\n    a = 1\n    b = 2\n    return a + b\n"))
    stmt_blocks = [b for b in cfg.blocks.values() if b.stmts]
    assert len(stmt_blocks) == 1
    assert [type(s).__name__ for s in stmt_blocks[0].stmts] == [
        "Assign",
        "Assign",
        "Return",
    ]


def test_if_produces_join_with_two_predecessors():
    cfg = build_cfg(
        fn_of(
            "def f(c):\n"
            "    if c:\n"
            "        x = 1\n"
            "    else:\n"
            "        x = 2\n"
            "    return x\n"
        )
    )
    preds = cfg.preds()
    ret_block = next(
        b for b in cfg.blocks.values() if any(isinstance(s, ast.Return) for s in b.stmts)
    )
    assert len(preds[ret_block.block_id]) == 2


def test_loop_has_back_edge():
    cfg = build_cfg(
        fn_of("def f(n):\n    t = 0\n    while n:\n        t += 1\n    return t\n")
    )
    header = next(
        b for b in cfg.blocks.values() if any(isinstance(s, ast.While) for s in b.stmts)
    )
    body = next(
        b
        for b in cfg.blocks.values()
        if any(isinstance(s, ast.AugAssign) for s in b.stmts)
    )
    assert header.block_id in body.succs  # the back edge


def test_return_paths_reach_exit():
    cfg = build_cfg(
        fn_of(
            "def f(c):\n"
            "    if c:\n"
            "        return 1\n"
            "    return 2\n"
        )
    )
    preds = cfg.preds()
    assert len(preds[cfg.exit]) == 2


def test_try_handler_reachable_from_before_body():
    cfg = build_cfg(
        fn_of(
            "def f():\n"
            "    try:\n"
            "        a = risky()\n"
            "    except ValueError:\n"
            "        a = None\n"
            "    return a\n"
        )
    )
    handler = next(
        b
        for b in cfg.blocks.values()
        if any(
            isinstance(s, ast.Assign)
            and isinstance(s.value, ast.Constant)
            and s.value.value is None
            for s in b.stmts
        )
    )
    assert cfg.preds()[handler.block_id], "handler must be reachable"


# ---------------------------------------------------------------------------
# Worklist solver.


class _TaintOnes(ForwardAnalysis):
    """Toy analysis: x = 1 taints x; y = x propagates; join = max."""

    def transfer(self, stmt, state):
        state = dict(state)
        if isinstance(stmt, ast.Assign) and isinstance(stmt.targets[0], ast.Name):
            target = stmt.targets[0].id
            v = stmt.value
            if isinstance(v, ast.Constant) and v.value == 1:
                state[target] = 1
            elif isinstance(v, ast.Name):
                state[target] = state.get(v.id, 0)
            else:
                state[target] = 0
        return state


def entry_state_at_return(src: str) -> dict:
    cfg = build_cfg(fn_of(src))
    per_stmt = run_forward(cfg, _TaintOnes())
    for bid, block in cfg.blocks.items():
        for stmt, state in zip(block.stmts, per_stmt[bid]):
            if isinstance(stmt, ast.Return):
                return state
    raise AssertionError("no return statement")


def test_solver_merges_branches_with_max():
    state = entry_state_at_return(
        "def f(c):\n"
        "    if c:\n"
        "        x = 1\n"
        "    else:\n"
        "        x = 0\n"
        "    return x\n"
    )
    assert state["x"] == 1  # may-analysis keeps the tainted branch


def test_solver_propagates_through_loop_back_edge():
    state = entry_state_at_return(
        "def f(n):\n"
        "    x = 0\n"
        "    y = 0\n"
        "    while n:\n"
        "        y = x\n"
        "        x = 1\n"
        "    return y\n"
    )
    # y = x picks up the taint only via the second loop iteration: the
    # back edge must be solved to fixpoint, not walked once.
    assert state["y"] == 1


def test_solver_terminates_on_nested_loops():
    state = entry_state_at_return(
        "def f(n):\n"
        "    x = 0\n"
        "    for i in range(n):\n"
        "        for j in range(n):\n"
        "            x = 1\n"
        "    return x\n"
    )
    assert state["x"] == 1


# ---------------------------------------------------------------------------
# Project model + call graph.


def test_module_name_for_path_anchors_on_src():
    assert module_name_for_path("src/repro/dsp/music.py") == "repro.dsp.music"
    assert module_name_for_path("/abs/src/repro/nn/module.py") == "repro.nn.module"
    assert module_name_for_path("somewhere/fixture.py") == "fixture"


def test_dotted_name_resolution():
    expr = ast.parse("np.random.seed", mode="eval").body
    assert dotted_name(expr) == "np.random.seed"
    call = ast.parse("f(x)", mode="eval").body
    assert dotted_name(call) is None


def test_import_aliases_resolve_across_modules():
    proj = proj_of(
        ("src/repro/a.py", "def helper():\n    return 1\n"),
        (
            "src/repro/b.py",
            "from repro.a import helper as h\n\ndef use():\n    return h()\n",
        ),
    )
    info_b = proj.modules["repro.b"]
    call = info_b.functions["use"].node.body[0].value  # type: ignore[attr-defined]
    fn = proj.resolve_function(info_b, call.func)
    assert fn is not None and fn.qualname == "repro.a.helper"


def test_relative_import_resolution():
    proj = proj_of(
        ("src/repro/pkg/a.py", "def helper():\n    return 1\n"),
        (
            "src/repro/pkg/b.py",
            "from .a import helper\n\ndef use():\n    return helper()\n",
        ),
    )
    info_b = proj.modules["repro.pkg.b"]
    call = info_b.functions["use"].node.body[0].value  # type: ignore[attr-defined]
    fn = proj.resolve_function(info_b, call.func)
    assert fn is not None and fn.qualname == "repro.pkg.a.helper"


def test_call_graph_edges_are_provable_only():
    proj = proj_of(
        (
            "src/repro/m.py",
            "def a():\n"
            "    return b() + unknown()\n"
            "def b():\n"
            "    return 1\n",
        )
    )
    graph = build_call_graph(proj)
    assert "repro.m.b" in graph.edges.get("repro.m.a", set())
    callees = set().union(*graph.edges.values()) if graph.edges else set()
    assert not any("unknown" in c for c in callees)


def test_callers_of_inverts_edges():
    proj = proj_of(
        (
            "src/repro/m.py",
            "def a():\n    return b()\ndef c():\n    return b()\ndef b():\n    return 1\n",
        )
    )
    graph = build_call_graph(proj)
    assert graph.callers_of("repro.m.b") == {"repro.m.a", "repro.m.c"}
