"""Importable toy experiment registry for run_batch worker tests.

Spawned workers resolve their registry by dotted path, so the fake
drivers must live in a real module (a closure cannot cross a spawn
boundary).  The result type is duck-typed on purpose: it keeps worker
start-up free of the heavy ``repro.eval`` import chain.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field


@dataclass(frozen=True)
class ToyRow:
    """Minimal stand-in for ExperimentRow (asdict-compatible)."""

    name: str
    paper: "float | None"
    measured: float
    unit: str = "acc"
    approx: bool = False


@dataclass
class ToyResult:
    """Minimal stand-in for ExperimentResult."""

    experiment_id: str
    title: str
    rows: list
    notes: str = ""
    extras: dict = field(default_factory=dict)

    def render(self) -> str:
        """Deterministic text block."""
        body = "\n".join(f"{r.name}: {r.measured:.6f}" for r in self.rows)
        return f"== {self.experiment_id}: {self.title} ==\n{body}"


def run_toy(quick: bool = True, seed: int = 0, scale: float = 1.0) -> ToyResult:
    """Deterministic toy driver: measured value is a function of args."""
    value = (seed * 10 + (1 if quick else 2)) * scale
    return ToyResult(
        experiment_id="toy",
        title="toy experiment",
        rows=[ToyRow("value", None, float(value))],
        notes=f"quick={quick} seed={seed}",
    )


def run_crash(quick: bool = True, seed: int = 0) -> ToyResult:
    """Driver that always raises (worker failure attribution tests)."""
    raise RuntimeError("injected driver failure")


def run_die(quick: bool = True, seed: int = 0) -> ToyResult:
    """Driver that hard-kills its process for odd seeds.

    ``os._exit`` skips all Python cleanup — the closest simulation of
    a SIGKILL mid-sweep that still works under pytest.
    """
    if seed % 2 == 1:
        os._exit(41)
    return run_toy(quick=quick, seed=seed)


def factory() -> dict:
    """Registry factory resolved by the spawned workers."""
    return {"toy": run_toy, "crash": run_crash, "die": run_die}


def good_factory() -> dict:
    """Registry where the 'die' id no longer dies (resume-after-kill)."""
    return {"toy": run_toy, "crash": run_crash, "die": run_toy}
