"""Seed-ensemble behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ActivityDataset, M2AIConfig
from repro.core.ensemble import M2AIEnsemble
from repro.dsp.frames import FeatureFrames

CFG = M2AIConfig(
    conv_channels=(3, 4),
    branch_dim=6,
    merge_dim=8,
    lstm_hidden=6,
    lstm_layers=1,
    dropout=0.0,
    epochs=10,
    batch_size=8,
    learning_rate=0.01,
    warmup_frames=1,
    augment=False,
)


def make_dataset(per_class=10, seed=0):
    rng = np.random.default_rng(seed)
    samples, labels = [], []
    for cls in range(3):
        for _ in range(per_class):
            pseudo = rng.normal(0, 0.4, (4, 2, 40))
            pseudo[:, :, 5 + cls * 10 : 12 + cls * 10] += 1.5
            samples.append(
                FeatureFrames(
                    channels={"pseudo": pseudo, "period": rng.normal(size=(4, 2, 4))},
                    label=f"K{cls}",
                )
            )
            labels.append(f"K{cls}")
    return ActivityDataset(samples=samples, labels=labels)


@pytest.fixture(scope="module")
def fitted_ensemble():
    ds = make_dataset()
    train, test = ds.split(0.25, np.random.default_rng(0))
    ensemble = M2AIEnsemble(CFG, n_members=3).fit(train, val=test)
    return ensemble, train, test


class TestEnsemble:
    def test_members_trained_with_distinct_seeds(self, fitted_ensemble):
        ensemble, _train, _test = fitted_ensemble
        seeds = [m.config.seed for m in ensemble.members]
        assert len(set(seeds)) == 3

    def test_probabilities_normalised(self, fitted_ensemble):
        ensemble, _train, test = fitted_ensemble
        proba = ensemble.predict_proba(test)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_ensemble_at_least_competitive(self, fitted_ensemble):
        ensemble, _train, test = fitted_ensemble
        committee = ensemble.evaluate(test).accuracy
        members = ensemble.member_accuracies(test)
        # The committee should not fall below the weakest member by
        # more than one test sample's worth.
        assert committee >= min(members) - (1.0 / len(test)) - 1e-9

    def test_predictions_in_vocabulary(self, fitted_ensemble):
        ensemble, _train, test = fitted_ensemble
        assert set(ensemble.predict(test).tolist()) <= {"K0", "K1", "K2"}

    def test_unfitted_raises(self):
        ds = make_dataset(per_class=2)
        with pytest.raises(RuntimeError):
            M2AIEnsemble(CFG).predict(ds)

    def test_validation(self):
        with pytest.raises(ValueError):
            M2AIEnsemble(CFG, n_members=0)
