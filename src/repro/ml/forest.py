"""Random forest (Fig. 9 baseline): bagged CART trees with feature
subsampling, soft-vote aggregated."""

from __future__ import annotations

import numpy as np

from repro.ml.base import Classifier, LabelEncoder, validate_xy
from repro.ml.tree import DecisionTreeClassifier


class RandomForestClassifier(Classifier):
    """Bootstrap-aggregated decision trees.

    Args:
        n_estimators: number of trees.
        max_depth: per-tree depth cap.
        max_features: per-split feature budget (default ``"sqrt"``).
        rng: bootstrap and split randomness.
    """

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: int | None = 12,
        max_features: int | str | None = "sqrt",
        rng: np.random.Generator | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.max_features = max_features
        self.rng = rng or np.random.default_rng(0)
        self._encoder = LabelEncoder()
        self._trees: list[DecisionTreeClassifier] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        """Fit the classifier; returns ``self``."""
        x, y = validate_xy(x, y)
        self._encoder.fit(y)
        self._trees = []
        n = len(x)
        for _ in range(self.n_estimators):
            idx = self.rng.integers(0, n, size=n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                max_features=self.max_features,
                rng=np.random.default_rng(self.rng.integers(2**31)),
            )
            tree.fit(x[idx], y[idx])
            self._trees.append(tree)
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Forest-averaged class distribution, ``(n, k)``.

        Trees may have seen different class subsets in their bootstrap
        samples, so per-tree probabilities are re-aligned onto the
        forest's global class ordering before averaging.
        """
        if not self._trees:
            raise RuntimeError("classifier not fitted")
        classes = self._encoder.classes_
        assert classes is not None
        total = np.zeros((len(x), len(classes)))
        for tree in self._trees:
            probs = tree.predict_proba(x)
            tree_classes = tree._encoder.classes_
            assert tree_classes is not None
            col = {c: i for i, c in enumerate(classes.tolist())}
            for j, cls in enumerate(tree_classes.tolist()):
                total[:, col[cls]] += probs[:, j]
        return total / len(self._trees)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted class ids for ``x``, shape ``(B,)``."""
        proba = self.predict_proba(x)
        classes = self._encoder.classes_
        assert classes is not None
        return classes[proba.argmax(axis=1)]
