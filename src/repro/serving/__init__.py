"""Multi-tenant fleet serving with per-stream fault isolation.

One fitted pipeline, many independent read streams: the fleet admits
streams up to capacity, shards them across workers (in-process or one
OS process per shard), wraps each stream in its own supervisor so
faults degrade only their own stream, and batches inference across
streams inside each shard.  Quickstart::

    from repro.serving import FleetServer

    fleet = FleetServer(make_identifier, capacity=64, n_shards=4)
    fleet.admit("room-12", priority=1)
    fleet.submit("room-12", log)
    decisions = fleet.tick()          # {"room-12": [WindowDecision, ...]}
    print(fleet.health().state)       # "healthy" / "degraded" / "failed"

``python -m repro.eval.serving`` benchmarks the batched-vs-naive
throughput curve and proves the isolation guarantees.
"""

from repro.serving.fleet import (
    REASON_CAPACITY,
    AdmissionResult,
    FleetHealth,
    FleetServer,
    ShardHealth,
    SubmitReceipt,
)
from repro.serving.shard import (
    STAGE_BATCH_GUARD,
    STAGE_SHED,
    NonFiniteSampleError,
    ShardServer,
    StreamLane,
)
from repro.serving.sharedlog import (
    SHARED_MEMORY_MIN_BYTES,
    ShippedLog,
    discard_shipped,
    ship_log,
    unship_log,
)
from repro.serving.workers import (
    InlineShardWorker,
    ProcessShardWorker,
    ShardWorker,
    TickResult,
    WorkerCrashedError,
)

__all__ = [
    "REASON_CAPACITY",
    "SHARED_MEMORY_MIN_BYTES",
    "STAGE_BATCH_GUARD",
    "STAGE_SHED",
    "AdmissionResult",
    "FleetHealth",
    "FleetServer",
    "InlineShardWorker",
    "NonFiniteSampleError",
    "ProcessShardWorker",
    "ShardHealth",
    "ShardServer",
    "ShardWorker",
    "ShippedLog",
    "StreamLane",
    "SubmitReceipt",
    "TickResult",
    "WorkerCrashedError",
    "discard_shipped",
    "ship_log",
    "unship_log",
]
