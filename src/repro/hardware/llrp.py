"""LLRP-style tag report stream.

The Low Level Reader Protocol gives clients per-read records carrying
EPC, antenna port, channel, timestamp, phase and RSSI.  The simulator
emits the same stream as a struct-of-arrays container, which is what
the preprocessing stage consumes — the code path is identical to one
fed by a real Speedway R420 through Octane/LLRP.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs.metrics import counter
from repro.obs.tracing import span


@dataclass(frozen=True)
class ReaderMeta:
    """Static facts about the reader session attached to every log.

    Attributes:
        n_antennas: number of array elements.
        slot_s: TDM slot duration (25 ms on the R420).
        dwell_s: frequency-hop dwell (400 ms).
        spacing_m: array element spacing.
        frequencies_hz: channel table, ``(n_channels,)``.
        reference_channel: index of the calibration reference channel.
    """

    n_antennas: int
    slot_s: float
    dwell_s: float
    spacing_m: float
    frequencies_hz: np.ndarray
    reference_channel: int


@dataclass
class ReadLog:
    """A batch of tag reads (struct-of-arrays).

    All per-read arrays share length ``R`` and are index-aligned.

    Attributes:
        epcs: EPC string for each tag index.
        tag_index: ``(R,)`` index into ``epcs``.
        antenna: ``(R,)`` antenna port, 0-based.
        channel: ``(R,)`` hop-channel index.
        frequency_hz: ``(R,)`` carrier frequency of the read.
        timestamp_s: ``(R,)`` read time.
        phase_rad: ``(R,)`` reported phase in ``[0, 2*pi)`` — includes
            hopping offsets and the R420's pi ambiguity, exactly like
            the real hardware.
        rssi_dbm: ``(R,)`` reported signal strength.
        meta: session facts.
    """

    epcs: tuple[str, ...]
    tag_index: np.ndarray
    antenna: np.ndarray
    channel: np.ndarray
    frequency_hz: np.ndarray
    timestamp_s: np.ndarray
    phase_rad: np.ndarray
    rssi_dbm: np.ndarray
    meta: ReaderMeta
    _per_tag_cache: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        length = len(self.tag_index)
        for name in ("antenna", "channel", "frequency_hz", "timestamp_s", "phase_rad", "rssi_dbm"):
            if len(getattr(self, name)) != length:
                raise ValueError(f"array {name!r} length mismatch")

    @property
    def n_reads(self) -> int:
        """Total number of reads in the log."""
        return int(len(self.tag_index))

    @property
    def n_tags(self) -> int:
        """Number of distinct tags the log covers."""
        return len(self.epcs)

    @property
    def duration_s(self) -> float:
        """Time span between first and last read."""
        if self.n_reads == 0:
            return 0.0
        return float(self.timestamp_s.max() - self.timestamp_s.min())

    def for_tag(self, tag_index: int) -> "ReadLog":
        """Sub-log containing only reads of one tag (cached)."""
        if tag_index not in self._per_tag_cache:
            self._per_tag_cache[tag_index] = self.select(self.tag_index == tag_index)
        return self._per_tag_cache[tag_index]

    def select(self, mask: np.ndarray) -> "ReadLog":
        """Sub-log of reads where ``mask`` is True.

        Raises:
            ValueError: when ``mask`` is not a boolean array of length
                ``n_reads``.
        """
        mask = np.asarray(mask)
        if mask.dtype != np.bool_ or mask.shape != (self.n_reads,):
            raise ValueError(
                f"mask must be a boolean array of length {self.n_reads}, "
                f"got dtype {mask.dtype} shape {mask.shape}"
            )
        return ReadLog(
            epcs=self.epcs,
            tag_index=self.tag_index[mask],
            antenna=self.antenna[mask],
            channel=self.channel[mask],
            frequency_hz=self.frequency_hz[mask],
            timestamp_s=self.timestamp_s[mask],
            phase_rad=self.phase_rad[mask],
            rssi_dbm=self.rssi_dbm[mask],
            meta=self.meta,
        )

    def take(self, indices: np.ndarray | slice) -> "ReadLog":
        """Sub-log of the reads selected by ``indices``, in that order.

        Unlike :meth:`select`, this accepts an integer index array (or
        a plain slice, which costs only array views) — the streaming
        identifier uses it to cut windows out of a time-sorted log
        without rescanning every read per window.
        """
        return ReadLog(
            epcs=self.epcs,
            tag_index=self.tag_index[indices],
            antenna=self.antenna[indices],
            channel=self.channel[indices],
            frequency_hz=self.frequency_hz[indices],
            timestamp_s=self.timestamp_s[indices],
            phase_rad=self.phase_rad[indices],
            rssi_dbm=self.rssi_dbm[indices],
            meta=self.meta,
        )

    def antenna_liveness(self) -> np.ndarray:
        """Which antenna ports produced at least one read.

        A port silent over a whole log is, for processing purposes,
        dead — whether from a cable fault, a mux failure, or an
        injected :mod:`repro.faults` scenario.  The DSP stages use this
        mask to shrink to the surviving subarray instead of silently
        ingesting zeros.

        The mask is computed once and cached on the log — it is asked
        for repeatedly on the serving hot path (admission, then again
        by frame assembly) and the read arrays are treated as
        immutable throughout (:meth:`select`/:meth:`take` build new
        logs).

        Returns:
            ``(n_antennas,)`` boolean mask, True where the port is live.
        """
        cached = getattr(self, "_liveness", None)
        if cached is not None:
            return cached
        live = np.zeros(self.meta.n_antennas, dtype=bool)
        ants = self.antenna
        live[ants[(ants >= 0) & (ants < self.meta.n_antennas)]] = True
        self._liveness = live
        return live

    def read_rate_hz(self, tag_index: int) -> float:
        """Average reads/second for one tag (0 when unseen)."""
        sub = self.for_tag(tag_index)
        if sub.n_reads < 2:
            return 0.0
        return sub.n_reads / max(sub.duration_s, 1e-9)


def concatenate_logs(logs: list[ReadLog]) -> ReadLog:
    """Concatenate logs from the same session (same epcs and meta).

    Raises:
        ValueError: when the logs disagree on tags or session metadata.
    """
    if not logs:
        raise ValueError("need at least one log")
    first = logs[0]
    for log in logs[1:]:
        if log.epcs != first.epcs:
            raise ValueError("cannot concatenate logs with different tag sets")
        if log.meta.n_antennas != first.meta.n_antennas:
            raise ValueError("cannot concatenate logs with different readers")
        if log.meta.dwell_s != first.meta.dwell_s or log.meta.slot_s != first.meta.slot_s:
            raise ValueError("cannot concatenate logs with different reader timing")
        if not np.array_equal(log.meta.frequencies_hz, first.meta.frequencies_hz):
            raise ValueError("cannot concatenate logs with different channel tables")
    with span("ingest.concat", logs=len(logs)):
        merged = ReadLog(
            epcs=first.epcs,
            tag_index=np.concatenate([log.tag_index for log in logs]),
            antenna=np.concatenate([log.antenna for log in logs]),
            channel=np.concatenate([log.channel for log in logs]),
            frequency_hz=np.concatenate([log.frequency_hz for log in logs]),
            timestamp_s=np.concatenate([log.timestamp_s for log in logs]),
            phase_rad=np.concatenate([log.phase_rad for log in logs]),
            rssi_dbm=np.concatenate([log.rssi_dbm for log in logs]),
            meta=first.meta,
        )
    counter("ingest.reads_total", source="concat").inc(merged.n_reads)
    return merged
