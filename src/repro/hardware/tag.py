"""Passive UHF tag model.

A tag contributes two measurement artifacts on top of the propagation
channel, both observed in the paper (Fig. 3) and in [18]:

* a frequency-dependent phase response of its antenna, well modelled
  as linear in carrier frequency plus small per-channel deviations;
* it is the *combination* of this response with the reader oscillator
  offset that phase calibration (Eq. 1) has to remove.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np


def stable_seed(*parts: object) -> int:
    """A process-independent 32-bit seed from arbitrary parts.

    Python's built-in ``hash`` of strings is randomised per process
    (PYTHONHASHSEED), which would make simulations unrepeatable across
    runs; CRC32 over the repr is stable everywhere.
    """
    return zlib.crc32("|".join(repr(p) for p in parts).encode())


@dataclass(frozen=True)
class Tag:
    """One Impinj-style passive tag.

    Attributes:
        epc: unique electronic product code string.
        phase_slope_rad_per_mhz: slope of the tag antenna's phase
            response across the band.
        phase_intercept_rad: phase response at the band edge.
        channel_jitter_rad: per-channel deviation from the linear model
            (drawn deterministically from ``epc``).
    """

    epc: str
    phase_slope_rad_per_mhz: float = 0.12
    phase_intercept_rad: float = 0.0
    channel_jitter_rad: float = 0.03

    def phase_offsets(self, frequencies_hz: np.ndarray) -> np.ndarray:
        """Tag-induced phase offset per channel, radians.

        Deterministic in ``epc`` so repeated inventories of the same
        tag see the same response (required for calibration to work,
        and true of real hardware).

        Args:
            frequencies_hz: channel centre frequencies.

        Returns:
            Offsets, same shape as ``frequencies_hz``.
        """
        freqs = np.asarray(frequencies_hz, dtype=np.float64)
        base_mhz = freqs.min() / 1e6
        linear = (
            self.phase_intercept_rad
            + self.phase_slope_rad_per_mhz * (freqs / 1e6 - base_mhz)
        )
        rng = np.random.default_rng(stable_seed("tag-jitter", self.epc))
        jitter = rng.normal(0.0, self.channel_jitter_rad, freqs.shape)
        return linear + jitter


def make_tag(epc: str, rng: np.random.Generator) -> Tag:
    """Draw a tag with a randomised (but then fixed) phase response."""
    return Tag(
        epc=epc,
        phase_slope_rad_per_mhz=float(rng.uniform(0.05, 0.25)),
        phase_intercept_rad=float(rng.uniform(0.0, 2.0 * np.pi)),
        channel_jitter_rad=float(rng.uniform(0.01, 0.05)),
    )
