"""ActivityDataset and channel scaling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ActivityDataset, ChannelScaler
from repro.dsp.frames import FeatureFrames


def make_sample(label: str, seed: int = 0, frames: int = 4) -> FeatureFrames:
    rng = np.random.default_rng(seed)
    return FeatureFrames(
        channels={
            "pseudo": rng.normal(size=(frames, 2, 10)),
            "period": rng.normal(size=(frames, 2, 4)),
        },
        label=label,
    )


def make_dataset(per_class=4, classes=("A", "B", "C")):
    samples, labels = [], []
    seed = 0
    for cls in classes:
        for _ in range(per_class):
            samples.append(make_sample(cls, seed))
            labels.append(cls)
            seed += 1
    return ActivityDataset(samples=samples, labels=labels)


class TestActivityDataset:
    def test_basic_properties(self):
        ds = make_dataset()
        assert len(ds) == 12
        assert ds.classes == ["A", "B", "C"]
        assert ds.channel_shapes == {"pseudo": (2, 10), "period": (2, 4)}

    def test_labels_from_samples_when_missing(self):
        samples = [make_sample("X"), make_sample("Y")]
        ds = ActivityDataset(samples=samples)
        assert ds.labels == ["X", "Y"]

    def test_inconsistent_shapes_rejected(self):
        with pytest.raises(ValueError):
            ActivityDataset(samples=[make_sample("A"), make_sample("B", frames=7)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ActivityDataset(samples=[])

    def test_to_arrays(self):
        ds = make_dataset()
        channels, labels = ds.to_arrays()
        assert channels["pseudo"].shape == (12, 4, 2, 10)
        assert labels.shape == (12,)

    def test_flatten_features(self):
        ds = make_dataset()
        flat = ds.flatten_features()
        assert flat.shape == (12, 4 * 2 * 10 + 4 * 2 * 4)

    def test_to_sequences(self):
        ds = make_dataset()
        seqs = ds.to_sequences()
        assert seqs.shape == (12, 4, 2 * 10 + 2 * 4)

    def test_split_stratified(self):
        ds = make_dataset(per_class=5)
        train, test = ds.split(0.2, np.random.default_rng(0))
        assert len(train) + len(test) == len(ds)
        assert sorted(set(test.labels)) == ["A", "B", "C"]

    def test_split_disjoint_and_complete(self):
        ds = make_dataset(per_class=5)
        train, test = ds.split(0.4, np.random.default_rng(1))
        # Compare by object identity of the FeatureFrames.
        train_ids = {id(s) for s in train.samples}
        test_ids = {id(s) for s in test.samples}
        assert not train_ids & test_ids
        assert len(train_ids | test_ids) == len(ds)

    def test_subset(self):
        ds = make_dataset()
        sub = ds.subset(np.array([0, 5]))
        assert len(sub) == 2
        assert sub.labels == [ds.labels[0], ds.labels[5]]


class TestChannelScaler:
    def test_standardises_per_channel(self):
        ds = make_dataset()
        channels, _ = ds.to_arrays()
        scaled = ChannelScaler().fit_transform(channels)
        for arr in scaled.values():
            flat = arr.reshape(-1, arr.shape[-1])
            np.testing.assert_allclose(flat.mean(axis=0), 0.0, atol=1e-9)
            np.testing.assert_allclose(flat.std(axis=0), 1.0, atol=1e-6)

    def test_train_statistics_reused(self):
        ds = make_dataset()
        channels, _ = ds.to_arrays()
        scaler = ChannelScaler().fit(channels)
        shifted = {k: v + 100.0 for k, v in channels.items()}
        out = scaler.transform(shifted)
        for arr in out.values():
            assert arr.mean() > 50  # not re-centred

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            ChannelScaler().transform({"x": np.zeros((1, 1, 1, 1))})
