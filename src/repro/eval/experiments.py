"""Experiment drivers: one function per paper table/figure.

Every driver returns an :class:`~repro.eval.reporting.ExperimentResult`
whose rows pair the paper's reported value with ours.  ``quick=True``
(the default) sizes the dataset and the training budget for minutes of
wall-clock; ``quick=False`` runs at the scale recorded in
EXPERIMENTS.md.

Absolute accuracies are not expected to match a hardware testbed; the
claims under test are the *shapes*: who wins, by roughly what factor,
and which way each sweep trends.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import M2AIConfig
from repro.data.generator import GenerationConfig, vary
from repro.dsp.features import (
    FftOnlyFeaturizer,
    M2AIFeaturizer,
    MusicOnlyFeaturizer,
    PhaseFeaturizer,
    RssiFeaturizer,
)
from repro.eval.harness import (
    eval_baselines,
    get_dataset,
    get_raw_samples,
    train_eval_m2ai,
)
from repro.eval.reporting import ExperimentResult, ExperimentRow


def _gen_config(quick: bool, seed: int, **overrides) -> GenerationConfig:
    base = GenerationConfig(
        samples_per_class=12 if quick else 24,
        duration_s=6.0,
        calibration_s=20.0,
        seed=seed,
    )
    return vary(base, **overrides)


def _train_config(quick: bool, seed: int) -> M2AIConfig:
    import os

    epochs = 40 if quick else 60
    # The benchmark suite measures regeneration end-to-end; its training
    # budget can be trimmed via this env var (set by benchmarks/conftest)
    # so a full `pytest benchmarks/` pass stays within minutes.  The
    # recorded EXPERIMENTS.md run uses the untrimmed budget.
    override = os.environ.get("REPRO_BENCH_EPOCHS")
    if override:
        epochs = min(epochs, int(override))
    return M2AIConfig(epochs=epochs, batch_size=16, seed=seed)


def _sweep_config(quick: bool, seed: int, **overrides) -> GenerationConfig:
    """Smaller per-setting datasets for the multi-dataset sweeps."""
    base = GenerationConfig(
        samples_per_class=6 if quick else 18,
        duration_s=6.0,
        calibration_s=20.0,
        seed=seed,
    )
    return vary(base, **overrides)


# ---------------------------------------------------------------------------
# Fig. 9 / Table I / Fig. 10 — the headline comparison (shared corpus)


def run_fig09(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Fig. 9: M2AI vs ten conventional classifiers.

    The headline comparison runs on a larger corpus than the ablation
    experiments: the deep network's advantage over the high-bias
    baselines is data-dependent (the paper trained on a full hardware
    study), and at very small corpus sizes all methods converge to
    similar mediocrity.
    """
    cfg = _gen_config(quick, seed, samples_per_class=20 if quick else 24)
    dataset = get_dataset(cfg)
    m2ai, _pipe = train_eval_m2ai(dataset, _train_config(quick, seed), split_seed=seed)
    scores = eval_baselines(dataset, split_seed=seed)
    paper = {
        "M2AI": (0.97, False),
        "Linear SVM": (0.70, True),
        "RBF SVM": (0.65, True),
        "Nearest Neighbors": (0.60, True),
        "Gaussian Process": (0.55, True),
        "Random Forest": (0.55, True),
        "Adaptive Boosting": (0.50, True),
        "Decision Tree": (0.45, True),
        "Bayesian Net": (0.45, True),
        "QDA": (0.40, True),
        "HMM": (None, False),
    }
    rows = [ExperimentRow("M2AI", 0.97, m2ai.accuracy)]
    for name, score in scores.items():
        value, approx = paper.get(name, (None, False))
        rows.append(ExperimentRow(name, value, score, approx=approx))
    best_baseline = max(scores.values())
    gain = m2ai.accuracy - best_baseline
    return ExperimentResult(
        experiment_id="fig09",
        title="Overall activity identification performance",
        rows=rows,
        notes=(
            f"M2AI beats the best conventional baseline by "
            f"{gain * 100:+.0f} points (paper: +27 points over linear SVM). "
            f"Shape check: M2AI first = {m2ai.accuracy > best_baseline}."
        ),
    )


def run_table1(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Table I: per-class confusion of the trained M2AI."""
    cfg = _gen_config(quick, seed, samples_per_class=20 if quick else 24)
    dataset = get_dataset(cfg)
    result, _pipe = train_eval_m2ai(dataset, _train_config(quick, seed), split_seed=seed)
    diag = result.confusion.diagonal_accuracy()
    rows = [
        ExperimentRow("mean per-class accuracy", 0.966, float(diag.mean())),
        ExperimentRow("min per-class accuracy", 0.93, float(diag.min())),
    ]
    return ExperimentResult(
        experiment_id="table1",
        title="Confusion matrix of activity identification",
        rows=rows,
        notes="Paper: every diagonal entry is at least 93%.",
        extras={"confusion matrix": result.confusion.render()},
    )


def run_fig10(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Fig. 10: impact of phase calibration (same recordings, re-featurised).

    The "without calibration" arm feeds the reader's *raw* phase output
    (hopping offsets and pi ambiguity intact) through the identical
    decoupling + learning stack.  Runs on the Fig. 9 corpus so the
    calibrated arm is the same trained model the headline reports; note
    the paper's own no-calibration number (52%) is weak-feature level,
    not chance — RSSI and motion dynamics survive phase scrambling.
    """
    cfg = _gen_config(quick, seed, samples_per_class=20 if quick else 24)
    with_cal = get_dataset(cfg, use_calibration=True)
    without_cal = get_dataset(cfg, use_calibration=False)
    acc_cal, _ = train_eval_m2ai(with_cal, _train_config(quick, seed), split_seed=seed)
    acc_raw, _ = train_eval_m2ai(without_cal, _train_config(quick, seed), split_seed=seed)
    return ExperimentResult(
        experiment_id="fig10",
        title="Impact of phase calibration",
        rows=[
            ExperimentRow("with calibration", 0.97, acc_cal.accuracy),
            ExperimentRow("without calibration", 0.52, acc_raw.accuracy),
        ],
        notes=(
            "Measured gap "
            f"{(acc_cal.accuracy - acc_raw.accuracy) * 100:+.0f} points "
            "(paper: +45 points).  Caveat: this end-task contrast is "
            "data-scale dependent — RSSI/amplitude features survive phase "
            "scrambling, and at simulated corpus sizes they already reach "
            "the calibrated model's ceiling, so the gap the paper sees at "
            "hardware scale (97% vs 52%) compresses here.  The signal-level "
            "effect itself is unambiguous: calibration collapses hop-induced "
            "phase scatter ~10x and restores AoA (fig03, "
            "examples/phase_calibration_demo.py, tests/dsp/test_calibration)."
        ),
    )


# ---------------------------------------------------------------------------
# Fig. 11-15 — parameter sweeps


def run_fig11(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Fig. 11: one, two, three simultaneous people.

    Scenario labels whose *first* person repeats another scenario's
    primitive (A05 duplicates A01's wave, A06 duplicates A03's walk)
    are excluded: with a single person those class pairs are literally
    identical and the 1-person arm would be unwinnable by construction.
    All three arms use the same 10-class set for comparability.
    """
    from repro.motion.scenarios import SCENARIO_LABELS

    labels = tuple(l for l in SCENARIO_LABELS if l not in ("A05", "A06"))
    paper = {1: 0.97, 2: 0.90, 3: 0.80}
    rows = []
    for n_persons in (1, 2, 3):
        cfg = _sweep_config(quick, seed, n_persons=n_persons, scenario_labels=labels)
        dataset = get_dataset(cfg)
        result, _ = train_eval_m2ai(dataset, _train_config(quick, seed), split_seed=seed)
        rows.append(
            ExperimentRow(
                f"{n_persons} object(s)", paper[n_persons], result.accuracy, approx=n_persons != 3
            )
        )
    return ExperimentResult(
        experiment_id="fig11",
        title="Impact of the number of objects",
        rows=rows,
        notes=(
            "Paper: accuracy decays gracefully and stays close to 80% with "
            "three people acting simultaneously."
        ),
    )


def run_fig12(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Fig. 12: laboratory (high multipath) vs hall (low multipath)."""
    rows = []
    paper = {"laboratory": 0.97, "hall": 0.95}
    for env in ("laboratory", "hall"):
        cfg = _sweep_config(quick, seed, environment=env)
        dataset = get_dataset(cfg)
        result, _ = train_eval_m2ai(dataset, _train_config(quick, seed), split_seed=seed)
        rows.append(ExperimentRow(env, paper[env], result.accuracy))
    gap = abs(rows[0].measured - rows[1].measured)
    return ExperimentResult(
        experiment_id="fig12",
        title="Impact of the environment",
        rows=rows,
        notes=(
            f"Paper: the two environments perform within a couple of points "
            f"of each other; measured gap {gap * 100:.0f} points."
        ),
    )


def run_fig13(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Fig. 13: reader-to-person distance 1-4 m."""
    rows = []
    for distance in (1.0, 2.0, 3.0, 4.0):
        cfg = _sweep_config(quick, seed, distance_m=distance)
        dataset = get_dataset(cfg)
        result, _ = train_eval_m2ai(dataset, _train_config(quick, seed), split_seed=seed)
        rows.append(ExperimentRow(f"{distance:.0f} m", None, result.accuracy))
    values = [r.measured for r in rows]
    spread = max(values) - min(values)
    corr = float(np.corrcoef(np.arange(len(values)), values)[0, 1])
    return ExperimentResult(
        experiment_id="fig13",
        title="Impact of distance",
        rows=rows,
        notes=(
            "Paper: no clear correlation between distance and accuracy. "
            f"Measured spread {spread * 100:.0f} points, distance-accuracy "
            f"correlation {corr:+.2f}."
        ),
    )


def run_fig14(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Fig. 14: 2, 3, 4 reader antennas."""
    paper = {2: 0.60, 3: 0.80, 4: 0.97}
    rows = []
    for n_antennas in (2, 3, 4):
        cfg = _sweep_config(quick, seed, n_antennas=n_antennas)
        dataset = get_dataset(cfg)
        result, _ = train_eval_m2ai(dataset, _train_config(quick, seed), split_seed=seed)
        rows.append(
            ExperimentRow(
                f"{n_antennas} antennas",
                paper[n_antennas],
                result.accuracy,
                approx=n_antennas != 4,
            )
        )
    increasing = rows[0].measured <= rows[-1].measured
    return ExperimentResult(
        experiment_id="fig14",
        title="Impact of the number of antennas",
        rows=rows,
        notes=f"Paper: more antennas, more decoupled paths, higher accuracy. "
        f"Shape check (2 < 4 antennas): {increasing}.",
    )


def run_fig15(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Fig. 15: 1, 2, 3 tags per person."""
    paper = {1: 0.70, 2: 0.85, 3: 0.97}
    rows = []
    for tags in (1, 2, 3):
        cfg = _sweep_config(quick, seed, tags_per_person=tags)
        dataset = get_dataset(cfg)
        result, _ = train_eval_m2ai(dataset, _train_config(quick, seed), split_seed=seed)
        rows.append(
            ExperimentRow(
                f"{tags} tag(s)/person", paper[tags], result.accuracy, approx=tags != 3
            )
        )
    increasing = rows[0].measured <= rows[-1].measured
    return ExperimentResult(
        experiment_id="fig15",
        title="Impact of the number of tags per person",
        rows=rows,
        notes=f"Paper: tags are the cheapest way to add path diversity. "
        f"Shape check (1 < 3 tags): {increasing}.",
    )


# ---------------------------------------------------------------------------
# Fig. 16 / Fig. 17 — preprocessing and architecture ablations


def run_fig16(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Fig. 16: featuriser ablation over the same recordings."""
    cfg = _gen_config(quick, seed)
    raw = get_raw_samples(cfg)
    from repro.data.generator import SyntheticDatasetGenerator

    generator = SyntheticDatasetGenerator(cfg)
    featurizers = [
        ("M2AI", M2AIFeaturizer(), 0.97, False),
        ("MUSIC-based", MusicOnlyFeaturizer(), 0.85, True),
        ("FFT-based", FftOnlyFeaturizer(), 0.75, True),
        ("Phase-based", PhaseFeaturizer(), 0.65, True),
        ("RSSI-based", RssiFeaturizer(), 0.55, True),
    ]
    rows = []
    for name, featurizer, paper, approx in featurizers:
        dataset = generator.featurize(raw, featurizer=featurizer)
        result, _ = train_eval_m2ai(dataset, _train_config(quick, seed), split_seed=seed)
        rows.append(ExperimentRow(name, paper, result.accuracy, approx=approx))
    best = max(rows, key=lambda r: r.measured)
    return ExperimentResult(
        experiment_id="fig16",
        title="Impact of the preprocessing inputs",
        rows=rows,
        notes=f"Paper: the joint pseudospectrum+periodogram input wins. "
        f"Measured best: {best.name}.",
    )


def run_fig17(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Fig. 17: CNN+LSTM vs CNN-only vs LSTM-only.

    Runs on the Fig. 9 corpus: the architecture ordering is the most
    data-hungry claim in the paper — recurrent stacks need enough
    sequences before their temporal modelling pays for its parameters,
    and at very small corpus sizes temporal mean-pooling ("CNN only")
    generalises better.
    """
    cfg = _gen_config(quick, seed, samples_per_class=20 if quick else 24)
    dataset = get_dataset(cfg)
    rows = []
    paper = {"cnn_lstm": (0.97, False), "cnn": (0.67, True), "lstm": (0.72, True)}
    label = {"cnn_lstm": "M2AI (CNN+LSTM)", "cnn": "CNN only", "lstm": "LSTM only"}
    for mode in ("cnn_lstm", "cnn", "lstm"):
        result, _ = train_eval_m2ai(
            dataset, _train_config(quick, seed), mode=mode, split_seed=seed
        )
        value, approx = paper[mode]
        rows.append(ExperimentRow(label[mode], value, result.accuracy, approx=approx))
    wins = rows[0].measured >= max(r.measured for r in rows[1:])
    return ExperimentResult(
        experiment_id="fig17",
        title="Impact of the learning architecture",
        rows=rows,
        notes=(
            f"Paper: the combined architecture beats both ablations "
            f"(+30 points over CNN, +25 over LSTM). Shape check: {wins}. "
            "Caveat: this ordering is data-scale dependent — on small "
            "simulated corpora the temporal-mean-pooling ablation can "
            "match or beat the recurrent stack; the paper's gap assumes "
            "hardware-scale training data.  The underlying capability is "
            "verified directly: on order-defined classes the CNN+LSTM "
            "learns (>85%) where CNN-only cannot "
            "(tests/nn/test_m2ai_learning.py)."
        ),
    )


EXPERIMENTS = {
    "fig09": run_fig09,
    "table1": run_table1,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "fig13": run_fig13,
    "fig14": run_fig14,
    "fig15": run_fig15,
    "fig16": run_fig16,
    "fig17": run_fig17,
}
"""Learning-based experiments, keyed by paper id (fig02/fig03 live in
:mod:`repro.eval.signal_studies`)."""
