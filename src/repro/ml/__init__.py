"""From-scratch classical ML: the ten Fig. 9 baselines plus the HMM."""

from repro.ml.base import Classifier, LabelEncoder, validate_xy
from repro.ml.boosting import AdaBoostClassifier
from repro.ml.decomposition import PCA
from repro.ml.discriminant import QuadraticDiscriminantAnalysis
from repro.ml.forest import RandomForestClassifier
from repro.ml.gaussian_process import GaussianProcessClassifier
from repro.ml.hmm import GaussianHMM, HMMActivityClassifier
from repro.ml.metrics import (
    ConfusionMatrix,
    accuracy,
    confusion_matrix,
    precision_recall_f1,
)
from repro.ml.model_selection import cross_val_score, stratified_kfold, train_test_split
from repro.ml.naive_bayes import GaussianNB
from repro.ml.neighbors import KNeighborsClassifier
from repro.ml.preprocessing import StandardScaler
from repro.ml.svm import LinearSVM, RbfSVM
from repro.ml.tree import DecisionTreeClassifier

__all__ = [
    "AdaBoostClassifier",
    "Classifier",
    "ConfusionMatrix",
    "DecisionTreeClassifier",
    "GaussianHMM",
    "GaussianNB",
    "GaussianProcessClassifier",
    "HMMActivityClassifier",
    "KNeighborsClassifier",
    "LabelEncoder",
    "LinearSVM",
    "PCA",
    "QuadraticDiscriminantAnalysis",
    "RandomForestClassifier",
    "RbfSVM",
    "StandardScaler",
    "accuracy",
    "confusion_matrix",
    "cross_val_score",
    "precision_recall_f1",
    "stratified_kfold",
    "train_test_split",
    "validate_xy",
]
