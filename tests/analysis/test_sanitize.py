"""Runtime sanitizer: anomalies are pinned to the offending stage, and
clean nn/DSP runs raise nothing (no false positives).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sanitize import AnomalyError, anomaly_detection
from repro.core import M2AIPipeline
from repro.core.streaming import StreamingIdentifier
from repro.dsp import calibration, music
from repro.dsp.calibration import PhaseCalibrator
from repro.dsp.frames import build_spectrum_frames
from repro.faults import FaultSpec, apply_faults
from repro.nn.conv import Conv1d
from repro.nn.gradcheck import check_module_gradients
from repro.nn.layers import Dense, ReLU
from repro.nn.module import Module, Sequential
from repro.nn.recurrent import LSTM

NAN_PHASE_NOISE = FaultSpec(kind="phase_noise", severity=1.0, magnitude=float("nan"))


@pytest.fixture(scope="module")
def calibrator(small_log) -> PhaseCalibrator:
    return PhaseCalibrator.fit(small_log)


@pytest.fixture()
def nan_log(small_log):
    """The calibration-ablation nightmare: every phase driven to NaN."""
    corrupted = apply_faults(small_log, [NAN_PHASE_NOISE], seed=3)
    assert not np.isfinite(corrupted.phase_rad).any()
    return corrupted


class TestStreamingPinpointsInjection:
    def test_nan_phase_noise_is_pinned_to_calibration(self, calibrator, nan_log):
        pipeline = M2AIPipeline()
        pipeline.model = object()  # identify() bails into calibrate before any predict
        identifier = StreamingIdentifier(
            pipeline=pipeline, calibrator=calibrator, window_s=2.0, min_reads=4
        )
        with anomaly_detection():
            with pytest.raises(AnomalyError) as excinfo:
                identifier.identify(nan_log)
        assert excinfo.value.kind == "non_finite"
        assert "PhaseCalibrator.calibrate" in excinfo.value.stage

    def test_uncalibrated_path_is_pinned_too(self, nan_log):
        # NB: call through the module — the sanitizer patches every
        # repro-internal alias, but a from-import captured by a caller
        # outside repro (like this test) keeps the unwrapped function.
        with anomaly_detection():
            with pytest.raises(AnomalyError) as excinfo:
                calibration.uncalibrated(nan_log)
        assert excinfo.value.kind == "non_finite"
        assert excinfo.value.stage.endswith("uncalibrated")

    def test_disarmed_after_exit(self, calibrator, nan_log):
        with anomaly_detection():
            pass
        psi = calibrator.calibrate(nan_log)  # silent again: no wrapper left armed
        assert not np.isfinite(psi).any()

    def test_clean_stream_has_no_false_positives(self, calibrator, small_log):
        with anomaly_detection():
            psi = calibrator.calibrate(small_log)
            frames = build_spectrum_frames(small_log, psi, n_frames=4)
        assert all(np.isfinite(v).all() for v in frames.channels.values())


class TestDspWrappers:
    def test_music_rejects_nan_covariance_by_stage(self):
        cov = np.full((4, 4), np.nan, dtype=np.complex128)
        with anomaly_detection():
            with pytest.raises(AnomalyError) as excinfo:
                music.music_pseudospectrum(cov, spacing_m=0.04, wavelength_m=0.33)
        assert excinfo.value.kind == "non_finite"
        assert "music_pseudospectrum" in excinfo.value.stage

    def test_music_clean_covariance_passes(self, small_log, calibrator):
        psi = calibrator.calibrate(small_log)
        frames = build_spectrum_frames(small_log, psi, n_frames=2)
        with anomaly_detection():
            again = build_spectrum_frames(small_log, psi, n_frames=2)
        for name, channel in frames.channels.items():
            np.testing.assert_allclose(channel, again.channels[name])


class TestModuleWrappers:
    def test_non_finite_input_named_by_layer(self):
        rng = np.random.default_rng(0)
        net = Sequential(Dense(4, 3, rng), ReLU())
        x = np.ones((2, 4))
        x[0, 0] = np.inf
        with anomaly_detection():
            with pytest.raises(AnomalyError) as excinfo:
                net.forward(x)
        assert excinfo.value.kind == "non_finite"

    def test_dtype_drift_flagged(self):
        rng = np.random.default_rng(0)
        layer = Dense(4, 3, rng)
        x32 = np.ones((2, 4), dtype=np.float64).astype("float32")  # reprolint: disable=RPR006
        with anomaly_detection():
            with pytest.raises(AnomalyError) as excinfo:
                layer.forward(x32)
        assert excinfo.value.kind == "dtype_drift"
        assert "Dense.forward" in excinfo.value.stage

    def test_exploding_gradient_flagged(self):
        rng = np.random.default_rng(0)
        layer = Dense(4, 3, rng)
        x = np.ones((2, 4))
        with anomaly_detection(max_grad_norm=1e-6):
            y = layer.forward(x)
            with pytest.raises(AnomalyError) as excinfo:
                layer.backward(np.ones_like(y))
        assert excinfo.value.kind == "exploding_gradient"

    def test_forward_backward_shape_mismatch_flagged(self):
        class BadShape(Module):
            def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
                return x * 2.0

            def backward(self, grad: np.ndarray) -> np.ndarray:
                return grad[..., :1]

        layer = BadShape()
        x = np.ones((2, 4))
        with anomaly_detection():
            y = layer.forward(x)
            with pytest.raises(AnomalyError) as excinfo:
                layer.backward(np.ones_like(y))
        assert excinfo.value.kind == "shape_mismatch"
        assert "BadShape.backward" in excinfo.value.stage

    def test_nested_activation_is_single_armed(self):
        rng = np.random.default_rng(0)
        layer = Dense(2, 2, rng)
        original_forward = Dense.__dict__["forward"]
        with anomaly_detection():
            assert Dense.__dict__["forward"] is not original_forward
            with anomaly_detection():
                layer.forward(np.ones((1, 2)))
        # fully restored after the outermost exit, even when nested
        assert Dense.__dict__["forward"] is original_forward
        layer.forward(np.full((1, 2), np.nan))  # disarmed: must not raise


class TestGradcheckUnderAnomalyMode:
    """The recurrent/conv layers pass gradcheck with the sanitizer armed:
    correct gradients AND zero false positives from the tripwires."""

    def test_lstm_gradcheck(self):
        rng = np.random.default_rng(5)
        with anomaly_detection():
            errors = check_module_gradients(
                LSTM(3, 4, rng), rng.normal(0.0, 1.0, (2, 5, 3)), rng
            )
        assert max(errors.values()) < 1e-6

    def test_conv_gradcheck(self):
        rng = np.random.default_rng(6)
        with anomaly_detection():
            errors = check_module_gradients(
                Conv1d(2, 3, 3, rng, stride=1, padding=1),
                rng.normal(0.0, 1.0, (2, 2, 8)),
                rng,
            )
        assert max(errors.values()) < 1e-6
