"""Extension (Section VII): cross-environment transfer.

Train in the laboratory, evaluate zero-shot in the hall, then
fine-tune on a few hall samples — quantifying the paper's statement
that the model "may need to be re-trained for different settings"."""

from repro.eval import run_ext_transfer


def test_ext_cross_environment_transfer(run_experiment):
    result = run_experiment(run_ext_transfer)
    measured = result.measured_by_name()
    # Fine-tuning must recover accuracy relative to zero-shot
    # (small tolerance for run-to-run noise at quick scale).
    assert measured["lab -> hall (fine-tuned)"] >= measured["lab -> hall (zero-shot)"] - 0.05
