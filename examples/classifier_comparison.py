"""Classifier shoot-out: a compact rerun of the paper's Fig. 9.

Trains M2AI and all ten conventional baselines on one simulated corpus
and prints the accuracy ladder as a bar chart.

Usage::

    python examples/classifier_comparison.py [--classes N]
"""

from __future__ import annotations

import argparse
import time

from repro.core import M2AIConfig
from repro.data import GenerationConfig
from repro.eval import bar_chart, eval_baselines, get_dataset, train_eval_m2ai
from repro.motion import SCENARIO_LABELS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--classes", type=int, default=6, help="activity classes to use")
    parser.add_argument("--samples", type=int, default=12, help="samples per class")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    # Spread the class subset across the scenario list so small
    # runs compare contrastive activities.
    step = max(1, len(SCENARIO_LABELS) // args.classes)
    subset = SCENARIO_LABELS[::step][: args.classes]
    config = GenerationConfig(
        scenario_labels=subset,
        samples_per_class=args.samples,
        duration_s=6.0,
        seed=args.seed,
    )
    if args.samples < 12:
        print("note: below ~12 samples/class the comparison is noise-"
              "dominated (tiny test split); the deep model's lead needs data.")
    print(f"Simulating {args.classes} classes x {args.samples} samples ...")
    t0 = time.time()
    dataset = get_dataset(config)
    print(f"  done in {time.time() - t0:.0f} s")

    print("Training M2AI ...")
    t0 = time.time()
    m2ai, _ = train_eval_m2ai(
        dataset, M2AIConfig(epochs=35, batch_size=12, seed=args.seed), split_seed=args.seed
    )
    print(f"  done in {time.time() - t0:.0f} s")

    print("Training the ten conventional baselines ...")
    t0 = time.time()
    scores = eval_baselines(dataset, split_seed=args.seed)
    print(f"  done in {time.time() - t0:.0f} s\n")

    ladder = {"M2AI (CNN+LSTM)": m2ai.accuracy}
    ladder.update(dict(sorted(scores.items(), key=lambda kv: -kv[1])))
    print(bar_chart(ladder))
    best_baseline = max(scores.values())
    print(f"\nM2AI vs best baseline: {m2ai.accuracy:.1%} vs {best_baseline:.1%} "
          f"({(m2ai.accuracy - best_baseline) * 100:+.0f} points; "
          f"paper reports +27 points at full scale)")


if __name__ == "__main__":
    main()
