"""Physical invariants of the channel model (hypothesis-checked)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel import ChannelParams, MultipathChannel
from repro.geometry import Rectangle, Room, make_open_space

position = st.tuples(
    st.floats(min_value=-8.0, max_value=8.0, allow_nan=False),
    st.floats(min_value=-8.0, max_value=8.0, allow_nan=False),
)


def clean_channel(room=None):
    return MultipathChannel(
        room=room or make_open_space(),
        params=ChannelParams(diffuse_level=0.0),
        rng=np.random.default_rng(0),
    )


class TestReciprocity:
    @given(position, position)
    @settings(max_examples=25, deadline=None)
    def test_swap_antenna_and_tag(self, a, b):
        """One-way gain is symmetric in the endpoints (reciprocity)."""
        if np.hypot(a[0] - b[0], a[1] - b[1]) < 0.2:
            return
        channel = clean_channel()
        ab = channel.one_way_gain(np.array(a), np.array(b), 0.328, include_diffuse=False)
        ba = channel.one_way_gain(np.array(b), np.array(a), 0.328, include_diffuse=False)
        np.testing.assert_allclose(ab, ba, rtol=1e-9)

    def test_reciprocity_with_walls(self):
        room = Room(bounds=Rectangle(-10, -10, 10, 10), wall_reflectivity=0.5)
        channel = clean_channel(room)
        a, b = np.array([1.0, 2.0]), np.array([4.0, -3.0])
        ab = channel.one_way_gain(a, b, 0.328, include_diffuse=False)
        ba = channel.one_way_gain(b, a, 0.328, include_diffuse=False)
        np.testing.assert_allclose(ab, ba, rtol=1e-9)


class TestWavelengthScaling:
    @given(st.floats(min_value=0.30, max_value=0.34))
    @settings(max_examples=25, deadline=None)
    def test_phase_scales_with_wavelength(self, lam):
        channel = clean_channel()
        tag = np.array([3.0, 0.0])
        ant = np.array([0.0, 0.0])
        g = channel.one_way_gain(ant, tag, lam, include_diffuse=False)[0]
        expected = np.exp(-2j * np.pi * 3.0 / lam)
        assert np.angle(g * np.conj(expected)) == pytest.approx(0.0, abs=1e-9)


class TestSuperposition:
    def test_total_is_sum_of_components(self):
        room = Room(bounds=Rectangle(-10, -10, 10, 10), wall_reflectivity=0.4)
        channel = clean_channel(room)
        ant, tag = np.array([0.0, 0.0]), np.array([3.0, 2.0])
        comps = channel.path_components(ant, tag, 0.328)
        total = channel.one_way_gain(ant, tag, 0.328, include_diffuse=False)
        np.testing.assert_allclose(total, sum(c.gain for c in comps))


class TestEnergyMonotonicity:
    @given(st.floats(min_value=0.0, max_value=0.9))
    @settings(max_examples=20, deadline=None)
    def test_wall_reflectivity_adds_paths_not_energy_loss(self, rho):
        """Direct-path gain is unaffected by the wall coefficient."""
        room = Room(bounds=Rectangle(-10, -10, 10, 10), wall_reflectivity=rho)
        channel = clean_channel(room)
        comps = channel.path_components(
            np.array([0.0, 0.0]), np.array([3.0, 2.0]), 0.328
        )
        direct = next(c for c in comps if c.name == "direct")
        free = clean_channel().path_components(
            np.array([0.0, 0.0]), np.array([3.0, 2.0]), 0.328
        )[0]
        np.testing.assert_allclose(direct.gain, free.gain)
