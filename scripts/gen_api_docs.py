"""Generate docs/API.md from the repro package's public surface.

Usage::

    PYTHONPATH=src python scripts/gen_api_docs.py           # (re)write docs/API.md
    PYTHONPATH=src python scripts/gen_api_docs.py --check   # fail if stale (CI)

Walks every ``repro.*`` module that declares ``__all__``, renders each
exported class/function as its signature plus the first paragraph of
its docstring, and writes the result to ``docs/API.md``.  The file is
committed; CI runs ``--check`` so the reference can never drift from
the code it documents.
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import pkgutil
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
OUT_PATH = REPO / "docs" / "API.md"

HEADER = """\
# API reference

Public API of the `repro` package: every module that declares
`__all__`, with each export's signature and summary.

**Generated file — do not edit by hand.**  Regenerate with
`PYTHONPATH=src python scripts/gen_api_docs.py`; CI runs the same
script with `--check` and fails when this file is stale.
"""


def first_paragraph(doc: str | None) -> str:
    """First blank-line-delimited paragraph of a docstring, unwrapped."""
    if not doc:
        return "*(no docstring)*"
    para = inspect.cleandoc(doc).split("\n\n", 1)[0]
    return " ".join(line.strip() for line in para.splitlines())


def signature_of(obj: object, name: str) -> str:
    """Best-effort rendered signature for a class or function."""
    try:
        if inspect.isclass(obj):
            sig = inspect.signature(obj.__init__)
            params = list(sig.parameters.values())[1:]  # drop self
            sig = sig.replace(parameters=params, return_annotation=inspect.Signature.empty)
        else:
            sig = inspect.signature(obj)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return name
    text = f"{name}{sig}"
    # Long signatures wrap poorly in a code span; clip to keep rows scannable.
    if len(text) > 110:
        text = text[:107] + "..."
    return text


def iter_public_modules() -> list[str]:
    """Dotted names of every repro module declaring ``__all__``, sorted."""
    import repro

    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    keep = []
    for name in sorted(names):
        module = importlib.import_module(name)
        if getattr(module, "__all__", None):
            keep.append(name)
    return keep


def render_module(name: str) -> list[str]:
    """Markdown section for one module's ``__all__`` exports."""
    module = importlib.import_module(name)
    lines = [f"## `{name}`", ""]
    summary = first_paragraph(module.__doc__)
    if summary != "*(no docstring)*":
        lines += [summary, ""]
    for export in module.__all__:
        obj = getattr(module, export)
        if inspect.ismodule(obj):
            lines.append(f"- `{export}` — module (see `{obj.__name__}` below)")
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            kind = "class" if inspect.isclass(obj) else "def"
            lines.append(f"- `{kind} {signature_of(obj, export)}`")
            lines.append(f"  — {first_paragraph(inspect.getdoc(obj))}")
        else:
            lines.append(f"- `{export}` — constant ({type(obj).__name__})")
            doc = _constant_doc(module, export)
            if doc:
                lines.append(f"  — {doc}")
    lines.append("")
    return lines


def _constant_doc(module: object, export: str) -> str | None:
    """The PEP 258 attribute docstring following ``export = ...``, if any."""
    import ast

    try:
        source = inspect.getsource(module)  # type: ignore[arg-type]
    except (OSError, TypeError):
        return None
    tree = ast.parse(source)
    body = tree.body
    for i, node in enumerate(body[:-1]):
        is_target = isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == export for t in node.targets
        )
        nxt = body[i + 1]
        if (
            is_target
            and isinstance(nxt, ast.Expr)
            and isinstance(nxt.value, ast.Constant)
            and isinstance(nxt.value.value, str)
        ):
            return first_paragraph(nxt.value.value)
    return None


def generate() -> str:
    """Render the full API reference document."""
    lines = [HEADER]
    for name in iter_public_modules():
        lines.extend(render_module(name))
    return "\n".join(lines).rstrip() + "\n"


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if docs/API.md differs from the generated content",
    )
    args = parser.parse_args(argv)

    content = generate()
    if args.check:
        on_disk = OUT_PATH.read_text() if OUT_PATH.exists() else ""
        if on_disk != content:
            sys.stderr.write(
                "docs/API.md is stale; regenerate with "
                "`PYTHONPATH=src python scripts/gen_api_docs.py`\n"
            )
            return 1
        print(f"{OUT_PATH.relative_to(REPO)} is up to date")
        return 0
    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(content)
    print(f"wrote {OUT_PATH.relative_to(REPO)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
