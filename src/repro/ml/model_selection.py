"""Train/test splitting and cross-validation.

The paper uses an 80/20 split "with cross validation to mitigate
overfitting" (Section VI-A); both a stratified split and stratified
k-fold are provided.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np


def train_test_split(
    x: np.ndarray,
    y: np.ndarray,
    test_fraction: float = 0.2,
    rng: np.random.Generator | None = None,
    stratify: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle-split into train and test sets.

    With ``stratify`` (default), each class contributes proportionally
    to the test set — important here because every activity class has
    few samples.

    Returns:
        ``(x_train, x_test, y_train, y_test)``.

    Raises:
        ValueError: for a fraction outside (0, 1) or misaligned inputs.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    y = np.asarray(y)
    x = np.asarray(x)
    if len(x) != len(y):
        raise ValueError("x and y must align")
    rng = rng or np.random.default_rng(0)
    test_idx: list[int] = []
    if stratify:
        for cls in sorted(set(y.tolist())):
            members = np.flatnonzero(y == cls)
            members = members[rng.permutation(len(members))]
            n_test = max(1, int(round(test_fraction * len(members))))
            test_idx.extend(members[:n_test].tolist())
    else:
        order = rng.permutation(len(y))
        n_test = max(1, int(round(test_fraction * len(y))))
        test_idx = order[:n_test].tolist()
    test_mask = np.zeros(len(y), dtype=bool)
    test_mask[test_idx] = True
    return x[~test_mask], x[test_mask], y[~test_mask], y[test_mask]


def stratified_kfold(
    y: np.ndarray, n_splits: int, rng: np.random.Generator | None = None
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield (train_idx, test_idx) pairs with class-balanced folds.

    Raises:
        ValueError: when ``n_splits`` exceeds the smallest class size.
    """
    y = np.asarray(y)
    rng = rng or np.random.default_rng(0)
    if n_splits < 2:
        raise ValueError("need at least 2 splits")
    folds: list[list[int]] = [[] for _ in range(n_splits)]
    for cls in sorted(set(y.tolist())):
        members = np.flatnonzero(y == cls)
        if len(members) < n_splits:
            raise ValueError(
                f"class {cls!r} has {len(members)} samples < {n_splits} folds"
            )
        members = members[rng.permutation(len(members))]
        for i, idx in enumerate(members):
            folds[i % n_splits].append(int(idx))
    all_idx = np.arange(len(y))
    for fold in folds:
        test = np.array(sorted(fold))
        train = np.setdiff1d(all_idx, test)
        yield train, test


def cross_val_score(
    make_classifier: Callable[[], "object"],
    x: np.ndarray,
    y: np.ndarray,
    n_splits: int = 5,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Stratified k-fold accuracy of a classifier factory.

    Args:
        make_classifier: zero-argument factory returning a fresh,
            unfitted classifier with ``fit``/``score``.
        x: features.
        y: labels.
        n_splits: number of folds.
        rng: randomness for the fold assignment.

    Returns:
        ``(n_splits,)`` per-fold accuracies.
    """
    x = np.asarray(x)
    y = np.asarray(y)
    scores = []
    for train, test in stratified_kfold(y, n_splits, rng):
        model = make_classifier()
        model.fit(x[train], y[train])
        scores.append(model.score(x[test], y[test]))
    return np.asarray(scores)
