"""One shard: many supervised streams, one batched inference call.

A shard owns a set of *lanes* — one admitted stream each, wrapped in
its own :class:`~repro.runtime.supervisor.PipelineSupervisor` so one
stream's breaker trips, deadline misses and poison-pill windows
degrade only that stream.  Each :meth:`ShardServer.tick`:

1. dequeues up to ``windows_per_stream`` windows per lane (highest
   priority first) and runs the *prepare* phase (admission checks +
   DSP featurisation) under that lane's guards;
2. quarantines non-finite feature vectors (batch hygiene: a NaN
   poison must never ride into the shared batch) as stage-attributed
   dead letters on their own lane;
3. pushes every surviving sample from **all** lanes through ONE
   ``predict_proba`` call — the cross-stream batching speed trick —
   and scores each row back to its lane;
4. if the shared batch call itself fails, falls back to per-lane
   inference under each lane's ``predict`` breaker, so a fault that
   only manifests inside the network forward still converts to
   per-stream degradation instead of shard-wide loss.

Lanes share the process-wide steering-matrix cache and the fitted
pipeline; their supervisors (queues, breakers, dead letters) are
fully independent.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.obs.metrics import counter, gauge, histogram
from repro.obs.tracing import span
from repro.runtime.breaker import StageFailureError, guard_scope
from repro.runtime.supervisor import PipelineSupervisor, PreparedWindow

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.streaming import StreamingIdentifier, WindowDecision
    from repro.hardware.llrp import ReadLog

__all__ = [
    "NonFiniteSampleError",
    "ShardServer",
    "StreamLane",
]

STAGE_BATCH_GUARD = "serving.batch"
"""Dead-letter stage for windows quarantined by batch hygiene."""

STAGE_SHED = "serving.shed"
"""Dead-letter stage for windows dropped by fleet load shedding."""


class NonFiniteSampleError(RuntimeError):
    """A featurised window carried NaN/Inf and was kept out of the batch."""

    def __init__(self, channel: str) -> None:
        super().__init__(
            f"featurised window has non-finite values in channel {channel!r}"
        )
        self.channel = channel


@dataclass
class StreamLane:
    """One admitted stream and its isolation machinery.

    Attributes:
        stream_id: fleet-unique stream name.
        supervisor: the lane's own supervisor (queue, breakers, dead
            letters, health) — never shared between lanes.
        priority: shed order; *lower* priorities are shed first.
    """

    stream_id: str
    supervisor: PipelineSupervisor
    priority: int = 0


class ShardServer:
    """Serves a set of lanes with cross-stream batched inference.

    Args:
        shard_id: index of this shard within the fleet (metrics).
        identifier_factory: zero-argument callable returning a fresh
            :class:`StreamingIdentifier` over the shared fitted
            pipeline; called once per lane (plus once for the shard's
            batch-scoring identifier) so per-stream calibrators never
            alias.
        batch_inference: when True (default), classifiable windows
            from all lanes are scored through one ``predict_proba``
            per tick; when False every window is scored through its
            own call — the naive loop the benchmark compares against.
        windows_per_stream: max windows dequeued per lane per tick
            (bounds tick latency under backlog).
        supervisor_kwargs: forwarded to every lane's
            :class:`PipelineSupervisor` (queue bound, deadline,
            breaker thresholds, clock...).
    """

    def __init__(
        self,
        shard_id: int,
        identifier_factory: Callable[[], "StreamingIdentifier"],
        batch_inference: bool = True,
        windows_per_stream: int = 4,
        supervisor_kwargs: dict | None = None,
    ) -> None:
        if windows_per_stream < 1:
            raise ValueError("windows_per_stream must be >= 1")
        self.shard_id = int(shard_id)
        self.identifier_factory = identifier_factory
        self.batch_inference = bool(batch_inference)
        self.windows_per_stream = int(windows_per_stream)
        self.supervisor_kwargs = dict(supervisor_kwargs or {})
        self.lanes: dict[str, StreamLane] = {}
        # The shard's own identifier scores the shared batch; it never
        # carries a calibrator (lanes calibrate during prepare).
        self._identifier = identifier_factory()

    # -- lane management ------------------------------------------------

    def add_stream(
        self, stream_id: str, priority: int = 0, calibrator: object = None
    ) -> None:
        """Create a lane (fresh supervisor) for an admitted stream.

        Raises:
            ValueError: when the stream already has a lane.
        """
        if stream_id in self.lanes:
            raise ValueError(f"stream {stream_id!r} already admitted")
        identifier = self.identifier_factory()
        if calibrator is not None:
            identifier.calibrator = calibrator
        self.lanes[stream_id] = StreamLane(
            stream_id=stream_id,
            supervisor=PipelineSupervisor(identifier, **self.supervisor_kwargs),
            priority=int(priority),
        )

    def remove_stream(self, stream_id: str) -> None:
        """Evict a lane; queued windows are discarded with it.

        Raises:
            KeyError: when the stream has no lane here.
        """
        del self.lanes[stream_id]

    def stream_ids(self) -> list[str]:
        """Streams currently laned on this shard."""
        return list(self.lanes)

    # -- ingest ----------------------------------------------------------

    def submit(self, stream_id: str, log: "ReadLog") -> int:
        """Window a continuous log into the stream's queue.

        Returns:
            Number of complete windows enqueued.

        Raises:
            KeyError: when the stream has no lane here.
        """
        return self.lanes[stream_id].supervisor.submit_stream(log)

    def queue_depths(self) -> dict[str, int]:
        """Stream id → windows waiting in that lane's queue."""
        return {
            sid: lane.supervisor.queue_depth for sid, lane in self.lanes.items()
        }

    def shed(self, stream_id: str, n_windows: int) -> int:
        """Drop up to ``n_windows`` oldest queued windows of one lane.

        Every dropped window is dead-lettered on its own lane with the
        :data:`STAGE_SHED` stage — shed work is lost, never silent.

        Returns:
            Windows actually dropped.
        """
        lane = self.lanes[stream_id]
        dropped = 0
        while dropped < n_windows:
            item = lane.supervisor.pop_window()
            if item is None:
                break
            lane.supervisor.drop_window(item, stage=STAGE_SHED)
            dropped += 1
        if dropped:
            counter(
                "serving.shed_windows_total", stream=stream_id
            ).inc(dropped)
        return dropped

    # -- serving ---------------------------------------------------------

    def tick(self) -> dict[str, list["WindowDecision"]]:
        """Serve one round across every lane; never raises per-window.

        Returns:
            Stream id → decisions emitted this tick (ids with no
            decisions are omitted).
        """
        t0 = time.perf_counter()
        out: dict[str, list["WindowDecision"]] = defaultdict(list)
        pending: list[tuple[StreamLane, PreparedWindow]] = []
        with span("serving.tick", shard=self.shard_id):
            entries: list[tuple[StreamLane, object]] = []
            for lane in self._lane_order():
                for _ in range(self.windows_per_stream):
                    item = lane.supervisor.pop_window()
                    if item is None:
                        break
                    entries.append((lane, item))
            for lane, prep in self._prepare_entries(entries):
                if prep.decision is not None:
                    out[lane.stream_id].append(
                        lane.supervisor.finish_window(prep)
                    )
                    continue
                poisoned = self._poisoned_channel(prep.sample)
                if poisoned is not None:
                    counter(
                        "serving.batch.poison_total",
                        stream=lane.stream_id,
                    ).inc()
                    cause = NonFiniteSampleError(poisoned)
                    out[lane.stream_id].append(
                        lane.supervisor.finish_window(
                            prep,
                            error=StageFailureError(
                                STAGE_BATCH_GUARD, cause
                            ),
                        )
                    )
                    continue
                pending.append((lane, prep))
            self._score_pending(pending, out)
        # Surface the shared identifier's serving precision so a fleet
        # dashboard can tell which shards run the float32 fast path
        # (a refit silently drops the pack back to float64).
        serve_dtype = getattr(
            getattr(self._identifier, "pipeline", None), "serve_dtype", "float64"
        )
        gauge("serving.serve_float32", shard=self.shard_id).set(
            1.0 if serve_dtype == "float32" else 0.0
        )
        counter("serving.ticks_total").inc()
        histogram("serving.tick.latency_ms").observe(
            (time.perf_counter() - t0) * 1e3
        )
        return dict(out)

    def health(self) -> dict[str, dict]:
        """Stream id → that lane's supervisor health, JSON-ready."""
        return {
            sid: lane.supervisor.health().as_dict()
            for sid, lane in self.lanes.items()
        }

    # -- internals -------------------------------------------------------

    def _lane_order(self) -> list[StreamLane]:
        """Highest priority first; stable by id within a priority."""
        return sorted(
            self.lanes.values(), key=lambda lane: (-lane.priority, lane.stream_id)
        )

    def _prepare_entries(
        self, entries: list[tuple[StreamLane, object]]
    ) -> list[tuple[StreamLane, PreparedWindow]]:
        """Run the prepare phase for every dequeued window.

        In batched mode, windows from *clean* lanes (every breaker
        closed, every log value finite) are featurised through ONE
        pooled DSP batch (:meth:`StreamingIdentifier.prepare_windows`)
        and handed to each lane via ``begin_window(precomputed=...)``.
        Suspect windows — non-finite logs, or lanes mid-breaker-probe —
        take the per-lane scalar path so the pooled eigendecomposition
        never sees poison and breaker half-open probes stay attributed
        to their own lane.  A pooled-prepare failure falls back to the
        scalar path for every pooled window: slower, never lossier.
        """
        preps: list[PreparedWindow | None] = [None] * len(entries)
        if self.batch_inference and len(entries) > 1:
            pooled = [
                i
                for i, (lane, item) in enumerate(entries)
                if self._poolable(lane, item)
            ]
            if len(pooled) > 1:
                try:
                    with span("serving.batch.prepare", windows=len(pooled)):
                        batch = []
                        for i in pooled:
                            lane, item = entries[i]
                            calibrator = lane.supervisor.identifier.calibrator
                            psi = (
                                calibrator.calibrate(item.log)
                                if calibrator is not None
                                else None
                            )
                            batch.append((item.log, item.t_start_s, psi))
                        results = self._identifier.prepare_windows(batch)
                except Exception:
                    # Pooled prepare must never take the shard down:
                    # every window retries on its own lane below, where
                    # a real DSP fault degrades only that stream.
                    counter("serving.batch.prepare_fallback_total").inc()
                else:
                    counter("serving.batch.prepares_total").inc()
                    for i, result in zip(pooled, results):
                        lane, item = entries[i]
                        preps[i] = lane.supervisor.begin_window(
                            item, precomputed=result
                        )
        return [
            (lane, preps[i] if preps[i] is not None
             else lane.supervisor.begin_window(item))
            for i, (lane, item) in enumerate(entries)
        ]

    @staticmethod
    def _poolable(lane: StreamLane, item: object) -> bool:
        """True when a window may join the shared DSP batch.

        A lane with any non-closed breaker keeps the scalar path so
        half-open probes run (and are attributed) under its own
        guards; a log carrying NaN/Inf keeps the scalar path so a
        poison pill can only fail its own lane's prepare, never the
        pooled batch.
        """
        from repro.runtime.breaker import STATE_CLOSED

        supervisor = lane.supervisor
        if any(
            breaker.state != STATE_CLOSED
            for breaker in supervisor.breakers.values()
        ):
            return False
        log = item.log
        return bool(
            np.isfinite(log.phase_rad).all()
            and np.isfinite(log.rssi_dbm).all()
            and np.isfinite(log.timestamp_s).all()
        )

    @staticmethod
    def _poisoned_channel(sample: object) -> str | None:
        """Name of the first non-finite feature channel, if any."""
        channels = getattr(sample, "channels", None)
        if not isinstance(channels, dict):
            return None
        for name in sorted(channels):
            if not np.all(np.isfinite(channels[name])):
                return str(name)
        return None

    @staticmethod
    def _shape_key(sample: object) -> tuple:
        """Batch-compatibility signature of a featurised sample."""
        channels = getattr(sample, "channels", {})
        return tuple(
            (name, tuple(np.shape(channels[name]))) for name in sorted(channels)
        )

    def _score_pending(
        self,
        pending: list[tuple[StreamLane, PreparedWindow]],
        out: dict[str, list["WindowDecision"]],
    ) -> None:
        """Run inference for every prepared window and finish each."""
        if not pending:
            return
        groups: dict[tuple, list[tuple[StreamLane, PreparedWindow]]] = (
            defaultdict(list)
        )
        for lane, prep in pending:
            groups[self._shape_key(prep.sample)].append((lane, prep))
        for group in groups.values():
            if self.batch_inference and len(group) > 1:
                self._predict_batched(group, out)
            else:
                self._predict_singles(group, out)

    def _predict_batched(
        self,
        group: list[tuple[StreamLane, PreparedWindow]],
        out: dict[str, list["WindowDecision"]],
    ) -> None:
        """One shared ``predict_proba`` for the group; fall back on error."""
        samples = [prep.sample for _, prep in group]
        try:
            with span("serving.batch.predict", windows=len(samples)):
                probas = self._identifier.predict_prepared(samples)
        except Exception:
            # The shared call must never take the shard down: retry
            # each window under its own lane's predict breaker so the
            # failure converts to per-stream degradation.
            counter("serving.batch.fallback_total").inc()
            self._predict_singles(group, out)
            return
        counter("serving.batch.predicts_total").inc()
        histogram("serving.batch.size").observe(float(len(samples)))
        for (lane, prep), proba in zip(group, probas):
            out[lane.stream_id].append(
                lane.supervisor.finish_window(prep, proba=proba)
            )

    def _predict_singles(
        self,
        group: list[tuple[StreamLane, PreparedWindow]],
        out: dict[str, list["WindowDecision"]],
    ) -> None:
        """Per-window inference under each lane's own guards."""
        for lane, prep in group:
            try:
                with guard_scope(prep.guards):
                    probas = lane.supervisor.identifier.predict_prepared(
                        [prep.sample]
                    )
            except Exception as exc:
                out[lane.stream_id].append(
                    lane.supervisor.finish_window(prep, error=exc)
                )
            else:
                out[lane.stream_id].append(
                    lane.supervisor.finish_window(prep, proba=probas[0])
                )
