"""Machine-readable shape contracts parsed from docstring tags.

RPR008 has long *mandated* ``shape: (...)`` tags on spectrum
producers; this module makes those tags mean something.  A tag like
``shape: ``(F, n_tags, 180)``  `` parses into a :class:`ShapeContract`
whose dims are literal ints (checked exactly), symbolic names
(wildcards that must stay self-consistent within one match), or a
leading/inline ``...`` ellipsis (any number of extra axes).  The
static checker (RPR015) compares producer and consumer contracts at
call sites; the runtime sanitizer
(:func:`repro.analysis.sanitize.anomaly_detection` with
``check_contracts=True``) asserts real output shapes against the same
parsed contracts.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = [
    "ContractParseError",
    "FunctionContracts",
    "ShapeContract",
    "extract_contracts",
    "find_shape_tags",
    "parse_shape_tag",
]

ELLIPSIS_DIM = "..."
"""Sentinel dim standing for "any number of leading axes"."""

_TAG_RE = re.compile(r"shape:\s*`{0,2}\(([^()]*)\)")
_SYMBOL_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_DIM_EXPR_RE = re.compile(r"[A-Za-z0-9_+\-* ]+")


class ContractParseError(ValueError):
    """A ``shape: (...)`` tag that cannot be parsed into dims."""


@dataclass(frozen=True)
class ShapeContract:
    """One parsed shape tag.

    Attributes:
        dims: tuple of ``int`` (exact), ``str`` symbol (wildcard,
            consistent within a match), or :data:`ELLIPSIS_DIM`.
        raw: the tag text as written.
    """

    dims: tuple[object, ...]
    raw: str

    @property
    def rank(self) -> int:
        """Number of explicit (non-ellipsis) dims."""
        return sum(1 for d in self.dims if d != ELLIPSIS_DIM)

    @property
    def has_ellipsis(self) -> bool:
        """True when the contract admits extra leading axes."""
        return any(d == ELLIPSIS_DIM for d in self.dims)

    def matches(self, shape: tuple[int, ...]) -> str | None:
        """Check a concrete shape; returns an error detail or None.

        Symbolic dims bind on first use and must stay consistent:
        ``(N, N)`` rejects ``(3, 4)``.
        """
        explicit = [d for d in self.dims if d != ELLIPSIS_DIM]
        if self.has_ellipsis:
            if len(shape) < len(explicit):
                return (
                    f"rank {len(shape)} is below the {len(explicit)} "
                    f"explicit dims of shape: ({self.raw})"
                )
            tail = shape[len(shape) - len(explicit) :]
        else:
            if len(shape) != len(explicit):
                return (
                    f"rank {len(shape)} does not match the rank-"
                    f"{len(explicit)} contract shape: ({self.raw})"
                )
            tail = shape
        bindings: dict[str, int] = {}
        for want, got in zip(explicit, tail):
            if isinstance(want, int):
                if got != want:
                    return (
                        f"dim {got} conflicts with literal {want} in "
                        f"shape: ({self.raw})"
                    )
            elif isinstance(want, str) and _SYMBOL_RE.fullmatch(want):
                if want in bindings and bindings[want] != got:
                    return (
                        f"symbol {want} bound to both {bindings[want]} and "
                        f"{got} in shape: ({self.raw})"
                    )
                bindings[want] = got
        return None

    def conflict_with(self, other: "ShapeContract") -> str | None:
        """Static producer/consumer comparison; error detail or None.

        Ranks must agree unless either side has an ellipsis, in which
        case only the overlapping trailing dims are compared.  Literal
        ints must match position-for-position; symbols are wildcards.
        """
        a = [d for d in self.dims if d != ELLIPSIS_DIM]
        b = [d for d in other.dims if d != ELLIPSIS_DIM]
        if not self.has_ellipsis and not other.has_ellipsis and len(a) != len(b):
            return (
                f"rank {len(a)} shape: ({self.raw}) vs rank {len(b)} "
                f"shape: ({other.raw})"
            )
        for want, got in zip(reversed(a), reversed(b)):
            if isinstance(want, int) and isinstance(got, int) and want != got:
                return (
                    f"dim {want} in shape: ({self.raw}) vs dim {got} in "
                    f"shape: ({other.raw})"
                )
        return None


@dataclass(frozen=True)
class FunctionContracts:
    """Shape tags extracted from one docstring.

    Attributes:
        returns: contracts found in the Returns-ish text (a function
            may document several, e.g. one per output channel).
        args: parameter name → contract from the Args section.
    """

    returns: tuple[ShapeContract, ...]
    args: dict[str, ShapeContract]

    @property
    def empty(self) -> bool:
        """True when the docstring carries no shape tags at all."""
        return not self.returns and not self.args


def find_shape_tags(text: str) -> list[str]:
    """Raw inner texts of every ``shape: (...)`` tag in ``text``."""
    return [m.group(1) for m in _TAG_RE.finditer(text)]


def parse_shape_tag(inner: str) -> ShapeContract:
    """Parse the inner text of one tag into a :class:`ShapeContract`.

    Args:
        inner: the text between the tag's parentheses, e.g.
            ``"F, n_tags, 180"`` or ``"..., A"``.

    Returns:
        The parsed contract.

    Raises:
        ContractParseError: on empty dims or tokens that are neither
            ints, symbols, simple dim arithmetic (``2*F``), nor
            ``...``.
    """
    tokens = [t.strip().strip("`").strip() for t in inner.split(",")]
    # `(N,)` writes a trailing comma: drop one trailing empty token.
    if tokens and tokens[-1] == "":
        tokens = tokens[:-1]
    dims: list[object] = []
    for tok in tokens:
        if tok == "":
            raise ContractParseError(f"empty dim in shape: ({inner})")
        if tok in ("...", ". . ."):
            dims.append(ELLIPSIS_DIM)
            continue
        if re.fullmatch(r"-?\d+", tok):
            dims.append(int(tok))
            continue
        if _DIM_EXPR_RE.fullmatch(tok):
            dims.append(tok)
            continue
        raise ContractParseError(f"unparseable dim {tok!r} in shape: ({inner})")
    return ShapeContract(dims=tuple(dims), raw=inner.strip())


_ARGS_HEADER_RE = re.compile(r"^\s*(Args|Arguments|Parameters)\s*:\s*$")
_RETURNS_HEADER_RE = re.compile(r"^\s*(Returns|Yields)\s*:\s*$")
_SECTION_HEADER_RE = re.compile(r"^\s*[A-Z][A-Za-z ]+\s*:\s*$")
_PARAM_RE = re.compile(r"^\s*(\*{0,2}[A-Za-z_][A-Za-z0-9_]*)\s*(?:\([^)]*\))?\s*:")


def extract_contracts(docstring: str | None) -> FunctionContracts:
    """Extract every shape tag from a Google-style docstring.

    Tags inside the Args section attach to the parameter whose block
    they appear in; tags anywhere else count as return contracts
    (matching how the repo's docstrings phrase "Returns: ... shape:
    ``(F, n_tags, 180)``").

    Raises:
        ContractParseError: propagated from :func:`parse_shape_tag`
            for malformed tags.
    """
    if not docstring:
        return FunctionContracts(returns=(), args={})
    lines = docstring.splitlines()
    args: dict[str, ShapeContract] = {}
    returns: list[ShapeContract] = []
    section = "free"
    current_param: str | None = None
    for line in lines:
        if _ARGS_HEADER_RE.match(line):
            section = "args"
            current_param = None
            continue
        if _RETURNS_HEADER_RE.match(line):
            section = "returns"
            current_param = None
            continue
        if _SECTION_HEADER_RE.match(line):
            section = "other"
            current_param = None
            continue
        if section == "args":
            m = _PARAM_RE.match(line)
            if m:
                current_param = m.group(1).lstrip("*")
        for inner in find_shape_tags(line):
            contract = parse_shape_tag(inner)
            if section == "args" and current_param is not None:
                args.setdefault(current_param, contract)
            else:
                returns.append(contract)
    return FunctionContracts(returns=tuple(returns), args=args)
