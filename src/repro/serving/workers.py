"""Shard workers: in-process shards and supervised worker processes.

The fleet never touches a bare ``multiprocessing.Pool`` (lint rule
RPR011): shards run behind the :class:`ShardWorker` interface, either
in-process (:class:`InlineShardWorker` — the default, right for small
fleets where process isolation would cost more than it buys) or in a
dedicated OS process (:class:`ProcessShardWorker` — one process per
shard, read logs shipped through shared memory above a size
threshold).  The process variant is what makes worker *crash*
detection meaningful: :meth:`ShardWorker.alive` goes False when the
worker dies, and the fleet reassigns its streams to a replacement.

The RPC protocol is deliberately tiny — one request queue, one
response queue, strictly one outstanding request — because the fleet
drives every shard from a single control thread.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.serving.shard import ShardServer
from repro.serving.sharedlog import ShippedLog, ship_log, unship_log

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.streaming import WindowDecision
    from repro.hardware.llrp import ReadLog

__all__ = [
    "InlineShardWorker",
    "ProcessShardWorker",
    "ShardWorker",
    "TickResult",
    "WorkerCrashedError",
]

_RESPONSE_POLL_S = 0.1
_DEFAULT_RPC_TIMEOUT_S = 120.0


class WorkerCrashedError(RuntimeError):
    """The worker process died before answering a request."""

    def __init__(self, shard_id: int, detail: str) -> None:
        super().__init__(f"shard {shard_id} worker crashed: {detail}")
        self.shard_id = shard_id


@dataclass(frozen=True)
class TickResult:
    """One worker tick's outcome.

    Attributes:
        decisions: stream id → decisions emitted this tick.
        depths: stream id → queue depth *after* the tick.
    """

    decisions: dict[str, list["WindowDecision"]]
    depths: dict[str, int]


class ShardWorker:
    """The interface every shard worker implements.

    Methods mirror :class:`~repro.serving.shard.ShardServer`; the
    fleet only ever talks to workers through this surface, so swapping
    inline shards for process workers is a constructor argument, not a
    rewrite.
    """

    shard_id: int

    def add_stream(
        self, stream_id: str, priority: int = 0, calibrator: object = None
    ) -> None:
        """Create a lane for an admitted stream."""
        raise NotImplementedError

    def remove_stream(self, stream_id: str) -> None:
        """Evict a lane."""
        raise NotImplementedError

    def stream_ids(self) -> list[str]:
        """Streams laned on this worker."""
        raise NotImplementedError

    def submit(self, stream_id: str, log: "ReadLog") -> int:
        """Window a log into the stream's queue; returns windows added."""
        raise NotImplementedError

    def tick(self) -> TickResult:
        """Serve one round; returns decisions and post-tick depths."""
        raise NotImplementedError

    def queue_depths(self) -> dict[str, int]:
        """Stream id → queued windows."""
        raise NotImplementedError

    def shed(self, stream_id: str, n_windows: int) -> int:
        """Drop up to n oldest windows of one stream; returns dropped."""
        raise NotImplementedError

    def health(self) -> dict[str, dict]:
        """Stream id → supervisor health dict."""
        raise NotImplementedError

    def alive(self) -> bool:
        """True while the worker can serve."""
        raise NotImplementedError

    def stop(self) -> None:
        """Shut the worker down (idempotent)."""
        raise NotImplementedError


class InlineShardWorker(ShardWorker):
    """A shard served in the fleet's own process.

    Args:
        shard_id: shard index (metrics).
        identifier_factory: see :class:`ShardServer`.
        batch_inference: see :class:`ShardServer`.
        windows_per_stream: see :class:`ShardServer`.
        supervisor_kwargs: see :class:`ShardServer`.
    """

    def __init__(
        self,
        shard_id: int,
        identifier_factory: Callable,
        batch_inference: bool = True,
        windows_per_stream: int = 4,
        supervisor_kwargs: dict | None = None,
    ) -> None:
        self.shard_id = int(shard_id)
        self._shard = ShardServer(
            shard_id,
            identifier_factory,
            batch_inference=batch_inference,
            windows_per_stream=windows_per_stream,
            supervisor_kwargs=supervisor_kwargs,
        )
        self._stopped = False

    def add_stream(
        self, stream_id: str, priority: int = 0, calibrator: object = None
    ) -> None:
        """Create a lane for an admitted stream."""
        self._shard.add_stream(stream_id, priority=priority, calibrator=calibrator)

    def remove_stream(self, stream_id: str) -> None:
        """Evict a lane."""
        self._shard.remove_stream(stream_id)

    def stream_ids(self) -> list[str]:
        """Streams laned on this worker."""
        return self._shard.stream_ids()

    def submit(self, stream_id: str, log: "ReadLog") -> int:
        """Window a log into the stream's queue; returns windows added."""
        return self._shard.submit(stream_id, log)

    def tick(self) -> TickResult:
        """Serve one round; returns decisions and post-tick depths."""
        decisions = self._shard.tick()
        return TickResult(decisions=decisions, depths=self._shard.queue_depths())

    def queue_depths(self) -> dict[str, int]:
        """Stream id → queued windows."""
        return self._shard.queue_depths()

    def shed(self, stream_id: str, n_windows: int) -> int:
        """Drop up to n oldest windows of one stream; returns dropped."""
        return self._shard.shed(stream_id, n_windows)

    def health(self) -> dict[str, dict]:
        """Stream id → supervisor health dict."""
        return self._shard.health()

    def alive(self) -> bool:
        """Inline workers live exactly as long as the fleet process."""
        return not self._stopped

    def stop(self) -> None:
        """Shut the worker down (idempotent)."""
        self._stopped = True


def _worker_main(
    shard_id: int,
    requests,
    responses,
    identifier_factory: Callable,
    batch_inference: bool,
    windows_per_stream: int,
    supervisor_kwargs: dict | None,
) -> None:
    """Worker-process loop: build the shard, answer RPCs until 'stop'."""
    shard = ShardServer(
        shard_id,
        identifier_factory,
        batch_inference=batch_inference,
        windows_per_stream=windows_per_stream,
        supervisor_kwargs=supervisor_kwargs,
    )
    while True:
        cmd, args = requests.get()
        if cmd == "stop":
            responses.put(("ok", None))
            return
        if cmd == "crash":  # test hook: simulate a hard worker death
            os._exit(13)
        try:
            if cmd == "add_stream":
                result = shard.add_stream(*args)
            elif cmd == "remove_stream":
                result = shard.remove_stream(*args)
            elif cmd == "stream_ids":
                result = shard.stream_ids()
            elif cmd == "submit":
                shipped: ShippedLog = args[1]
                result = shard.submit(args[0], unship_log(shipped))
            elif cmd == "tick":
                result = TickResult(
                    decisions=shard.tick(), depths=shard.queue_depths()
                )
            elif cmd == "queue_depths":
                result = shard.queue_depths()
            elif cmd == "shed":
                result = shard.shed(*args)
            elif cmd == "health":
                result = shard.health()
            else:
                raise ValueError(f"unknown worker command {cmd!r}")
        except Exception as exc:
            responses.put(("error", (type(exc).__name__, str(exc))))
        else:
            responses.put(("ok", result))


class ProcessShardWorker(ShardWorker):
    """A shard served by a dedicated OS process.

    Read logs are shipped through shared memory above the
    :data:`~repro.serving.sharedlog.SHARED_MEMORY_MIN_BYTES`
    threshold; everything else crosses the command queues pickled.
    ``identifier_factory`` must be importable from the child process
    (a module-level callable).

    Args:
        shard_id: shard index (metrics).
        identifier_factory: zero-argument callable building the
            shard's identifiers inside the worker process.
        batch_inference: see :class:`ShardServer`.
        windows_per_stream: see :class:`ShardServer`.
        supervisor_kwargs: see :class:`ShardServer`.
        rpc_timeout_s: how long a single request may take before the
            worker is declared crashed.
    """

    def __init__(
        self,
        shard_id: int,
        identifier_factory: Callable,
        batch_inference: bool = True,
        windows_per_stream: int = 4,
        supervisor_kwargs: dict | None = None,
        rpc_timeout_s: float = _DEFAULT_RPC_TIMEOUT_S,
    ) -> None:
        import multiprocessing as mp

        self.shard_id = int(shard_id)
        self.rpc_timeout_s = float(rpc_timeout_s)
        ctx = mp.get_context()
        self._requests = ctx.Queue()
        self._responses = ctx.Queue()
        self._process = ctx.Process(
            target=_worker_main,
            args=(
                shard_id,
                self._requests,
                self._responses,
                identifier_factory,
                batch_inference,
                windows_per_stream,
                supervisor_kwargs,
            ),
            daemon=True,
        )
        self._process.start()
        self._stopped = False

    def _call(self, cmd: str, *args: object):
        import queue as queue_mod
        import time

        if not self.alive():
            raise WorkerCrashedError(self.shard_id, "worker is not running")
        self._requests.put((cmd, args))
        deadline = time.monotonic() + self.rpc_timeout_s
        while True:
            try:
                status, payload = self._responses.get(timeout=_RESPONSE_POLL_S)
            except queue_mod.Empty:
                if not self._process.is_alive():
                    raise WorkerCrashedError(
                        self.shard_id,
                        f"exitcode={self._process.exitcode} during {cmd!r}",
                    ) from None
                if time.monotonic() > deadline:
                    raise WorkerCrashedError(
                        self.shard_id, f"request {cmd!r} timed out"
                    ) from None
                continue
            if status == "error":
                name, message = payload
                raise RuntimeError(
                    f"shard {self.shard_id} worker error in {cmd!r}: "
                    f"{name}: {message}"
                )
            return payload

    def crash(self) -> None:
        """Test hook: make the worker process die hard (``os._exit``)."""
        if self.alive():
            self._requests.put(("crash", ()))
            self._process.join(timeout=5.0)

    def add_stream(
        self, stream_id: str, priority: int = 0, calibrator: object = None
    ) -> None:
        """Create a lane for an admitted stream."""
        self._call("add_stream", stream_id, priority, calibrator)

    def remove_stream(self, stream_id: str) -> None:
        """Evict a lane."""
        self._call("remove_stream", stream_id)

    def stream_ids(self) -> list[str]:
        """Streams laned on this worker."""
        return self._call("stream_ids")

    def submit(self, stream_id: str, log: "ReadLog") -> int:
        """Ship a log to the worker; returns windows enqueued there."""
        return self._call("submit", stream_id, ship_log(log))

    def tick(self) -> TickResult:
        """Serve one round; returns decisions and post-tick depths."""
        return self._call("tick")

    def queue_depths(self) -> dict[str, int]:
        """Stream id → queued windows."""
        return self._call("queue_depths")

    def shed(self, stream_id: str, n_windows: int) -> int:
        """Drop up to n oldest windows of one stream; returns dropped."""
        return self._call("shed", stream_id, n_windows)

    def health(self) -> dict[str, dict]:
        """Stream id → supervisor health dict."""
        return self._call("health")

    def alive(self) -> bool:
        """True while the worker process is running."""
        return (
            not self._stopped
            and self._process is not None
            and self._process.is_alive()
        )

    def stop(self) -> None:
        """Shut the worker process down (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        if self._process.is_alive():
            try:
                self._requests.put(("stop", ()))
                self._process.join(timeout=5.0)
            finally:
                if self._process.is_alive():  # pragma: no cover - hard stop
                    self._process.terminate()
                    self._process.join(timeout=5.0)
        self._requests.close()
        self._responses.close()
