"""Robustness sweep harness, exercised with a stub serving path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.streaming import (
    ABSTAIN,
    REASON_DEAD_PORTS,
    REASON_TOO_FEW_READS,
    WindowDecision,
)
from repro.data.generator import RawSample
from repro.eval.robustness import RobustnessReport, robustness_sweep
from repro.hardware import ReadLog, ReaderMeta

KINDS = ("dropout", "dead_port", "calibration_gap")
SEVERITIES = (0.0, 0.3, 0.9)
MIN_READS = 60


def make_log(n: int, seed: int) -> ReadLog:
    meta = ReaderMeta(
        n_antennas=4,
        slot_s=0.025,
        dwell_s=0.4,
        spacing_m=0.04,
        frequencies_hz=np.linspace(902.75e6, 927.25e6, 50),
        reference_channel=15,
    )
    rng = np.random.default_rng(seed)
    channel = rng.integers(0, 50, n)
    return ReadLog(
        epcs=("T",),
        tag_index=np.zeros(n, dtype=int),
        antenna=rng.integers(0, 4, n),
        channel=channel,
        frequency_hz=meta.frequencies_hz[channel],
        timestamp_s=np.sort(rng.uniform(0.0, 6.0, n)),
        phase_rad=rng.uniform(0.0, 2.0 * np.pi, n),
        rssi_dbm=np.full(n, -60.0),
        meta=meta,
    )


class StubIdentifier:
    """One decision per log, driven only by read count and liveness."""

    def __init__(self):
        self.calibrator = None

    def identify(self, log: ReadLog) -> list[WindowDecision]:
        if log.n_reads == 0:
            return []
        if int(log.antenna_liveness().sum()) < 2:
            return [
                WindowDecision(
                    0.0, 6.0, ABSTAIN, 0.0, log.n_reads, True, REASON_DEAD_PORTS
                )
            ]
        if log.n_reads < MIN_READS:
            return [
                WindowDecision(
                    0.0, 6.0, ABSTAIN, 0.0, log.n_reads, True,
                    REASON_TOO_FEW_READS,
                )
            ]
        return [WindowDecision(0.0, 6.0, "act", 0.9, log.n_reads)]


@pytest.fixture()
def report() -> RobustnessReport:
    samples = [
        RawSample(
            label="act",
            log=make_log(200, seed=i),
            calibration_log=make_log(400, seed=100 + i),
            n_frames=15,
        )
        for i in range(3)
    ]
    return robustness_sweep(
        StubIdentifier(), samples, kinds=KINDS, severities=SEVERITIES, seed=0
    )


class TestRobustnessSweep:
    def test_full_grid_covered(self, report):
        assert len(report.cells) == len(KINDS) * len(SEVERITIES)
        for kind in KINDS:
            for severity in SEVERITIES:
                cell = report.cell(kind, severity)
                assert cell.n_windows == 3
                assert 0.0 <= cell.abstain_rate <= 1.0

    def test_unknown_cell_raises(self, report):
        with pytest.raises(KeyError):
            report.cell("dropout", 0.5)

    def test_clean_baseline_shared_across_kinds(self, report):
        for kind in KINDS:
            cell = report.cell(kind, 0.0)
            assert cell.accuracy == 1.0
            assert cell.abstain_rate == 0.0

    def test_heavy_dropout_abstains(self, report):
        cell = report.cell("dropout", 0.9)  # ~81% loss: below MIN_READS
        assert cell.abstain_rate == 1.0
        assert np.isnan(cell.accuracy)

    def test_heavy_dead_port_abstains(self, report):
        cell = report.cell("dead_port", 0.9)  # one surviving port
        assert cell.abstain_rate == 1.0

    def test_mild_faults_still_decided(self, report):
        assert report.cell("dropout", 0.3).abstain_rate == 0.0
        assert report.cell("dead_port", 0.3).accuracy == 1.0

    def test_calibration_gap_refits_calibrator(self, report):
        # The runtime log stays clean, so decisions still land; the
        # refitted calibrator must interpolate the blanked reference.
        cell = report.cell("calibration_gap", 0.9)
        assert cell.abstain_rate == 0.0
        assert cell.accuracy == 1.0

    def test_render_table(self, report):
        table = report.render()
        assert isinstance(table, str)
        for kind in KINDS:
            assert kind in table
        assert "s=0.00" in table and "s=0.90" in table
