"""Rooms, scatterers, and the environment presets."""

from __future__ import annotations

import pytest

from repro.geometry import (
    Rectangle,
    Room,
    Scatterer,
    Segment,
    Vec2,
    make_hall,
    make_laboratory,
    make_open_space,
)


class TestScatterer:
    def test_validation(self):
        with pytest.raises(ValueError):
            Scatterer(Vec2(0, 0), radius=0.3, reflectivity=1.5)
        with pytest.raises(ValueError):
            Scatterer(Vec2(0, 0), radius=-1.0, reflectivity=0.5)


class TestRoom:
    def test_scatterer_must_be_inside(self):
        bounds = Rectangle(0, 0, 5, 5)
        outside = Scatterer(Vec2(10, 10), 0.3, 0.5)
        with pytest.raises(ValueError):
            Room(bounds=bounds, scatterers=(outside,))

    def test_wall_reflectivity_bounds(self):
        with pytest.raises(ValueError):
            Room(bounds=Rectangle(0, 0, 5, 5), wall_reflectivity=2.0)

    def test_blockers_on_counts_crossings(self):
        room = Room(
            bounds=Rectangle(0, 0, 10, 10),
            scatterers=(
                Scatterer(Vec2(5, 5), 0.5, 0.5),
                Scatterer(Vec2(8, 8), 0.5, 0.5),
            ),
        )
        seg = Segment(Vec2(0, 0), Vec2(10, 10))
        assert room.blockers_on(seg) == 2

    def test_blockers_on_exclude(self):
        pos = Vec2(5, 5)
        room = Room(
            bounds=Rectangle(0, 0, 10, 10),
            scatterers=(Scatterer(pos, 0.5, 0.5),),
        )
        seg = Segment(Vec2(0, 0), Vec2(10, 10))
        assert room.blockers_on(seg, exclude=pos) == 0


class TestPresets:
    def test_laboratory_dimensions_match_paper(self):
        lab = make_laboratory()
        assert lab.bounds.width == pytest.approx(13.75)
        assert lab.bounds.height == pytest.approx(10.50)
        assert len(lab.scatterers) > 5  # cabinets and desks

    def test_hall_dimensions_match_paper(self):
        hall = make_hall()
        assert hall.bounds.width == pytest.approx(8.75)
        assert hall.bounds.height == pytest.approx(7.50)
        assert hall.scatterers == ()

    def test_hall_has_less_multipath_than_lab(self):
        assert len(make_hall().scatterers) < len(make_laboratory().scatterers)
        assert make_hall().wall_reflectivity < make_laboratory().wall_reflectivity

    def test_laboratory_deterministic_in_seed(self):
        a, b = make_laboratory(seed=3), make_laboratory(seed=3)
        assert a.scatterers == b.scatterers
        assert make_laboratory(seed=4).scatterers != a.scatterers

    def test_open_space_has_no_reflections(self):
        space = make_open_space()
        assert space.wall_reflectivity == 0.0
        assert space.scatterers == ()
