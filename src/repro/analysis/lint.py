"""Static analyzer CLI: ``python -m repro.analysis.lint <paths>``.

Runs every registered :mod:`repro.analysis.rules` rule over the given
files or directory trees, prints findings as text or JSON, and exits
non-zero when anything is found — the CI contract.

Suppressions are comment-driven:

* a trailing ``# reprolint: disable=RPR001`` suppresses those codes on
  that line only;
* a standalone ``# reprolint: disable=RPR001,RPR006`` comment line
  suppresses the codes for the whole file.
"""

from __future__ import annotations

import argparse
import ast
import io
import json
import re
import sys
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.rules import RULES, Finding, LintRule, FileContext

__all__ = ["LintReport", "lint_paths", "lint_source", "main"]

PARSE_ERROR_CODE = "RPR000"
"""Pseudo-code attached to files that fail to parse."""

_SUPPRESS_PATTERN = re.compile(
    r"#\s*reprolint:\s*disable=(?P<codes>RPR\d{3}(?:\s*,\s*RPR\d{3})*)"
)


@dataclass(frozen=True)
class _Suppressions:
    """Parsed suppression comments of one file."""

    file_wide: frozenset[str]
    by_line: dict[int, frozenset[str]]

    def allows(self, finding: Finding) -> bool:
        if finding.code in self.file_wide:
            return False
        return finding.code not in self.by_line.get(finding.line, frozenset())


def _parse_suppressions(source: str) -> _Suppressions:
    file_wide: set[str] = set()
    by_line: dict[int, frozenset[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return _Suppressions(frozenset(), {})
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_PATTERN.search(tok.string)
        if not match:
            continue
        codes = frozenset(c.strip() for c in match.group("codes").split(","))
        row, col = tok.start
        standalone = tok.line[:col].strip() == ""
        if standalone:
            file_wide |= codes
        else:
            by_line[row] = by_line.get(row, frozenset()) | codes
    return _Suppressions(frozenset(file_wide), by_line)


def _select_rules(select: Sequence[str] | None) -> list[LintRule]:
    if select is None:
        return [RULES[code] for code in sorted(RULES)]
    unknown = sorted(set(select) - set(RULES))
    if unknown:
        raise KeyError(f"unknown rule code(s): {', '.join(unknown)}")
    return [RULES[code] for code in sorted(set(select))]


def lint_source(
    source: str, path: str = "<string>", select: Sequence[str] | None = None
) -> list[Finding]:
    """Lint one source string.

    Args:
        source: Python source text.
        path: path to report in findings.
        select: rule codes to run (default: all registered).

    Returns:
        Surviving (non-suppressed) findings, ordered by position.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                code=PARSE_ERROR_CODE,
                message=f"file does not parse: {exc.msg}",
                hint="fix the syntax error; nothing else was checked",
            )
        ]
    ctx = FileContext(path=path, source=source, tree=tree)
    suppressions = _parse_suppressions(source)
    findings = [
        f
        for rule in _select_rules(select)
        for f in rule.check(ctx)
        if suppressions.allows(f)
    ]
    findings.sort(key=lambda f: (f.line, f.col, f.code))
    return findings


def _iter_files(paths: Iterable[str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            files.append(p)
    seen: set[Path] = set()
    unique = []
    for f in files:
        if f not in seen:
            seen.add(f)
            unique.append(f)
    return unique


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding]
    n_files: int

    @property
    def ok(self) -> bool:
        """True when no findings survived."""
        return not self.findings

    def as_dict(self) -> dict[str, object]:
        """JSON-ready representation."""
        return {
            "ok": self.ok,
            "n_files": self.n_files,
            "n_findings": len(self.findings),
            "findings": [f.as_dict() for f in self.findings],
        }


def lint_paths(
    paths: Iterable[str], select: Sequence[str] | None = None
) -> LintReport:
    """Lint files and directory trees.

    Args:
        paths: files or directories (searched recursively for ``.py``).
        select: rule codes to run (default: all registered).

    Returns:
        A :class:`LintReport` with every surviving finding.
    """
    files = _iter_files(paths)
    findings: list[Finding] = []
    for f in files:
        findings.extend(
            lint_source(f.read_text(encoding="utf-8"), path=str(f), select=select)
        )
    return LintReport(findings=findings, n_files=len(files))


def _format_text(report: LintReport, stream: io.TextIOBase) -> None:
    for f in report.findings:
        stream.write(f"{f.path}:{f.line}:{f.col}: {f.code} {f.message}\n")
        stream.write(f"    hint: {f.hint}\n")
    noun = "file" if report.n_files == 1 else "files"
    if report.ok:
        stream.write(f"reprolint: {report.n_files} {noun} checked, no findings\n")
    else:
        stream.write(
            f"reprolint: {report.n_files} {noun} checked, "
            f"{len(report.findings)} finding(s)\n"
        )


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="repro-specific static analysis (RPR rules)",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code in sorted(RULES):
            rule = RULES[code]
            sys.stdout.write(f"{code} {rule.name}: {rule.description}\n")
        return 0
    if not args.paths:
        parser.error("no paths given (try: python -m repro.analysis.lint src)")

    select = args.select.split(",") if args.select else None
    try:
        report = lint_paths(args.paths, select=select)
    except KeyError as exc:
        parser.error(str(exc))
    if args.format == "json":
        sys.stdout.write(json.dumps(report.as_dict(), indent=2) + "\n")
    else:
        _format_text(report, sys.stdout)
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
