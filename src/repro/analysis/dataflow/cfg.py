"""Per-function control-flow graphs over the stdlib :mod:`ast`.

The linter's flow-sensitive rule packs (dtype flow, shape contracts)
need to know *in what order* statements can execute, not just that
they exist: a ``float32`` cast inside an ``if`` branch must survive
the join below the branch, and narrowness introduced inside a loop
body must reach the loop header again.  :func:`build_cfg` lowers one
function body into basic blocks with successor edges; the forward
solver in :mod:`repro.analysis.dataflow.engine` runs a transfer
function to fixpoint over that graph.

The lowering is deliberately approximate where precision buys the
rule packs nothing:

* ``with`` bodies are inlined sequentially (a ``with`` never
  branches); scope-sensitive rules recover with-membership lexically.
* ``try`` bodies edge into every handler from the block *before* the
  body as well as after it, over-approximating "an exception may fire
  anywhere"; ``finally`` bodies run on every path out.
* ``match`` statements are treated as an if/elif ladder.

Over-approximation is sound for the may-analyses built on top: extra
edges can only *widen* what the solver believes reachable.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["BasicBlock", "CFG", "build_cfg"]


@dataclass
class BasicBlock:
    """A straight-line run of statements with successor edges.

    Attributes:
        block_id: dense index within the owning :class:`CFG`.
        stmts: the AST statements executed in order.
        succs: block ids control may transfer to afterwards.
    """

    block_id: int
    stmts: list[ast.stmt] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)


@dataclass
class CFG:
    """Control-flow graph of one function body.

    Attributes:
        blocks: block id → :class:`BasicBlock`.
        entry: id of the entry block.
        exit: id of the synthetic exit block (always empty).
    """

    blocks: dict[int, BasicBlock]
    entry: int
    exit: int

    def preds(self) -> dict[int, list[int]]:
        """Predecessor map (inverse of the successor edges)."""
        inv: dict[int, list[int]] = {bid: [] for bid in self.blocks}
        for block in self.blocks.values():
            for succ in block.succs:
                inv[succ].append(block.block_id)
        return inv


class _Builder:
    """Single-use CFG builder for one statement list."""

    def __init__(self) -> None:
        self.blocks: dict[int, BasicBlock] = {}
        self.exit_id = self._new_block()
        # (break targets, continue targets) stacks for loop lowering.
        self._break_stack: list[int] = []
        self._continue_stack: list[int] = []

    def _new_block(self) -> int:
        bid = len(self.blocks)
        self.blocks[bid] = BasicBlock(block_id=bid)
        return bid

    def _edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)

    def _has_preds(self, bid: int) -> bool:
        return any(bid in block.succs for block in self.blocks.values())

    def build(self, body: list[ast.stmt]) -> CFG:
        entry = self._new_block()
        end = self._stmts(body, entry)
        if end is not None:
            self._edge(end, self.exit_id)
        return CFG(blocks=self.blocks, entry=entry, exit=self.exit_id)

    def _stmts(self, body: list[ast.stmt], current: int | None) -> int | None:
        """Lower a statement list; returns the open block or None if all
        paths left (return/raise/break/continue)."""
        for stmt in body:
            if current is None:
                # Dead code after a jump still gets a block so rules can
                # anchor findings there, but it has no inbound edges.
                current = self._new_block()
            current = self._stmt(stmt, current)
        return current

    def _stmt(self, stmt: ast.stmt, current: int) -> int | None:
        if isinstance(stmt, (ast.If,)):
            return self._if(stmt, current)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self.blocks[current].stmts.append(stmt)
            return self._stmts(stmt.body, current)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, current)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, current)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self.blocks[current].stmts.append(stmt)
            self._edge(current, self.exit_id)
            return None
        if isinstance(stmt, ast.Break):
            self.blocks[current].stmts.append(stmt)
            if self._break_stack:
                self._edge(current, self._break_stack[-1])
            return None
        if isinstance(stmt, ast.Continue):
            self.blocks[current].stmts.append(stmt)
            if self._continue_stack:
                self._edge(current, self._continue_stack[-1])
            return None
        self.blocks[current].stmts.append(stmt)
        return current

    def _if(self, stmt: ast.If, current: int) -> int | None:
        self.blocks[current].stmts.append(stmt)
        join = self._new_block()
        then_entry = self._new_block()
        self._edge(current, then_entry)
        then_end = self._stmts(stmt.body, then_entry)
        if then_end is not None:
            self._edge(then_end, join)
        if stmt.orelse:
            else_entry = self._new_block()
            self._edge(current, else_entry)
            else_end = self._stmts(stmt.orelse, else_entry)
            if else_end is not None:
                self._edge(else_end, join)
        else:
            self._edge(current, join)
        if not self._has_preds(join):
            return None
        return join

    def _loop(self, stmt: ast.While | ast.For | ast.AsyncFor, current: int) -> int:
        header = self._new_block()
        self._edge(current, header)
        self.blocks[header].stmts.append(stmt)
        after = self._new_block()
        body_entry = self._new_block()
        self._edge(header, body_entry)
        self._edge(header, after)  # zero-iteration / loop-done path
        self._break_stack.append(after)
        self._continue_stack.append(header)
        body_end = self._stmts(stmt.body, body_entry)
        self._continue_stack.pop()
        self._break_stack.pop()
        if body_end is not None:
            self._edge(body_end, header)  # back edge
        if stmt.orelse:
            # `else` runs on normal loop exit; approximate by routing it
            # between the header and `after`.
            else_entry = self._new_block()
            self._edge(header, else_entry)
            else_end = self._stmts(stmt.orelse, else_entry)
            if else_end is not None:
                self._edge(else_end, after)
        return after

    def _try(self, stmt: ast.Try, current: int) -> int | None:
        join = self._new_block()
        body_end = self._stmts(stmt.body, current)
        handler_entries: list[int] = []
        for handler in stmt.handlers:
            h_entry = self._new_block()
            handler_entries.append(h_entry)
            # The exception may fire before any body statement ran or
            # after all of them: edge from the pre-body block and from
            # the body end when it stayed open.
            self._edge(current, h_entry)
            if body_end is not None:
                self._edge(body_end, h_entry)
            h_end = self._stmts(handler.body, h_entry)
            if h_end is not None:
                self._edge(h_end, join)
        if stmt.orelse and body_end is not None:
            body_end = self._stmts(stmt.orelse, body_end)
        if body_end is not None:
            self._edge(body_end, join)
        open_join = self._has_preds(join)
        if stmt.finalbody:
            fin_end = self._stmts(stmt.finalbody, join)
            return fin_end if open_join or fin_end is not None else None
        return join if open_join else None

    def _match(self, stmt: ast.Match, current: int) -> int | None:
        self.blocks[current].stmts.append(stmt)
        join = self._new_block()
        self._edge(current, join)  # no case may match
        for case in stmt.cases:
            c_entry = self._new_block()
            self._edge(current, c_entry)
            c_end = self._stmts(case.body, c_entry)
            if c_end is not None:
                self._edge(c_end, join)
        return join


def build_cfg(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Lower one function definition into a :class:`CFG`.

    Args:
        fn: the function AST node (its ``body`` is lowered; nested
            function and class definitions are treated as opaque
            single statements, not descended into).

    Returns:
        The control-flow graph; ``entry`` starts the body and every
        leaving path reaches ``exit``.
    """
    return _Builder().build(fn.body)
