"""Link-budget conversions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.channel import (
    ChannelParams,
    above_noise_floor,
    gain_to_rssi_dbm,
    harvest_mask,
    rssi_dbm_to_amplitude,
)

PARAMS = ChannelParams()


class TestRssiMapping:
    def test_reference_point(self):
        gain = np.array([PARAMS.reference_amplitude**2 + 0j])
        assert gain_to_rssi_dbm(gain, PARAMS)[0] == pytest.approx(PARAMS.rssi_ref_dbm)

    def test_6db_per_halving(self):
        gains = np.array([0.5, 0.25], dtype=complex)
        rssi = gain_to_rssi_dbm(gains, PARAMS)
        assert rssi[0] - rssi[1] == pytest.approx(6.02, abs=0.01)

    @given(st.floats(min_value=1e-6, max_value=10.0))
    def test_roundtrip(self, magnitude):
        rssi = gain_to_rssi_dbm(np.array([magnitude + 0j]), PARAMS)
        back = rssi_dbm_to_amplitude(rssi, PARAMS)
        assert back[0] == pytest.approx(magnitude, rel=1e-9)

    def test_phase_irrelevant(self):
        a = gain_to_rssi_dbm(np.array([0.3 + 0j]), PARAMS)
        b = gain_to_rssi_dbm(np.array([0.3j]), PARAMS)
        assert a[0] == pytest.approx(b[0])


class TestGates:
    def test_harvest_threshold(self):
        threshold = PARAMS.harvest_amplitude_threshold
        g = np.array([threshold * 2, threshold / 2])
        mask = harvest_mask(g.astype(complex), PARAMS)
        assert mask.tolist() == [True, False]

    def test_noise_floor(self):
        rssi = np.array([PARAMS.noise_floor_dbm + 1.0, PARAMS.noise_floor_dbm - 1.0])
        assert above_noise_floor(rssi, PARAMS).tolist() == [True, False]
