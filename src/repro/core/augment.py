"""Training-time augmentation of spectrum-frame batches.

The simulated corpora are far smaller than a weeks-long deployment
trace, and the Fig. 6 network happily memorises a hundred samples.
These augmentations encode physical invariances of the task, so they
add information rather than noise:

* **angle shift** — rolling the pseudospectrum's angle axis a few bins
  corresponds to rotating the whole scene around the array; activity
  identity is rotation-invariant in that range.
* **time roll** — the activities are quasi-periodic, so a circular
  shift of the frame sequence is another valid execution.
* **feature noise** — reader quantisation and diffuse clutter vary
  between sessions; training against extra noise matches deployment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class AugmentConfig:
    """Augmentation strengths (bins / frames / standardised units).

    Attributes:
        angle_shift_bins: max circular shift of the pseudospectrum
            angle axis, per sample.
        time_roll_frames: max circular shift of the frame axis.
        noise_std: Gaussian noise added to every (standardised)
            feature.
    """

    angle_shift_bins: int = 2
    time_roll_frames: int = 2
    noise_std: float = 0.08

    def __post_init__(self) -> None:
        if self.angle_shift_bins < 0 or self.time_roll_frames < 0:
            raise ValueError("shift amounts must be non-negative")
        if self.noise_std < 0:
            raise ValueError("noise_std must be non-negative")


def augment_batch(
    batch: dict[str, np.ndarray],
    rng: np.random.Generator,
    config: AugmentConfig | None = None,
) -> dict[str, np.ndarray]:
    """A randomly perturbed copy of one training minibatch.

    Args:
        batch: ``{channel: (B, T, n, D)}`` standardised tensors.
        rng: augmentation randomness.
        config: strengths; defaults apply.

    Returns:
        New arrays (inputs are never mutated).
    """
    config = config or AugmentConfig()
    out = {name: np.array(arr, copy=True) for name, arr in batch.items()}
    batch_size = next(iter(out.values())).shape[0]

    time_shifts = (
        rng.integers(-config.time_roll_frames, config.time_roll_frames + 1, batch_size)
        if config.time_roll_frames
        else np.zeros(batch_size, dtype=int)
    )
    angle_shifts = (
        rng.integers(-config.angle_shift_bins, config.angle_shift_bins + 1, batch_size)
        if config.angle_shift_bins
        else np.zeros(batch_size, dtype=int)
    )

    for name, arr in out.items():
        for b in range(batch_size):
            if time_shifts[b]:
                arr[b] = np.roll(arr[b], time_shifts[b], axis=0)
            # Only wide channels (spectra over angles) get the angle roll;
            # narrow channels (periodogram bins, per-antenna values) have
            # no angular geometry to shift.
            if name == "pseudo" and angle_shifts[b]:
                arr[b] = np.roll(arr[b], angle_shifts[b], axis=-1)
        if config.noise_std:
            arr += rng.normal(0.0, config.noise_std, arr.shape)
    return out
