"""Pipeline save/load round-trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ActivityDataset, M2AIConfig, M2AIPipeline
from repro.core.serialization import load_pipeline, save_pipeline
from repro.dsp.frames import FeatureFrames

CFG = M2AIConfig(
    conv_channels=(3, 4),
    branch_dim=6,
    merge_dim=8,
    lstm_hidden=6,
    lstm_layers=1,
    dropout=0.0,
    epochs=8,
    batch_size=8,
    learning_rate=0.01,
    warmup_frames=1,
    augment=False,
)


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(0)
    samples, labels = [], []
    for cls in range(3):
        for _ in range(8):
            pseudo = rng.normal(0, 0.3, (4, 2, 40))
            pseudo[:, :, 5 + cls * 10 : 12 + cls * 10] += 2.0
            samples.append(
                FeatureFrames(
                    channels={"pseudo": pseudo, "period": rng.normal(size=(4, 2, 4))},
                    label=f"K{cls}",
                )
            )
            labels.append(f"K{cls}")
    ds = ActivityDataset(samples=samples, labels=labels)
    pipeline = M2AIPipeline(CFG).fit(ds)
    return pipeline, ds


class TestRoundTrip:
    def test_predictions_identical(self, fitted, tmp_path):
        pipeline, ds = fitted
        path = tmp_path / "model.npz"
        save_pipeline(pipeline, path)
        restored = load_pipeline(path)
        np.testing.assert_array_equal(restored.predict(ds), pipeline.predict(ds))

    def test_config_and_mode_preserved(self, fitted, tmp_path):
        pipeline, _ds = fitted
        path = tmp_path / "model.npz"
        save_pipeline(pipeline, path)
        restored = load_pipeline(path)
        assert restored.config == pipeline.config
        assert restored.mode == pipeline.mode

    def test_classes_preserved(self, fitted, tmp_path):
        pipeline, _ds = fitted
        path = tmp_path / "model.npz"
        save_pipeline(pipeline, path)
        restored = load_pipeline(path)
        assert restored._encoder.classes_.tolist() == ["K0", "K1", "K2"]

    def test_unfitted_save_rejected(self, tmp_path):
        with pytest.raises(RuntimeError):
            save_pipeline(M2AIPipeline(CFG), tmp_path / "x.npz")

    def test_loaded_pipeline_can_fine_tune(self, fitted, tmp_path):
        pipeline, ds = fitted
        path = tmp_path / "model.npz"
        save_pipeline(pipeline, path)
        restored = load_pipeline(path)
        restored.fine_tune(ds, epochs=2)
        result = restored.evaluate(ds)
        assert result.accuracy > 0.8


class TestFineTune:
    def test_unfitted_rejected(self, fitted):
        _pipeline, ds = fitted
        with pytest.raises(RuntimeError):
            M2AIPipeline(CFG).fine_tune(ds)

    def test_fine_tune_improves_on_shifted_data(self, fitted):
        pipeline, ds = fitted
        rng = np.random.default_rng(5)
        shifted_samples = []
        for s in ds.samples:
            shifted_samples.append(
                FeatureFrames(
                    channels={
                        k: v + rng.normal(0, 0.8, v.shape) for k, v in s.channels.items()
                    },
                    label=s.label,
                )
            )
        shifted = ActivityDataset(samples=shifted_samples, labels=list(ds.labels))
        before = pipeline.evaluate(shifted).accuracy
        pipeline.fine_tune(shifted, epochs=6)
        after = pipeline.evaluate(shifted).accuracy
        assert after >= before
