"""Loss functions: values, gradients, stability."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nn import log_softmax, mse_loss, numerical_gradient, softmax, softmax_cross_entropy

RNG = np.random.default_rng(2)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        p = softmax(RNG.normal(size=(5, 7)))
        np.testing.assert_allclose(p.sum(axis=-1), 1.0)

    def test_shift_invariance(self):
        logits = RNG.normal(size=(3, 4))
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0))

    def test_stable_for_large_logits(self):
        p = softmax(np.array([[1e4, 0.0]]))
        assert np.isfinite(p).all()
        assert p[0, 0] == pytest.approx(1.0)

    def test_log_softmax_consistent(self):
        logits = RNG.normal(size=(3, 4))
        np.testing.assert_allclose(np.exp(log_softmax(logits)), softmax(logits))


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, _grad = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-6

    def test_uniform_loss_is_log_k(self):
        logits = np.zeros((4, 12))
        loss, _grad = softmax_cross_entropy(logits, np.zeros(4, dtype=int))
        assert loss == pytest.approx(np.log(12))

    def test_gradient_matches_numerical(self):
        logits = RNG.normal(size=(4, 5))
        labels = np.array([0, 2, 4, 1])

        def f(arr):
            return softmax_cross_entropy(arr, labels)[0]

        _loss, analytic = softmax_cross_entropy(logits, labels)
        numeric = numerical_gradient(f, logits.copy())
        np.testing.assert_allclose(analytic, numeric, atol=1e-7)

    def test_sequence_labels(self):
        logits = RNG.normal(size=(2, 3, 4))
        labels = np.array([[0, 1, 2], [3, 3, 3]])
        loss, grad = softmax_cross_entropy(logits, labels)
        assert grad.shape == logits.shape
        assert loss > 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((3, 4)), np.zeros(2, dtype=int))

    def test_label_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((2, 3)), np.array([0, 3]))

    @given(st.integers(min_value=2, max_value=8))
    def test_gradient_sums_to_zero_per_row(self, k):
        logits = np.random.default_rng(k).normal(size=(3, k))
        _loss, grad = softmax_cross_entropy(logits, np.zeros(3, dtype=int))
        np.testing.assert_allclose(grad.sum(axis=-1), 0.0, atol=1e-12)


class TestMSE:
    def test_zero_at_match(self):
        x = RNG.normal(size=(3, 3))
        loss, grad = mse_loss(x, x)
        assert loss == 0.0
        np.testing.assert_allclose(grad, 0.0)

    def test_gradient_matches_numerical(self):
        pred = RNG.normal(size=(3, 4))
        target = RNG.normal(size=(3, 4))

        def f(arr):
            return mse_loss(arr, target)[0]

        _loss, analytic = mse_loss(pred, target)
        numeric = numerical_gradient(f, pred.copy())
        np.testing.assert_allclose(analytic, numeric, atol=1e-7)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse_loss(np.zeros((2, 2)), np.zeros((2, 3)))
