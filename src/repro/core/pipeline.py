"""End-to-end M2AI pipeline: frames in, activity labels out.

Glues the scaler, the Fig. 6 network and the trainer behind a
classifier-like ``fit``/``predict``/``evaluate`` interface operating on
:class:`~repro.core.dataset.ActivityDataset` objects.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import M2AIConfig
from repro.core.dataset import ActivityDataset, ChannelScaler
from repro.core.model import M2AINet
from repro.core.trainer import TrainHistory, Trainer
from repro.ml.base import LabelEncoder
from repro.ml.metrics import ConfusionMatrix, accuracy, confusion_matrix
from repro.nn.losses import softmax
from repro.nn.module import DEFAULT_DTYPE, INFERENCE_DTYPE, cast_once, inference_mode

SERVE_DTYPES = ("float64", "float32")
"""Dtypes :meth:`M2AIPipeline.set_serve_dtype` accepts."""


class ServeParityError(RuntimeError):
    """Float32 serve model rejected by the accuracy-parity gate.

    Raised by :meth:`M2AIPipeline.set_serve_dtype` when the cast-once
    float32 model's argmax decisions differ from the float64 reference
    on the supplied parity dataset.  The pipeline is left serving
    float64 — a rejected pack is discarded, never installed.
    """


@dataclass
class EvaluationResult:
    """Scored predictions on a dataset."""

    accuracy: float
    confusion: ConfusionMatrix
    predictions: np.ndarray
    labels: np.ndarray


@dataclass
class M2AIPipeline:
    """The deployable classifier.

    Args:
        config: network/training hyper-parameters.
        mode: ``"cnn_lstm"`` (the paper), ``"cnn"`` or ``"lstm"``
            (Fig. 17 ablations).
    """

    config: M2AIConfig = field(default_factory=M2AIConfig)
    mode: str = "cnn_lstm"
    model: M2AINet | None = None
    history: TrainHistory | None = None
    serve_dtype: str = "float64"
    _scaler: ChannelScaler = field(default_factory=ChannelScaler)
    _encoder: LabelEncoder = field(default_factory=LabelEncoder)
    _serve_model: M2AINet | None = field(default=None, repr=False)
    _serve_report: dict | None = field(default=None, repr=False)

    def fit(
        self, train: ActivityDataset, val: ActivityDataset | None = None
    ) -> "M2AIPipeline":
        """Train on ``train``; ``val`` drives best-epoch selection.

        Invalidates any installed float32 serve pack (the weights it
        was validated against are being replaced).
        """
        self._drop_serve_pack()
        channels, labels = train.to_arrays()
        channels = self._scaler.fit_transform(channels)
        ids = self._encoder.fit_transform(labels)
        self.model = M2AINet(
            channel_shapes=train.channel_shapes,
            n_classes=self._encoder.n_classes,
            cfg=self.config,
            mode=self.mode,
            rng=np.random.default_rng(self.config.seed),
        )
        trainer = Trainer(self.model, self.config)
        val_channels = val_ids = None
        if val is not None:
            raw_val, val_labels = val.to_arrays()
            val_channels = self._scaler.transform(raw_val)
            val_ids = self._encoder.transform(val_labels)
        self.history = trainer.fit(channels, ids, val_channels, val_ids)
        return self

    def fine_tune(
        self, train: ActivityDataset, epochs: int = 10, learning_rate: float | None = None
    ) -> "M2AIPipeline":
        """Continue training a fitted pipeline on new data.

        Supports the paper's Section VII deployment story: a model
        trained in one environment is adapted to another with a short
        retraining pass.  The feature scaler and label vocabulary are
        kept from the original fit (new data must use known classes).

        Raises:
            RuntimeError: when the pipeline was never fitted.
        """
        if self.model is None:
            raise RuntimeError("fine_tune requires a fitted pipeline")
        self._drop_serve_pack()
        from dataclasses import replace

        channels, labels = train.to_arrays()
        channels = self._scaler.transform(channels)
        ids = self._encoder.transform(labels)
        cfg = replace(
            self.config,
            epochs=epochs,
            learning_rate=learning_rate or self.config.learning_rate / 2,
        )
        Trainer(self.model, cfg).fit(channels, ids)
        return self

    def predict(self, dataset: ActivityDataset) -> np.ndarray:
        """Predicted labels for every sample."""
        proba = self.predict_proba(dataset)
        return self._encoder.inverse(proba.argmax(axis=1))

    def predict_proba(self, dataset: ActivityDataset) -> np.ndarray:
        """Class probabilities per sample, ``(B, n_classes)``.

        Columns follow ``self.classes`` ordering.  When a float32 serve
        pack is installed (:meth:`set_serve_dtype`), the forward pass
        runs through the cast-once model inside ``inference_mode()``;
        the returned probabilities are always float64 either way.
        """
        if self.model is None:
            raise RuntimeError("pipeline not fitted")
        channels, _ = dataset.to_arrays()
        channels = self._scaler.transform(channels)
        if self._serve_model is not None:
            return self._serve_proba(channels)
        return softmax(self.model.predict_logits(channels))

    def _serve_proba(self, channels: dict[str, np.ndarray]) -> np.ndarray:
        """Forward scaled ``channels`` through the float32 serve pack.

        Every narrow operation — the down-cast, the forward pass, the
        softmax — happens lexically inside ``inference_mode()``, and the
        probabilities are widened back to float64 before the scope
        exits, so nothing narrow ever escapes (the contract RPR012 and
        the runtime sanitizer enforce).
        """
        assert self._serve_model is not None
        with inference_mode():
            narrow = {
                name: arr.astype(INFERENCE_DTYPE) for name, arr in channels.items()
            }
            logits = self._serve_model.predict_logits(narrow)
            proba = softmax(logits).astype(DEFAULT_DTYPE)
        return proba

    def set_serve_dtype(
        self, dtype: str, parity: ActivityDataset | None = None
    ) -> dict:
        """Select the inference precision, gated by decision parity.

        ``"float64"`` (the default) drops any installed serve pack and
        restores the training-precision path.  ``"float32"`` builds a
        cast-once serve model: the trained weights are deep-copied,
        cast to :data:`~repro.nn.module.INFERENCE_DTYPE` inside
        ``inference_mode()`` (frozen read-only, conv taps pre-packed),
        and accepted only if its argmax decisions on ``parity`` equal
        the float64 reference exactly.  Training state is untouched —
        ``fit``/``fine_tune`` keep operating on the float64 model and
        invalidate the pack.

        Idempotent: requesting ``"float32"`` while a pack is installed
        returns the original acceptance report without re-validating.

        Args:
            dtype: one of :data:`SERVE_DTYPES`.
            parity: labelled or unlabelled eval windows for the parity
                gate; required for ``"float32"``.

        Returns:
            A report dict: ``serve_dtype``, ``accepted``, ``n_windows``,
            ``n_mismatches``, ``max_abs_proba_delta``.

        Raises:
            ValueError: unknown ``dtype``, or float32 without ``parity``.
            RuntimeError: pipeline not fitted.
            ServeParityError: decisions differ; the pack is discarded
                and the pipeline keeps serving float64.
        """
        if dtype not in SERVE_DTYPES:
            raise ValueError(f"serve_dtype must be one of {SERVE_DTYPES}, got {dtype!r}")
        if dtype == "float64":
            self._drop_serve_pack()
            return {"serve_dtype": "float64", "accepted": True}
        if self.model is None:
            raise RuntimeError("pipeline not fitted")
        if self._serve_model is not None:
            return dict(self._serve_report or {})
        if parity is None:
            raise ValueError("float32 serving requires a parity dataset")
        proba64 = self.predict_proba(parity)
        serve = copy.deepcopy(self.model)
        with inference_mode():
            cast_once(serve, INFERENCE_DTYPE)
        channels, _ = parity.to_arrays()
        channels = self._scaler.transform(channels)
        self._serve_model = serve
        try:
            proba32 = self._serve_proba(channels)
        finally:
            self._serve_model = None
        decisions64 = proba64.argmax(axis=1)
        decisions32 = proba32.argmax(axis=1)
        mismatches = int(np.count_nonzero(decisions64 != decisions32))
        max_delta = float(np.abs(proba32 - proba64).max()) if proba64.size else 0.0
        report = {
            "serve_dtype": "float32",
            "accepted": mismatches == 0,
            "n_windows": int(decisions64.size),
            "n_mismatches": mismatches,
            "max_abs_proba_delta": max_delta,
        }
        if mismatches:
            raise ServeParityError(
                f"float32 parity gate rejected the cast: {mismatches}/"
                f"{decisions64.size} decisions differ from float64 "
                f"(max |dp| = {max_delta:.3e}); pipeline stays float64"
            )
        self._serve_model = serve
        self._serve_report = report
        self.serve_dtype = "float32"
        return dict(report)

    def _drop_serve_pack(self) -> None:
        """Remove any installed serve pack and return to float64."""
        self._serve_model = None
        self._serve_report = None
        self.serve_dtype = "float64"

    @property
    def classes(self) -> np.ndarray:
        """Label vocabulary in probability-column order."""
        if self._encoder.classes_ is None:
            raise RuntimeError("pipeline not fitted")
        return self._encoder.classes_

    def evaluate(self, dataset: ActivityDataset) -> EvaluationResult:
        """Accuracy + confusion matrix on a labelled dataset.

        The confusion matrix is indexed by the encoder's full
        vocabulary (``self.classes``), not just the labels present in
        ``dataset`` — a test split missing a class would otherwise
        silently shift the columns relative to other evaluations.
        """
        predictions = self.predict(dataset)
        labels = np.asarray(dataset.labels)
        return EvaluationResult(
            accuracy=accuracy(labels, predictions),
            confusion=confusion_matrix(
                labels, predictions, labels=np.asarray(self.classes)
            ),
            predictions=predictions,
            labels=labels,
        )


def baseline_arrays(
    train: ActivityDataset, test: ActivityDataset
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Flattened, standardised features for the classical baselines.

    The scaler is fitted on the training split only.

    Returns:
        ``(x_train, y_train, x_test, y_test)``.
    """
    from repro.ml.preprocessing import StandardScaler

    scaler = StandardScaler()
    x_train = scaler.fit_transform(train.flatten_features())
    x_test = scaler.transform(test.flatten_features())
    return x_train, np.asarray(train.labels), x_test, np.asarray(test.labels)
