"""Streaming edge cases: degenerate logs and explicit abstention.

These run against a stubbed pipeline/featurizer so they exercise the
window bookkeeping and abstain logic alone, without training a model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.streaming import (
    ABSTAIN,
    REASON_DEAD_PORTS,
    REASON_LOW_CONFIDENCE,
    REASON_TOO_FEW_READS,
    StreamingIdentifier,
)
from repro.dsp.frames import FeatureFrames
from repro.hardware import ReadLog, ReaderMeta

DWELL_S = 0.4
META = ReaderMeta(
    n_antennas=4,
    slot_s=0.025,
    dwell_s=DWELL_S,
    spacing_m=0.04,
    frequencies_hz=np.linspace(902.75e6, 927.25e6, 50),
    reference_channel=15,
)


def make_log(timestamps, antennas) -> ReadLog:
    timestamps = np.asarray(timestamps, dtype=float)
    antennas = np.asarray(antennas, dtype=int)
    n = timestamps.size
    channel = np.zeros(n, dtype=int)
    return ReadLog(
        epcs=("T",),
        tag_index=np.zeros(n, dtype=int),
        antenna=antennas,
        channel=channel,
        frequency_hz=META.frequencies_hz[channel],
        timestamp_s=timestamps,
        phase_rad=np.zeros(n),
        rssi_dbm=np.full(n, -60.0),
        meta=META,
    )


class StubFeaturizer:
    """Returns a fixed tiny FeatureFrames regardless of the window."""

    def transform(self, log, psi, n_frames, label=None):
        return FeatureFrames(
            channels={"pseudo": np.zeros((n_frames, 1, 3))}, label=label
        )


class StubPipeline:
    """Duck-typed fitted pipeline with a fixed softmax output."""

    def __init__(self, proba=(0.9, 0.1)):
        self.model = object()  # non-None == fitted
        self.classes = np.array(["sit", "walk"])
        self._proba = np.asarray(proba, dtype=float)

    def predict_proba(self, dataset):
        return np.tile(self._proba, (len(dataset), 1))


def identifier(**kwargs) -> StreamingIdentifier:
    defaults = dict(
        pipeline=StubPipeline(),
        window_s=DWELL_S,
        featurizer=StubFeaturizer(),
        min_reads=2,
    )
    defaults.update(kwargs)
    return StreamingIdentifier(**defaults)


class TestDegenerateLogs:
    def test_empty_log_yields_no_decisions(self):
        log = make_log([], [])
        assert identifier().identify(log) == []

    def test_single_read_abstains_too_few(self):
        log = make_log([0.1], [0])
        decisions = identifier().identify(log)
        assert len(decisions) == 1
        d = decisions[0]
        assert d.abstained and d.label == ABSTAIN
        assert d.reason == REASON_TOO_FEW_READS
        assert d.n_reads == 1 and d.confidence == 0.0

    def test_exactly_min_reads_classifies(self):
        times = [0.0125, 0.0375, 0.0625, 0.0875]
        log = make_log(times, [0, 1, 2, 3])
        decisions = identifier(min_reads=4).identify(log)
        assert len(decisions) == 1
        d = decisions[0]
        assert not d.abstained and d.reason is None
        assert d.label == "sit" and d.confidence == pytest.approx(0.9)
        assert d.n_reads == 4

    def test_reads_preceding_first_complete_window(self):
        # 0.3 s of reads cannot fill a 6 s window: no decision at all.
        log = make_log(np.linspace(0.0, 0.3, 20), np.tile([0, 1, 2, 3], 5))
        assert identifier(window_s=6.0).identify(log) == []


class TestAbstention:
    def test_midstream_gap_is_reported_not_dropped(self):
        times = np.concatenate(
            [np.linspace(0.0, 0.39, 16), np.linspace(0.8, 1.19, 16)]
        )
        ants = np.tile([0, 1, 2, 3], 8)
        decisions = identifier().identify(make_log(times, ants))
        assert len(decisions) == 3  # windows at 0.0, 0.4, 0.8 — none skipped
        assert [d.abstained for d in decisions] == [False, True, False]
        gap = decisions[1]
        assert gap.reason == REASON_TOO_FEW_READS and gap.n_reads == 0

    def test_single_live_port_abstains_dead_ports(self):
        log = make_log(np.linspace(0.0, 0.39, 16), np.zeros(16, dtype=int))
        decisions = identifier().identify(log)
        assert len(decisions) == 1
        assert decisions[0].abstained
        assert decisions[0].reason == REASON_DEAD_PORTS

    def test_low_confidence_abstains_when_enabled(self):
        log = make_log(np.linspace(0.0, 0.39, 16), np.tile([0, 1, 2, 3], 4))
        shaky = StubPipeline(proba=(0.55, 0.45))
        decisions = identifier(pipeline=shaky, min_confidence=0.9).identify(log)
        assert decisions[0].abstained
        assert decisions[0].reason == REASON_LOW_CONFIDENCE

    def test_low_confidence_disabled_by_default(self):
        log = make_log(np.linspace(0.0, 0.39, 16), np.tile([0, 1, 2, 3], 4))
        shaky = StubPipeline(proba=(0.55, 0.45))
        decisions = identifier(pipeline=shaky).identify(log)
        assert not decisions[0].abstained
        assert decisions[0].confidence == pytest.approx(0.55)


class TestWindowParameterValidation:
    """A non-positive hop used to loop forever (``hop_s or window_s``
    treated 0.0 as unset only for None-like falsiness, and a negative
    hop walked the window backwards).  These must fail fast — each
    call below returns or raises immediately, no timeout machinery."""

    def test_zero_hop_raises(self):
        log = make_log(np.linspace(0.0, 0.39, 16), np.tile([0, 1, 2, 3], 4))
        with pytest.raises(ValueError, match="hop_s"):
            identifier(hop_s=0.0).identify(log)

    def test_negative_hop_raises(self):
        log = make_log(np.linspace(0.0, 0.39, 16), np.tile([0, 1, 2, 3], 4))
        with pytest.raises(ValueError, match="hop_s"):
            identifier(hop_s=-0.1).identify(log)

    def test_non_positive_window_raises(self):
        log = make_log(np.linspace(0.0, 0.39, 16), np.tile([0, 1, 2, 3], 4))
        with pytest.raises(ValueError, match="window_s"):
            identifier(window_s=0.0).identify(log)
        with pytest.raises(ValueError, match="window_s"):
            identifier(window_s=-1.0).identify(log)

    def test_none_hop_still_defaults_to_window(self):
        times = np.concatenate(
            [np.linspace(0.0, 0.39, 16), np.linspace(0.4, 0.79, 16)]
        )
        decisions = identifier(hop_s=None).identify(
            make_log(times, np.tile([0, 1, 2, 3], 8))
        )
        assert len(decisions) == 2  # back-to-back, non-overlapping


class TestUnsortedLogs:
    def test_unsorted_log_matches_sorted(self):
        """The searchsorted fast path must not assume input order."""
        times = np.linspace(0.0, 0.79, 32)
        ants = np.tile([0, 1, 2, 3], 8)
        rng = np.random.default_rng(3)
        perm = rng.permutation(times.size)
        sorted_decisions = identifier().identify(make_log(times, ants))
        shuffled_decisions = identifier().identify(
            make_log(times[perm], ants[perm])
        )
        assert sorted_decisions == shuffled_decisions
        assert len(sorted_decisions) == 2
