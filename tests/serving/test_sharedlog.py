"""Round-trip fidelity of the shared-memory log transport."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving.sharedlog import (
    SHARED_MEMORY_MIN_BYTES,
    discard_shipped,
    ship_log,
    unship_log,
)

from .conftest import make_log


def _assert_logs_equal(a, b):
    assert a.epcs == b.epcs
    assert a.meta == b.meta
    for name in (
        "tag_index",
        "antenna",
        "channel",
        "frequency_hz",
        "timestamp_s",
        "phase_rad",
        "rssi_dbm",
    ):
        left, right = getattr(a, name), getattr(b, name)
        assert left.dtype == right.dtype, name
        np.testing.assert_array_equal(left, right, err_msg=name)


def test_small_log_travels_inline():
    log = make_log(n=20)
    shipped = ship_log(log)
    assert shipped.shm_name is None
    assert shipped.inline is not None
    _assert_logs_equal(log, unship_log(shipped))


def test_large_log_travels_via_shared_memory():
    log = make_log(n=3000)
    shipped = ship_log(log)
    assert shipped.nbytes >= SHARED_MEMORY_MIN_BYTES
    assert shipped.shm_name is not None
    assert shipped.inline is None
    restored = unship_log(shipped)
    _assert_logs_equal(log, restored)
    # The block was unlinked by unship_log: decoding twice must fail.
    with pytest.raises(FileNotFoundError):
        unship_log(shipped)


def test_restored_log_owns_its_arrays():
    log = make_log(n=3000)
    restored = unship_log(ship_log(log))
    restored.phase_rad[0] = 999.0  # would blow up on a read-only view


def test_threshold_is_tunable():
    log = make_log(n=20)
    shipped = ship_log(log, min_shared_bytes=1)
    assert shipped.shm_name is not None
    _assert_logs_equal(log, unship_log(shipped))


def test_discard_releases_shared_block():
    log = make_log(n=3000)
    shipped = ship_log(log)
    discard_shipped(shipped)
    with pytest.raises(FileNotFoundError):
        unship_log(shipped)
    # Discarding again (or an inline log) is a no-op.
    discard_shipped(shipped)
    discard_shipped(ship_log(make_log(n=20)))
