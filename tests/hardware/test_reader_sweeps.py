"""Reader behaviour across the configurations the sweeps exercise."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import Vec2, make_open_space
from repro.hardware import Reader, ReaderConfig, UniformLinearArray, make_tag, stationary_scene


def reader_with(n_antennas: int, seed: int = 0) -> Reader:
    array = UniformLinearArray(center=Vec2(0.0, 0.0), n_elements=n_antennas)
    return Reader(ReaderConfig(array=array), make_open_space(), seed=seed)


def one_tag_scene(pos=(3.0, 3.0)):
    return stationary_scene([(make_tag("T", np.random.default_rng(0)), pos)])


class TestAntennaCountSweep:
    @pytest.mark.parametrize("n_antennas", [2, 3, 4])
    def test_ports_cycle_for_any_array_size(self, n_antennas):
        reader = reader_with(n_antennas)
        log = reader.inventory(one_tag_scene(), duration_s=1.0)
        assert sorted(np.unique(log.antenna).tolist()) == list(range(n_antennas))

    @pytest.mark.parametrize("n_antennas", [2, 3, 4])
    def test_rounds_per_dwell_scale(self, n_antennas):
        """A 400 ms dwell holds 0.4 / (0.025 * N) port rounds."""
        reader = reader_with(n_antennas)
        from repro.dsp import build_snapshots, uncalibrated

        log = reader.inventory(one_tag_scene(), duration_s=0.8)
        snaps = build_snapshots(log, uncalibrated(log), 0)
        expected_rounds = int(round(0.4 / (0.025 * n_antennas)))
        assert snaps.z.shape[1] == expected_rounds
        assert snaps.z.shape[2] == n_antennas

    def test_read_rate_independent_of_ports(self):
        """The tag answers once per slot regardless of array size."""
        rate2 = reader_with(2, seed=3).inventory(one_tag_scene(), 2.0).read_rate_hz(0)
        rate4 = reader_with(4, seed=3).inventory(one_tag_scene(), 2.0).read_rate_hz(0)
        assert rate2 == pytest.approx(rate4, rel=0.15)


class TestDistanceSweep:
    @pytest.mark.parametrize("distance", [1.0, 2.0, 4.0, 6.0])
    def test_rssi_decays_with_distance(self, distance):
        reader = reader_with(4, seed=1)
        log = reader.inventory(one_tag_scene(pos=(distance, 0.5)), duration_s=0.8)
        assert log.n_reads > 0
        # Round-trip power: each metre costs ~12 dB near these ranges.
        mean_rssi = float(log.rssi_dbm.mean())
        reference = reader_with(4, seed=1).inventory(
            one_tag_scene(pos=(1.0, 0.5)), duration_s=0.8
        )
        if distance > 1.0:
            assert mean_rssi < float(reference.rssi_dbm.mean())

    def test_read_rate_collapses_out_of_range(self):
        reader = reader_with(4, seed=2)
        near = reader.inventory(one_tag_scene(pos=(3.0, 0.5)), 1.0).read_rate_hz(0)
        far = reader.inventory(one_tag_scene(pos=(70.0, 0.5)), 1.0).read_rate_hz(0)
        assert far < near * 0.2
