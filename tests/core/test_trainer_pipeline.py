"""Trainer and pipeline on synthetic frame data."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ActivityDataset, M2AIConfig, M2AINet, M2AIPipeline, Trainer
from repro.core.augment import AugmentConfig, augment_batch
from repro.dsp.frames import FeatureFrames

TINY_CFG = M2AIConfig(
    conv_channels=(3, 4),
    branch_dim=6,
    merge_dim=8,
    lstm_hidden=6,
    lstm_layers=1,
    dropout=0.0,
    epochs=25,
    batch_size=8,
    learning_rate=0.01,
    warmup_frames=1,
    augment=False,
)


def synthetic_dataset(per_class=12, frames=5, seed=0):
    """Classes distinguished by which 'angle' band lights up."""
    rng = np.random.default_rng(seed)
    samples, labels = [], []
    for cls in range(3):
        for _ in range(per_class):
            pseudo = rng.normal(0, 0.3, (frames, 2, 40))
            pseudo[:, :, 5 + cls * 12 : 12 + cls * 12] += 2.0
            period = rng.normal(0, 0.3, (frames, 2, 4))
            period[:, :, cls % 4] += float(cls)
            samples.append(
                FeatureFrames(
                    channels={"pseudo": pseudo, "period": period}, label=f"K{cls}"
                )
            )
            labels.append(f"K{cls}")
    return ActivityDataset(samples=samples, labels=labels)


class TestTrainer:
    def test_loss_decreases(self):
        ds = synthetic_dataset()
        channels, labels = ds.to_arrays()
        ids = np.array([int(label[1]) for label in labels])
        net = M2AINet(ds.channel_shapes, 3, cfg=TINY_CFG)
        trainer = Trainer(net, TINY_CFG)
        history = trainer.fit(channels, ids)
        assert history.loss[-1] < history.loss[0]

    def test_fits_separable_data(self):
        ds = synthetic_dataset()
        channels, labels = ds.to_arrays()
        ids = np.array([int(label[1]) for label in labels])
        net = M2AINet(ds.channel_shapes, 3, cfg=TINY_CFG)
        trainer = Trainer(net, TINY_CFG)
        trainer.fit(channels, ids)
        assert trainer.accuracy(channels, ids) > 0.9

    def test_best_val_snapshot_restored(self):
        ds = synthetic_dataset()
        channels, labels = ds.to_arrays()
        ids = np.array([int(label[1]) for label in labels])
        net = M2AINet(ds.channel_shapes, 3, cfg=TINY_CFG)
        trainer = Trainer(net, TINY_CFG)
        history = trainer.fit(channels, ids, channels, ids)
        final = trainer.accuracy(channels, ids)
        assert final == pytest.approx(max(history.val_accuracy), abs=1e-9)

    def test_sgd_optimizer_path(self):
        cfg = M2AIConfig(
            conv_channels=(3, 4), branch_dim=6, merge_dim=8, lstm_hidden=6,
            lstm_layers=1, dropout=0.0, epochs=10, batch_size=8,
            learning_rate=0.05, optimizer="sgd", warmup_frames=1, augment=False,
        )
        ds = synthetic_dataset()
        channels, labels = ds.to_arrays()
        ids = np.array([int(label[1]) for label in labels])
        net = M2AINet(ds.channel_shapes, 3, cfg=cfg)
        history = Trainer(net, cfg).fit(channels, ids)
        assert history.loss[-1] < history.loss[0]


class TestAugmentation:
    def test_shapes_preserved(self):
        ds = synthetic_dataset(per_class=2)
        channels, _ = ds.to_arrays()
        out = augment_batch(channels, np.random.default_rng(0))
        for name in channels:
            assert out[name].shape == channels[name].shape

    def test_inputs_not_mutated(self):
        ds = synthetic_dataset(per_class=2)
        channels, _ = ds.to_arrays()
        before = {k: v.copy() for k, v in channels.items()}
        augment_batch(channels, np.random.default_rng(0))
        for name in channels:
            np.testing.assert_allclose(channels[name], before[name])

    def test_noise_only_config(self):
        ds = synthetic_dataset(per_class=2)
        channels, _ = ds.to_arrays()
        cfg = AugmentConfig(angle_shift_bins=0, time_roll_frames=0, noise_std=0.1)
        out = augment_batch(channels, np.random.default_rng(0), cfg)
        diff = out["pseudo"] - channels["pseudo"]
        assert 0.05 < diff.std() < 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            AugmentConfig(noise_std=-1.0)


class TestPipeline:
    def test_end_to_end(self):
        ds = synthetic_dataset(per_class=10)
        train, test = ds.split(0.25, np.random.default_rng(0))
        pipeline = M2AIPipeline(TINY_CFG)
        pipeline.fit(train, val=test)
        result = pipeline.evaluate(test)
        assert result.accuracy > 0.8
        assert result.confusion.counts.sum() == len(test)

    def test_unfitted_predict_raises(self):
        ds = synthetic_dataset(per_class=2)
        with pytest.raises(RuntimeError):
            M2AIPipeline(TINY_CFG).predict(ds)

    def test_predict_labels_are_strings(self):
        ds = synthetic_dataset(per_class=6)
        train, test = ds.split(0.3, np.random.default_rng(0))
        pipeline = M2AIPipeline(TINY_CFG).fit(train)
        predictions = pipeline.predict(test)
        assert set(predictions.tolist()) <= {"K0", "K1", "K2"}

    @pytest.mark.parametrize("mode", ["cnn", "lstm"])
    def test_ablation_modes_run(self, mode):
        ds = synthetic_dataset(per_class=6)
        train, test = ds.split(0.3, np.random.default_rng(0))
        pipeline = M2AIPipeline(TINY_CFG, mode=mode).fit(train)
        assert pipeline.evaluate(test).accuracy >= 0.3
