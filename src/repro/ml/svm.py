"""Support vector machines (Fig. 9's "Linear SVM" and "RBF SVM").

Both are one-vs-rest.  The linear machine is trained with Pegasos
(stochastic sub-gradient descent on the regularised hinge loss), the
kernel machine with kernelised Pegasos — compact, dependency-free, and
well within the accuracy the comparison needs.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Classifier, LabelEncoder, validate_xy


class LinearSVM(Classifier):
    """One-vs-rest linear SVM via the Pegasos solver.

    Args:
        c: inverse regularisation strength (larger = harder margin).
        epochs: passes over the training set per binary machine.
        rng: sampling order randomness.
    """

    def __init__(
        self,
        c: float = 1.0,
        epochs: int = 60,
        rng: np.random.Generator | None = None,
    ) -> None:
        if c <= 0:
            raise ValueError("c must be positive")
        self.c = c
        self.epochs = epochs
        self.rng = rng or np.random.default_rng(0)
        self._encoder = LabelEncoder()
        self._w: np.ndarray | None = None
        self._b: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearSVM":
        """Fit the classifier; returns ``self``."""
        x, y = validate_xy(x, y)
        ids = self._encoder.fit_transform(y)
        n, d = x.shape
        k = self._encoder.n_classes
        lam = 1.0 / (self.c * n)
        self._w = np.zeros((k, d))
        self._b = np.zeros(k)
        targets = np.where(ids[None, :] == np.arange(k)[:, None], 1.0, -1.0)
        for cls in range(k):
            w = np.zeros(d)
            b = 0.0
            t = 0
            for _epoch in range(self.epochs):
                for i in self.rng.permutation(n):
                    t += 1
                    eta = 1.0 / (lam * t)
                    margin = targets[cls, i] * (x[i] @ w + b)
                    w *= 1.0 - eta * lam
                    if margin < 1.0:
                        w += eta * targets[cls, i] * x[i]
                        b += eta * targets[cls, i]
            self._w[cls] = w
            self._b[cls] = b
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Per-class margins, ``(n, k)``."""
        if self._w is None or self._b is None:
            raise RuntimeError("classifier not fitted")
        return np.asarray(x, dtype=np.float64) @ self._w.T + self._b

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted class ids for ``x``, shape ``(B,)``."""
        return self._encoder.inverse(self.decision_function(x).argmax(axis=1))


class RbfSVM(Classifier):
    """One-vs-rest RBF-kernel SVM via kernelised Pegasos.

    Args:
        c: inverse regularisation strength.
        gamma: RBF width; ``None`` uses the ``1/(d * var)`` heuristic.
        epochs: passes over the training set per binary machine.
        rng: sampling order randomness.
    """

    def __init__(
        self,
        c: float = 1.0,
        gamma: float | None = None,
        epochs: int = 40,
        rng: np.random.Generator | None = None,
    ) -> None:
        if c <= 0:
            raise ValueError("c must be positive")
        self.c = c
        self.gamma = gamma
        self.epochs = epochs
        self.rng = rng or np.random.default_rng(0)
        self._encoder = LabelEncoder()
        self._x: np.ndarray | None = None
        self._train_ids: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._gamma_fitted: float = 1.0
        self._lam: float = 1.0
        self._steps: int = 1

    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        d2 = (
            np.sum(a**2, axis=1)[:, None]
            - 2.0 * a @ b.T
            + np.sum(b**2, axis=1)[None, :]
        )
        return np.exp(-self._gamma_fitted * np.maximum(d2, 0.0))

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RbfSVM":
        """Fit the classifier; returns ``self``."""
        x, y = validate_xy(x, y)
        ids = self._encoder.fit_transform(y)
        n = len(x)
        k = self._encoder.n_classes
        variance = float(x.var()) or 1.0
        self._gamma_fitted = (
            self.gamma if self.gamma is not None else 1.0 / (x.shape[1] * variance)
        )
        self._x = x
        self._train_ids = ids
        self._lam = 1.0 / (self.c * n)
        gram = self._kernel(x, x)
        targets = np.where(ids[None, :] == np.arange(k)[:, None], 1.0, -1.0)
        alpha = np.zeros((k, n))
        for cls in range(k):
            a = np.zeros(n)
            t = 0
            for _epoch in range(self.epochs):
                for i in self.rng.permutation(n):
                    t += 1
                    margin = targets[cls, i] * (gram[i] @ (a * targets[cls])) / (
                        self._lam * t
                    )
                    if margin < 1.0:
                        a[i] += 1.0
            alpha[cls] = a
            self._steps = t
        self._alpha = alpha
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Per-class kernel scores, ``(n, k)``."""
        if self._x is None or self._alpha is None:
            raise RuntimeError("classifier not fitted")
        gram = self._kernel(np.asarray(x, dtype=np.float64), self._x)
        k = self._alpha.shape[0]
        scores = np.empty((len(gram), k))
        for cls in range(k):
            signs = np.where(self._train_ids == cls, 1.0, -1.0)
            scores[:, cls] = gram @ (self._alpha[cls] * signs) / (
                self._lam * self._steps
            )
        return scores

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted class ids for ``x``, shape ``(B,)``."""
        return self._encoder.inverse(self.decision_function(x).argmax(axis=1))
