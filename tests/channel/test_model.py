"""Physics of the multipath backscatter channel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel import BodyTrack, ChannelParams, MultipathChannel
from repro.geometry import Rectangle, Room, Scatterer, Vec2, make_laboratory, make_open_space

ANT = np.array([0.0, 0.0])
TAG = np.array([4.0, 0.0])
LAM = 0.328


def clean_channel(room) -> MultipathChannel:
    return MultipathChannel(
        room=room,
        params=ChannelParams(diffuse_level=0.0),
        rng=np.random.default_rng(0),
    )


class TestPathEnumeration:
    def test_open_space_single_path(self):
        channel = clean_channel(make_open_space())
        comps = channel.path_components(ANT, TAG, LAM)
        assert [c.name for c in comps] == ["direct"]

    def test_room_adds_wall_paths(self):
        room = Room(bounds=Rectangle(-10, -10, 10, 10), wall_reflectivity=0.5)
        channel = clean_channel(room)
        names = [c.name for c in channel.path_components(ANT, TAG, LAM)]
        assert "direct" in names
        assert sum(1 for n in names if n.startswith("wall:")) == 4

    def test_scatterers_add_paths(self):
        room = Room(
            bounds=Rectangle(-10, -10, 10, 10),
            wall_reflectivity=0.0,
            scatterers=(Scatterer(Vec2(2.0, 3.0), 0.3, 0.6),),
        )
        channel = clean_channel(room)
        names = [c.name for c in channel.path_components(ANT, TAG, LAM)]
        assert "scatterer:0" in names

    def test_bodies_add_paths_except_carrier(self):
        channel = clean_channel(make_open_space())
        body = BodyTrack(positions=np.array([[2.0, 2.0]]), radius=0.2)
        names = [c.name for c in channel.path_components(ANT, TAG, LAM, bodies=(body,))]
        assert "body:0" in names
        names_carrier = [
            c.name
            for c in channel.path_components(ANT, TAG, LAM, bodies=(body,), carrier=0)
        ]
        assert "body:0" not in names_carrier

    def test_lab_is_multipath_rich(self):
        channel = clean_channel(make_laboratory())
        comps = channel.path_components(np.array([6.8, 0.3]), np.array([6.0, 4.0]), LAM)
        assert len(comps) >= 10


class TestPhaseAndAmplitude:
    def test_direct_phase_matches_distance(self):
        channel = clean_channel(make_open_space())
        comp = channel.path_components(ANT, TAG, LAM)[0]
        d = float(np.linalg.norm(TAG - ANT))
        expected = np.exp(-2j * np.pi * d / LAM)
        measured = comp.gain[0] / np.abs(comp.gain[0])
        assert measured == pytest.approx(expected, rel=1e-9)

    def test_amplitude_decays_with_distance(self):
        channel = clean_channel(make_open_space())
        near = np.abs(channel.one_way_gain(ANT, np.array([2.0, 0.0]), LAM, include_diffuse=False))
        far = np.abs(channel.one_way_gain(ANT, np.array([8.0, 0.0]), LAM, include_diffuse=False))
        assert near[0] > far[0] * 3.5  # ~1/d

    def test_round_trip_is_square(self):
        channel = clean_channel(make_open_space())
        g = channel.one_way_gain(ANT, TAG, LAM, include_diffuse=False)
        h = channel.round_trip_gain(ANT, TAG, LAM, include_diffuse=False)
        np.testing.assert_allclose(h, g * g)

    def test_wall_path_longer_than_direct(self):
        room = Room(bounds=Rectangle(-10, -10, 10, 10), wall_reflectivity=0.5)
        channel = clean_channel(room)
        comps = {c.name: c for c in channel.path_components(ANT, TAG, LAM)}
        for wall in ("wall:left", "wall:right", "wall:bottom", "wall:top"):
            assert comps[wall].distance[0] > comps["direct"].distance[0]


class TestBlockage:
    def test_body_attenuates_direct_path(self):
        channel = clean_channel(make_open_space())
        blocker = BodyTrack(positions=np.array([[2.0, 0.0]]), radius=0.25)
        unblocked = channel.path_components(ANT, TAG, LAM)[0]
        blocked = channel.path_components(ANT, TAG, LAM, bodies=(blocker,))[0]
        ratio = np.abs(blocked.gain[0]) / np.abs(unblocked.gain[0])
        assert ratio == pytest.approx(channel.params.body_blockage, rel=1e-6)

    def test_blockage_time_varying(self):
        channel = clean_channel(make_open_space())
        steps = 9
        y = np.linspace(-3, 3, steps)
        blocker = BodyTrack(
            positions=np.stack([np.full(steps, 2.0), y], axis=1), radius=0.25
        )
        tag_traj = np.broadcast_to(TAG, (steps, 2)).copy()
        comp = channel.path_components(
            np.broadcast_to(ANT, (steps, 2)).copy(), tag_traj, LAM, bodies=(blocker,)
        )[0]
        mags = np.abs(comp.gain)
        assert mags[steps // 2] < mags[0]  # blocked in the middle
        assert mags[0] == pytest.approx(mags[-1], rel=1e-6)

    def test_furniture_blocks_too(self):
        room = Room(
            bounds=Rectangle(-10, -10, 10, 10),
            wall_reflectivity=0.0,
            scatterers=(Scatterer(Vec2(2.0, 0.0), 0.3, 0.6),),
        )
        channel = clean_channel(room)
        direct = channel.path_components(ANT, TAG, LAM)[0]
        assert np.abs(direct.gain[0]) < 1.0 / 4.0  # attenuated below free space


class TestDiffuse:
    def test_diffuse_adds_noise(self):
        room = make_open_space()
        channel = MultipathChannel(
            room=room, params=ChannelParams(diffuse_level=0.05), rng=np.random.default_rng(1)
        )
        steps = 64
        tag = np.broadcast_to(TAG, (steps, 2)).copy()
        ant = np.broadcast_to(ANT, (steps, 2)).copy()
        g = channel.one_way_gain(ant, tag, LAM)
        assert np.std(np.abs(g)) > 0.0

    def test_diffuse_reproducible_with_seed(self):
        room = make_open_space()
        params = ChannelParams(diffuse_level=0.05)
        g1 = MultipathChannel(room, params, np.random.default_rng(5)).one_way_gain(
            ANT, TAG, LAM
        )
        g2 = MultipathChannel(room, params, np.random.default_rng(5)).one_way_gain(
            ANT, TAG, LAM
        )
        np.testing.assert_allclose(g1, g2)


class TestValidation:
    def test_body_track_shape_checked(self):
        with pytest.raises(ValueError):
            BodyTrack(positions=np.zeros(3))

    def test_mismatched_body_axes_raise(self):
        channel = clean_channel(make_open_space())
        b1 = BodyTrack(positions=np.zeros((5, 2)))
        b2 = BodyTrack(positions=np.zeros((7, 2)))
        with pytest.raises(ValueError):
            channel.path_components(ANT, TAG, LAM, bodies=(b1, b2))

    def test_channel_params_validation(self):
        with pytest.raises(ValueError):
            ChannelParams(body_blockage=1.5)
        with pytest.raises(ValueError):
            ChannelParams(reference_amplitude=0.0)
        with pytest.raises(ValueError):
            ChannelParams(diffuse_level=-0.1)


class TestSecondOrderReflections:
    def test_opt_in_adds_corner_paths(self):
        room = Room(bounds=Rectangle(-10, -10, 10, 10), wall_reflectivity=0.5)
        first = MultipathChannel(
            room=room, params=ChannelParams(diffuse_level=0.0),
            rng=np.random.default_rng(0), max_reflection_order=1,
        )
        second = MultipathChannel(
            room=room, params=ChannelParams(diffuse_level=0.0),
            rng=np.random.default_rng(0), max_reflection_order=2,
        )
        names_1 = {c.name for c in first.path_components(ANT, TAG, LAM)}
        names_2 = {c.name for c in second.path_components(ANT, TAG, LAM)}
        assert names_1 < names_2
        assert sum(1 for n in names_2 if n.startswith("wall2:")) == 4

    def test_corner_paths_longer_and_weaker_than_single_bounce(self):
        room = Room(bounds=Rectangle(-10, -10, 10, 10), wall_reflectivity=0.5)
        channel = MultipathChannel(
            room=room, params=ChannelParams(diffuse_level=0.0),
            rng=np.random.default_rng(0), max_reflection_order=2,
        )
        comps = {c.name: c for c in channel.path_components(ANT, TAG, LAM)}
        shortest_single = min(
            comps[f"wall:{w}"].distance[0] for w in ("left", "right", "bottom", "top")
        )
        for name, comp in comps.items():
            if name.startswith("wall2:"):
                assert comp.distance[0] > shortest_single
                assert np.abs(comp.gain[0]) < np.abs(comps["direct"].gain[0])

    def test_first_order_default_unchanged(self):
        channel = clean_channel(make_open_space())
        assert channel.max_reflection_order == 1

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            MultipathChannel(
                room=make_open_space(),
                params=ChannelParams(),
                rng=np.random.default_rng(0),
                max_reflection_order=3,
            )
