"""Fig. 2: AoA spectra from a single stationary tag to a crowded room.

Regenerates the paper's motivating observation: a stationary tag's
pseudospectrum is stable, while a moving person attenuates the blocked
path and shifts the others.
"""

from repro.eval import run_fig02


def test_fig02_aoa_scenarios(run_experiment):
    result = run_experiment(run_fig02)
    measured = result.measured_by_name()
    # A stationary tag holds its dominant peak within a few degrees...
    assert measured["stationary: top-peak angle std (deg)"] < 10.0
    # ...while a walking blocker swings the peak power by many dB.
    assert measured["moving blocker: peak power swing (dB)"] > 3.0
