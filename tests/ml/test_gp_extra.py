"""Gaussian-process classifier internals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import GaussianProcessClassifier


def blobs(seed=0):
    rng = np.random.default_rng(seed)
    x = np.concatenate([rng.normal(c * 5, 0.8, (25, 3)) for c in range(3)])
    y = np.repeat(["a", "b", "c"], 25)
    return x, y


class TestGaussianProcess:
    def test_median_heuristic_positive(self):
        x, y = blobs()
        model = GaussianProcessClassifier().fit(x, y)
        assert model._scale > 0

    def test_explicit_length_scale(self):
        x, y = blobs()
        model = GaussianProcessClassifier(length_scale=3.0).fit(x, y)
        assert model._scale == 3.0

    def test_interpolates_training_points(self):
        x, y = blobs()
        model = GaussianProcessClassifier(noise=0.01).fit(x, y)
        assert model.score(x, y) > 0.98

    def test_noise_validation(self):
        with pytest.raises(ValueError):
            GaussianProcessClassifier(noise=0.0)

    def test_higher_noise_smoother_scores(self):
        x, y = blobs()
        crisp = GaussianProcessClassifier(noise=0.01).fit(x, y)
        smooth = GaussianProcessClassifier(noise=10.0).fit(x, y)
        # Heavier observation noise shrinks the posterior mean toward 0.
        assert np.abs(smooth.decision_function(x)).max() < np.abs(
            crisp.decision_function(x)
        ).max()
